//! Experiment FS — federation scaling under the event-driven runtime.
//!
//! Sweeps N ∈ {8, 32, 64, 128} sites over four link-graph families
//! (ring, star, seeded-random, partitioned-islands-that-heal), seeds
//! 1–3, converging each cell with `run_until_converged` — no
//! hand-cranked `gossip_round`/`pump` anywhere. Also measures the
//! local-vs-remote exchange latency toll from experiment F3-fed.
//!
//! Writes the machine-readable sweep to `BENCH_fed_scale.json` at the
//! workspace root and prints the paper-facing table to stdout.
//! `--smoke` restricts the sweep to the 32-site column, seed 1 (the CI
//! `federation-scale` job).

use std::time::Instant;

use cscw_bench::fed_scale::{self, SHAPES, SITE_COUNTS};
use cscw_directory::Dn;
use cscw_federation::RuntimeConfig;
use cscw_kernel::{LogHistogram, Timestamp};
use groupware::{descriptor_for, mapping_for, sample_artifact};
use mocca::env::AppId;
use mocca::federation::FederatedEnvironments;
use mocca::CscwEnvironment;

const SEEDS: [u64; 3] = [1, 2, 3];
const LATENCY_ITERS: u32 = 200;

fn site(apps: &[&str]) -> CscwEnvironment {
    let mut env = CscwEnvironment::new();
    for app in apps {
        env.register_app(
            descriptor_for(app).expect("population app"),
            mapping_for(app).expect("population mapping"),
        );
    }
    env
}

/// A latency histogram's paper-facing JSON: mean plus quantiles, all
/// wall-clock microseconds.
fn latency_json(hist: &LogHistogram) -> String {
    format!(
        concat!(
            "{{\"mean_micros\":{},\"p50_micros\":{},\"p90_micros\":{},",
            "\"p99_micros\":{},\"max_micros\":{}}}"
        ),
        hist.mean().unwrap_or(0),
        hist.p50().unwrap_or(0),
        hist.p90().unwrap_or(0),
        hist.p99().unwrap_or(0),
        hist.max().unwrap_or(0)
    )
}

/// Per-iteration wall-clock latency distributions for a local exchange
/// and a remote (resolve + route + pump) exchange.
fn exchange_latency() -> (LogHistogram, LogHistogram) {
    let tom: Dn = "cn=Tom".parse().expect("fixture dn");
    let artifact = sample_artifact("sharedx").expect("fixture artifact");

    let mut local_hist = LogHistogram::new();
    let mut local = site(&["sharedx", "com"]);
    for _ in 0..LATENCY_ITERS {
        // conform: allow(determinism) — criterion-style timing loop; wall time is the measurement
        let start = Instant::now();
        local
            .exchange(&tom, &artifact, &AppId::new("com"), Timestamp::ZERO)
            .expect("local exchange");
        local_hist.record(start.elapsed().as_micros() as u64);
    }

    let mut remote_hist = LogHistogram::new();
    let mut fed = FederatedEnvironments::new();
    fed.federate("env-a", site(&["sharedx"]));
    fed.federate("env-b", site(&["com"]));
    fed.link_bidi("env-a", "env-b");
    for _ in 0..LATENCY_ITERS {
        // conform: allow(determinism) — criterion-style timing loop; wall time is the measurement
        let start = Instant::now();
        fed.env_mut("env-a")
            .expect("env-a")
            .exchange(&tom, &artifact, &AppId::new("com"), Timestamp::ZERO)
            .expect("remote exchange");
        fed.pump().expect("pump");
        remote_hist.record(start.elapsed().as_micros() as u64);
    }
    (local_hist, remote_hist)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (counts, seeds): (&[usize], &[u64]) = if smoke {
        (&[32], &[1])
    } else {
        (&SITE_COUNTS, &SEEDS)
    };

    let mut cells = Vec::new();
    println!("fed_scale: shape    sites seed rounds  sim_ms   KiB-on-wire wall-ms");
    for &shape in &SHAPES {
        let mut fingerprints: Vec<(usize, String)> = Vec::new();
        for &n in counts {
            for &seed in seeds {
                // conform: allow(determinism) — wall-ms column measures real elapsed time per cell
                let start = Instant::now();
                let r = fed_scale::run(shape, n, seed).expect("scale cell");
                let wall_micros = start.elapsed().as_micros() as u64;
                assert!(r.converged, "cell must converge: {r:?}");
                // Bit-for-bit determinism across seeds: the converged
                // state is the same no matter the schedule's phases.
                if let Some((_, fp)) = fingerprints.iter().find(|(m, _)| *m == n) {
                    assert_eq!(*fp, r.fingerprint, "{} n={n}", shape.name());
                } else {
                    fingerprints.push((n, r.fingerprint.clone()));
                }
                println!(
                    "fed_scale: {:8} {:5} {:4} {:6} {:7} {:11} {:7}",
                    r.shape,
                    r.sites,
                    r.seed,
                    r.rounds,
                    r.sim_micros / 1_000,
                    r.bytes_on_wire / 1024,
                    wall_micros / 1_000,
                );
                cells.push(format!(
                    "{},\"wall_micros\":{}}}",
                    r.to_json().trim_end_matches('}'),
                    wall_micros
                ));
            }
        }
    }

    let (local_hist, remote_hist) = exchange_latency();
    println!(
        "fed_scale: exchange latency local p50 {} us p99 {} us, remote p50 {} us p99 {} us \
         ({LATENCY_ITERS} iterations)",
        local_hist.p50().unwrap_or(0),
        local_hist.p99().unwrap_or(0),
        remote_hist.p50().unwrap_or(0),
        remote_hist.p99().unwrap_or(0),
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"experiment\": \"fed_scale\",\n",
            "  \"generated_by\": \"cargo bench -p cscw-bench --bench fed_scale\",\n",
            "  \"smoke\": {},\n",
            "  \"gossip_period_micros\": {},\n",
            "  \"seeds\": [1, 2, 3],\n",
            "  \"exchange_latency\": {{\"iterations\": {}, ",
            "\"local\": {}, \"remote\": {}}},\n",
            "  \"cells\": [\n    {}\n  ]\n",
            "}}\n"
        ),
        smoke,
        RuntimeConfig::seeded(1).gossip_period_micros,
        LATENCY_ITERS,
        latency_json(&local_hist),
        latency_json(&remote_hist),
        cells.join(",\n    ")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fed_scale.json");
    std::fs::write(path, json).expect("write BENCH_fed_scale.json");
    println!(
        "fed_scale: wrote {} cells to BENCH_fed_scale.json",
        cells.len()
    );
}
