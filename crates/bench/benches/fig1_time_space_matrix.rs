//! Experiment F1 — Figure 1, the groupware time–space matrix.
//!
//! Runs a representative workload in each quadrant through the same
//! environment and prints the per-quadrant *simulated* interaction
//! latency; Criterion measures the wall-time cost of simulating each
//! workload. Expected shape: same-time quadrants bounded by link
//! latency (milliseconds), different-time quadrants bounded by
//! store-and-forward (hundreds of milliseconds and up), one environment
//! covering all four.

use criterion::{criterion_group, criterion_main, Criterion};
use cscw_bench::{mail_world, population_env};
use cscw_messaging::{Ipm, SubmitOptions};
use groupware::{
    BbsClient, BbsServer, ConferenceClient, ConferenceServer, MeetingRoom, Participant, Procedure,
    ProcedureStep,
};
use simnet::{LinkSpec, Sim, SimDuration, SimTime, TopologyBuilder};

fn dn(s: &str) -> cscw_directory::Dn {
    s.parse().unwrap()
}

/// Same time / different places: one conference draw round-trip.
fn conference_round(seed: u64) -> SimDuration {
    let mut b = TopologyBuilder::new();
    let server = b.add_node("server");
    let tom_ws = b.add_node("tom");
    let wolfgang_ws = b.add_node("wolfgang");
    b.full_mesh(LinkSpec::wan());
    let mut sim = Sim::new(b.build(), seed);
    sim.register(server, ConferenceServer::new());
    sim.register(tom_ws, ConferenceClient::new());
    sim.register(wolfgang_ws, ConferenceClient::new());
    let tom = Participant {
        who: dn("cn=Tom"),
        node: tom_ws,
        server,
    };
    let wolfgang = Participant {
        who: dn("cn=Wolfgang"),
        node: wolfgang_ws,
        server,
    };
    tom.join(&mut sim);
    wolfgang.join(&mut sim);
    tom.request_floor(&mut sim);
    let before = sim.now();
    tom.draw(&mut sim, "one shared line");
    sim.now().saturating_since(before)
}

/// Same time / same place: a whole structured meeting (local compute).
fn meeting(seed: u64) -> usize {
    let _ = seed;
    let mut m = MeetingRoom::convene(
        "review",
        dn("cn=Tom"),
        vec![dn("cn=Wolfgang"), dn("cn=Leandro")],
    );
    for i in 0..10 {
        m.propose(&dn("cn=Tom"), &format!("idea {i}")).unwrap();
    }
    m.start_voting(&dn("cn=Tom")).unwrap();
    for i in 0..10 {
        m.vote(&dn("cn=Wolfgang"), i).unwrap();
    }
    m.close(&dn("cn=Tom")).unwrap().len()
}

/// Different times / different places: a BBS post read later.
fn bbs_post(seed: u64) -> SimDuration {
    let mut b = TopologyBuilder::new();
    let server = b.add_node("bbs");
    let mta = b.add_node("mta");
    let ws = b.add_node("ws");
    b.full_mesh(LinkSpec::wan());
    let mut sim = Sim::new(b.build(), seed);
    let addr: cscw_messaging::OrAddress = "C=UK;O=L;PN=BBS".parse().unwrap();
    let mut mta_node = cscw_messaging::MtaNode::new("mta");
    mta_node.register_mailbox(addr.clone());
    sim.register(mta, mta_node);
    sim.register(server, BbsServer::new(addr, mta));
    let client = BbsClient {
        who: dn("cn=Tom"),
        node: ws,
        server,
    };
    client.create_conference(&mut sim, "c");
    let posted = sim.now();
    client.post(&mut sim, "c", "subject", "text", None);
    // The reader arrives an hour later.
    sim.run_until(sim.now() + SimDuration::from_secs(3600));
    let entries = client.read(&sim, "c").unwrap();
    let accepted = entries.first().map(|e| e.at.into()).unwrap_or(posted);
    sim.now().saturating_since(accepted)
}

/// Different times / same place: a three-step procedure across a day.
fn procedure_run(seed: u64) -> SimDuration {
    let _ = seed;
    let mut org = mocca::org::OrganisationalModel::new();
    org.add_person(mocca::org::Person::new(dn("cn=A"), "A"));
    org.add_role(mocca::org::Role::new(dn("cn=r"), "r"));
    org.relate(&dn("cn=A"), mocca::org::RelationKind::Occupies, &dn("cn=r"))
        .unwrap();
    let mut p = Procedure::new(
        "claim",
        (0..3)
            .map(|i| ProcedureStep {
                name: format!("s{i}"),
                required_role: dn("cn=r"),
            })
            .collect(),
    );
    let start = SimTime::from_secs(9 * 3600);
    let mut t = start;
    let mut last = start;
    for i in 0..3 {
        p.perform(&org, i, &dn("cn=A"), t.into()).unwrap();
        last = t;
        t += SimDuration::from_secs(4 * 3600);
    }
    last.saturating_since(start)
}

/// Asynchronous mail end-to-end, for the matrix's async latency row.
fn mail_end_to_end(seed: u64) -> SimDuration {
    let (mut sim, mut a, b) = mail_world(seed).expect("static fixtures");
    let ipm = Ipm::text(a.address().clone(), b.address().clone(), "s", "t");
    a.submit_and_run(&mut sim, ipm, SubmitOptions::default());
    let inbox = b.inbox(&sim).unwrap();
    inbox[0].delivered_at.saturating_since(SimTime::ZERO)
}

fn print_shape() {
    println!("── F1: time–space matrix, simulated interaction latency ──");
    let sync = conference_round(1);
    let mail = mail_end_to_end(1);
    let bbs = bbs_post(1);
    let proc_span = procedure_run(1);
    println!("  same time / different places (Shared-X draw):   {sync}");
    println!("  same time / same place       (COLAB meeting):   local, no network");
    println!("  diff times / diff places     (X.400 delivery):  {mail}");
    println!("  diff times / diff places     (COM read lag):    {bbs}");
    println!("  diff times / same place      (DOMINO span):     {proc_span}");
    let env = population_env().expect("static population");
    println!(
        "  quadrants covered by one environment: {}/4",
        env.apps().covered_quadrants().len()
    );
    assert!(sync < mail, "shape: synchronous ≪ store-and-forward");
    assert!(mail < bbs, "shape: store-and-forward ≪ sit-down-later");
}

fn bench(c: &mut Criterion) {
    print_shape();
    let mut group = c.benchmark_group("fig1");
    group.sample_size(20);
    group.bench_function("same_time_diff_place_conference_round", |bencher| {
        let mut seed = 0;
        bencher.iter(|| {
            seed += 1;
            conference_round(seed)
        });
    });
    group.bench_function("same_time_same_place_meeting", |bencher| {
        let mut seed = 0;
        bencher.iter(|| {
            seed += 1;
            meeting(seed)
        });
    });
    group.bench_function("diff_time_diff_place_mail", |bencher| {
        let mut seed = 0;
        bencher.iter(|| {
            seed += 1;
            mail_end_to_end(seed)
        });
    });
    group.bench_function("diff_time_same_place_procedure", |bencher| {
        let mut seed = 0;
        bencher.iter(|| {
            seed += 1;
            procedure_run(seed)
        });
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
