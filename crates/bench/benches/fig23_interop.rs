//! Experiment F2/F3 — Figure 2 (isolated applications, pairwise
//! adapters) vs Figure 3 (environment hub).
//!
//! For populations of N synthetic applications: integration effort
//! (adapters vs mappings), exchange success under partial wiring, and
//! per-exchange conversion cost. Expected shape: closed-world effort
//! grows O(N²) and partial wiring fails exchanges; the hub grows O(N)
//! and never fails, at a fixed 2-conversions-per-exchange price.

use std::collections::BTreeMap;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mocca::env::{AppId, ClosedWorld, FormatMapping, InteropHub, NativeArtifact};

/// A synthetic app population of size `n`, each with its own vocabulary
/// for title/body/author.
fn synthetic_mapping(i: usize) -> FormatMapping {
    FormatMapping::new([
        (format!("t{i}"), "title".to_owned()),
        (format!("b{i}"), "body".to_owned()),
        (format!("a{i}"), "author".to_owned()),
    ])
}

fn synthetic_artifact(i: usize) -> NativeArtifact {
    let mut fields = BTreeMap::new();
    fields.insert(format!("t{i}"), "Title".to_owned());
    fields.insert(format!("b{i}"), "Body text".to_owned());
    fields.insert(format!("a{i}"), "cn=Someone".to_owned());
    NativeArtifact {
        app: AppId::new(format!("app{i}")),
        format: format!("app{i}-native"),
        fields,
    }
}

fn hub_for(n: usize) -> InteropHub {
    let mut hub = InteropHub::new();
    for i in 0..n {
        hub.register_mapping(AppId::new(format!("app{i}")), synthetic_mapping(i));
    }
    hub
}

fn direct_adapter(i: usize, j: usize) -> FormatMapping {
    let from = synthetic_mapping(i);
    let to = synthetic_mapping(j);
    let pairs: Vec<(String, String)> = from
        .pairs
        .iter()
        .filter_map(|(fi, c)| {
            to.pairs
                .iter()
                .find(|(_, tc)| tc == c)
                .map(|(tj, _)| (fi.clone(), tj.clone()))
        })
        .collect();
    FormatMapping { pairs }
}

/// A closed world with the first `wired` of the N(N-1) adapters written.
fn closed_for(n: usize, wired: usize) -> ClosedWorld {
    let mut world = ClosedWorld::new();
    let mut count = 0;
    'outer: for i in 0..n {
        for j in 0..n {
            if i != j {
                if count >= wired {
                    break 'outer;
                }
                world.install_adapter(
                    AppId::new(format!("app{i}")),
                    AppId::new(format!("app{j}")),
                    direct_adapter(i, j),
                );
                count += 1;
            }
        }
    }
    world
}

fn all_pairs_exchange_hub(hub: &mut InteropHub, n: usize) -> usize {
    let mut ok = 0;
    for i in 0..n {
        let artifact = synthetic_artifact(i);
        for j in 0..n {
            if i != j
                && hub
                    .exchange(&artifact, &AppId::new(format!("app{j}")))
                    .is_ok()
            {
                ok += 1;
            }
        }
    }
    ok
}

fn all_pairs_exchange_closed(world: &mut ClosedWorld, n: usize) -> (usize, usize) {
    let (mut ok, mut fail) = (0, 0);
    for i in 0..n {
        let artifact = synthetic_artifact(i);
        for j in 0..n {
            if i != j {
                match world.exchange(&artifact, &AppId::new(format!("app{j}"))) {
                    Ok(_) => ok += 1,
                    Err(_) => fail += 1,
                }
            }
        }
    }
    (ok, fail)
}

fn print_shape() {
    println!("── F2/F3: integration effort and exchange success ──");
    println!(
        "  N    closed adapters needed   hub mappings   half-wired closed success   hub success"
    );
    for n in [2usize, 4, 8, 16, 32] {
        let full = n * (n - 1);
        let mut partial = closed_for(n, full / 2);
        let (ok, fail) = all_pairs_exchange_closed(&mut partial, n);
        let mut hub = hub_for(n);
        let hub_ok = all_pairs_exchange_hub(&mut hub, n);
        println!(
            "  {n:<4} {full:<25} {n:<14} {ok:>4}/{:<4} ({:>3.0}%)          {hub_ok:>4}/{full:<4} (100%)",
            ok + fail,
            100.0 * ok as f64 / (ok + fail).max(1) as f64,
        );
    }
    println!("  per-exchange conversions: hub = 2, direct adapter = 1");
    println!("  (the hub wins on effort and coverage; the adapter wins per message — the paper's openness trade)");
}

fn bench(c: &mut Criterion) {
    print_shape();
    let mut group = c.benchmark_group("fig23");
    group.sample_size(10);
    for n in [4usize, 8, 16] {
        group.bench_with_input(
            BenchmarkId::new("hub_setup_plus_all_pairs", n),
            &n,
            |b, &n| {
                b.iter(|| {
                    let mut hub = hub_for(n);
                    all_pairs_exchange_hub(&mut hub, n)
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("closed_setup_plus_all_pairs", n),
            &n,
            |b, &n| {
                b.iter(|| {
                    let mut world = closed_for(n, n * (n - 1));
                    all_pairs_exchange_closed(&mut world, n)
                });
            },
        );
        group.bench_with_input(BenchmarkId::new("hub_single_exchange", n), &n, |b, &n| {
            let mut hub = hub_for(n);
            let artifact = synthetic_artifact(0);
            b.iter(|| hub.exchange(&artifact, &AppId::new("app1")).unwrap());
        });
        group.bench_with_input(
            BenchmarkId::new("closed_single_exchange", n),
            &n,
            |b, &n| {
                let mut world = closed_for(n, n * (n - 1));
                let artifact = synthetic_artifact(0);
                b.iter(|| world.exchange(&artifact, &AppId::new("app1")).unwrap());
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
