//! Experiment F3-fed — Figure 3 across environment boundaries.
//!
//! Two questions about the federation layer's price:
//!
//! 1. **Exchange latency** — the same `exchange` performed locally
//!    (both applications in one environment) versus remotely (the
//!    destination lives in a federated peer: trader interworking
//!    resolution + fabric routing + delivery pump). Expected shape:
//!    the remote path costs a bounded constant over the local path —
//!    openness across sites is a toll, not a cliff.
//! 2. **Gossip convergence** — anti-entropy rounds until N freshly
//!    seeded environments (ring topology) hold bit-for-bit identical
//!    knowledge replicas, for N = 2/4/8. Expected shape: rounds grow
//!    with the ring diameter (≈N/2), per-round cost with N — polynomial
//!    housekeeping, no broadcast storm.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use cscw_directory::Dn;
use cscw_kernel::Timestamp;
use groupware::{descriptor_for, mapping_for, sample_artifact};
use mocca::env::AppId;
use mocca::federation::FederatedEnvironments;
use mocca::info::{InfoContent, InfoObject, InfoObjectId};
use mocca::CscwEnvironment;

fn dn(s: &str) -> Dn {
    s.parse().unwrap()
}

/// One environment hosting the given population apps.
fn site(apps: &[&str]) -> CscwEnvironment {
    let mut env = CscwEnvironment::new();
    for app in apps {
        env.register_app(descriptor_for(app).unwrap(), mapping_for(app).unwrap());
    }
    env
}

/// An N-site federation in a bidirectional ring, each site seeded with
/// one distinct knowledge object.
fn ring_federation(n: usize) -> FederatedEnvironments {
    let mut fed = FederatedEnvironments::new();
    for i in 0..n {
        // Reuse the five population vocabularies round-robin.
        let apps = ["sharedx", "colab", "com", "domino", "lens"];
        fed.federate(format!("env-{i}"), site(&[apps[i % apps.len()]]));
    }
    for i in 0..n {
        fed.link_bidi(&format!("env-{i}"), &format!("env-{}", (i + 1) % n));
    }
    for i in 0..n {
        fed.env_mut(&format!("env-{i}"))
            .unwrap()
            .store_object(
                InfoObject::new(
                    InfoObjectId::new(format!("doc-{i}")),
                    "note",
                    dn("cn=Tom"),
                    InfoContent::Text(format!("seeded at site {i}")),
                ),
                None,
                Timestamp::ZERO,
            )
            .unwrap();
    }
    fed
}

fn bench_exchange_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_federation/exchange");
    let tom = dn("cn=Tom");
    let artifact = sample_artifact("sharedx").unwrap();

    // Local: both applications in one environment.
    let mut local = site(&["sharedx", "com"]);
    group.bench_function("local", |b| {
        b.iter(|| {
            local
                .exchange(
                    &tom,
                    black_box(&artifact),
                    &AppId::new("com"),
                    Timestamp::ZERO,
                )
                .unwrap()
        })
    });

    // Remote: the destination lives in a federated peer; the measured
    // unit includes resolution, routing and the delivery pump.
    let mut fed = FederatedEnvironments::new();
    fed.federate("env-a", site(&["sharedx"]));
    fed.federate("env-b", site(&["com"]));
    fed.link_bidi("env-a", "env-b");
    group.bench_function("remote", |b| {
        b.iter(|| {
            fed.env_mut("env-a")
                .unwrap()
                .exchange(
                    &tom,
                    black_box(&artifact),
                    &AppId::new("com"),
                    Timestamp::ZERO,
                )
                .unwrap();
            fed.pump().unwrap()
        })
    });
    group.finish();
}

fn bench_gossip_convergence(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_federation/gossip_convergence");
    group.sample_size(10);
    for n in [2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::new("ring", n), &n, |b, &n| {
            b.iter(|| {
                // Build + converge: criterion's stub has no batched
                // setup, so the measured unit is the whole experiment;
                // the printed rounds figure isolates the gossip part.
                let mut fed = ring_federation(n);
                let rounds = fed.gossip_until_quiet(32).unwrap();
                assert!(fed.converged());
                rounds
            })
        });
        // Paper-facing shape: rounds to convergence for this N.
        let mut fed = ring_federation(n);
        let rounds = fed.gossip_until_quiet(32).unwrap();
        println!("fig3_federation: {n} sites converge in {rounds} gossip rounds");
    }
    group.finish();
}

criterion_group!(benches, bench_exchange_latency, bench_gossip_convergence);
criterion_main!(benches);
