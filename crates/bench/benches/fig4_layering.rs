//! Experiment F4 — Figure 4, the ODP/CSCW layering.
//!
//! The same cooperative operation ("share a document with a colleague's
//! application") performed at three altitudes:
//!
//! 1. **raw simnet** — hand-rolled message to the peer (no openness);
//! 2. **ODP** — a typed invocation through stub/binder/channel;
//! 3. **CSCW environment over ODP** — hub conversion + shared
//!    repository record + scoped event, per Figure 4's layering.
//!
//! Expected shape: each layer adds bounded per-operation overhead while
//! removing per-application work; the CSCW layer is a strict superset
//! (its operation *includes* the lower layers' bookkeeping).

use criterion::{criterion_group, criterion_main, Criterion};
use cscw_bench::population_env;
use cscw_directory::Dn;
use cscw_kernel::Timestamp;
use groupware::sample_artifact;
use mocca::env::AppId;
use odp::{
    Binder, ComputationalObject, InterfaceRef, InterfaceType, InvokerNode, ObjectHost, OdpError,
    OperationSig, Value, ValueKind,
};
use simnet::{LinkSpec, Message, Node, NodeCtx, Payload, Sim, TopologyBuilder};

fn dn(s: &str) -> Dn {
    s.parse().unwrap()
}

// ---- layer 1: raw simulated network ------------------------------------

#[derive(Debug, Default)]
struct RawSink {
    received: u64,
}
impl Node for RawSink {
    fn on_message(&mut self, _ctx: &mut NodeCtx<'_>, msg: Message) {
        if msg.payload.downcast_ref::<String>().is_some() {
            self.received += 1;
        }
    }
}

fn raw_world(seed: u64) -> (Sim, simnet::NodeId, simnet::NodeId) {
    let mut b = TopologyBuilder::new();
    let client = b.add_node("client");
    let server = b.add_node("server");
    b.link_both(client, server, LinkSpec::lan());
    let mut sim = Sim::new(b.build(), seed);
    sim.register(server, RawSink::default());
    (sim, client, server)
}

fn raw_share(sim: &mut Sim, client: simnet::NodeId, server: simnet::NodeId) {
    sim.send_from(
        client,
        server,
        Payload::new("document body".to_owned()),
        128,
    );
    sim.run_until_idle();
}

// ---- layer 2: ODP channel ------------------------------------------------

struct DocHolder {
    iface: InterfaceType,
    count: i64,
}
impl DocHolder {
    fn new() -> Self {
        DocHolder {
            iface: InterfaceType::new("doc-holder").with_operation(OperationSig::new(
                "share",
                [ValueKind::Text],
                ValueKind::Int,
            )),
            count: 0,
        }
    }
}
impl ComputationalObject for DocHolder {
    fn interface(&self) -> &InterfaceType {
        &self.iface
    }
    fn invoke(&mut self, _op: &str, _args: &[Value]) -> Result<Value, OdpError> {
        self.count += 1;
        Ok(Value::Int(self.count))
    }
}

fn odp_world(seed: u64) -> (Sim, odp::Channel) {
    let mut b = TopologyBuilder::new();
    let client = b.add_node("client");
    let server = b.add_node("server");
    b.link_both(client, server, LinkSpec::lan());
    let mut sim = Sim::new(b.build(), seed);
    let holder = DocHolder::new();
    let offered = holder.interface().clone();
    let mut host = ObjectHost::new();
    host.install("doc1".into(), holder);
    sim.register(server, host);
    sim.register(client, InvokerNode::default());
    let iref = InterfaceRef {
        object: "doc1".into(),
        node: server,
        interface: "doc-holder".into(),
    };
    let required = InterfaceType::new("doc-holder").with_operation(OperationSig::new(
        "share",
        [ValueKind::Text],
        ValueKind::Int,
    ));
    let channel = Binder::new(client).bind(iref, &offered, &required).unwrap();
    (sim, channel)
}

fn odp_share(sim: &mut Sim, channel: &mut odp::Channel) {
    channel
        .invoke(sim, "share", vec![Value::from("document body")])
        .unwrap();
}

// ---- layer 3: the CSCW environment ----------------------------------------

fn env_share(env: &mut mocca::CscwEnvironment, n: u64) {
    let artifact = sample_artifact("sharedx").expect("fixed population");
    // Each exchange: hub to-common + from-common, repository record,
    // event publication — the full environment service.
    env.exchange(
        &dn("cn=Tom"),
        &artifact,
        &AppId::new("com"),
        Timestamp::from_micros(n),
    )
    .unwrap();
}

fn print_shape() {
    println!("── F4: per-operation work at each layer ──");
    // Count simulated messages per operation at each layer.
    let (mut sim, client, server) = raw_world(1);
    raw_share(&mut sim, client, server);
    let raw_msgs = sim.metrics().counter("messages_sent");

    let (mut sim, mut channel) = odp_world(1);
    odp_share(&mut sim, &mut channel);
    let odp_msgs = sim.metrics().counter("messages_sent");
    let stats = channel.stats();

    let mut env = population_env().expect("static population");
    env_share(&mut env, 1);
    let ops = env.operations();
    let conversions = env.hub().conversions_performed();

    println!("  raw simnet:      {raw_msgs} message(s), no typing, no openness");
    println!(
        "  ODP channel:     {odp_msgs} message(s), {} stub check(s), {} marshalled byte(s)",
        stats.binder_checks, stats.marshalled_bytes
    );
    println!(
        "  CSCW environment: {conversions} conversions + repository record + event, {ops} env op(s)"
    );
    println!("  shape: each layer adds bounded work; CSCW ⊂ ODP ⊂ raw (every higher op contains the lower)");
}

fn bench(c: &mut Criterion) {
    print_shape();
    let mut group = c.benchmark_group("fig4");
    group.sample_size(20);
    group.bench_function("layer1_raw_simnet_share", |b| {
        let (mut sim, client, server) = raw_world(2);
        b.iter(|| raw_share(&mut sim, client, server));
    });
    group.bench_function("layer2_odp_channel_share", |b| {
        let (mut sim, mut channel) = odp_world(2);
        b.iter(|| odp_share(&mut sim, &mut channel));
    });
    group.bench_function("layer3_cscw_environment_share", |b| {
        let mut env = population_env().expect("static population");
        let mut n = 0;
        b.iter(|| {
            n += 1;
            env_share(&mut env, n)
        });
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
