//! Experiment NC — bounded-queue congestion under adversarial load.
//!
//! Sweeps the three `net_congestion` scenarios (flash crowd, gossip
//! storm vs interactive, WAN bridge) over seeds 1–3, running every
//! cell **twice** and insisting the fingerprints match — congestion,
//! sheds and quantiles must replay bit-for-bit per seed. Also enforces
//! the headline claims: the flash crowd's p99 dwarfs its p50 and opens
//! a circuit breaker with zero injected faults; the priority
//! discipline shields interactive traffic from the storm; the WAN
//! bridge sheds cross-island overload while intra-island latency stays
//! flat.
//!
//! Writes the machine-readable sweep to `BENCH_net_congestion.json` at
//! the workspace root and prints the paper-facing table to stdout.
//! `--smoke` restricts the sweep to seed 1 (the CI `net-congestion`
//! job).

use cscw_bench::net_congestion::{self, SEEDS};

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let seeds: &[u64] = if smoke { &[1] } else { &SEEDS };

    let mut flash_cells = Vec::new();
    println!("net_congestion: flash_crowd  seed offered delivered shed  p50-ms p99-ms breaker");
    for &seed in seeds {
        let r = net_congestion::flash_crowd(seed);
        let again = net_congestion::flash_crowd(seed);
        assert_eq!(r, again, "flash_crowd seed {seed} must replay bit-for-bit");
        assert!(
            r.overall.p99 >= 10 * r.overall.p50.max(1),
            "flash_crowd seed {seed}: p99 {} must dwarf p50 {}",
            r.overall.p99,
            r.overall.p50
        );
        assert!(r.shed > 0, "flash_crowd seed {seed} must shed: {r:?}");
        assert!(
            r.breaker.opened && r.breaker.injected_faults == 0,
            "flash_crowd seed {seed}: congestion alone must open the breaker: {:?}",
            r.breaker
        );
        println!(
            "net_congestion: flash_crowd  {:4} {:7} {:9} {:4} {:7} {:6} {}",
            r.seed,
            r.offered,
            r.delivered,
            r.shed,
            r.overall.p50 / 1_000,
            r.overall.p99 / 1_000,
            r.breaker.opened
        );
        flash_cells.push(r.to_json());
    }

    let mut storm_cells = Vec::new();
    println!("net_congestion: gossip_storm seed  drop-tail-ping-p99-ms priority-ping-p99-ms");
    for &seed in seeds {
        let r = net_congestion::gossip_storm(seed);
        let again = net_congestion::gossip_storm(seed);
        assert_eq!(r, again, "gossip_storm seed {seed} must replay bit-for-bit");
        assert!(
            r.priority.interactive.p99 * 4 <= r.drop_tail.interactive.p99.max(1),
            "gossip_storm seed {seed}: priority p99 {} vs drop-tail p99 {}",
            r.priority.interactive.p99,
            r.drop_tail.interactive.p99
        );
        println!(
            "net_congestion: gossip_storm {:4} {:21} {:20}",
            r.seed,
            r.drop_tail.interactive.p99 / 1_000,
            r.priority.interactive.p99 / 1_000
        );
        storm_cells.push(r.to_json());
    }

    let mut bridge_cells = Vec::new();
    println!("net_congestion: wan_bridge   seed offered delivered shed  intra-p50-ms cross-p50-ms");
    for &seed in seeds {
        let r = net_congestion::wan_bridge(seed);
        let again = net_congestion::wan_bridge(seed);
        assert_eq!(r, again, "wan_bridge seed {seed} must replay bit-for-bit");
        assert!(r.cross_shed > 0, "wan_bridge seed {seed} must shed: {r:?}");
        assert!(
            r.cross.p50 > 5 * r.intra.p50.max(1),
            "wan_bridge seed {seed}: cross p50 {} vs intra p50 {}",
            r.cross.p50,
            r.intra.p50
        );
        println!(
            "net_congestion: wan_bridge   {:4} {:7} {:9} {:4} {:12} {:12}",
            r.seed,
            r.cross_offered,
            r.cross_delivered,
            r.cross_shed,
            r.intra.p50 / 1_000,
            r.cross.p50 / 1_000
        );
        bridge_cells.push(r.to_json());
    }

    let seeds_json = seeds
        .iter()
        .map(|s| s.to_string())
        .collect::<Vec<_>>()
        .join(", ");
    let json = format!(
        concat!(
            "{{\n",
            "  \"experiment\": \"net_congestion\",\n",
            "  \"generated_by\": \"cargo bench -p cscw-bench --bench net_congestion\",\n",
            "  \"smoke\": {},\n",
            "  \"seeds\": [{}],\n",
            "  \"flash_crowd\": [\n    {}\n  ],\n",
            "  \"gossip_storm\": [\n    {}\n  ],\n",
            "  \"wan_bridge\": [\n    {}\n  ]\n",
            "}}\n"
        ),
        smoke,
        seeds_json,
        flash_cells.join(",\n    "),
        storm_cells.join(",\n    "),
        bridge_cells.join(",\n    ")
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_net_congestion.json"
    );
    match std::fs::write(path, &json) {
        Ok(()) => println!("net_congestion: wrote {path}"),
        Err(e) => {
            eprintln!("net_congestion: cannot write {path}: {e}");
            std::process::exit(1);
        }
    }
}
