//! Experiment QS — standing-query cost vs population.
//!
//! Sweeps the `query_scale` cells (populations 200 / 2 000 / 20 000,
//! seeds 1–3), running every cell **twice** and insisting the
//! deterministic fields match bit-for-bit (wall-clock quantiles are
//! scrubbed first). Enforces the headline claims per seed: the
//! per-delta incremental evaluation count stays flat (within 2×)
//! across the 100× population sweep, while the re-scan alternative
//! grows linearly (≥ 50× end to end).
//!
//! Writes the machine-readable sweep to `BENCH_query_scale.json` at
//! the workspace root and prints the paper-facing table to stdout.
//! `--smoke` restricts the sweep to seed 1 (the CI `query-scale` job).

use cscw_bench::query_scale::{self, QueryScaleResult, POPULATIONS, SEEDS};

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let seeds: &[u64] = if smoke { &[1] } else { &SEEDS };

    let mut cells: Vec<QueryScaleResult> = Vec::new();
    println!(
        "query_scale: population seed deltas evals/delta rescan-entries/delta inc-p50-us rescan-p50-us"
    );
    for &seed in seeds {
        for &population in &POPULATIONS {
            let r = query_scale::run(population, seed).expect("cell");
            let again = query_scale::run(population, seed).expect("cell");
            assert_eq!(
                query_scale::scrub(r.clone()),
                query_scale::scrub(again),
                "population {population} seed {seed} must replay bit-for-bit"
            );
            println!(
                "query_scale: {:10} {:4} {:6} {:11} {:20} {:10} {:13}",
                r.population,
                r.seed,
                r.deltas_emitted,
                r.incremental_evals_per_delta,
                r.rescan_entries_per_delta,
                r.incremental_micros.p50,
                r.rescan_micros.p50
            );
            cells.push(r);
        }
    }

    // Headline claims, per seed across the population sweep.
    for &seed in seeds {
        let sweep: Vec<&QueryScaleResult> = cells.iter().filter(|c| c.seed == seed).collect();
        let flat_min = sweep
            .iter()
            .map(|c| c.incremental_evals_per_delta)
            .min()
            .unwrap_or(0)
            .max(1);
        let flat_max = sweep
            .iter()
            .map(|c| c.incremental_evals_per_delta)
            .max()
            .unwrap_or(0);
        assert!(
            flat_max <= 2 * flat_min,
            "seed {seed}: per-delta incremental cost must stay within 2x \
             across a 100x population sweep ({flat_min}..{flat_max})"
        );
        let scan_min = sweep
            .iter()
            .map(|c| c.rescan_entries_per_delta)
            .min()
            .unwrap_or(0)
            .max(1);
        let scan_max = sweep
            .iter()
            .map(|c| c.rescan_entries_per_delta)
            .max()
            .unwrap_or(0);
        assert!(
            scan_max >= 50 * scan_min,
            "seed {seed}: re-scan cost must track the population \
             ({scan_min}..{scan_max})"
        );
    }

    let seeds_json = seeds
        .iter()
        .map(|s| s.to_string())
        .collect::<Vec<_>>()
        .join(", ");
    let populations_json = POPULATIONS
        .iter()
        .map(|p| p.to_string())
        .collect::<Vec<_>>()
        .join(", ");
    let cells_json = cells
        .iter()
        .map(QueryScaleResult::to_json)
        .collect::<Vec<_>>()
        .join(",\n    ");
    let json = format!(
        concat!(
            "{{\n",
            "  \"experiment\": \"query_scale\",\n",
            "  \"generated_by\": \"cargo bench -p cscw-bench --bench query_scale\",\n",
            "  \"smoke\": {},\n",
            "  \"seeds\": [{}],\n",
            "  \"populations\": [{}],\n",
            "  \"ops_per_cell\": {},\n",
            "  \"cells\": [\n    {}\n  ]\n",
            "}}\n"
        ),
        smoke,
        seeds_json,
        populations_json,
        query_scale::OPS,
        cells_json
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_query_scale.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("query_scale: wrote {path}"),
        Err(e) => {
            eprintln!("query_scale: cannot write {path}: {e}");
            std::process::exit(1);
        }
    }
}
