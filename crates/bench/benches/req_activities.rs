//! Experiment R3 — §4 "Support for Activities".
//!
//! Scheduling, dependency propagation and progress monitoring at
//! growing programme sizes. Expected shape: schedule order and
//! monitoring scale roughly linearly with activities+edges; downstream
//! propagation is bounded by the affected subgraph, not the programme.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cscw_kernel::Timestamp;
use mocca::activity::{
    Activity, ActivityId, ActivityState, DependencyKind, InterActivityModel, Monitor,
};

/// A programme of `n` activities arranged as `chains` parallel chains
/// with occasional cross-links, like a real engineering project.
fn programme(n: usize, chains: usize) -> InterActivityModel {
    let mut m = InterActivityModel::new();
    let ids: Vec<ActivityId> = (0..n)
        .map(|i| ActivityId::from(format!("a{i}").as_str()))
        .collect();
    for (i, id) in ids.iter().enumerate() {
        let mut a = Activity::new(id.clone(), format!("activity {i}"));
        a.deadline = Some(Timestamp::from_secs(((i + 1) * 86_400) as u64));
        m.register(a).unwrap();
    }
    // Parallel chains: a_k -> a_{k+chains}.
    for i in 0..n.saturating_sub(chains) {
        m.add_dependency(&ids[i], DependencyKind::Before, &ids[i + chains])
            .unwrap();
    }
    // Cross-links every 7th activity shares information with the next chain.
    for i in (0..n.saturating_sub(1)).step_by(7) {
        m.add_dependency(
            &ids[i],
            DependencyKind::SharesInformation(format!("doc{i}")),
            &ids[i + 1],
        )
        .unwrap();
    }
    m
}

fn print_shape() {
    println!("── R3: activity services at scale ──");
    println!("  activities   before-edges   schedule len   downstream(a0)   overdue@30d");
    for n in [10usize, 100, 1_000] {
        let mut m = programme(n, 4);
        // Start the first few and leave them behind schedule.
        for i in 0..4.min(n) {
            let id = ActivityId::from(format!("a{i}").as_str());
            let a = m.activity_mut(&id).unwrap();
            a.transition(ActivityState::Active).unwrap();
            a.report_progress(10).unwrap();
        }
        let edges = m
            .dependencies()
            .iter()
            .filter(|d| d.kind == DependencyKind::Before)
            .count();
        let order = m.schedule_order();
        let downstream = m.downstream_of(&ActivityId::from("a0")).len();
        let report = Monitor::report(&m, Timestamp::from_secs(30 * 86_400));
        println!(
            "  {n:<12} {edges:<14} {:<14} {downstream:<16} {}",
            order.len(),
            report.overdue().count()
        );
    }
    println!("  shape: schedule covers all; downstream(a0) ≈ n/chains; overdue grows with the lag window");
}

fn bench(c: &mut Criterion) {
    print_shape();
    let mut group = c.benchmark_group("req3_activities");
    group.sample_size(10);
    for n in [10usize, 100, 1_000] {
        let m = programme(n, 4);
        group.bench_with_input(BenchmarkId::new("schedule_order", n), &n, |b, _| {
            b.iter(|| m.schedule_order().len());
        });
        group.bench_with_input(BenchmarkId::new("downstream_propagation", n), &n, |b, _| {
            let root = ActivityId::from("a0");
            b.iter(|| m.downstream_of(&root).len());
        });
        group.bench_with_input(BenchmarkId::new("monitor_report", n), &n, |b, _| {
            b.iter(|| {
                Monitor::report(&m, Timestamp::from_secs(30 * 86_400))
                    .statuses
                    .len()
            });
        });
        group.bench_with_input(BenchmarkId::new("membership_churn", n), &n, |b, _| {
            let mut m = programme(n, 4);
            let id = ActivityId::from("a0");
            let person: cscw_directory::Dn = "cn=Churner".parse().unwrap();
            b.iter(|| {
                let a = m.activity_mut(&id).unwrap();
                a.join(person.clone(), mocca::activity::ActivityRole("r".into()));
                a.leave(&person)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
