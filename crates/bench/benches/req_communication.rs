//! Experiment R2 — §4 "Support for Communication".
//!
//! Synchronous (session hub) vs asynchronous (X.400) delivery latency
//! in simulated time, priority classes, and cross-media conversion
//! cost by size. Expected shape: sync latency = link round trip;
//! async = per-hop processing × priority factor; conversion cost grows
//! linearly with content size and fax ≫ paper ≫ text on the wire.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cscw_bench::mail_world;
use cscw_directory::Dn;
use cscw_messaging::{BodyPart, Ipm, Priority, SubmitOptions};
use mocca::comm::channel::{SessionHandle, SessionHub, SessionMember};
use simnet::{LinkSpec, Sim, SimDuration, TopologyBuilder};

fn dn(s: &str) -> Dn {
    s.parse().unwrap()
}

fn sync_latency(seed: u64) -> SimDuration {
    let mut b = TopologyBuilder::new();
    let hub = b.add_node("hub");
    let a = b.add_node("a");
    let c = b.add_node("c");
    b.full_mesh(LinkSpec::wan());
    let mut sim = Sim::new(b.build(), seed);
    sim.register(hub, SessionHub::new());
    sim.register(a, SessionMember::new());
    sim.register(c, SessionMember::new());
    let ha = SessionHandle {
        hub,
        member_node: a,
        who: dn("cn=A"),
    };
    let hc = SessionHandle {
        hub,
        member_node: c,
        who: dn("cn=C"),
    };
    ha.join(&mut sim);
    hc.join(&mut sim);
    let before = sim.now();
    ha.utter(&mut sim, "ping");
    sim.run_until_idle();
    let received = sim.node::<SessionMember>(c).unwrap().received();
    received
        .last()
        .map(|u| u.at.saturating_since(before))
        .unwrap_or(SimDuration::MAX)
}

fn async_latency(seed: u64, priority: Priority) -> SimDuration {
    let (mut sim, mut a, b) = mail_world(seed).expect("static fixtures");
    let submit = sim.now();
    let ipm = Ipm::text(a.address().clone(), b.address().clone(), "s", "t");
    a.submit_and_run(
        &mut sim,
        ipm,
        SubmitOptions {
            priority,
            ..Default::default()
        },
    );
    let inbox = b.inbox(&sim).unwrap();
    inbox[0].delivered_at.saturating_since(submit)
}

fn print_shape() {
    println!("── R2: delivery latency by mode (simulated) ──");
    let sync = sync_latency(1);
    let urgent = async_latency(1, Priority::Urgent);
    let normal = async_latency(2, Priority::Normal);
    let bulk = async_latency(3, Priority::NonUrgent);
    println!("  synchronous session relay:     {sync}");
    println!("  X.400 urgent:                  {urgent}");
    println!("  X.400 normal:                  {normal}");
    println!("  X.400 non-urgent:              {bulk}");
    assert!(sync < urgent && urgent < normal && normal < bulk);

    println!("── R2: media conversion cost (work units) and wire weight (bytes) ──");
    println!("  chars   text→fax cost   fax bytes   text→paper cost   paper bytes");
    for chars in [80usize, 800, 8_000] {
        let text = BodyPart::Text("x".repeat(chars));
        let (fax, fax_cost) = text.convert_to("fax").unwrap();
        let (paper, paper_cost) = text.convert_to("paper").unwrap();
        println!(
            "  {chars:<7} {:<15} {:<11} {:<17} {}",
            fax_cost.0,
            fax.wire_size(),
            paper_cost.0,
            paper.wire_size()
        );
    }
    println!("  shape: costs linear in size; fax raster ≫ text on the wire");
}

fn bench(c: &mut Criterion) {
    print_shape();
    let mut group = c.benchmark_group("req2_communication");
    group.sample_size(10);
    group.bench_function("sync_session_relay", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            sync_latency(seed)
        });
    });
    for (label, priority) in [
        ("urgent", Priority::Urgent),
        ("normal", Priority::Normal),
        ("bulk", Priority::NonUrgent),
    ] {
        group.bench_with_input(
            BenchmarkId::new("async_delivery", label),
            &priority,
            |b, &p| {
                let mut seed = 0;
                b.iter(|| {
                    seed += 1;
                    async_latency(seed, p)
                });
            },
        );
    }
    for chars in [80usize, 800, 8_000] {
        group.bench_with_input(BenchmarkId::new("text_to_fax", chars), &chars, |b, &n| {
            let text = BodyPart::Text("x".repeat(n));
            b.iter(|| text.convert_to("fax").unwrap());
        });
        group.bench_with_input(BenchmarkId::new("text_to_paper", chars), &chars, |b, &n| {
            let text = BodyPart::Text("x".repeat(n));
            b.iter(|| text.convert_to("paper").unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
