//! Experiment R1 — §4 "Support for Information Sharing".
//!
//! Directory-backed knowledge base: search scaling with entry count,
//! scope and filter selectivity; shared-repository access checks.
//! Expected shape: base/one-level searches stay flat as the DIT grows;
//! subtree searches grow linearly with the subtree, not the whole DIT.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cscw_bench::populated_dit;
use cscw_directory::{Dn, Filter, SearchRequest, SearchScope};

fn dn(s: &str) -> Dn {
    s.parse().unwrap()
}

fn print_shape() {
    println!("── R1: directory search scaling (simulated entries visited) ──");
    println!("  entries   subtree-all   subtree-filtered   one-level(org0)   base");
    for n in [100usize, 1_000, 5_000] {
        let dit = populated_dit(n, 10).expect("generated fixtures");
        let all = dit
            .search(&SearchRequest::new(
                dn("c=UK"),
                SearchScope::Subtree,
                Filter::True,
            ))
            .unwrap()
            .entries
            .len();
        let filtered = dit
            .search(&SearchRequest::new(
                dn("c=UK"),
                SearchScope::Subtree,
                "(&(objectClass=person)(capabilityLevel>=4))"
                    .parse()
                    .unwrap(),
            ))
            .unwrap()
            .entries
            .len();
        let one = dit
            .search(&SearchRequest::new(
                dn("c=UK,o=org0"),
                SearchScope::OneLevel,
                Filter::True,
            ))
            .unwrap()
            .entries
            .len();
        let base = dit
            .search(&SearchRequest::new(
                dn("c=UK,o=org0"),
                SearchScope::Base,
                Filter::True,
            ))
            .unwrap()
            .entries
            .len();
        println!("  {n:<9} {all:<13} {filtered:<18} {one:<17} {base}");
    }
    println!("  shape: filters select ~40% (levels 4..5 of 1..5); one-level sees only its org");
}

fn bench(c: &mut Criterion) {
    print_shape();
    let mut group = c.benchmark_group("req1_sharing");
    group.sample_size(10);
    for n in [100usize, 1_000, 5_000] {
        let dit = populated_dit(n, 10).expect("generated fixtures");
        group.bench_with_input(BenchmarkId::new("subtree_search_all", n), &n, |b, _| {
            b.iter(|| {
                dit.search(&SearchRequest::new(
                    dn("c=UK"),
                    SearchScope::Subtree,
                    Filter::True,
                ))
                .unwrap()
                .entries
                .len()
            });
        });
        group.bench_with_input(
            BenchmarkId::new("subtree_search_filtered", n),
            &n,
            |b, _| {
                let filter: Filter = "(&(objectClass=person)(occupiesrole=cn=coordinator))"
                    .parse()
                    .unwrap();
                b.iter(|| {
                    dit.search(&SearchRequest::new(
                        dn("c=UK"),
                        SearchScope::Subtree,
                        filter.clone(),
                    ))
                    .unwrap()
                    .entries
                    .len()
                });
            },
        );
        group.bench_with_input(BenchmarkId::new("one_level_search", n), &n, |b, _| {
            b.iter(|| {
                dit.search(&SearchRequest::new(
                    dn("c=UK,o=org0"),
                    SearchScope::OneLevel,
                    Filter::True,
                ))
                .unwrap()
                .entries
                .len()
            });
        });
        group.bench_with_input(BenchmarkId::new("base_read", n), &n, |b, _| {
            let target = dn("c=UK,o=org0,cn=person0");
            b.iter(|| dit.read(&target).unwrap().attr_count());
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
