//! Experiment R4 — §4 "Support for Tailorability".
//!
//! Cost of user-level tailoring: rule evaluation vs hard-coded
//! behaviour, rule-count scaling, parameter resolution across scopes,
//! and re-tailor latency. Expected shape: rules cost linearly in the
//! rule count but remain cheap in absolute terms — tailorability is
//! affordable; resolution is effectively constant per lookup.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mocca::info::InfoContent;
use mocca::tailor::{
    Constraint, EventPattern, RuleAction, RuleEngine, Scope, TailorContext, TailorRule, TailorStore,
};
use odp::Value;

fn engine_with(n: usize) -> RuleEngine {
    let mut e = RuleEngine::new();
    for i in 0..n {
        e.add_rule(TailorRule {
            name: format!("rule{i}"),
            pattern: EventPattern::of_kind("message").with_field("topic", &format!("topic{i}")),
            action: RuleAction::MoveToFolder(format!("folder{i}")),
        });
    }
    e
}

fn message(topic: &str) -> InfoContent {
    InfoContent::fields([("topic", topic), ("subject", "hello")])
}

/// The hard-coded equivalent of one filing decision.
fn hard_coded_filing(content: &InfoContent) -> &'static str {
    match content.field("topic") {
        Some("topic0") => "folder0",
        Some(_) => "other",
        None => "inbox",
    }
}

fn store_with_overrides(n: usize) -> TailorStore {
    let mut s = TailorStore::new();
    s.declare(
        "medium",
        Constraint::OneOf(vec!["text".into(), "fax".into()]),
        Value::from("text"),
    )
    .unwrap();
    for i in 0..n {
        s.set("medium", Scope::Group(format!("g{i}")), Value::from("fax"))
            .unwrap();
    }
    s
}

fn print_shape() {
    println!("── R4: tailoring cost shape ──");
    println!("  rules   actions fired on match   actions fired on miss");
    for n in [1usize, 10, 100] {
        let e = engine_with(n);
        let mut hit = message("topic0");
        let fired_hit = e.apply("message", &mut hit).len();
        let mut miss = message("no-such-topic");
        let fired_miss = e.apply("message", &mut miss).len();
        println!("  {n:<7} {fired_hit:<25} {fired_miss}");
    }
    println!("  (evaluation walks all rules; firing stays selective — the affordability claim)");
}

fn bench(c: &mut Criterion) {
    print_shape();
    let mut group = c.benchmark_group("req4_tailorability");
    group.sample_size(20);
    group.bench_function("hard_coded_baseline", |b| {
        let content = message("topic0");
        b.iter(|| hard_coded_filing(&content));
    });
    for n in [1usize, 10, 100] {
        group.bench_with_input(BenchmarkId::new("rule_engine_match", n), &n, |b, &n| {
            let e = engine_with(n);
            b.iter(|| {
                let mut content = message("topic0");
                e.apply("message", &mut content).len()
            });
        });
        group.bench_with_input(BenchmarkId::new("rule_engine_miss", n), &n, |b, &n| {
            let e = engine_with(n);
            b.iter(|| {
                let mut content = message("none");
                e.apply("message", &mut content).len()
            });
        });
        group.bench_with_input(BenchmarkId::new("param_resolution", n), &n, |b, &n| {
            let s = store_with_overrides(n);
            let ctx = TailorContext {
                user: "tom".into(),
                groups: vec![format!("g{}", n / 2)],
                organisation: Some("lancaster".into()),
            };
            b.iter(|| s.effective("medium", &ctx).unwrap());
        });
    }
    group.bench_function("retailor_add_remove_rule", |b| {
        let mut e = engine_with(50);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            e.add_rule(TailorRule {
                name: format!("live{i}"),
                pattern: EventPattern::of_kind("message"),
                action: RuleAction::Notify("x".into()),
            });
            e.remove_rule(&format!("live{i}"))
        });
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
