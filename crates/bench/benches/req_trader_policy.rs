//! Experiment R6 — §6.1: "the organisational knowledge base … will be
//! associated to the trader, containing or dictating among other the
//! trading policy."
//!
//! Trader imports with and without the organisational policy attached,
//! across offer-pool sizes. Expected shape: the policy filters offers
//! (smaller result sets for restricted importers) at a per-offer cost
//! linear in the pool — governance costs a constant factor, not a new
//! complexity class.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cscw_directory::Dn;
use mocca::org::{
    OrgRule, OrgTradingPolicy, OrganisationalModel, Person, RelationKind, Role, RuleKind,
};
use odp::{ImportRequest, InterfaceRef, InterfaceType, OperationSig, Trader, Value, ValueKind};
use parking_lot::RwLock;
use simnet::NodeId;

fn dn(s: &str) -> Dn {
    s.parse().unwrap()
}

fn service_type() -> InterfaceType {
    InterfaceType::new("printer").with_operation(OperationSig::new(
        "print",
        [ValueKind::Text],
        ValueKind::Bool,
    ))
}

fn org_model() -> Arc<RwLock<OrganisationalModel>> {
    let mut m = OrganisationalModel::new();
    m.add_person(Person::new(dn("cn=Tom"), "Tom"));
    m.add_role(Role::new(dn("cn=staff"), "staff"));
    m.relate(&dn("cn=Tom"), RelationKind::Occupies, &dn("cn=staff"))
        .unwrap();
    m.add_rule(OrgRule::new(
        dn("cn=staff"),
        RuleKind::Permit,
        "import",
        "service:printer",
    ));
    // Staff may import from GMD but never from UPC.
    m.add_rule(OrgRule::new(
        dn("cn=staff"),
        RuleKind::Permit,
        "import-from",
        "org:GMD",
    ));
    m.add_rule(OrgRule::new(
        dn("cn=staff"),
        RuleKind::Forbid,
        "import-from",
        "org:UPC",
    ));
    Arc::new(RwLock::new(m))
}

fn trader_with(n: usize, policy: bool) -> Trader {
    let mut t = Trader::new("t");
    t.register_service_type(service_type());
    for i in 0..n {
        let org = if i % 2 == 0 { "GMD" } else { "UPC" };
        t.export(
            "printer",
            &service_type(),
            InterfaceRef {
                object: format!("lp{i}").as_str().into(),
                node: NodeId::from_raw(i as u32),
                interface: "printer".into(),
            },
            [
                ("org", Value::from(org)),
                ("dpi", Value::Int((i % 4) as i64 * 300)),
            ],
        )
        .unwrap();
    }
    if policy {
        t.attach_policy(OrgTradingPolicy::new(org_model()));
    }
    t
}

fn print_shape() {
    println!("── R6: trader imports with/without organisational policy ──");
    println!("  offers   matches w/o policy   matches with policy (staff importer)");
    for n in [10usize, 100, 1_000] {
        let plain = trader_with(n, false);
        let governed = trader_with(n, true);
        let without = plain
            .import(&ImportRequest::any("printer"))
            .map(|v| v.len())
            .unwrap_or(0);
        let with = governed
            .import(&ImportRequest::any("printer").with_importer("cn=Tom"))
            .map(|v| v.len())
            .unwrap_or(0);
        println!("  {n:<8} {without:<20} {with}  (UPC offers hidden)");
        assert_eq!(
            with,
            without / 2,
            "the forbid rule hides exactly the UPC half"
        );
    }
    println!("  anonymous importers see nothing once the policy is attached:");
    let governed = trader_with(10, true);
    let anon = governed.import(&ImportRequest::any("printer"));
    println!(
        "  import without identity: {:?}",
        anon.map(|v| v.len()).err().map(|e| e.to_string())
    );
}

fn bench(c: &mut Criterion) {
    print_shape();
    let mut group = c.benchmark_group("req6_trader_policy");
    group.sample_size(10);
    for n in [10usize, 100, 1_000] {
        let plain = trader_with(n, false);
        let governed = trader_with(n, true);
        group.bench_with_input(BenchmarkId::new("import_without_policy", n), &n, |b, _| {
            let req = ImportRequest::any("printer");
            b.iter(|| plain.import(&req).map(|v| v.len()).unwrap_or(0));
        });
        group.bench_with_input(BenchmarkId::new("import_with_org_policy", n), &n, |b, _| {
            let req = ImportRequest::any("printer").with_importer("cn=Tom");
            b.iter(|| governed.import(&req).map(|v| v.len()).unwrap_or(0));
        });
        group.bench_with_input(
            BenchmarkId::new("import_constrained_with_policy", n),
            &n,
            |b, _| {
                let req = ImportRequest::any("printer")
                    .with_importer("cn=Tom")
                    .with_constraint(odp::Constraint::Ge("dpi".into(), 600))
                    .with_preference(odp::Preference::Max("dpi".into()))
                    .with_max_matches(5);
                b.iter(|| governed.import(&req).map(|v| v.len()).unwrap_or(0));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
