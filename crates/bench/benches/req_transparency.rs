//! Experiment R5 — §4 transparencies, ablated one at a time.
//!
//! Two halves:
//!
//! * **ODP distribution transparencies** — the same invocation with 0–5
//!   flags engaged; expected shape: cost grows modestly with engaged
//!   flags (locator lookups, retries), functionality grows with it.
//! * **CSCW activity transparency** — event delivery with isolation
//!   on/off; expected shape: identical relevant deliveries, a flood of
//!   disturbances only when off.

use std::collections::BTreeSet;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cscw_directory::Dn;
use cscw_kernel::Timestamp;
use mocca::activity::ActivityId;
use mocca::env::{EnvEvent, EventBus};
use mocca::info::InfoContent;
use mocca::transparency::ActivityIsolation;
use odp::{
    ComputationalObject, InterfaceRef, InterfaceType, InvokerNode, ObjectHost, OdpError, OpMode,
    OperationSig, TransparencySelection, TransparentInvoker, Value, ValueKind,
};
use simnet::{LinkSpec, NodeId, Sim, TopologyBuilder};

fn dn(s: &str) -> Dn {
    s.parse().unwrap()
}

struct Counter {
    iface: InterfaceType,
    n: i64,
}
impl Counter {
    fn new() -> Self {
        Counter {
            iface: InterfaceType::new("counter").with_operation(OperationSig::new(
                "add",
                [ValueKind::Int],
                ValueKind::Int,
            )),
            n: 0,
        }
    }
}
impl ComputationalObject for Counter {
    fn interface(&self) -> &InterfaceType {
        &self.iface
    }
    fn invoke(&mut self, _op: &str, args: &[Value]) -> Result<Value, OdpError> {
        self.n += args[0].as_int().expect("checked");
        Ok(Value::Int(self.n))
    }
}

fn odp_world(seed: u64) -> (Sim, NodeId, Vec<NodeId>) {
    let mut b = TopologyBuilder::new();
    let client = b.add_node("client");
    let hosts: Vec<NodeId> = (0..2).map(|i| b.add_node(format!("h{i}"))).collect();
    b.full_mesh(LinkSpec::lan());
    let mut sim = Sim::new(b.build(), seed);
    sim.register(client, InvokerNode::default());
    for &h in &hosts {
        let mut host = ObjectHost::new();
        host.install("c".into(), Counter::new());
        sim.register(h, host);
    }
    (sim, client, hosts)
}

/// The ablation ladder: each step engages one more transparency.
fn ladder() -> Vec<(&'static str, TransparencySelection)> {
    let mut sel = TransparencySelection::none();
    let mut steps = vec![("none", sel)];
    sel.access = true;
    steps.push(("access", sel));
    sel.location = true;
    steps.push(("+location", sel));
    sel.migration = true;
    steps.push(("+migration", sel));
    sel.replication = true;
    steps.push(("+replication", sel));
    sel.failure = true;
    steps.push(("+failure (full)", sel));
    steps
}

fn invoke_once(
    sim: &mut Sim,
    invoker: &mut TransparentInvoker,
    iref: &InterfaceRef,
) -> Result<Value, OdpError> {
    invoker.invoke(sim, iref, "add", vec![Value::Int(1)], OpMode::Update)
}

fn print_shape() {
    println!("── R5a: ODP transparency ladder (messages per invocation) ──");
    println!("  selection          engaged   works remotely?   msgs/op   locator lookups/op");
    for (label, sel) in ladder() {
        let (mut sim, client, hosts) = odp_world(5);
        let mut invoker = TransparentInvoker::new(client, sel);
        invoker
            .locator_mut()
            .register("c".into(), vec![hosts[0], hosts[1]]);
        let iref = InterfaceRef {
            object: "c".into(),
            node: hosts[0],
            interface: "counter".into(),
        };
        let before_msgs = sim.metrics().counter("messages_sent");
        let result = invoke_once(&mut sim, &mut invoker, &iref);
        let msgs = sim.metrics().counter("messages_sent") - before_msgs;
        let lookups = invoker.locator_mut().lookup_count();
        println!(
            "  {label:<18} {:<9} {:<17} {msgs:<9} {lookups}",
            sel.engaged_count(),
            if result.is_ok() {
                "yes"
            } else {
                "no (by design)"
            },
        );
    }
    println!("  shape: cost grows with engaged transparencies (replication doubles updates)");

    println!("── R5b: CSCW activity transparency (isolation ablation) ──");
    let mut relevant_events = 0;
    let mut disturbances_on = 0;
    let mut disturbances_off = 0;
    for isolation in [true, false] {
        let mut bus = EventBus::new();
        bus.set_isolation(if isolation {
            ActivityIsolation::on()
        } else {
            ActivityIsolation::off()
        });
        // 10 subscribers each member of 1 of 10 activities.
        for i in 0..10 {
            let memberships: BTreeSet<ActivityId> =
                [ActivityId::from(format!("act{i}").as_str())].into();
            bus.subscribe(dn(&format!("cn=p{i}")), memberships);
        }
        // 100 events spread over the activities.
        for e in 0..100 {
            bus.publish(EnvEvent {
                kind: "update".into(),
                activity: Some(ActivityId::from(format!("act{}", e % 10).as_str())),
                at: Timestamp::ZERO,
                payload: InfoContent::Text("x".into()),
            });
        }
        if isolation {
            relevant_events = (0..10)
                .map(|i| bus.delivered_to(&dn(&format!("cn=p{i}"))).len())
                .sum::<usize>();
            disturbances_on = bus.total_disturbances();
        } else {
            disturbances_off = bus.total_disturbances();
        }
    }
    println!(
        "  isolation on:  {relevant_events} relevant deliveries, {disturbances_on} disturbances"
    );
    println!(
        "  isolation off: {} extra deliveries, all disturbances",
        disturbances_off
    );
    assert_eq!(disturbances_on, 0);
    assert_eq!(
        disturbances_off, 900,
        "every unrelated event disturbs 9 of 10 subscribers"
    );
}

fn bench(c: &mut Criterion) {
    print_shape();
    let mut group = c.benchmark_group("req5_transparency");
    group.sample_size(10);
    for (label, sel) in ladder() {
        group.bench_with_input(BenchmarkId::new("odp_invoke", label), &sel, |b, &sel| {
            let (mut sim, client, hosts) = odp_world(9);
            let mut invoker = TransparentInvoker::new(client, sel);
            invoker
                .locator_mut()
                .register("c".into(), vec![hosts[0], hosts[1]]);
            let iref = InterfaceRef {
                object: "c".into(),
                node: hosts[0],
                interface: "counter".into(),
            };
            b.iter(|| {
                let _ = invoke_once(&mut sim, &mut invoker, &iref);
            });
        });
    }
    for isolation in [true, false] {
        let label = if isolation { "on" } else { "off" };
        group.bench_with_input(
            BenchmarkId::new("event_bus_isolation", label),
            &isolation,
            |b, &iso| {
                let mut bus = EventBus::new();
                bus.set_isolation(if iso {
                    ActivityIsolation::on()
                } else {
                    ActivityIsolation::off()
                });
                for i in 0..10 {
                    let memberships: BTreeSet<ActivityId> =
                        [ActivityId::from(format!("act{i}").as_str())].into();
                    bus.subscribe(dn(&format!("cn=p{i}")), memberships);
                }
                let mut e = 0u64;
                b.iter(|| {
                    e += 1;
                    bus.publish(EnvEvent {
                        kind: "update".into(),
                        activity: Some(ActivityId::from(format!("act{}", e % 10).as_str())),
                        at: Timestamp::ZERO,
                        payload: InfoContent::Text("x".into()),
                    })
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
