//! Offline shape check for `BENCH_fed_scale.json` — the CI `telemetry`
//! job runs this after the `--smoke` sweep to catch codec drift before
//! the artifact is uploaded. Hand-rolled on purpose: the vendored
//! serde is a stub, and the emitter is hand-rolled too, so the checker
//! validates the *shape contract* (required keys, per-cell field
//! parity, balanced braces) rather than re-parsing into types.
//!
//! Usage: `validate_metrics_json [path]` (default
//! `BENCH_fed_scale.json` in the current directory). Exits non-zero
//! with a diagnostic on the first violation.

use std::process::ExitCode;

/// Top-level keys every report must carry.
const DOCUMENT_KEYS: [&str; 5] = [
    "\"experiment\": \"fed_scale\"",
    "\"gossip_period_micros\":",
    "\"seeds\":",
    "\"exchange_latency\":",
    "\"cells\":",
];

/// Quantile keys both exchange-latency distributions must carry.
const LATENCY_KEYS: [&str; 5] = [
    "\"mean_micros\":",
    "\"p50_micros\":",
    "\"p90_micros\":",
    "\"p99_micros\":",
    "\"max_micros\":",
];

/// Keys that must appear exactly once per cell.
const CELL_KEYS: [&str; 11] = [
    "\"sites\":",
    "\"seed\":",
    "\"converged\":",
    "\"sim_micros\":",
    "\"rounds\":",
    "\"gossip_pulses\":",
    "\"updates_applied\":",
    "\"bytes_on_wire\":",
    "\"gossip_round_micros\":{\"p50\":",
    "\"pump_micros\":{\"p50\":",
    "\"fingerprint\":\"",
];

fn fail(msg: &str) -> ExitCode {
    eprintln!("validate_metrics_json: FAIL: {msg}");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_fed_scale.json".to_owned());
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => return fail(&format!("cannot read {path}: {e}")),
    };

    let opens = text.matches('{').count();
    let closes = text.matches('}').count();
    if opens != closes {
        return fail(&format!("unbalanced braces: {opens} open, {closes} close"));
    }
    for key in DOCUMENT_KEYS {
        if !text.contains(key) {
            return fail(&format!("missing document key {key}"));
        }
    }
    for key in LATENCY_KEYS {
        // Once in "local", once in "remote".
        let n = text.matches(key).count();
        if n < 2 {
            return fail(&format!("exchange_latency key {key} appears {n}x, need 2"));
        }
    }
    let cells = text.matches("{\"shape\":\"").count();
    if cells == 0 {
        return fail("no cells");
    }
    for key in CELL_KEYS {
        let n = text.matches(key).count();
        if n != cells {
            return fail(&format!("cell key {key} appears {n}x across {cells} cells"));
        }
    }
    println!("validate_metrics_json: OK: {cells} cells in {path}");
    ExitCode::SUCCESS
}
