//! Offline shape check for the committed bench reports — CI runs this
//! after each `--smoke` sweep to catch codec drift before the artifact
//! is uploaded. Hand-rolled on purpose: the vendored serde is a stub,
//! and the emitters are hand-rolled too, so the checker validates the
//! *shape contract* (required keys, per-cell field parity, balanced
//! braces) rather than re-parsing into types. The document's
//! `"experiment"` key picks the contract: `fed_scale`,
//! `net_congestion` or `query_scale`.
//!
//! Usage: `validate_metrics_json [path]` (default
//! `BENCH_fed_scale.json` in the current directory). Exits non-zero
//! with a diagnostic on the first violation.

use std::process::ExitCode;

/// Top-level keys every `fed_scale` report must carry.
const FED_SCALE_DOCUMENT_KEYS: [&str; 4] = [
    "\"gossip_period_micros\":",
    "\"seeds\":",
    "\"exchange_latency\":",
    "\"cells\":",
];

/// Quantile keys both exchange-latency distributions must carry.
const LATENCY_KEYS: [&str; 5] = [
    "\"mean_micros\":",
    "\"p50_micros\":",
    "\"p90_micros\":",
    "\"p99_micros\":",
    "\"max_micros\":",
];

/// Keys that must appear exactly once per `fed_scale` cell.
const FED_SCALE_CELL_KEYS: [&str; 11] = [
    "\"sites\":",
    "\"seed\":",
    "\"converged\":",
    "\"sim_micros\":",
    "\"rounds\":",
    "\"gossip_pulses\":",
    "\"updates_applied\":",
    "\"bytes_on_wire\":",
    "\"gossip_round_micros\":{\"p50\":",
    "\"pump_micros\":{\"p50\":",
    "\"fingerprint\":\"",
];

/// Top-level keys every `net_congestion` report must carry.
const CONGESTION_DOCUMENT_KEYS: [&str; 4] = [
    "\"seeds\":",
    "\"flash_crowd\": [",
    "\"gossip_storm\": [",
    "\"wan_bridge\": [",
];

/// Keys that must appear exactly once per flash-crowd cell.
const FLASH_CELL_KEYS: [&str; 8] = [
    "\"clients\":",
    "\"offered\":",
    "\"calm_micros\":{\"p50\":",
    "\"burst_micros\":{\"p50\":",
    "\"overall_micros\":{\"p50\":",
    "\"breaker_opened\":",
    "\"breaker_trips\":",
    "\"injected_faults\":",
];

/// Keys that must appear exactly once per gossip-storm cell (the two
/// discipline sides carry their own nested keys, checked by count).
const STORM_CELL_KEYS: [&str; 2] = [
    "\"drop_tail\":{\"discipline\":\"drop_tail\"",
    "\"priority\":{\"discipline\":\"priority\"",
];

/// Keys that must appear exactly once per WAN-bridge cell.
const BRIDGE_CELL_KEYS: [&str; 5] = [
    "\"cross_offered\":",
    "\"cross_delivered\":",
    "\"cross_shed\":",
    "\"intra_micros\":{\"p50\":",
    "\"cross_micros\":{\"p50\":",
];

/// Top-level keys every `query_scale` report must carry.
const QUERY_SCALE_DOCUMENT_KEYS: [&str; 4] = [
    "\"seeds\":",
    "\"populations\":",
    "\"ops_per_cell\":",
    "\"cells\":",
];

/// Keys that must appear exactly once per `query_scale` cell.
const QUERY_SCALE_CELL_KEYS: [&str; 9] = [
    "\"seed\":",
    "\"subscriptions\":",
    "\"ops\":",
    "\"deltas_emitted\":",
    "\"incremental_evals_per_delta\":",
    "\"rescan_entries_per_delta\":",
    "\"incremental_micros\":{\"p50\":",
    "\"rescan_micros\":{\"p50\":",
    "\"fingerprint\":\"",
];

fn fail(msg: &str) -> ExitCode {
    eprintln!("validate_metrics_json: FAIL: {msg}");
    ExitCode::FAILURE
}

fn check_keys(text: &str, keys: &[&str], expected: usize, what: &str) -> Result<(), ExitCode> {
    for key in keys {
        let n = text.matches(key).count();
        if n != expected {
            return Err(fail(&format!(
                "{what} key {key} appears {n}x, need {expected}"
            )));
        }
    }
    Ok(())
}

fn validate_fed_scale(text: &str, path: &str) -> ExitCode {
    for key in FED_SCALE_DOCUMENT_KEYS {
        if !text.contains(key) {
            return fail(&format!("missing document key {key}"));
        }
    }
    for key in LATENCY_KEYS {
        // Once in "local", once in "remote".
        let n = text.matches(key).count();
        if n < 2 {
            return fail(&format!("exchange_latency key {key} appears {n}x, need 2"));
        }
    }
    let cells = text.matches("{\"shape\":\"").count();
    if cells == 0 {
        return fail("no cells");
    }
    if let Err(code) = check_keys(text, &FED_SCALE_CELL_KEYS, cells, "cell") {
        return code;
    }
    println!("validate_metrics_json: OK: {cells} cells in {path}");
    ExitCode::SUCCESS
}

fn validate_net_congestion(text: &str, path: &str) -> ExitCode {
    for key in CONGESTION_DOCUMENT_KEYS {
        if !text.contains(key) {
            return fail(&format!("missing document key {key}"));
        }
    }
    // Every scenario sweeps the same seeds, so cell counts must agree.
    let flash = text.matches("\"breaker_opened\":").count();
    if flash == 0 {
        return fail("no flash_crowd cells");
    }
    if let Err(code) = check_keys(text, &FLASH_CELL_KEYS, flash, "flash_crowd") {
        return code;
    }
    if let Err(code) = check_keys(text, &STORM_CELL_KEYS, flash, "gossip_storm") {
        return code;
    }
    if let Err(code) = check_keys(text, &BRIDGE_CELL_KEYS, flash, "wan_bridge") {
        return code;
    }
    let fingerprints = text.matches("\"fingerprint\":\"").count();
    if fingerprints != 3 * flash {
        return fail(&format!(
            "{fingerprints} fingerprints across {flash} cells per scenario, need {}",
            3 * flash
        ));
    }
    // The headline acceptance: congestion alone opened the breaker in
    // every committed flash-crowd cell, with zero injected faults.
    if text.matches("\"breaker_opened\":true").count() != flash {
        return fail("a flash_crowd cell did not open its breaker");
    }
    if text.matches("\"injected_faults\":0").count() != flash {
        return fail("a flash_crowd cell reports injected faults");
    }
    println!("validate_metrics_json: OK: {flash} cells per scenario in {path}");
    ExitCode::SUCCESS
}

/// Every integer that immediately follows `key` in `text`.
fn values_after(text: &str, key: &str) -> Vec<u64> {
    text.match_indices(key)
        .filter_map(|(at, _)| {
            let digits: String = text[at + key.len()..]
                .chars()
                .take_while(char::is_ascii_digit)
                .collect();
            digits.parse().ok()
        })
        .collect()
}

fn validate_query_scale(text: &str, path: &str) -> ExitCode {
    for key in QUERY_SCALE_DOCUMENT_KEYS {
        if !text.contains(key) {
            return fail(&format!("missing document key {key}"));
        }
    }
    let cells = text.matches("{\"population\":").count();
    if cells == 0 {
        return fail("no cells");
    }
    if let Err(code) = check_keys(text, &QUERY_SCALE_CELL_KEYS, cells, "cell") {
        return code;
    }
    // The headline acceptance, re-checked on the committed artifact:
    // per-delta incremental cost stays within 2x across the whole
    // population sweep, while the re-scan alternative tracks the
    // population (>= 50x between smallest and largest cell).
    let incremental = values_after(text, "\"incremental_evals_per_delta\":");
    let min = incremental.iter().copied().min().unwrap_or(0).max(1);
    let max = incremental.iter().copied().max().unwrap_or(0);
    if max > 2 * min {
        return fail(&format!(
            "incremental cost is not flat: {min}..{max} evals per delta"
        ));
    }
    let rescan = values_after(text, "\"rescan_entries_per_delta\":");
    let scan_min = rescan.iter().copied().min().unwrap_or(0).max(1);
    let scan_max = rescan.iter().copied().max().unwrap_or(0);
    if scan_max < 50 * scan_min {
        return fail(&format!(
            "re-scan cost does not track the population: {scan_min}..{scan_max} entries per delta"
        ));
    }
    println!(
        "validate_metrics_json: OK: {cells} cells in {path} \
         (incremental {min}..{max}, rescan {scan_min}..{scan_max} per delta)"
    );
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_fed_scale.json".to_owned());
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => return fail(&format!("cannot read {path}: {e}")),
    };

    let opens = text.matches('{').count();
    let closes = text.matches('}').count();
    if opens != closes {
        return fail(&format!("unbalanced braces: {opens} open, {closes} close"));
    }
    if text.contains("\"experiment\": \"fed_scale\"") {
        validate_fed_scale(&text, &path)
    } else if text.contains("\"experiment\": \"net_congestion\"") {
        validate_net_congestion(&text, &path)
    } else if text.contains("\"experiment\": \"query_scale\"") {
        validate_query_scale(&text, &path)
    } else {
        fail("unknown experiment (expected fed_scale, net_congestion or query_scale)")
    }
}
