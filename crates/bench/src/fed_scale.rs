//! N-site federation scaling — the event-driven runtime under load.
//!
//! Builders and the measured experiment behind `BENCH_fed_scale.json`:
//! N ∈ {8, 32, 64, 128} sites on four link-graph families (ring, star,
//! seeded-random, partitioned-islands-that-heal), each converged with
//! [`FederatedEnvironments::run_until_converged`] — no hand-cranked
//! `pump` / `gossip_round` anywhere. Everything is deterministic per
//! `(shape, n, seed)`: the random graph's edges, every site's jittered
//! gossip phase, the islands' scheduled heal, and therefore the
//! convergence instant and the bytes shipped.

use cscw_directory::Dn;
use cscw_federation::RuntimeConfig;
use cscw_kernel::{HistogramSummary, Layer, Timestamp};
use mocca::federation::{ConvergenceReport, FederatedEnvironments};
use mocca::info::{InfoContent, InfoObject, InfoObjectId};
use mocca::{CscwEnvironment, MoccaError};
use odp::LinkState;
use simnet::shapes;

/// When scheduled island bridges heal (2 simulated seconds).
pub const ISLANDS_HEAL_AT_MICROS: u64 = 2_000_000;

/// Simulated-time budget for a convergence run (2 simulated minutes —
/// a 128-site ring needs ~64 gossip periods of 250 ms).
pub const MAX_SIM_MICROS: u64 = 120_000_000;

/// A federation link-graph family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Shape {
    /// Bidirectional ring: diameter N/2, two links per site.
    Ring,
    /// Hub-and-spokes: diameter 2, the hub carries everything.
    Star,
    /// Random connected graph (spanning tree + extra chords), seeded.
    Random,
    /// Internally-ringed islands whose bridges start partitioned and
    /// heal at a scheduled instant ([`ISLANDS_HEAL_AT_MICROS`]).
    Islands,
}

/// Every shape the scaling experiment sweeps.
pub const SHAPES: [Shape; 4] = [Shape::Ring, Shape::Star, Shape::Random, Shape::Islands];

/// Site counts the scaling experiment sweeps.
pub const SITE_COUNTS: [usize; 4] = [8, 32, 64, 128];

impl Shape {
    /// Stable name used in reports and JSON.
    pub fn name(self) -> &'static str {
        match self {
            Shape::Ring => "ring",
            Shape::Star => "star",
            Shape::Random => "random",
            Shape::Islands => "islands",
        }
    }
}

fn domain(i: usize) -> String {
    format!("site-{i:03}")
}

fn island_count(n: usize) -> usize {
    (n / 16).max(2)
}

/// An N-site federation on `shape`, each site seeded with one distinct
/// knowledge object. Island bridges start `Down` with their heal
/// scheduled on the runtime (started under `seed`), so the whole
/// scenario — including the partition's repair — is event-driven.
///
/// # Errors
///
/// [`MoccaError`] if a fixture name fails to parse or a seeded object
/// cannot be stored.
pub fn build(shape: Shape, n: usize, seed: u64) -> Result<FederatedEnvironments, MoccaError> {
    let mut fed = FederatedEnvironments::new();
    for i in 0..n {
        fed.federate(domain(i), CscwEnvironment::new());
    }
    let edges = match shape {
        Shape::Ring => shapes::ring(n),
        Shape::Star => shapes::star(n),
        Shape::Random => shapes::random(n, n / 4, seed),
        Shape::Islands => {
            let isl = shapes::islands(island_count(n), n / island_count(n));
            // Intra-island rings come up immediately; bridges start
            // partitioned and heal at a scheduled runtime event.
            for (a, b) in &isl.intra {
                fed.link_bidi(&domain(*a), &domain(*b));
            }
            fed.start_runtime(RuntimeConfig::seeded(seed));
            for (a, b) in &isl.bridges {
                let (da, db) = (domain(*a), domain(*b));
                fed.link_bidi(&da, &db);
                fed.set_link_state(&da, &db, LinkState::Down);
                fed.set_link_state(&db, &da, LinkState::Down);
                let heal = Timestamp::from_micros(ISLANDS_HEAL_AT_MICROS);
                fed.schedule_link_change(heal, &da, &db, LinkState::Up);
                fed.schedule_link_change(heal, &db, &da, LinkState::Up);
            }
            Vec::new()
        }
    };
    for (a, b) in edges {
        fed.link_bidi(&domain(a), &domain(b));
    }
    let author: Dn = "cn=Scale".parse()?;
    for i in 0..n {
        if let Some(env) = fed.env_mut(&domain(i)) {
            env.store_object(
                InfoObject::new(
                    InfoObjectId::new(format!("doc-{i:03}")),
                    "note",
                    author.clone(),
                    InfoContent::Text(format!("seeded at site {i}")),
                ),
                None,
                Timestamp::ZERO,
            )?;
        }
    }
    Ok(fed)
}

/// p50/p90/p99/max of one per-pulse phase histogram — the quantile
/// view the paper-facing JSON carries per cell. Values are micros of
/// the receiving platform's clock: simulated (replay-stable) time on
/// sim platforms, wall-clock on the in-process [`LocalPlatform`] the
/// scale cells run on — so, like `wall_micros`, these fields sit
/// outside the bit-for-bit determinism guarantee.
///
/// [`LocalPlatform`]: mocca::platform::LocalPlatform
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseQuantiles {
    /// Median.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Largest sample (exact).
    pub max: u64,
}

impl PhaseQuantiles {
    /// Extracts the quantile view (all-zero when the phase never ran).
    pub fn from_summary(summary: Option<HistogramSummary>) -> Self {
        match summary {
            Some(s) => PhaseQuantiles {
                p50: s.p50_micros,
                p90: s.p90_micros,
                p99: s.p99_micros,
                max: s.max_micros,
            },
            None => PhaseQuantiles::default(),
        }
    }

    /// The quantiles as one JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"p50\":{},\"p90\":{},\"p99\":{},\"max\":{}}}",
            self.p50, self.p90, self.p99, self.max
        )
    }
}

/// One measured cell of the scaling sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScaleResult {
    /// Link-graph family name.
    pub shape: &'static str,
    /// Number of federated sites.
    pub sites: usize,
    /// Seed the run derived all phases and graphs from.
    pub seed: u64,
    /// Whether every replica converged within [`MAX_SIM_MICROS`].
    pub converged: bool,
    /// Simulated microseconds to convergence.
    pub sim_micros: u64,
    /// Gossip periods elapsed (convergence rounds).
    pub rounds: u64,
    /// Gossip pulses handled.
    pub gossip_pulses: usize,
    /// Replica updates applied across all receivers.
    pub updates_applied: usize,
    /// Encoded gossip-frame bytes shipped over transports.
    pub bytes_on_wire: u64,
    /// Per-pulse gossip-round latency quantiles (time the receiving
    /// platforms spent shipping and applying frames; see
    /// [`PhaseQuantiles`] for clock caveats).
    pub gossip_round_micros: PhaseQuantiles,
    /// Per-pulse pump (remote delivery) latency quantiles.
    pub pump_micros: PhaseQuantiles,
    /// Hex digest of the converged replica fingerprint (identical
    /// across seeds; the raw fingerprint is multi-line text).
    pub fingerprint: String,
}

/// FNV-1a 64-bit — a stable, dependency-free digest for fingerprints.
pub(crate) fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Builds and converges one `(shape, n, seed)` cell.
///
/// # Errors
///
/// As [`build`]; also any delivery error during the run.
pub fn run(shape: Shape, n: usize, seed: u64) -> Result<ScaleResult, MoccaError> {
    let mut fed = build(shape, n, seed)?;
    let report: ConvergenceReport = fed.run_until_converged(seed, MAX_SIM_MICROS)?;
    let gossip_period = RuntimeConfig::seeded(seed).gossip_period_micros;
    let telemetry = fed.fabric().telemetry();
    let gossip_round_micros = PhaseQuantiles::from_summary(
        telemetry.histogram(Layer::Federation, "federation.gossip.pulse.micros"),
    );
    let pump_micros = PhaseQuantiles::from_summary(
        telemetry.histogram(Layer::Federation, "federation.pump.pulse.micros"),
    );
    Ok(ScaleResult {
        shape: shape.name(),
        sites: n,
        seed,
        converged: report.converged,
        sim_micros: report.sim_micros,
        rounds: report.sim_micros / gossip_period,
        gossip_pulses: report.activity.gossip_pulses,
        updates_applied: report.activity.updates_applied,
        bytes_on_wire: report.activity.bytes_on_wire,
        gossip_round_micros,
        pump_micros,
        fingerprint: format!(
            "{:016x}",
            fnv1a(&fed.fingerprints().into_values().next().unwrap_or_default())
        ),
    })
}

impl ScaleResult {
    /// The cell as one JSON object (hand-rolled: every field is a
    /// number, bool or identifier-safe string).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"shape\":\"{}\",\"sites\":{},\"seed\":{},",
                "\"converged\":{},\"sim_micros\":{},\"rounds\":{},",
                "\"gossip_pulses\":{},\"updates_applied\":{},",
                "\"bytes_on_wire\":{},\"gossip_round_micros\":{},",
                "\"pump_micros\":{},\"fingerprint\":\"{}\"}}"
            ),
            self.shape,
            self.sites,
            self.seed,
            self.converged,
            self.sim_micros,
            self.rounds,
            self.gossip_pulses,
            self.updates_applied,
            self.bytes_on_wire,
            self.gossip_round_micros.to_json(),
            self.pump_micros.to_json(),
            self.fingerprint
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_cell_converges_and_replays_per_seed() {
        let a = run(Shape::Ring, 8, 1).expect("run");
        assert!(a.converged);
        assert!(a.bytes_on_wire > 0);
        let q = a.gossip_round_micros;
        assert!(q.p50 <= q.p90 && q.p90 <= q.p99 && q.p99 <= q.max);
        let b = run(Shape::Ring, 8, 1).expect("run");
        // Phase quantiles are wall-clock on the LocalPlatform cells
        // and sit outside the determinism guarantee — scrub them.
        let scrub = |mut r: ScaleResult| {
            r.gossip_round_micros = PhaseQuantiles::default();
            r.pump_micros = PhaseQuantiles::default();
            r
        };
        assert_eq!(
            scrub(a.clone()),
            scrub(b),
            "same cell must replay bit-for-bit"
        );
        let c = run(Shape::Ring, 8, 2).expect("run");
        assert_eq!(a.fingerprint, c.fingerprint, "state is seed-independent");
    }

    #[test]
    fn islands_heal_then_converge() {
        let r = run(Shape::Islands, 8, 1).expect("run");
        assert!(r.converged);
        assert!(
            r.sim_micros > ISLANDS_HEAL_AT_MICROS,
            "cannot converge before the bridges heal: {r:?}"
        );
    }

    #[test]
    fn json_cell_is_wellformed() {
        let r = run(Shape::Star, 8, 1).expect("run");
        let json = r.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"shape\":\"star\""));
        assert!(json.contains("\"converged\":true"));
        assert!(json.contains("\"gossip_round_micros\":{\"p50\":"));
        assert!(json.contains("\"pump_micros\":{\"p50\":"));
    }
}
