//! Shared world-builders for the experiment benches.
//!
//! Each function assembles a deterministic simulated world used by one
//! or more bench targets; the benches measure wall time with Criterion
//! and print *simulated-time / count* shapes (the paper-facing result)
//! to stdout.

#![forbid(unsafe_code)]

use cscw_directory::{Attribute, Dit, Entry};
use cscw_messaging::{MtaNode, OrAddress, UserAgent};
use groupware::{descriptor_for, mapping_for};
use mocca::CscwEnvironment;
use simnet::{LinkSpec, Sim, TopologyBuilder};

/// A two-MTA mail world: `(sim, sender agent, receiver agent)`.
pub fn mail_world(seed: u64) -> (Sim, UserAgent, UserAgent) {
    let mut b = TopologyBuilder::new();
    let a_ws = b.add_node("a-ws");
    let b_ws = b.add_node("b-ws");
    let mta_a = b.add_node("mta-a");
    let mta_b = b.add_node("mta-b");
    b.full_mesh(LinkSpec::wan());
    let mut sim = Sim::new(b.build(), seed);

    let a_addr: OrAddress = "C=UK;O=Lancaster;PN=A".parse().expect("static");
    let b_addr: OrAddress = "C=DE;O=GMD;PN=B".parse().expect("static");
    let mut a = MtaNode::new("mta-a");
    a.register_mailbox(a_addr.clone());
    a.routing_mut().add_country_route("DE", mta_b);
    let mut m_b = MtaNode::new("mta-b");
    m_b.register_mailbox(b_addr.clone());
    m_b.routing_mut().add_country_route("UK", mta_a);
    sim.register(mta_a, a);
    sim.register(mta_b, m_b);

    (
        sim,
        UserAgent::new(a_addr, a_ws, mta_a),
        UserAgent::new(b_addr, b_ws, mta_b),
    )
}

/// A DIT populated with `n` person entries under `orgs` organisations.
pub fn populated_dit(n: usize, orgs: usize) -> Dit {
    let mut dit = Dit::new();
    dit.add(
        Entry::new("c=UK".parse().expect("static"))
            .with_class("country")
            .with_attr(Attribute::single("c", "UK")),
    )
    .expect("fresh tree");
    for o in 0..orgs {
        dit.add(
            Entry::new(format!("c=UK,o=org{o}").parse().expect("generated"))
                .with_class("organization")
                .with_attr(Attribute::single("o", format!("org{o}"))),
        )
        .expect("fresh tree");
    }
    for i in 0..n {
        let o = i % orgs;
        let mut e = Entry::new(
            format!("c=UK,o=org{o},cn=person{i}")
                .parse()
                .expect("generated"),
        )
        .with_class("person")
        .with_attr(Attribute::single("cn", format!("person{i}")))
        .with_attr(Attribute::single("sn", format!("Surname{}", i % 50)))
        .with_attr(Attribute::single("capabilitylevel", (i % 5) as i64 + 1));
        if i % 3 == 0 {
            e.put_attr(Attribute::single("occupiesrole", "cn=coordinator"));
        }
        dit.add(e).expect("fresh tree");
    }
    dit
}

/// An environment with the full five-app population registered.
pub fn population_env() -> CscwEnvironment {
    let mut env = CscwEnvironment::new();
    for app in groupware::APP_POPULATION {
        env.register_app(descriptor_for(app), mapping_for(app));
    }
    env
}
