//! Shared world-builders for the experiment benches.
//!
//! Each function assembles a deterministic simulated world used by one
//! or more bench targets; the benches measure wall time with Criterion
//! and print *simulated-time / count* shapes (the paper-facing result)
//! to stdout.
//!
//! The builders are fallible: addresses and names are parsed and tree
//! insertions validated, so a typo in a fixture surfaces as a
//! classified layer error at the bench harness instead of a panic
//! inside library code.

#![forbid(unsafe_code)]

pub mod fed_scale;
pub mod net_congestion;
pub mod query_scale;

use cscw_directory::{Attribute, DirectoryError, Dit, Entry};
use cscw_messaging::{MtaNode, MtsError, OrAddress, UserAgent};
use groupware::{descriptor_for, mapping_for, GroupwareError};
use mocca::CscwEnvironment;
use simnet::{LinkSpec, Sim, TopologyBuilder};

/// A two-MTA mail world: `(sim, sender agent, receiver agent)`.
///
/// # Errors
///
/// [`MtsError`] if either fixture O/R address fails to parse.
pub fn mail_world(seed: u64) -> Result<(Sim, UserAgent, UserAgent), MtsError> {
    let mut b = TopologyBuilder::new();
    let a_ws = b.add_node("a-ws");
    let b_ws = b.add_node("b-ws");
    let mta_a = b.add_node("mta-a");
    let mta_b = b.add_node("mta-b");
    b.full_mesh(LinkSpec::wan());
    let mut sim = Sim::new(b.build(), seed);

    let a_addr: OrAddress = "C=UK;O=Lancaster;PN=A".parse()?;
    let b_addr: OrAddress = "C=DE;O=GMD;PN=B".parse()?;
    let mut a = MtaNode::new("mta-a");
    a.register_mailbox(a_addr.clone());
    a.routing_mut().add_country_route("DE", mta_b);
    let mut m_b = MtaNode::new("mta-b");
    m_b.register_mailbox(b_addr.clone());
    m_b.routing_mut().add_country_route("UK", mta_a);
    sim.register(mta_a, a);
    sim.register(mta_b, m_b);

    Ok((
        sim,
        UserAgent::new(a_addr, a_ws, mta_a),
        UserAgent::new(b_addr, b_ws, mta_b),
    ))
}

/// A DIT populated with `n` person entries under `orgs` organisations.
///
/// # Errors
///
/// [`DirectoryError`] if a generated name fails to parse or an entry
/// cannot be inserted (e.g. a duplicate).
pub fn populated_dit(n: usize, orgs: usize) -> Result<Dit, DirectoryError> {
    let mut dit = Dit::new();
    dit.add(
        Entry::new("c=UK".parse()?)
            .with_class("country")
            .with_attr(Attribute::single("c", "UK")),
    )?;
    for o in 0..orgs {
        dit.add(
            Entry::new(format!("c=UK,o=org{o}").parse()?)
                .with_class("organization")
                .with_attr(Attribute::single("o", format!("org{o}"))),
        )?;
    }
    for i in 0..n {
        let o = i % orgs;
        let mut e = Entry::new(format!("c=UK,o=org{o},cn=person{i}").parse()?)
            .with_class("person")
            .with_attr(Attribute::single("cn", format!("person{i}")))
            .with_attr(Attribute::single("sn", format!("Surname{}", i % 50)))
            .with_attr(Attribute::single("capabilitylevel", (i % 5) as i64 + 1));
        if i % 3 == 0 {
            e.put_attr(Attribute::single("occupiesrole", "cn=coordinator"));
        }
        dit.add(e)?;
    }
    Ok(dit)
}

/// An environment with the full five-app population registered.
///
/// # Errors
///
/// [`GroupwareError::UnknownApp`] if the fixed population ever lists an
/// app without a descriptor or mapping.
pub fn population_env() -> Result<CscwEnvironment, GroupwareError> {
    let mut env = CscwEnvironment::new();
    for app in groupware::APP_POPULATION {
        env.register_app(descriptor_for(app)?, mapping_for(app)?);
    }
    Ok(env)
}
