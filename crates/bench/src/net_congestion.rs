//! Bounded-queue congestion scenarios — the adversary is offered load.
//!
//! Builders and the measured experiments behind
//! `BENCH_net_congestion.json`: three adversarial traffic shapes on
//! queue-bounded [`simnet`] links, each deterministic per seed (rerun
//! any cell and every count and quantile replays bit-for-bit):
//!
//! * **flash crowd** — N clients stampede a relay whose uplink to the
//!   server is slow and queue-bounded. A calm phase (staggered sends)
//!   baselines the latency floor; the burst phase piles the whole crowd
//!   onto the wire at one instant, so delivered messages queue behind
//!   each other (p99 ≫ p50) and the overflow is shed. A side probe
//!   drives the same overload through [`ResilientPlatform`] and shows a
//!   circuit breaker opening with *zero* injected faults.
//! * **gossip storm vs interactive** — bulk class-1 gossip bursts and
//!   small class-0 pings share one thin link, once under
//!   [`QueueDiscipline::DropTail`] and once under
//!   [`QueueDiscipline::Priority`]; the interactive quantiles show what
//!   the discipline buys.
//! * **WAN bridge** — two LAN islands joined by one slow, byte-capped
//!   bridge; cross-island traffic overloads it (queueing + sheds) while
//!   intra-island latency stays flat.
//!
//! All latencies are simulated time recorded into the kernel's
//! [`cscw_kernel::LogHistogram`] via layer-tagged telemetry, so the
//! quantiles are as deterministic as the event order itself.

use cscw_kernel::{BreakerState, Layer, RetryPolicy, Telemetry};
use mocca::{Platform, ResilientPlatform, SimPlatform};
use simnet::{
    LinkSpec, Message, Node, NodeCtx, NodeId, Payload, QueueDiscipline, Sim, SimDuration,
    TopologyBuilder,
};

use crate::fed_scale::{fnv1a, PhaseQuantiles};

/// Seeds every scenario sweeps.
pub const SEEDS: [u64; 3] = [1, 2, 3];

/// Clients stampeding the relay in the flash-crowd scenario.
pub const FLASH_CLIENTS: usize = 24;

/// Messages per client in each flash-crowd phase.
const FLASH_MSGS_PER_CLIENT: u64 = 4;

/// Flash-crowd message wire size (5 ms on the 40 kB/s bottleneck).
const FLASH_MSG_BYTES: u64 = 200;

/// When the whole crowd fires at once (after the calm phase drains).
const FLASH_BURST_AT_MICROS: u64 = 6_000_000;

impl PhaseQuantiles {
    fn digest_field(&self) -> String {
        format!("{}/{}/{}/{}", self.p50, self.p90, self.p99, self.max)
    }
}

// ---------------------------------------------------------------------
// Flash crowd: clients -> relay -> (bounded wire) -> server.
// ---------------------------------------------------------------------

/// A stamped application message; the server turns `sent_micros` into
/// a delivery-latency sample.
struct FlashMsg {
    burst: bool,
    sent_micros: u64,
}

/// One conference client: four staggered calm sends, then four more
/// the instant the flash crowd hits.
struct FlashClient {
    relay: NodeId,
    idx: u64,
}

const TAG_BURST: u64 = 99;

impl Node for FlashClient {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        // Calm sends are staggered globally (50 ms apart across the
        // whole crowd) so the bottleneck drains between them.
        for k in 0..FLASH_MSGS_PER_CLIENT {
            let at = (k * FLASH_CLIENTS as u64 + self.idx) * 50_000;
            ctx.set_timer(SimDuration::from_micros(at), k);
        }
        ctx.set_timer(SimDuration::from_micros(FLASH_BURST_AT_MICROS), TAG_BURST);
    }

    fn on_message(&mut self, _ctx: &mut NodeCtx<'_>, _msg: Message) {}

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, _timer: simnet::TimerId, tag: u64) {
        let burst = tag == TAG_BURST;
        let sends = if burst { FLASH_MSGS_PER_CLIENT } else { 1 };
        for _ in 0..sends {
            let msg = FlashMsg {
                burst,
                sent_micros: ctx.now_micros(),
            };
            let _ = ctx.send_sized(self.relay, Payload::new(msg), FLASH_MSG_BYTES);
            ctx.metrics().incr("flash_offered");
        }
    }
}

/// The relay: forwards every client message over the bounded uplink,
/// counting what the full queue sheds.
struct FlashRelay {
    server: NodeId,
}

impl Node for FlashRelay {
    fn on_message(&mut self, ctx: &mut NodeCtx<'_>, msg: Message) {
        let Ok(flash) = msg.payload.downcast::<FlashMsg>() else {
            return;
        };
        let outcome = ctx.send_sized(self.server, Payload::new(flash), FLASH_MSG_BYTES);
        if outcome.is_shed() {
            ctx.metrics().incr("flash_relay_shed");
        }
    }
}

/// The server: every arrival becomes a latency sample, split by phase.
struct FlashServer;

impl Node for FlashServer {
    fn on_message(&mut self, ctx: &mut NodeCtx<'_>, msg: Message) {
        let Ok(flash) = msg.payload.downcast::<FlashMsg>() else {
            return;
        };
        let latency = ctx.now_micros().saturating_sub(flash.sent_micros);
        ctx.metrics().incr("flash_delivered");
        if let Some(t) = ctx.telemetry() {
            t.record_micros(Layer::Net, "net.flash.latency", latency);
            let phase = if flash.burst {
                "net.flash.burst"
            } else {
                "net.flash.calm"
            };
            t.record_micros(Layer::Net, phase, latency);
        }
    }
}

/// What the congestion-only breaker probe observed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BreakerProbe {
    /// Whether the trader breaker ended the probe open.
    pub opened: bool,
    /// `resilience.trader.breaker_open` transitions recorded.
    pub trips: u64,
    /// Queue-overflow drops on the simulated mesh during the probe.
    pub dropped_queue_full: u64,
    /// Crash/partition faults injected (always zero — that is the
    /// point).
    pub injected_faults: u64,
}

/// One measured flash-crowd cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlashCrowdResult {
    /// Simulation seed.
    pub seed: u64,
    /// Clients in the crowd.
    pub clients: usize,
    /// Messages offered to the relay.
    pub offered: u64,
    /// Messages the server received.
    pub delivered: u64,
    /// Messages the bounded uplink queue shed.
    pub shed: u64,
    /// `dropped_queue_full` as counted by the simulator itself.
    pub dropped_queue_full: u64,
    /// Calm-phase delivery latency quantiles (micros).
    pub calm: PhaseQuantiles,
    /// Burst-phase delivery latency quantiles (micros).
    pub burst: PhaseQuantiles,
    /// Whole-run delivery latency quantiles (micros).
    pub overall: PhaseQuantiles,
    /// The congestion-only circuit-breaker probe.
    pub breaker: BreakerProbe,
    /// Hex FNV-1a digest of every count and quantile above — equal
    /// across reruns of the same seed.
    pub fingerprint: String,
}

impl FlashCrowdResult {
    /// The cell as one JSON object.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"seed\":{},\"clients\":{},\"offered\":{},",
                "\"delivered\":{},\"shed\":{},\"dropped_queue_full\":{},",
                "\"calm_micros\":{},\"burst_micros\":{},\"overall_micros\":{},",
                "\"breaker_opened\":{},\"breaker_trips\":{},",
                "\"injected_faults\":{},\"fingerprint\":\"{}\"}}"
            ),
            self.seed,
            self.clients,
            self.offered,
            self.delivered,
            self.shed,
            self.dropped_queue_full,
            self.calm.to_json(),
            self.burst.to_json(),
            self.overall.to_json(),
            self.breaker.opened,
            self.breaker.trips,
            self.breaker.injected_faults,
            self.fingerprint
        )
    }
}

/// Floods the facade's own wire through [`ResilientPlatform`] until the
/// trader breaker opens — no fault is ever injected; shed requests
/// classify as transient and walk the breaker open on their own.
fn breaker_probe(seed: u64) -> BreakerProbe {
    let spec = LinkSpec::fixed(SimDuration::from_millis(1))
        .with_bandwidth(10_000)
        .with_queue_capacity_msgs(4);
    let sim_platform = SimPlatform::with_link_spec(seed, Telemetry::new(), spec);
    let mut p = ResilientPlatform::new(Box::new(sim_platform))
        .with_policy(RetryPolicy::none())
        .with_breakers(3, 1_000_000);

    for _ in 0..3 {
        // Fill the trader-client -> trader egress queue with junk so
        // the facade's next request is shed by the full queue.
        if let Some(sp) = p.inner_mut().as_any_mut().downcast_mut::<SimPlatform>() {
            let sim = sp.sim_mut();
            let (client, trader) = (NodeId::from_raw(0), NodeId::from_raw(3));
            for _ in 0..8 {
                sim.send_from(client, trader, Payload::new(0u32), 600);
            }
        }
        let _ = p.trader().import(&odp::ImportRequest::any("printer"));
    }

    let (trader_breaker, _, _) = p.breaker_states();
    let trips = p
        .telemetry()
        .counter(Layer::Env, "resilience.trader.breaker_open");
    let dropped = p
        .inner_mut()
        .as_any_mut()
        .downcast_mut::<SimPlatform>()
        .map(|sp| sp.sim().metrics().counter("dropped_queue_full"))
        .unwrap_or(0);
    BreakerProbe {
        opened: trader_breaker == BreakerState::Open,
        trips,
        dropped_queue_full: dropped,
        injected_faults: 0,
    }
}

/// Runs one flash-crowd cell: calm baseline, then the stampede.
pub fn flash_crowd(seed: u64) -> FlashCrowdResult {
    let mut b = TopologyBuilder::new();
    let clients: Vec<NodeId> = (0..FLASH_CLIENTS)
        .map(|i| b.add_node(format!("client-{i}")))
        .collect();
    let relay = b.add_node("relay");
    let server = b.add_node("server");
    for &c in &clients {
        // Client access links are fast but jittered, so each seed
        // shuffles the burst's arrival order at the relay.
        b.link(
            c,
            relay,
            LinkSpec::lan().with_jitter(SimDuration::from_millis(3)),
        );
    }
    // The bottleneck: 40 kB/s (5 ms per message) holding at most 64
    // queued messages — the flash crowd's tail queues here and the
    // overflow is shed.
    b.link(
        relay,
        server,
        LinkSpec::fixed(SimDuration::from_millis(2))
            .with_bandwidth(40_000)
            .with_queue_capacity_msgs(64),
    );

    let telemetry = Telemetry::new();
    let mut sim = Sim::new(b.build(), seed);
    sim.attach_telemetry(telemetry.clone());
    for (i, &c) in clients.iter().enumerate() {
        sim.register(
            c,
            FlashClient {
                relay,
                idx: i as u64,
            },
        );
    }
    sim.register(relay, FlashRelay { server });
    sim.register(server, FlashServer);
    sim.run_until_idle();

    let m = sim.metrics();
    let calm = PhaseQuantiles::from_summary(telemetry.histogram(Layer::Net, "net.flash.calm"));
    let burst = PhaseQuantiles::from_summary(telemetry.histogram(Layer::Net, "net.flash.burst"));
    let overall =
        PhaseQuantiles::from_summary(telemetry.histogram(Layer::Net, "net.flash.latency"));
    let mut r = FlashCrowdResult {
        seed,
        clients: FLASH_CLIENTS,
        offered: m.counter("flash_offered"),
        delivered: m.counter("flash_delivered"),
        shed: m.counter("flash_relay_shed"),
        dropped_queue_full: m.counter("dropped_queue_full"),
        calm,
        burst,
        overall,
        breaker: breaker_probe(seed),
        fingerprint: String::new(),
    };
    r.fingerprint = format!(
        "{:016x}",
        fnv1a(&format!(
            "flash:{}:{}:{}:{}:{}:{}:{}:{}:{}:{}:{}",
            r.seed,
            r.offered,
            r.delivered,
            r.shed,
            r.dropped_queue_full,
            r.calm.digest_field(),
            r.burst.digest_field(),
            r.overall.digest_field(),
            r.breaker.opened,
            r.breaker.trips,
            r.breaker.dropped_queue_full,
        ))
    );
    r
}

// ---------------------------------------------------------------------
// Gossip storm vs interactive on one thin link.
// ---------------------------------------------------------------------

/// Bulk bursts fired by the gateway (each one a gossip frame fan-out).
const STORM_BULK_BURSTS: u64 = 10;
/// Bulk messages per burst.
const STORM_BULK_PER_BURST: u64 = 12;
/// Bulk wire size (20 ms per message at 100 kB/s).
const STORM_BULK_BYTES: u64 = 2_000;
/// Interactive pings sent over the storm.
const STORM_PINGS: u64 = 40;
/// Interactive wire size.
const STORM_PING_BYTES: u64 = 64;

const TAG_PING_BASE: u64 = 1_000;

struct StormMsg {
    class: u8,
    sent_micros: u64,
}

/// The gateway: periodic bulk gossip bursts (class 1) interleaved with
/// small interactive pings (class 0), all down one thin link.
struct StormGateway {
    peer: NodeId,
}

impl Node for StormGateway {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        for j in 0..STORM_BULK_BURSTS {
            ctx.set_timer(SimDuration::from_micros(j * 100_000), j);
        }
        for k in 0..STORM_PINGS {
            // Pings land mid-burst (13 ms phase offset) so they always
            // contend with queued bulk.
            ctx.set_timer(
                SimDuration::from_micros(k * 25_000 + 13_000),
                TAG_PING_BASE + k,
            );
        }
    }

    fn on_message(&mut self, _ctx: &mut NodeCtx<'_>, _msg: Message) {}

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, _timer: simnet::TimerId, tag: u64) {
        if tag >= TAG_PING_BASE {
            let msg = StormMsg {
                class: 0,
                sent_micros: ctx.now_micros(),
            };
            let outcome = ctx.send_classed(self.peer, Payload::new(msg), STORM_PING_BYTES, 0);
            if outcome.is_shed() {
                ctx.metrics().incr("storm_ping_shed");
            }
        } else {
            for _ in 0..STORM_BULK_PER_BURST {
                let msg = StormMsg {
                    class: 1,
                    sent_micros: ctx.now_micros(),
                };
                let outcome = ctx.send_classed(self.peer, Payload::new(msg), STORM_BULK_BYTES, 1);
                if outcome.is_shed() {
                    ctx.metrics().incr("storm_bulk_shed");
                }
            }
        }
    }
}

/// The far end: every arrival becomes a per-class latency sample.
struct StormPeer;

impl Node for StormPeer {
    fn on_message(&mut self, ctx: &mut NodeCtx<'_>, msg: Message) {
        let Ok(storm) = msg.payload.downcast::<StormMsg>() else {
            return;
        };
        let latency = ctx.now_micros().saturating_sub(storm.sent_micros);
        if storm.class == 0 {
            ctx.metrics().incr("storm_ping_delivered");
            if let Some(t) = ctx.telemetry() {
                t.record_micros(Layer::Net, "net.storm.interactive", latency);
            }
        } else {
            ctx.metrics().incr("storm_bulk_delivered");
            if let Some(t) = ctx.telemetry() {
                t.record_micros(Layer::Net, "net.storm.bulk", latency);
            }
        }
    }
}

/// One discipline's half of the storm comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StormSide {
    /// Queue discipline name (`drop_tail` or `priority`).
    pub discipline: &'static str,
    /// Interactive delivery latency quantiles (micros).
    pub interactive: PhaseQuantiles,
    /// Bulk delivery latency quantiles (micros).
    pub bulk: PhaseQuantiles,
    /// Interactive pings delivered / shed.
    pub interactive_delivered: u64,
    /// Pings the full queue shed.
    pub interactive_shed: u64,
    /// Bulk messages delivered.
    pub bulk_delivered: u64,
    /// Bulk messages shed (at enqueue or displaced by class 0).
    pub bulk_shed: u64,
    /// Simulator-counted queue-overflow drops.
    pub dropped_queue_full: u64,
}

impl StormSide {
    fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"discipline\":\"{}\",\"interactive_micros\":{},",
                "\"bulk_micros\":{},\"interactive_delivered\":{},",
                "\"interactive_shed\":{},\"bulk_delivered\":{},",
                "\"bulk_shed\":{},\"dropped_queue_full\":{}}}"
            ),
            self.discipline,
            self.interactive.to_json(),
            self.bulk.to_json(),
            self.interactive_delivered,
            self.interactive_shed,
            self.bulk_delivered,
            self.bulk_shed,
            self.dropped_queue_full
        )
    }

    fn digest_field(&self) -> String {
        format!(
            "{}:{}:{}:{}:{}:{}:{}",
            self.discipline,
            self.interactive.digest_field(),
            self.bulk.digest_field(),
            self.interactive_delivered,
            self.interactive_shed,
            self.bulk_delivered,
            self.bulk_shed,
        )
    }
}

/// One measured gossip-storm cell: the same storm under both queue
/// disciplines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GossipStormResult {
    /// Simulation seed.
    pub seed: u64,
    /// The storm under [`QueueDiscipline::DropTail`].
    pub drop_tail: StormSide,
    /// The storm under [`QueueDiscipline::Priority`] (2 classes).
    pub priority: StormSide,
    /// Hex FNV-1a digest over both sides.
    pub fingerprint: String,
}

impl GossipStormResult {
    /// The cell as one JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"seed\":{},\"drop_tail\":{},\"priority\":{},\"fingerprint\":\"{}\"}}",
            self.seed,
            self.drop_tail.to_json(),
            self.priority.to_json(),
            self.fingerprint
        )
    }
}

fn storm_side(seed: u64, discipline: QueueDiscipline, name: &'static str) -> StormSide {
    let mut b = TopologyBuilder::new();
    let gw = b.add_node("site-gw");
    let peer = b.add_node("peer");
    // One thin shared wire: 100 kB/s, 64-message queue. Bulk gossip
    // demands ~2.4 s of serialisation in a 1 s window, so the queue is
    // saturated for the whole storm.
    b.link(
        gw,
        peer,
        LinkSpec::fixed(SimDuration::from_millis(5))
            .with_jitter(SimDuration::from_millis(2))
            .with_bandwidth(100_000)
            .with_queue_capacity_msgs(64)
            .with_discipline(discipline),
    );

    let telemetry = Telemetry::new();
    let mut sim = Sim::new(b.build(), seed);
    sim.attach_telemetry(telemetry.clone());
    sim.register(gw, StormGateway { peer });
    sim.register(peer, StormPeer);
    sim.run_until_idle();

    let m = sim.metrics();
    StormSide {
        discipline: name,
        interactive: PhaseQuantiles::from_summary(
            telemetry.histogram(Layer::Net, "net.storm.interactive"),
        ),
        bulk: PhaseQuantiles::from_summary(telemetry.histogram(Layer::Net, "net.storm.bulk")),
        interactive_delivered: m.counter("storm_ping_delivered"),
        interactive_shed: m.counter("storm_ping_shed"),
        bulk_delivered: m.counter("storm_bulk_delivered"),
        bulk_shed: m.counter("storm_bulk_shed"),
        dropped_queue_full: m.counter("dropped_queue_full"),
    }
}

/// Runs one gossip-storm cell under both disciplines.
pub fn gossip_storm(seed: u64) -> GossipStormResult {
    let drop_tail = storm_side(seed, QueueDiscipline::DropTail, "drop_tail");
    let priority = storm_side(seed, QueueDiscipline::Priority { classes: 2 }, "priority");
    let fingerprint = format!(
        "{:016x}",
        fnv1a(&format!(
            "storm:{}:{}:{}",
            seed,
            drop_tail.digest_field(),
            priority.digest_field()
        ))
    );
    GossipStormResult {
        seed,
        drop_tail,
        priority,
        fingerprint,
    }
}

// ---------------------------------------------------------------------
// WAN bridge between two LAN islands.
// ---------------------------------------------------------------------

/// Workers per island (plus one gateway each).
const BRIDGE_WORKERS: usize = 3;
/// Cross-island messages per worker.
const BRIDGE_CROSS_MSGS: u64 = 10;
/// Intra-island messages per worker.
const BRIDGE_INTRA_MSGS: u64 = 10;
/// Cross-island wire size (30 ms on the 20 kB/s bridge).
const BRIDGE_CROSS_BYTES: u64 = 600;
/// Intra-island wire size.
const BRIDGE_INTRA_BYTES: u64 = 200;

const TAG_INTRA_BASE: u64 = 1_000;

/// A message relayed gateway-to-gateway toward `dest`.
struct BridgeMsg {
    dest: NodeId,
    sent_micros: u64,
}

/// A same-island message, sent direct.
struct IntraMsg {
    sent_micros: u64,
}

/// An island worker: offered cross-island load (via its gateway) plus
/// an intra-island baseline stream.
struct BridgeWorker {
    gw: NodeId,
    sibling: NodeId,
    remote: Vec<NodeId>,
}

impl Node for BridgeWorker {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        for k in 0..BRIDGE_CROSS_MSGS {
            // Three workers on a 20 ms cadence offer 4.5x the bridge's
            // service rate — the byte-capped queue fills and sheds.
            ctx.set_timer(SimDuration::from_micros(k * 20_000), k);
        }
        for k in 0..BRIDGE_INTRA_MSGS {
            ctx.set_timer(
                SimDuration::from_micros(k * 30_000 + 7_000),
                TAG_INTRA_BASE + k,
            );
        }
    }

    fn on_message(&mut self, ctx: &mut NodeCtx<'_>, msg: Message) {
        if msg.payload.is::<BridgeMsg>() {
            let Ok(bridge) = msg.payload.downcast::<BridgeMsg>() else {
                return;
            };
            let latency = ctx.now_micros().saturating_sub(bridge.sent_micros);
            ctx.metrics().incr("bridge_cross_delivered");
            if let Some(t) = ctx.telemetry() {
                t.record_micros(Layer::Net, "net.bridge.cross", latency);
            }
        } else if let Ok(intra) = msg.payload.downcast::<IntraMsg>() {
            let latency = ctx.now_micros().saturating_sub(intra.sent_micros);
            ctx.metrics().incr("bridge_intra_delivered");
            if let Some(t) = ctx.telemetry() {
                t.record_micros(Layer::Net, "net.bridge.intra", latency);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, _timer: simnet::TimerId, tag: u64) {
        if tag >= TAG_INTRA_BASE {
            let msg = IntraMsg {
                sent_micros: ctx.now_micros(),
            };
            let _ = ctx.send_sized(self.sibling, Payload::new(msg), BRIDGE_INTRA_BYTES);
        } else {
            let dest = self.remote[(tag as usize) % self.remote.len()];
            let msg = BridgeMsg {
                dest,
                sent_micros: ctx.now_micros(),
            };
            let _ = ctx.send_sized(self.gw, Payload::new(msg), BRIDGE_CROSS_BYTES);
            ctx.metrics().incr("bridge_cross_offered");
        }
    }
}

/// An island gateway: local destinations get a LAN hop, everything
/// else crosses the bounded bridge to the peer gateway.
struct BridgeGateway {
    peer: NodeId,
}

impl Node for BridgeGateway {
    fn on_message(&mut self, ctx: &mut NodeCtx<'_>, msg: Message) {
        let Ok(bridge) = msg.payload.downcast::<BridgeMsg>() else {
            return;
        };
        let dest = bridge.dest;
        let me = ctx.id();
        let local = ctx.topology().link(me, dest).is_some();
        let to = if local { dest } else { self.peer };
        let outcome = ctx.send_sized(to, Payload::new(bridge), BRIDGE_CROSS_BYTES);
        if outcome.is_shed() {
            ctx.metrics().incr("bridge_shed");
        }
    }
}

/// One measured WAN-bridge cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WanBridgeResult {
    /// Simulation seed.
    pub seed: u64,
    /// Cross-island messages offered by workers.
    pub cross_offered: u64,
    /// Cross-island messages delivered end-to-end.
    pub cross_delivered: u64,
    /// Cross-island messages the bridge queue shed.
    pub cross_shed: u64,
    /// Intra-island messages delivered.
    pub intra_delivered: u64,
    /// Simulator-counted queue-overflow drops.
    pub dropped_queue_full: u64,
    /// Intra-island delivery latency quantiles (micros).
    pub intra: PhaseQuantiles,
    /// Cross-island delivery latency quantiles (micros).
    pub cross: PhaseQuantiles,
    /// Hex FNV-1a digest of every count and quantile above.
    pub fingerprint: String,
}

impl WanBridgeResult {
    /// The cell as one JSON object.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"seed\":{},\"cross_offered\":{},\"cross_delivered\":{},",
                "\"cross_shed\":{},\"intra_delivered\":{},",
                "\"dropped_queue_full\":{},\"intra_micros\":{},",
                "\"cross_micros\":{},\"fingerprint\":\"{}\"}}"
            ),
            self.seed,
            self.cross_offered,
            self.cross_delivered,
            self.cross_shed,
            self.intra_delivered,
            self.dropped_queue_full,
            self.intra.to_json(),
            self.cross.to_json(),
            self.fingerprint
        )
    }
}

/// Runs one WAN-bridge cell: two 4-node islands, one byte-capped
/// 20 kB/s bridge each way.
pub fn wan_bridge(seed: u64) -> WanBridgeResult {
    let mut b = TopologyBuilder::new();
    let gw_a = b.add_node("gw-a");
    let gw_b = b.add_node("gw-b");
    let workers_a: Vec<NodeId> = (0..BRIDGE_WORKERS)
        .map(|i| b.add_node(format!("wa-{i}")))
        .collect();
    let workers_b: Vec<NodeId> = (0..BRIDGE_WORKERS)
        .map(|i| b.add_node(format!("wb-{i}")))
        .collect();
    for island in [(&workers_a, gw_a), (&workers_b, gw_b)] {
        let (workers, gw) = island;
        for (i, &w) in workers.iter().enumerate() {
            b.link_both(w, gw, LinkSpec::lan());
            let sib = workers[(i + 1) % workers.len()];
            b.link_both(w, sib, LinkSpec::lan());
        }
    }
    // The bridge: WAN latency + jitter, 20 kB/s, and a queue bounded
    // in *bytes* — about thirteen 600-byte messages deep.
    let bridge = LinkSpec::wan()
        .with_bandwidth(20_000)
        .with_queue_capacity_bytes(8_192);
    b.link_both(gw_a, gw_b, bridge);

    let telemetry = Telemetry::new();
    let mut sim = Sim::new(b.build(), seed);
    sim.attach_telemetry(telemetry.clone());
    sim.register(gw_a, BridgeGateway { peer: gw_b });
    sim.register(gw_b, BridgeGateway { peer: gw_a });
    for island in [
        (&workers_a, gw_a, &workers_b),
        (&workers_b, gw_b, &workers_a),
    ] {
        let (workers, gw, remote) = island;
        for (i, &w) in workers.iter().enumerate() {
            sim.register(
                w,
                BridgeWorker {
                    gw,
                    sibling: workers[(i + 1) % workers.len()],
                    remote: remote.clone(),
                },
            );
        }
    }
    sim.run_until_idle();

    let m = sim.metrics();
    let mut r = WanBridgeResult {
        seed,
        cross_offered: m.counter("bridge_cross_offered"),
        cross_delivered: m.counter("bridge_cross_delivered"),
        cross_shed: m.counter("bridge_shed"),
        intra_delivered: m.counter("bridge_intra_delivered"),
        dropped_queue_full: m.counter("dropped_queue_full"),
        intra: PhaseQuantiles::from_summary(telemetry.histogram(Layer::Net, "net.bridge.intra")),
        cross: PhaseQuantiles::from_summary(telemetry.histogram(Layer::Net, "net.bridge.cross")),
        fingerprint: String::new(),
    };
    r.fingerprint = format!(
        "{:016x}",
        fnv1a(&format!(
            "bridge:{}:{}:{}:{}:{}:{}:{}:{}",
            r.seed,
            r.cross_offered,
            r.cross_delivered,
            r.cross_shed,
            r.intra_delivered,
            r.dropped_queue_full,
            r.intra.digest_field(),
            r.cross.digest_field(),
        ))
    );
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flash_crowd_has_heavy_tail_sheds_and_opens_the_breaker() {
        let r = flash_crowd(1);
        assert_eq!(
            r.offered,
            2 * FLASH_MSGS_PER_CLIENT * FLASH_CLIENTS as u64,
            "calm + burst offered load"
        );
        assert!(r.delivered > 0 && r.delivered < r.offered, "{r:?}");
        assert!(r.shed > 0, "burst overflow must shed: {r:?}");
        assert!(r.dropped_queue_full >= r.shed, "{r:?}");
        // The headline: queueing alone makes the tail, p99 >> p50.
        assert!(
            r.overall.p99 >= 10 * r.overall.p50.max(1),
            "p99 {} must dwarf p50 {}",
            r.overall.p99,
            r.overall.p50
        );
        assert!(r.burst.p99 > r.calm.p99, "{r:?}");
        // And sustained overload alone opens a breaker: zero faults.
        assert!(r.breaker.opened, "{:?}", r.breaker);
        assert_eq!(r.breaker.trips, 1, "{:?}", r.breaker);
        assert_eq!(r.breaker.injected_faults, 0);
        assert!(r.breaker.dropped_queue_full >= 3, "{:?}", r.breaker);
    }

    #[test]
    fn flash_crowd_replays_bit_for_bit_per_seed() {
        for seed in SEEDS {
            let a = flash_crowd(seed);
            let b = flash_crowd(seed);
            assert_eq!(a, b, "seed {seed} must replay exactly");
        }
    }

    #[test]
    fn priority_discipline_shields_interactive_traffic() {
        let r = gossip_storm(1);
        // Same storm, same seed: priority delivers every ping fast
        // while drop-tail makes pings wait behind (or die with) bulk.
        assert_eq!(
            r.priority.interactive_delivered, STORM_PINGS,
            "class 0 displaces bulk, never sheds: {:?}",
            r.priority
        );
        assert!(
            r.priority.interactive.p99 * 4 <= r.drop_tail.interactive.p99.max(1),
            "priority p99 {} vs drop-tail p99 {}",
            r.priority.interactive.p99,
            r.drop_tail.interactive.p99
        );
        assert!(
            r.drop_tail.dropped_queue_full > 0,
            "the storm must overflow: {:?}",
            r.drop_tail
        );
        let b = gossip_storm(1);
        assert_eq!(r, b, "storm must replay exactly");
    }

    #[test]
    fn wan_bridge_queues_and_sheds_cross_island_traffic_only() {
        let r = wan_bridge(1);
        assert_eq!(
            r.cross_offered,
            2 * BRIDGE_WORKERS as u64 * BRIDGE_CROSS_MSGS
        );
        assert!(r.cross_shed > 0, "bridge must shed: {r:?}");
        assert_eq!(
            r.intra_delivered,
            2 * BRIDGE_WORKERS as u64 * BRIDGE_INTRA_MSGS,
            "intra-island traffic never queues: {r:?}"
        );
        assert!(
            r.cross.p50 > 5 * r.intra.p50.max(1),
            "cross p50 {} vs intra p50 {}",
            r.cross.p50,
            r.intra.p50
        );
        let b = wan_bridge(1);
        assert_eq!(r, b, "bridge must replay exactly");
    }

    #[test]
    fn json_cells_are_wellformed() {
        let flash = flash_crowd(1).to_json();
        let storm = gossip_storm(1).to_json();
        let bridge = wan_bridge(1).to_json();
        for json in [&flash, &storm, &bridge] {
            assert_eq!(
                json.matches('{').count(),
                json.matches('}').count(),
                "balanced braces: {json}"
            );
            assert!(json.contains("\"seed\":1"));
            assert!(json.contains("\"fingerprint\":\""));
        }
        assert!(flash.contains("\"breaker_opened\":true"));
        assert!(storm.contains("\"discipline\":\"drop_tail\""));
        assert!(storm.contains("\"discipline\":\"priority\""));
        assert!(bridge.contains("\"cross_micros\":{"));
    }
}
