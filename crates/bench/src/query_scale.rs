//! Standing-query scaling — incremental evaluation vs re-scan.
//!
//! Builders and the measured experiment behind `BENCH_query_scale.json`
//! (experiment QS): a [`SubscriptionRegistry`] holding a three-query
//! panel (attribute filter, edge predicate, one-hop join) over DIT
//! populations of 200 / 2 000 / 20 000 person entries, driven by a
//! seeded 64-operation mutation stream. For every operation the cell
//! records two costs:
//!
//! * **incremental** — entries the registry actually evaluated to keep
//!   every result set current (the `query.eval.entry` counter). The
//!   headline claim: this stays flat (within 2×) as the population
//!   grows 100×, because interest indexes narrow each change to the
//!   entries it can affect.
//! * **re-scan** — entries a from-scratch
//!   [`SubscriptionRegistry::oracle_matches`] pass walks for the same
//!   freshness, which grows linearly with the population.
//!
//! Both are deterministic counts; per-phase wall-clock quantiles ride
//! along for color but sit outside the bit-for-bit guarantee (the
//! bench runner scrubs them before replay comparison). Every cell also
//! cross-checks correctness: after the stream, each incremental result
//! set must equal its oracle re-scan.

use std::sync::Arc;
use std::time::Instant;

use cscw_directory::{Attribute, ChangeCollector, Dit, Entry};
use cscw_kernel::{Layer, Telemetry};
use cscw_query::{SubscriptionId, SubscriptionRegistry};

use crate::fed_scale::{fnv1a, PhaseQuantiles};

/// DIT population sizes the experiment sweeps (100× end to end).
pub const POPULATIONS: [usize; 3] = [200, 2_000, 20_000];

/// Seeds every cell sweeps.
pub const SEEDS: [u64; 3] = [1, 2, 3];

/// Mutations replayed per cell.
pub const OPS: u64 = 64;

/// Projects the population's `workson` edges point at.
const PROJECTS: usize = 8;

/// The standing-query panel: one attribute filter, one edge literal,
/// one one-hop join.
pub const PANEL: [&str; 3] = [
    r#"class = person and sn = "Surname7""#,
    r#"class = person and occupies "cn=coordinator""#,
    r#"class = person and works-on (projectstate = active)"#,
];

/// SplitMix64 — the cell's deterministic operation stream.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn person_dn(i: u64) -> String {
    format!("c=UK,o=org{},cn=person{i}", i % 10)
}

fn project_dn(j: u64) -> String {
    format!("c=UK,cn=proj{j}")
}

/// A DIT with `population` person entries (surnames, coordinator roles
/// and project edges spread deterministically) plus [`PROJECTS`]
/// project entries, half of them `active`.
///
/// # Errors
///
/// [`cscw_directory::DirectoryError`] if a fixture fails to insert.
pub fn build_population(
    population: usize,
) -> Result<(Dit, ChangeCollector), cscw_directory::DirectoryError> {
    let collector = ChangeCollector::new();
    let mut dit = Dit::new();
    dit.add(
        Entry::new("c=UK".parse()?)
            .with_class("country")
            .with_attr(Attribute::single("c", "UK")),
    )?;
    for o in 0..10 {
        dit.add(
            Entry::new(format!("c=UK,o=org{o}").parse()?)
                .with_class("organization")
                .with_attr(Attribute::single("o", format!("org{o}"))),
        )?;
    }
    for j in 0..PROJECTS as u64 {
        dit.add(
            Entry::new(project_dn(j).parse()?)
                .with_class("cscwproject")
                .with_attr(Attribute::single("cn", format!("proj{j}")))
                .with_attr(Attribute::single(
                    "projectstate",
                    if j % 2 == 0 { "active" } else { "dormant" },
                )),
        )?;
    }
    for i in 0..population as u64 {
        let mut e = Entry::new(person_dn(i).parse()?)
            .with_class("person")
            .with_attr(Attribute::single("cn", format!("person{i}")))
            .with_attr(Attribute::single("sn", format!("Surname{}", i % 50)));
        if i % 3 == 0 {
            e.put_attr(Attribute::single("occupiesrole", "cn=coordinator"));
        }
        if i % 2 == 0 {
            e.put_attr(Attribute::single(
                "workson",
                project_dn(i % PROJECTS as u64),
            ));
        }
        dit.add(e)?;
    }
    // The build itself is not part of the measured stream.
    collector.drain();
    dit.observe(Arc::new(collector.clone()));
    Ok((dit, collector))
}

/// One measured cell of the query-scaling sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryScaleResult {
    /// Person entries in the DIT.
    pub population: usize,
    /// Seed the mutation stream derived from.
    pub seed: u64,
    /// Standing queries registered.
    pub subscriptions: usize,
    /// Mutations replayed.
    pub ops: u64,
    /// Deltas the registry emitted over the stream.
    pub deltas_emitted: u64,
    /// Entries evaluated incrementally across the whole stream.
    pub incremental_evals: u64,
    /// [`Self::incremental_evals`] / [`Self::ops`] — the flat curve.
    pub incremental_evals_per_delta: u64,
    /// Entries a re-scan pass walked across the whole stream.
    pub rescan_entries: u64,
    /// [`Self::rescan_entries`] / [`Self::ops`] — the linear curve.
    pub rescan_entries_per_delta: u64,
    /// Wall-clock quantiles of the incremental apply per operation
    /// (outside the determinism guarantee; scrubbed before replay
    /// comparison).
    pub incremental_micros: PhaseQuantiles,
    /// Wall-clock quantiles of the oracle re-scan per operation (same
    /// caveat).
    pub rescan_micros: PhaseQuantiles,
    /// Hex FNV-1a digest over every deterministic field above plus the
    /// final result sets — equal across reruns of the same cell.
    pub fingerprint: String,
}

impl QueryScaleResult {
    /// The cell as one JSON object.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"population\":{},\"seed\":{},\"subscriptions\":{},",
                "\"ops\":{},\"deltas_emitted\":{},",
                "\"incremental_evals\":{},\"incremental_evals_per_delta\":{},",
                "\"rescan_entries\":{},\"rescan_entries_per_delta\":{},",
                "\"incremental_micros\":{},\"rescan_micros\":{},",
                "\"fingerprint\":\"{}\"}}"
            ),
            self.population,
            self.seed,
            self.subscriptions,
            self.ops,
            self.deltas_emitted,
            self.incremental_evals,
            self.incremental_evals_per_delta,
            self.rescan_entries,
            self.rescan_entries_per_delta,
            self.incremental_micros.to_json(),
            self.rescan_micros.to_json(),
            self.fingerprint
        )
    }
}

/// Runs one `(population, seed)` cell: prime the panel, replay the
/// mutation stream, measure both cost curves, then cross-check every
/// incremental result set against its oracle.
///
/// # Errors
///
/// Population build errors and [`cscw_query::QueryError`] from the
/// fixed panel (which must always compile).
pub fn run(population: usize, seed: u64) -> Result<QueryScaleResult, Box<dyn std::error::Error>> {
    let (mut dit, collector) = build_population(population)?;
    let telemetry = Telemetry::new();
    let mut reg = SubscriptionRegistry::with_telemetry(telemetry.clone());
    let subs: Vec<SubscriptionId> = PANEL
        .iter()
        .map(|src| {
            let id = reg.subscribe(src, 0)?;
            reg.prime(id, &dit, 0)?;
            Ok::<_, cscw_query::QueryError>(id)
        })
        .collect::<Result<_, _>>()?;
    // Priming walks the tree once per query; the measured stream
    // starts after it.
    let evals_at_start = telemetry.counter(Layer::Query, "query.eval.entry");

    let mut rng = Rng(seed);
    let mut deltas_emitted = 0u64;
    let mut rescan_entries = 0u64;
    for op in 0..OPS {
        let person: cscw_directory::Dn = person_dn(rng.below(population as u64)).parse()?;
        match rng.below(3) {
            0 => {
                let sn = format!("Surname{}", rng.below(50));
                dit.modify(&person, |e| {
                    e.replace_attr(Attribute::single("sn", sn.as_str()));
                })?;
            }
            1 => {
                let occupied = dit
                    .get(&person)
                    .is_some_and(|e| e.attr("occupiesrole").is_some());
                dit.modify(&person, |e| {
                    if occupied {
                        e.remove_attr(&"occupiesrole".into());
                    } else {
                        e.put_attr(Attribute::single("occupiesrole", "cn=coordinator"));
                    }
                })?;
            }
            _ => {
                let target = project_dn(rng.below(PROJECTS as u64));
                dit.modify(&person, |e| {
                    e.replace_attr(Attribute::single("workson", target.as_str()));
                })?;
            }
        }

        let t0 = Instant::now();
        deltas_emitted += reg.apply_dit_changes(&collector.drain(), &dit, op).len() as u64;
        telemetry.record_micros(
            Layer::Query,
            "query.phase.incremental",
            t0.elapsed().as_micros() as u64,
        );

        // The alternative the incremental path replaces: re-scan one
        // subscription (round-robin) from scratch for the same
        // freshness.
        let probe = subs[op as usize % subs.len()];
        let t0 = Instant::now();
        let _ = reg.oracle_matches(probe, &dit);
        telemetry.record_micros(
            Layer::Query,
            "query.phase.rescan",
            t0.elapsed().as_micros() as u64,
        );
        rescan_entries += dit.len() as u64;
    }

    // Correctness: the incremental sets must equal their oracles.
    let mut digest = String::new();
    for (id, src) in subs.iter().zip(PANEL) {
        let incremental = reg.matches(*id).ok_or("subscription vanished")?;
        let oracle = reg
            .oracle_matches(*id, &dit)
            .ok_or("subscription vanished")?;
        assert_eq!(
            incremental, oracle,
            "population {population} seed {seed}: {src:?} diverged from re-scan"
        );
        digest.push_str(&format!("{}:{};", incremental.len(), {
            let joined: Vec<&str> = incremental.iter().map(String::as_str).collect();
            format!("{:016x}", fnv1a(&joined.join(",")))
        }));
    }

    let incremental_evals = telemetry.counter(Layer::Query, "query.eval.entry") - evals_at_start;
    let mut r = QueryScaleResult {
        population,
        seed,
        subscriptions: subs.len(),
        ops: OPS,
        deltas_emitted,
        incremental_evals,
        incremental_evals_per_delta: incremental_evals.div_ceil(OPS),
        rescan_entries,
        rescan_entries_per_delta: rescan_entries / OPS,
        incremental_micros: PhaseQuantiles::from_summary(
            telemetry.histogram(Layer::Query, "query.phase.incremental"),
        ),
        rescan_micros: PhaseQuantiles::from_summary(
            telemetry.histogram(Layer::Query, "query.phase.rescan"),
        ),
        fingerprint: String::new(),
    };
    r.fingerprint = format!(
        "{:016x}",
        fnv1a(&format!(
            "query_scale:{}:{}:{}:{}:{}:{}:{}",
            r.population,
            r.seed,
            r.ops,
            r.deltas_emitted,
            r.incremental_evals,
            r.rescan_entries,
            digest,
        ))
    );
    Ok(r)
}

/// A cell with its wall-clock quantiles zeroed — the deterministic
/// view compared across reruns.
pub fn scrub(mut r: QueryScaleResult) -> QueryScaleResult {
    r.incremental_micros = PhaseQuantiles::default();
    r.rescan_micros = PhaseQuantiles::default();
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smallest_cell_is_incremental_and_replays() {
        let a = run(200, 1).expect("cell");
        assert_eq!(a.ops, OPS);
        assert!(a.deltas_emitted > 0, "{a:?}");
        // The panel evaluates a handful of entries per op, not the tree.
        assert!(
            a.incremental_evals_per_delta * 10 <= a.rescan_entries_per_delta,
            "incremental {} must be far below re-scan {}",
            a.incremental_evals_per_delta,
            a.rescan_entries_per_delta
        );
        let b = run(200, 1).expect("cell");
        assert_eq!(scrub(a), scrub(b), "cell must replay bit-for-bit");
    }

    #[test]
    fn incremental_cost_is_flat_while_rescan_grows() {
        let small = run(200, 1).expect("cell");
        let large = run(2_000, 1).expect("cell");
        assert!(
            large.incremental_evals_per_delta <= 2 * small.incremental_evals_per_delta.max(1),
            "10x population must not double per-delta cost: {} -> {}",
            small.incremental_evals_per_delta,
            large.incremental_evals_per_delta
        );
        assert!(
            large.rescan_entries_per_delta >= 5 * small.rescan_entries_per_delta,
            "re-scan must track population: {} -> {}",
            small.rescan_entries_per_delta,
            large.rescan_entries_per_delta
        );
    }

    #[test]
    fn json_cell_is_wellformed() {
        let r = run(200, 1).expect("cell");
        let json = r.to_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"population\":200"));
        assert!(json.contains("\"incremental_evals_per_delta\":"));
        assert!(json.contains("\"rescan_entries_per_delta\":"));
        assert!(json.contains("\"incremental_micros\":{\"p50\":"));
        assert!(json.contains("\"fingerprint\":\""));
    }
}
