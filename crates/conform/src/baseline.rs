//! The committed violation baseline — a ratchet, not an allowlist.
//!
//! `conform-baseline.toml` records, per `(rule, file)`, how many
//! findings existed when the baseline was last written. A check fails
//! when any `(rule, file)` count *exceeds* its baselined count (new
//! debt), and reports stale entries when a count has dropped (debt paid
//! off — regenerate the baseline to lock the gain in; `--deny` makes
//! staleness a failure too, so CI keeps the ratchet tight).
//!
//! The format is a hand-parsed TOML subset (array-of-tables with three
//! scalar keys), because the workspace's vendored `serde` stubs ship no
//! TOML support and the analyzer depends on nothing it checks.

use std::collections::BTreeMap;

use crate::diag::Finding;

/// Parsed baseline: `(rule, file) -> count`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    entries: BTreeMap<(String, String), u32>,
}

/// The outcome of comparing findings against a baseline.
#[derive(Debug, Clone, Default)]
pub struct RatchetReport {
    /// Findings in excess of the baseline, per `(rule, file)`: the
    /// offending findings themselves (all of that bucket, for context).
    pub regressions: Vec<(String, String, u32, u32, Vec<Finding>)>,
    /// Buckets whose observed count is below the baseline:
    /// `(rule, file, baseline, observed)`.
    pub stale: Vec<(String, String, u32, u32)>,
}

impl RatchetReport {
    /// True when nothing exceeds the baseline.
    pub fn is_pass(&self) -> bool {
        self.regressions.is_empty()
    }
}

impl Baseline {
    /// An empty baseline (everything is a regression).
    pub fn empty() -> Self {
        Baseline::default()
    }

    /// Number of `(rule, file)` buckets.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries exist.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total baselined finding count.
    pub fn total(&self) -> u32 {
        self.entries.values().sum()
    }

    /// Total baselined finding count for one rule across all files.
    pub fn total_for_rule(&self, rule: &str) -> u32 {
        self.entries
            .iter()
            .filter(|((r, _), _)| r == rule)
            .map(|(_, &c)| c)
            .sum()
    }

    /// The baselined count for a bucket.
    pub fn count(&self, rule: &str, file: &str) -> u32 {
        self.entries
            .get(&(rule.to_owned(), file.to_owned()))
            .copied()
            .unwrap_or(0)
    }

    /// Parses the baseline file format.
    ///
    /// # Errors
    ///
    /// A message naming the first malformed line.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut entries = BTreeMap::new();
        let mut current: Option<(Option<String>, Option<String>, Option<u32>)> = None;
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "[[entry]]" {
                if let Some(done) = current.take() {
                    Self::finish(done, &mut entries, idx)?;
                }
                current = Some((None, None, None));
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!("baseline line {}: expected key = value", idx + 1));
            };
            let Some(cur) = current.as_mut() else {
                return Err(format!(
                    "baseline line {}: key outside any [[entry]]",
                    idx + 1
                ));
            };
            let key = key.trim();
            let value = value.trim();
            match key {
                "rule" => cur.0 = Some(unquote(value, idx)?),
                "file" => cur.1 = Some(unquote(value, idx)?),
                "count" => {
                    cur.2 = Some(value.parse::<u32>().map_err(|_| {
                        format!("baseline line {}: count must be an integer", idx + 1)
                    })?)
                }
                other => {
                    return Err(format!("baseline line {}: unknown key {other:?}", idx + 1));
                }
            }
        }
        if let Some(done) = current.take() {
            Self::finish(done, &mut entries, text.lines().count())?;
        }
        Ok(Baseline { entries })
    }

    fn finish(
        entry: (Option<String>, Option<String>, Option<u32>),
        entries: &mut BTreeMap<(String, String), u32>,
        near_line: usize,
    ) -> Result<(), String> {
        match entry {
            (Some(rule), Some(file), Some(count)) => {
                entries.insert((rule, file), count);
                Ok(())
            }
            _ => Err(format!(
                "baseline entry ending near line {near_line} is missing rule, file or count"
            )),
        }
    }

    /// Builds a baseline that exactly covers `findings`.
    pub fn from_findings(findings: &[Finding]) -> Self {
        let mut entries: BTreeMap<(String, String), u32> = BTreeMap::new();
        for f in findings {
            *entries
                .entry((f.rule.to_owned(), f.file.clone()))
                .or_insert(0) += 1;
        }
        Baseline { entries }
    }

    /// Serialises to the baseline file format.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "# cscw-conform violation baseline — a ratchet: counts may only go down.\n\
             # Regenerate with `cargo run -p cscw-conform -- check --write-baseline`\n\
             # after paying down debt; never hand-edit counts upward.\n",
        );
        for ((rule, file), count) in &self.entries {
            out.push_str(&format!(
                "\n[[entry]]\nrule = \"{rule}\"\nfile = \"{file}\"\ncount = {count}\n"
            ));
        }
        out
    }

    /// Compares observed findings against this baseline.
    pub fn ratchet(&self, findings: &[Finding]) -> RatchetReport {
        let mut observed: BTreeMap<(String, String), Vec<Finding>> = BTreeMap::new();
        for f in findings {
            observed
                .entry((f.rule.to_owned(), f.file.clone()))
                .or_default()
                .push(f.clone());
        }
        let mut report = RatchetReport::default();
        for ((rule, file), bucket) in &observed {
            let allowed = self.count(rule, file);
            let got = bucket.len() as u32;
            if got > allowed {
                report
                    .regressions
                    .push((rule.clone(), file.clone(), allowed, got, bucket.clone()));
            } else if got < allowed {
                report
                    .stale
                    .push((rule.clone(), file.clone(), allowed, got));
            }
        }
        for ((rule, file), &allowed) in &self.entries {
            if !observed.contains_key(&(rule.clone(), file.clone())) {
                report.stale.push((rule.clone(), file.clone(), allowed, 0));
            }
        }
        report
    }
}

fn unquote(value: &str, idx: usize) -> Result<String, String> {
    let v = value.trim();
    if v.len() >= 2 && v.starts_with('"') && v.ends_with('"') {
        Ok(v[1..v.len() - 1].to_owned())
    } else {
        Err(format!(
            "baseline line {}: expected a quoted string, got {v:?}",
            idx + 1
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, file: &str, line: u32) -> Finding {
        Finding::new(rule, file, line, "m")
    }

    #[test]
    fn round_trips() {
        let fs = vec![
            finding("R1", "a.rs", 1),
            finding("R1", "a.rs", 2),
            finding("R2", "b.rs", 3),
        ];
        let b = Baseline::from_findings(&fs);
        let parsed = Baseline::parse(&b.render()).unwrap();
        assert_eq!(b, parsed);
        assert_eq!(parsed.count("R1", "a.rs"), 2);
        assert_eq!(parsed.total(), 3);
        assert_eq!(parsed.total_for_rule("R1"), 2);
        assert_eq!(parsed.total_for_rule("R3"), 0);
    }

    #[test]
    fn ratchet_catches_regressions_and_staleness() {
        let base = Baseline::from_findings(&[finding("R1", "a.rs", 1), finding("R2", "b.rs", 1)]);
        // One more R1 in a.rs, R2 in b.rs paid off, new file c.rs dirty.
        let now = vec![
            finding("R1", "a.rs", 1),
            finding("R1", "a.rs", 9),
            finding("R1", "c.rs", 2),
        ];
        let rep = base.ratchet(&now);
        assert!(!rep.is_pass());
        assert_eq!(rep.regressions.len(), 2);
        assert_eq!(rep.stale.len(), 1);
        assert_eq!(rep.stale[0].1, "b.rs");
    }

    #[test]
    fn exact_match_passes() {
        let fs = vec![finding("R1", "a.rs", 5)];
        let rep = Baseline::from_findings(&fs).ratchet(&fs);
        assert!(rep.is_pass());
        assert!(rep.stale.is_empty());
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(Baseline::parse("rule = \"R1\"").is_err());
        assert!(Baseline::parse("[[entry]]\nrule = R1\n").is_err());
        assert!(Baseline::parse("[[entry]]\nrule = \"R1\"\nfile = \"a\"\n").is_err());
        assert!(Baseline::parse("[[entry]]\nrule = \"R1\"\nfile = \"a\"\ncount = x\n").is_err());
        assert!(Baseline::parse("# empty\n").unwrap().is_empty());
    }
}
