//! Findings and report rendering (human-readable and JSON).

use std::fmt;

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule id: `R1`…`R4`.
    pub rule: &'static str,
    /// Repo-relative file path (forward slashes).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// What is wrong.
    pub message: String,
}

impl Finding {
    /// Builds a finding.
    pub fn new(
        rule: &'static str,
        file: impl Into<String>,
        line: u32,
        message: impl Into<String>,
    ) -> Self {
        Finding {
            rule,
            file: file.into(),
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Sorts findings into the stable report order: rule, file, line.
pub fn sort_findings(findings: &mut [Finding]) {
    findings.sort_by(|a, b| {
        (a.rule, &a.file, a.line, &a.message).cmp(&(b.rule, &b.file, b.line, &b.message))
    });
}

/// Escapes a string for JSON output.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders findings as a JSON array (stable field order).
pub fn findings_to_json(findings: &[Finding]) -> String {
    let mut out = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"message\":\"{}\"}}",
            f.rule,
            json_escape(&f.file),
            f.line,
            json_escape(&f.message)
        ));
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_clickable() {
        let f = Finding::new("R1", "crates/x/src/lib.rs", 7, "bad import");
        assert_eq!(f.to_string(), "crates/x/src/lib.rs:7: [R1] bad import");
    }

    #[test]
    fn json_escapes_and_orders() {
        let fs = vec![Finding::new("R2", "a.rs", 1, "say \"no\"\n")];
        let json = findings_to_json(&fs);
        assert!(json.contains("\\\"no\\\"\\n"));
        assert!(json.starts_with('[') && json.ends_with(']'));
    }

    #[test]
    fn sort_is_rule_then_file_then_line() {
        let mut fs = vec![
            Finding::new("R2", "b.rs", 1, "x"),
            Finding::new("R1", "z.rs", 9, "x"),
            Finding::new("R1", "a.rs", 3, "x"),
        ];
        sort_findings(&mut fs);
        assert_eq!(fs[0].rule, "R1");
        assert_eq!(fs[0].file, "a.rs");
        assert_eq!(fs[2].rule, "R2");
    }
}
