//! Phase-2 workspace model: a symbol index and call graph built from
//! the per-file token streams.
//!
//! The first four rules are per-file pattern rules; R5's determinism
//! discipline needs to know *where a value flows*, not just what a line
//! looks like — a `HashMap` iteration is harmless in a debug dump and
//! replay-breaking inside anything that feeds a fingerprint. This
//! module recovers just enough structure from the lossy lexer to answer
//! that question:
//!
//! * every `fn` definition with its body's token range (trait method
//!   *declarations* — signature then `;` — define nothing and are
//!   skipped),
//! * every call site inside a body (direct `f(..)`, method `.f(..)`,
//!   path `m::f(..)`, and turbofish `f::<T>(..)` forms; macros
//!   `f!(..)` are not calls),
//! * name-based resolution: a call to `f` is an edge to *every*
//!   workspace `fn f`. This over-approximates — exactly the right
//!   direction for a conformance gate, where a missed edge is a silent
//!   hole and a spurious one is at worst a waiver.
//!
//! On top of the graph sits the *determinism-sensitivity* closure used
//! by R5: a function is sensitive when it is, calls (transitively), or
//! is called (transitively) by a **sink** — a fingerprint, a wire
//! codec, `EventQueue` ordering, or committed-bench output. Callers of
//! `schedule` decide event order; callees of `fingerprint` produce the
//! bytes being fingerprinted; both directions matter.

use std::collections::{BTreeMap, VecDeque};

use crate::lexer::Token;

/// Identifiers that look like calls (`if (cond)`) but never are.
const NON_CALL_KEYWORDS: [&str; 18] = [
    "if", "while", "for", "match", "return", "loop", "in", "as", "move", "let", "else", "fn",
    "impl", "where", "use", "box", "await", "ref",
];

/// One `fn` definition somewhere in the workspace.
#[derive(Debug, Clone)]
pub struct FnInfo {
    /// The function's bare name (no path qualification).
    pub name: String,
    /// Index of the owning file in the order files were given to
    /// [`CallGraph::build`].
    pub file: usize,
    /// Source line of the `fn` keyword.
    pub line: u32,
    /// Token index of the body's opening `{` in the file's stream.
    pub body_open: usize,
    /// Token index of the matching `}`.
    pub body_close: usize,
}

/// Why a function is determinism-sensitive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SinkKind {
    /// Produces or feeds a canonical fingerprint.
    Fingerprint,
    /// Produces or feeds wire-codec bytes.
    WireCodec,
    /// Decides `EventQueue` scheduling order.
    EventOrdering,
    /// Produces or feeds committed benchmark output.
    BenchOutput,
}

impl SinkKind {
    /// Human phrase for diagnostics.
    pub fn describe(self) -> &'static str {
        match self {
            SinkKind::Fingerprint => "a fingerprint",
            SinkKind::WireCodec => "a wire codec",
            SinkKind::EventOrdering => "`EventQueue` ordering",
            SinkKind::BenchOutput => "committed-bench output",
        }
    }
}

/// Classifies a function name as a determinism sink.
fn sink_kind(name: &str) -> Option<SinkKind> {
    if name.contains("fingerprint") {
        return Some(SinkKind::Fingerprint);
    }
    if name == "encode"
        || name == "decode"
        || name.starts_with("encode_")
        || name.starts_with("decode_")
    {
        return Some(SinkKind::WireCodec);
    }
    if name == "schedule" || name == "schedule_after" {
        return Some(SinkKind::EventOrdering);
    }
    if name == "to_json" {
        return Some(SinkKind::BenchOutput);
    }
    None
}

/// How a sensitive function relates to its sink.
#[derive(Debug, Clone)]
pub struct Sensitivity {
    /// Index of the sink function in [`CallGraph::fns`].
    pub sink: usize,
    /// What the sink is.
    pub kind: SinkKind,
}

/// The workspace call graph plus the determinism-sensitivity closure.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// Every `fn` definition found, in file-then-position order.
    pub fns: Vec<FnInfo>,
    callees: Vec<Vec<usize>>,
    callers: Vec<Vec<usize>>,
    sensitive: Vec<Option<Sensitivity>>,
    per_file: BTreeMap<usize, Vec<usize>>,
}

impl CallGraph {
    /// Builds the graph over `files` — one test-stripped token stream
    /// per analysed file, in a stable order the caller remembers.
    pub fn build(files: &[&[Token]]) -> CallGraph {
        let mut g = CallGraph::default();
        for (file, toks) in files.iter().enumerate() {
            collect_fns(file, toks, &mut g.fns);
        }
        for (idx, f) in g.fns.iter().enumerate() {
            g.per_file.entry(f.file).or_default().push(idx);
        }

        // Resolve calls by bare name: one edge per same-named fn.
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (idx, f) in g.fns.iter().enumerate() {
            by_name.entry(f.name.as_str()).or_default().push(idx);
        }
        g.callees = vec![Vec::new(); g.fns.len()];
        g.callers = vec![Vec::new(); g.fns.len()];
        for caller in 0..g.fns.len() {
            let f = &g.fns[caller];
            let toks = files[f.file];
            let nested: Vec<(usize, usize)> = g.per_file[&f.file]
                .iter()
                .map(|&i| &g.fns[i])
                .filter(|n| n.body_open > f.body_open && n.body_close < f.body_close)
                .map(|n| (n.body_open, n.body_close))
                .collect();
            for name in call_names(toks, f.body_open + 1, f.body_close, &nested) {
                for &callee in by_name.get(name.as_str()).into_iter().flatten() {
                    if !g.callees[caller].contains(&callee) {
                        g.callees[caller].push(callee);
                        g.callers[callee].push(caller);
                    }
                }
            }
        }

        // Sensitivity: BFS out of every sink, along callers *and*
        // callees. First discovery wins, so each function reports one
        // stable representative sink.
        g.sensitive = vec![None; g.fns.len()];
        let mut queue = VecDeque::new();
        for (idx, f) in g.fns.iter().enumerate() {
            if let Some(kind) = sink_kind(&f.name) {
                g.sensitive[idx] = Some(Sensitivity { sink: idx, kind });
                queue.push_back(idx);
            }
        }
        while let Some(at) = queue.pop_front() {
            let Some(tag) = g.sensitive[at].clone() else {
                continue; // unreachable: only marked fns are queued
            };
            for &next in g.callers[at].iter().chain(&g.callees[at]) {
                if g.sensitive[next].is_none() {
                    g.sensitive[next] = Some(tag.clone());
                    queue.push_back(next);
                }
            }
        }
        g
    }

    /// The innermost function whose body contains token `tok` of `file`.
    pub fn fn_at(&self, file: usize, tok: usize) -> Option<usize> {
        self.per_file
            .get(&file)?
            .iter()
            .copied()
            .filter(|&i| {
                let f = &self.fns[i];
                f.body_open < tok && tok < f.body_close
            })
            .max_by_key(|&i| self.fns[i].body_open)
    }

    /// Indices of the functions defined in `file`.
    pub fn fns_in_file(&self, file: usize) -> &[usize] {
        self.per_file.get(&file).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Why `f` is determinism-sensitive, if it is.
    pub fn sensitivity(&self, f: usize) -> Option<&Sensitivity> {
        self.sensitive.get(f)?.as_ref()
    }

    /// Resolved callees of `f`.
    pub fn callees(&self, f: usize) -> &[usize] {
        &self.callees[f]
    }

    /// The first function with this bare name, if any is defined.
    pub fn fn_named(&self, name: &str) -> Option<usize> {
        self.fns.iter().position(|f| f.name == name)
    }
}

/// Finds the `}` matching the `{` at `open`.
fn matching_brace(toks: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < toks.len() {
        if toks[i].kind.is_punct("{") {
            depth += 1;
        } else if toks[i].kind.is_punct("}") {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    toks.len().saturating_sub(1)
}

/// Collects every `fn` definition in one token stream.
fn collect_fns(file: usize, toks: &[Token], out: &mut Vec<FnInfo>) {
    for i in 0..toks.len() {
        if !toks[i].kind.is_ident("fn") {
            continue;
        }
        let Some(name) = toks.get(i + 1).and_then(|t| t.kind.ident()) else {
            continue;
        };
        // Walk the signature to its body. A `;` first means a bodyless
        // trait declaration; bracket depth keeps `;` inside default
        // const-generic args or array types from ending the walk early.
        let mut depth = 0i32;
        let mut j = i + 2;
        while j < toks.len() {
            let k = &toks[j].kind;
            if k.is_punct("(") || k.is_punct("[") {
                depth += 1;
            } else if k.is_punct(")") || k.is_punct("]") {
                depth -= 1;
            } else if depth == 0 && k.is_punct(";") {
                break;
            } else if depth == 0 && k.is_punct("{") {
                out.push(FnInfo {
                    name: name.to_owned(),
                    file,
                    line: toks[i].line,
                    body_open: j,
                    body_close: matching_brace(toks, j),
                });
                break;
            }
            j += 1;
        }
    }
}

/// Extracts callee names from `toks[start..end)`, skipping the `nested`
/// body ranges of inner `fn` items (their calls belong to them).
fn call_names(toks: &[Token], start: usize, end: usize, nested: &[(usize, usize)]) -> Vec<String> {
    let mut names = Vec::new();
    let mut i = start;
    while i < end.min(toks.len()) {
        if let Some(&(_, close)) = nested.iter().find(|(open, _)| *open == i) {
            i = close + 1;
            continue;
        }
        let Some(name) = toks[i].kind.ident() else {
            i += 1;
            continue;
        };
        if NON_CALL_KEYWORDS.contains(&name) || (i > start && toks[i - 1].kind.is_ident("fn")) {
            i += 1;
            continue;
        }
        let next = toks.get(i + 1).map(|t| &t.kind);
        // `name(..)` — including as the tail of `.name(` / `::name(`.
        if next.is_some_and(|k| k.is_punct("(")) {
            names.push(name.to_owned());
        }
        // Turbofish: `name::<T, U>(..)`.
        if next.is_some_and(|k| k.is_punct("::"))
            && toks.get(i + 2).is_some_and(|t| t.kind.is_punct("<"))
        {
            let mut angle = 0i32;
            let mut j = i + 2;
            while j < end.min(toks.len()) {
                if toks[j].kind.is_punct("<") {
                    angle += 1;
                } else if toks[j].kind.is_punct(">") {
                    angle -= 1;
                    if angle == 0 {
                        break;
                    }
                }
                j += 1;
            }
            if angle == 0 && toks.get(j + 1).is_some_and(|t| t.kind.is_punct("(")) {
                names.push(name.to_owned());
            }
        }
        i += 1;
    }
    names
}
