//! A hand-rolled token scanner for Rust source.
//!
//! The workspace's dependencies are vendored API stubs, so `syn` is not
//! available; the conformance rules only need a token stream with line
//! numbers, with comments, strings and char literals out of the way
//! (doc-comment examples and string contents must never trigger a
//! rule). The scanner is deliberately lossy: literals keep no content,
//! numbers keep no value.

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// 1-based source line the token starts on.
    pub line: u32,
    /// What the token is.
    pub kind: TokenKind,
}

/// Token classification — just enough structure for the rules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`self`, `fn`, `use`, names…).
    Ident(String),
    /// Punctuation; `::`, `->` and `=>` are fused, the rest are single
    /// characters.
    Punct(&'static str),
    /// Any single punctuation character not in the fused set.
    PunctChar(char),
    /// A string literal. Plain `"…"` literals keep their raw inner
    /// text (R4 checks telemetry *names*); raw/byte forms keep none —
    /// no rule inspects those, and their content must stay inert.
    Str(String),
    /// A character or byte literal; content dropped.
    CharLit,
    /// A numeric literal; value dropped.
    Num,
    /// A lifetime such as `'a`.
    Lifetime,
}

impl TokenKind {
    /// The identifier text, if this is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match self {
            TokenKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// True when the token is exactly this identifier.
    pub fn is_ident(&self, s: &str) -> bool {
        self.ident() == Some(s)
    }

    /// The raw inner text of a plain string literal (escapes kept
    /// verbatim; raw/byte literals yield the empty string).
    pub fn str_lit(&self) -> Option<&str> {
        match self {
            TokenKind::Str(s) => Some(s),
            _ => None,
        }
    }

    /// True when the token is this punctuation string (fused or single).
    pub fn is_punct(&self, s: &str) -> bool {
        match self {
            TokenKind::Punct(p) => *p == s,
            TokenKind::PunctChar(c) => {
                let mut buf = [0u8; 4];
                c.encode_utf8(&mut buf) == s
            }
            _ => false,
        }
    }
}

/// Lexes one file's source into tokens, skipping comments and
/// whitespace. Unterminated literals are tolerated (lexed to EOF): the
/// analyzer must never panic on the code it is judging.
pub fn lex(source: &str) -> Vec<Token> {
    let bytes = source.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    let mut line: u32 = 1;

    macro_rules! bump_lines {
        ($range:expr) => {
            for &b in &bytes[$range] {
                if b == b'\n' {
                    line += 1;
                }
            }
        };
    }

    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                let start = i;
                let mut depth = 1u32;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                bump_lines!(start..i);
            }
            b'"' => {
                let tok_line = line;
                let start = i;
                i = skip_string(bytes, i);
                bump_lines!(start..i);
                // Inner text between the quotes (empty if unterminated).
                let inner = if i > start + 1 && bytes[i - 1] == b'"' {
                    std::str::from_utf8(&bytes[start + 1..i - 1])
                        .unwrap_or("")
                        .to_owned()
                } else {
                    String::new()
                };
                tokens.push(Token {
                    line: tok_line,
                    kind: TokenKind::Str(inner),
                });
            }
            b'r' | b'b' if starts_raw_or_byte_literal(bytes, i) => {
                let tok_line = line;
                let start = i;
                let (next, kind) = skip_prefixed_literal(bytes, i);
                i = next;
                bump_lines!(start..i);
                tokens.push(Token {
                    line: tok_line,
                    kind,
                });
            }
            b'\'' => {
                // Lifetime or char literal.
                if is_lifetime(bytes, i) {
                    i += 1;
                    while i < bytes.len() && is_ident_byte(bytes[i]) {
                        i += 1;
                    }
                    tokens.push(Token {
                        line,
                        kind: TokenKind::Lifetime,
                    });
                } else {
                    let tok_line = line;
                    let start = i;
                    i = skip_char_literal(bytes, i);
                    bump_lines!(start..i);
                    tokens.push(Token {
                        line: tok_line,
                        kind: TokenKind::CharLit,
                    });
                }
            }
            b'0'..=b'9' => {
                while i < bytes.len() && (is_ident_byte(bytes[i])) {
                    i += 1;
                }
                tokens.push(Token {
                    line,
                    kind: TokenKind::Num,
                });
            }
            _ if is_ident_start(b) => {
                let start = i;
                while i < bytes.len() && is_ident_byte(bytes[i]) {
                    i += 1;
                }
                let text = std::str::from_utf8(&bytes[start..i])
                    .unwrap_or("")
                    .to_owned();
                tokens.push(Token {
                    line,
                    kind: TokenKind::Ident(text),
                });
            }
            b':' if i + 1 < bytes.len() && bytes[i + 1] == b':' => {
                tokens.push(Token {
                    line,
                    kind: TokenKind::Punct("::"),
                });
                i += 2;
            }
            b'-' if i + 1 < bytes.len() && bytes[i + 1] == b'>' => {
                tokens.push(Token {
                    line,
                    kind: TokenKind::Punct("->"),
                });
                i += 2;
            }
            b'=' if i + 1 < bytes.len() && bytes[i + 1] == b'>' => {
                tokens.push(Token {
                    line,
                    kind: TokenKind::Punct("=>"),
                });
                i += 2;
            }
            _ => {
                tokens.push(Token {
                    line,
                    kind: TokenKind::PunctChar(b as char),
                });
                i += 1;
            }
        }
    }
    tokens
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Is the `'` at `i` a lifetime (rather than a char literal)?
fn is_lifetime(bytes: &[u8], i: usize) -> bool {
    // 'x' / '\n' are char literals; 'a (no closing quote right after
    // one ident char) is a lifetime. 'static, '_  are lifetimes.
    match bytes.get(i + 1) {
        Some(b'\\') => false,
        Some(&c) if is_ident_start(c) => bytes.get(i + 2) != Some(&b'\''),
        _ => false,
    }
}

fn skip_char_literal(bytes: &[u8], mut i: usize) -> usize {
    i += 1; // opening '
    if i < bytes.len() && bytes[i] == b'\\' {
        i += 2;
        // \u{...}
        while i < bytes.len() && bytes[i] != b'\'' {
            i += 1;
        }
    } else if i < bytes.len() {
        i += 1;
    }
    if i < bytes.len() && bytes[i] == b'\'' {
        i += 1;
    }
    i
}

fn skip_string(bytes: &[u8], mut i: usize) -> usize {
    i += 1; // opening "
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// Does `r`/`b` at `i` begin a raw string, byte string or byte char?
fn starts_raw_or_byte_literal(bytes: &[u8], i: usize) -> bool {
    match bytes[i] {
        b'r' => matches!(bytes.get(i + 1), Some(b'"') | Some(b'#')) && raw_has_quote(bytes, i + 1),
        b'b' => {
            matches!(bytes.get(i + 1), Some(b'"') | Some(b'\''))
                || (bytes.get(i + 1) == Some(&b'r') && raw_has_quote(bytes, i + 2))
        }
        _ => false,
    }
}

/// From a position at `#`* or `"`, confirm `#`* then `"` follows (so
/// `r#macro_name` raw identifiers are not mistaken for raw strings).
fn raw_has_quote(bytes: &[u8], mut i: usize) -> bool {
    while bytes.get(i) == Some(&b'#') {
        i += 1;
    }
    bytes.get(i) == Some(&b'"')
}

fn skip_prefixed_literal(bytes: &[u8], i: usize) -> (usize, TokenKind) {
    match bytes[i] {
        b'r' => (skip_raw_string(bytes, i + 1), TokenKind::Str(String::new())),
        b'b' => match bytes.get(i + 1) {
            Some(b'"') => (skip_string(bytes, i + 1), TokenKind::Str(String::new())),
            Some(b'\'') => (skip_char_literal(bytes, i + 1), TokenKind::CharLit),
            Some(b'r') => (skip_raw_string(bytes, i + 2), TokenKind::Str(String::new())),
            _ => (i + 1, TokenKind::Ident("b".into())),
        },
        _ => (i + 1, TokenKind::Str(String::new())),
    }
}

/// `i` points at the first `#` or the `"` of a raw string.
fn skip_raw_string(bytes: &[u8], mut i: usize) -> usize {
    let mut hashes = 0usize;
    while bytes.get(i) == Some(&b'#') {
        hashes += 1;
        i += 1;
    }
    if bytes.get(i) != Some(&b'"') {
        return i;
    }
    i += 1;
    while i < bytes.len() {
        if bytes[i] == b'"' {
            let mut j = 0;
            while j < hashes && bytes.get(i + 1 + j) == Some(&b'#') {
                j += 1;
            }
            if j == hashes {
                return i + 1 + hashes;
            }
        }
        i += 1;
    }
    i
}

/// Removes token ranges belonging to `#[cfg(test)]`- and `#[test]`-
/// attributed items, so rules only see shipping code. The scan is
/// syntactic: after such an attribute (plus any further attributes) the
/// next item is skipped — to its matching `}` if a brace opens at
/// nesting depth zero first, otherwise to the terminating `;`.
pub fn strip_test_code(tokens: Vec<Token>) -> Vec<Token> {
    let mut out = Vec::with_capacity(tokens.len());
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].kind.is_punct("#")
            && matches!(tokens.get(i + 1), Some(t) if t.kind.is_punct("["))
        {
            let (attr_end, is_test) = scan_attribute(&tokens, i);
            if is_test {
                i = skip_item(&tokens, attr_end);
                continue;
            }
        }
        out.push(tokens[i].clone());
        i += 1;
    }
    out
}

/// From `#` at `i`, returns (index after `]`, whether the attribute is
/// `#[test]`, `#[cfg(test)]` or any cfg(...) mentioning `test`).
fn scan_attribute(tokens: &[Token], i: usize) -> (usize, bool) {
    let mut depth = 0i32;
    let mut j = i + 1;
    let mut saw_cfg_or_test = false;
    let mut saw_test_ident = false;
    let mut first_ident: Option<&str> = None;
    while j < tokens.len() {
        let t = &tokens[j];
        if t.kind.is_punct("[") {
            depth += 1;
        } else if t.kind.is_punct("]") {
            depth -= 1;
            if depth == 0 {
                j += 1;
                break;
            }
        } else if let Some(id) = t.kind.ident() {
            if first_ident.is_none() {
                first_ident = Some(match id {
                    "cfg" => "cfg",
                    "test" => "test",
                    _ => "other",
                });
            }
            if id == "cfg" {
                saw_cfg_or_test = true;
            }
            if id == "test" {
                saw_test_ident = true;
            }
        }
        j += 1;
    }
    let is_test_attr = match first_ident {
        Some("test") => true,
        Some("cfg") => saw_cfg_or_test && saw_test_ident,
        _ => false,
    };
    (j, is_test_attr)
}

/// Skips one item starting at `i` (which may begin with further
/// attributes): consumes attributes, then tokens until a `{ … }` block
/// closes or a `;` terminates, whichever comes first at depth zero.
fn skip_item(tokens: &[Token], mut i: usize) -> usize {
    // Consume any further attributes on the same item.
    while i < tokens.len()
        && tokens[i].kind.is_punct("#")
        && matches!(tokens.get(i + 1), Some(t) if t.kind.is_punct("["))
    {
        let (end, _) = scan_attribute(tokens, i);
        i = end;
    }
    let mut paren = 0i32;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.kind.is_punct("(") || t.kind.is_punct("[") {
            paren += 1;
        } else if t.kind.is_punct(")") || t.kind.is_punct("]") {
            paren -= 1;
        } else if paren == 0 && t.kind.is_punct(";") {
            return i + 1;
        } else if paren == 0 && t.kind.is_punct("{") {
            // Skip the block.
            let mut braces = 1i32;
            i += 1;
            while i < tokens.len() && braces > 0 {
                if tokens[i].kind.is_punct("{") {
                    braces += 1;
                } else if tokens[i].kind.is_punct("}") {
                    braces -= 1;
                }
                i += 1;
            }
            return i;
        }
        i += 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter_map(|t| t.kind.ident().map(str::to_owned))
            .collect()
    }

    #[test]
    fn comments_and_strings_are_silent() {
        let src = r##"
            // use simnet::Evil;
            /* use simnet::Worse; /* nested */ */
            /// let x = foo.unwrap();
            let s = "use simnet::InString"; // trailing
            let r = r#"use simnet::InRaw"#;
            let c = 'x';
            real_ident();
        "##;
        let ids = idents(src);
        assert!(ids.contains(&"real_ident".to_owned()));
        assert!(!ids.iter().any(|i| i.contains("simnet")));
        assert!(!ids.iter().any(|i| i == "unwrap"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) -> &'a str { 'q' }");
        let lifetimes = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .count();
        let chars = toks.iter().filter(|t| t.kind == TokenKind::CharLit).count();
        assert_eq!(lifetimes, 3);
        assert_eq!(chars, 1);
    }

    #[test]
    fn fused_punct_and_lines() {
        let toks = lex("a::b\n->c");
        assert!(toks[1].kind.is_punct("::"));
        assert_eq!(toks[0].line, 1);
        assert!(toks[3].kind.is_punct("->"));
        assert_eq!(toks[3].line, 2);
    }

    #[test]
    fn cfg_test_modules_are_stripped() {
        let src = r#"
            fn keep() { a.unwrap(); }
            #[cfg(test)]
            mod tests {
                fn gone() { b.unwrap(); }
            }
            fn also_keep() {}
        "#;
        let toks = strip_test_code(lex(src));
        let ids: Vec<_> = toks.iter().filter_map(|t| t.kind.ident()).collect();
        assert!(ids.contains(&"keep"));
        assert!(ids.contains(&"also_keep"));
        assert!(!ids.contains(&"gone"));
        assert!(!ids.contains(&"b"));
    }

    #[test]
    fn test_attributed_fns_are_stripped() {
        let src = r#"
            #[test]
            fn gone() { x.unwrap(); }
            #[cfg(feature = "x")]
            fn keep() {}
        "#;
        let toks = strip_test_code(lex(src));
        let ids: Vec<_> = toks.iter().filter_map(|t| t.kind.ident()).collect();
        assert!(!ids.contains(&"gone"));
        assert!(ids.contains(&"keep"));
    }

    #[test]
    fn cfg_test_use_items_are_stripped() {
        let src = "#[cfg(test)] use simnet::Sim; use odp::Trader;";
        let toks = strip_test_code(lex(src));
        let ids: Vec<_> = toks.iter().filter_map(|t| t.kind.ident()).collect();
        assert!(!ids.contains(&"simnet"));
        assert!(ids.contains(&"odp"));
    }

    #[test]
    fn raw_identifiers_are_not_raw_strings() {
        // `r#type` must not be mistaken for the start of a raw string
        // (which would swallow the rest of the file); everything after
        // it still lexes.
        let ids = idents("r#type = 1; rest");
        assert!(ids.contains(&"type".to_owned()));
        assert!(ids.contains(&"rest".to_owned()));
    }
}
