//! `cscw-conform` — a workspace conformance analyzer.
//!
//! Statically enforces the architecture the paper's Figure 4 promises
//! and that PR 1's port refactor established, over the workspace's own
//! shipping source:
//!
//! * **R1** — layer dependencies respect the partial order
//!   `kernel ≤ simnet ≤ {messaging, directory} ≤ odp ≤ core ≤ groupware`,
//!   with `simnet` encapsulated below the communication services.
//! * **R2** — no panics in library code; public fallible APIs return
//!   `cscw_kernel::LayerError`-classified error types.
//! * **R3** — lock-acquisition order is acyclic workspace-wide and no
//!   lock guard is held across a `Platform` port call.
//! * **R4** — telemetry events carry the emitting crate's own layer tag.
//! * **R5** — determinism discipline: no wall-clock reads, unseeded
//!   randomness, or `HashMap`/`HashSet` iteration in code that feeds a
//!   fingerprint, wire codec, `EventQueue` ordering, or committed-bench
//!   output (judged over the phase-2 call graph).
//! * **R6** — span discipline: every `span_begin` balances with a
//!   `span_end` on all paths, spans crossing `Platform` ports thread a
//!   `SpanContext`, and span names obey the dotted grammar.
//!
//! Analysis runs in two phases: phase 1 lexes every file and builds the
//! workspace-wide symbol index + call graph ([`graph`]); phase 2 runs
//! the rules, the last two of which consult the graph.
//!
//! The analyzer is deliberately std-only (hand-rolled lexer, no `syn`,
//! no proc-macro machinery): it must run offline in the same container
//! as the code it checks, and it must depend on nothing it judges.
//!
//! Existing debt is tracked in `conform-baseline.toml` as a ratchet:
//! new findings fail the check, baselined counts may only go down.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod diag;
pub mod graph;
pub mod lexer;
pub mod rules;
pub mod workspace;

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::path::Path;

use baseline::{Baseline, RatchetReport};
use diag::{sort_findings, Finding};
use graph::CallGraph;
use lexer::{lex, strip_test_code};
use rules::{
    check_determinism, check_errors, check_layering, check_locks, check_spans, check_telemetry,
    collect_classified_errors, collect_hash_names, FileContext, LockGraph,
};
use workspace::{discover, Waivers};

/// The result of analysing a workspace.
#[derive(Debug, Default)]
pub struct Analysis {
    /// All unwaived findings, in stable report order.
    pub findings: Vec<Finding>,
    /// Number of files analysed.
    pub files: usize,
    /// Number of crates analysed.
    pub crates: usize,
    /// Error types accepted as `LayerError`-classified.
    pub classified_errors: BTreeSet<String>,
}

/// Analyses the workspace rooted at `root` and returns every finding.
///
/// # Errors
///
/// I/O failures reading the workspace.
pub fn analyze(root: &Path) -> std::io::Result<Analysis> {
    let crates = discover(root)?;
    let mut analysis = Analysis {
        crates: crates.len(),
        ..Analysis::default()
    };

    // Phase 1: read + lex every file once, discovering the set of
    // LayerError-classified error types and each crate's hash-typed
    // identifiers as we go; then raise the workspace-wide call graph
    // over all the token streams.
    struct PreparedFile<'a> {
        krate: &'a workspace::WorkspaceCrate,
        rel_path: String,
        tokens: Vec<lexer::Token>,
        waivers: Waivers,
    }
    let mut prepared: Vec<PreparedFile<'_>> = Vec::new();
    let mut hash_names: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for krate in &crates {
        for path in &krate.files {
            let source = fs::read_to_string(path)?;
            let rel_path = rel_path(root, path);
            let waivers = Waivers::parse(&source);
            let tokens = strip_test_code(lex(&source));
            collect_classified_errors(&tokens, &mut analysis.classified_errors);
            collect_hash_names(
                &tokens,
                hash_names.entry(krate.dir_name.clone()).or_default(),
            );
            prepared.push(PreparedFile {
                krate,
                rel_path,
                tokens,
                waivers,
            });
        }
    }
    analysis.files = prepared.len();
    let streams: Vec<&[lexer::Token]> = prepared.iter().map(|f| f.tokens.as_slice()).collect();
    let call_graph = CallGraph::build(&streams);

    // Phase 2: run the per-file rules; R3 also accumulates the global
    // lock-acquisition graph, whose cycles are judged at the end, and
    // R5/R6 consult the call graph.
    let empty = BTreeSet::new();
    let mut graph = LockGraph::new();
    for (idx, file) in prepared.iter().enumerate() {
        let ctx = FileContext {
            krate: file.krate,
            rel_path: file.rel_path.clone(),
            tokens: &file.tokens,
            waivers: &file.waivers,
        };
        check_layering(&ctx, &mut analysis.findings);
        check_errors(&ctx, &analysis.classified_errors, &mut analysis.findings);
        check_locks(&ctx, &mut graph, &mut analysis.findings);
        check_telemetry(&ctx, &mut analysis.findings);
        let crate_hashes = hash_names.get(&file.krate.dir_name).unwrap_or(&empty);
        check_determinism(&ctx, idx, &call_graph, crate_hashes, &mut analysis.findings);
        check_spans(&ctx, idx, &call_graph, &mut analysis.findings);
    }
    analysis.findings.extend(graph.inversion_findings());

    sort_findings(&mut analysis.findings);
    Ok(analysis)
}

/// Root-relative path with forward slashes, for stable report keys.
fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.to_string_lossy().replace('\\', "/")
}

/// The outcome of a full `check` run.
#[derive(Debug)]
pub struct CheckOutcome {
    /// The analysis itself.
    pub analysis: Analysis,
    /// The baseline the findings were ratcheted against.
    pub baseline: Baseline,
    /// Regression/staleness report.
    pub report: RatchetReport,
}

impl CheckOutcome {
    /// True when the check passes: no findings exceed the baseline, and
    /// (under `deny_stale`) no baselined debt has silently disappeared.
    pub fn is_pass(&self, deny_stale: bool) -> bool {
        self.report.is_pass() && (!deny_stale || self.report.stale.is_empty())
    }
}

/// Analyses `root` and ratchets the findings against `baseline`.
///
/// # Errors
///
/// I/O failures reading the workspace.
pub fn check(root: &Path, baseline: Baseline) -> std::io::Result<CheckOutcome> {
    let analysis = analyze(root)?;
    let report = baseline.ratchet(&analysis.findings);
    Ok(CheckOutcome {
        analysis,
        baseline,
        report,
    })
}
