//! CLI for the conformance analyzer.
//!
//! ```text
//! cargo run -p cscw-conform -- check [--root PATH] [--baseline PATH]
//!                                    [--format human|json|github]
//!                                    [-D|--deny] [--write-baseline]
//! ```
//!
//! `--format github` renders findings as GitHub Actions workflow
//! commands (`::error file=…,line=…::…`) so a failing `conform` job
//! annotates the offending lines right in the PR diff.
//!
//! Exit codes: `0` pass, `1` conformance failure (regressions, or stale
//! baseline entries under `--deny`), `2` usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use cscw_conform::baseline::Baseline;
use cscw_conform::diag::{findings_to_json, json_escape};
use cscw_conform::{check, CheckOutcome};

const USAGE: &str = "\
usage: cscw-conform check [options]

options:
  --root PATH        workspace root to analyse (default: .)
  --baseline PATH    baseline file (default: <root>/conform-baseline.toml)
  --format FMT       human | json | github (default: human)
  -D, --deny         also fail on stale baseline entries
  --write-baseline   rewrite the baseline to match current findings
  -h, --help         show this help
";

#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Human,
    Json,
    Github,
}

struct Options {
    root: PathBuf,
    baseline_path: Option<PathBuf>,
    format: Format,
    deny: bool,
    write_baseline: bool,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        root: PathBuf::from("."),
        baseline_path: None,
        format: Format::Human,
        deny: false,
        write_baseline: false,
    };
    let mut saw_check = false;
    let mut i = 0usize;
    while i < args.len() {
        let arg = args[i].as_str();
        match arg {
            "check" if !saw_check => saw_check = true,
            "--root" | "--baseline" | "--format" => {
                let value = args
                    .get(i + 1)
                    .ok_or_else(|| format!("{arg} needs a value"))?;
                if arg == "--root" {
                    opts.root = PathBuf::from(value);
                } else if arg == "--baseline" {
                    opts.baseline_path = Some(PathBuf::from(value));
                } else {
                    match value.as_str() {
                        "human" => opts.format = Format::Human,
                        "json" => opts.format = Format::Json,
                        "github" => opts.format = Format::Github,
                        other => return Err(format!("unknown format {other:?}")),
                    }
                }
                i += 1;
            }
            "-D" | "--deny" => opts.deny = true,
            "--write-baseline" => opts.write_baseline = true,
            "-h" | "--help" => return Err(String::new()),
            other => return Err(format!("unknown argument {other:?}")),
        }
        i += 1;
    }
    if !saw_check {
        return Err("expected the `check` subcommand".to_owned());
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}\n");
            }
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    match run(&opts) {
        Ok(pass) => {
            if pass {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run(opts: &Options) -> Result<bool, String> {
    let baseline_path = opts
        .baseline_path
        .clone()
        .unwrap_or_else(|| opts.root.join("conform-baseline.toml"));
    let baseline = if baseline_path.is_file() {
        let text = std::fs::read_to_string(&baseline_path)
            .map_err(|e| format!("reading {}: {e}", baseline_path.display()))?;
        Baseline::parse(&text)?
    } else {
        Baseline::empty()
    };

    let outcome = check(&opts.root, baseline)
        .map_err(|e| format!("analysing {}: {e}", opts.root.display()))?;

    if opts.write_baseline {
        let regenerated = Baseline::from_findings(&outcome.analysis.findings);
        std::fs::write(&baseline_path, regenerated.render())
            .map_err(|e| format!("writing {}: {e}", baseline_path.display()))?;
        eprintln!(
            "wrote {} ({} entries, {} findings)",
            baseline_path.display(),
            regenerated.len(),
            regenerated.total()
        );
        return Ok(true);
    }

    let pass = outcome.is_pass(opts.deny);
    match opts.format {
        Format::Human => print!("{}", render_human(&outcome, opts.deny, pass)),
        Format::Json => print!("{}", render_json(&outcome, pass)),
        Format::Github => print!("{}", render_github(&outcome, opts.deny, pass)),
    }
    Ok(pass)
}

fn render_human(outcome: &CheckOutcome, deny: bool, pass: bool) -> String {
    let mut out = String::new();
    let a = &outcome.analysis;
    out.push_str(&format!(
        "cscw-conform: {} crates, {} files, {} findings ({} baselined)\n",
        a.crates,
        a.files,
        a.findings.len(),
        outcome.baseline.total()
    ));
    if !outcome.report.regressions.is_empty() {
        out.push_str("\nregressions (counts above baseline):\n");
        for (rule, file, allowed, got, bucket) in &outcome.report.regressions {
            out.push_str(&format!(
                "  {rule} {file}: {got} findings, baseline allows {allowed}\n"
            ));
            for f in bucket {
                out.push_str(&format!("    {f}\n"));
            }
        }
    }
    if !outcome.report.stale.is_empty() {
        out.push_str("\nstale baseline entries (debt paid down — regenerate the baseline):\n");
        for (rule, file, allowed, got) in &outcome.report.stale {
            out.push_str(&format!(
                "  {rule} {file}: baseline says {allowed}, found {got}\n"
            ));
        }
        if deny {
            out.push_str("  (--deny: staleness is a failure)\n");
        }
    }
    out.push_str(if pass {
        "\nconformance: PASS\n"
    } else {
        "\nconformance: FAIL\n"
    });
    out
}

/// GitHub Actions workflow commands: one `::error` per finding above
/// the baseline (annotating the PR diff at file+line), one `::warning`
/// per stale baseline entry, and a human tail line for the job log.
fn render_github(outcome: &CheckOutcome, deny: bool, pass: bool) -> String {
    let mut out = String::new();
    for (rule, _file, _allowed, _got, bucket) in &outcome.report.regressions {
        for f in bucket {
            out.push_str(&format!(
                "::error file={},line={},title=cscw-conform {rule}::{}\n",
                gh_property(&f.file),
                f.line,
                gh_message(&f.message)
            ));
        }
    }
    for (rule, file, allowed, got) in &outcome.report.stale {
        out.push_str(&format!(
            "::warning file={},title=cscw-conform {rule} stale baseline::baseline \
             says {allowed}, found {got}{}\n",
            gh_property(file),
            if deny { " (failing under --deny)" } else { "" }
        ));
    }
    out.push_str(&format!(
        "cscw-conform: {} findings, conformance {}\n",
        outcome.analysis.findings.len(),
        if pass { "PASS" } else { "FAIL" }
    ));
    out
}

/// Escapes a workflow-command message (`%`, CR, LF).
fn gh_message(s: &str) -> String {
    s.replace('%', "%25")
        .replace('\r', "%0D")
        .replace('\n', "%0A")
}

/// Escapes a workflow-command property (message escapes plus `:`, `,`).
fn gh_property(s: &str) -> String {
    gh_message(s).replace(':', "%3A").replace(',', "%2C")
}

fn render_json(outcome: &CheckOutcome, pass: bool) -> String {
    let a = &outcome.analysis;
    let mut out = String::from("{");
    out.push_str(&format!(
        "\"pass\":{pass},\"crates\":{},\"files\":{},\"baseline_total\":{},",
        a.crates,
        a.files,
        outcome.baseline.total()
    ));
    out.push_str(&format!("\"findings\":{},", findings_to_json(&a.findings)));
    out.push_str("\"regressions\":[");
    for (i, (rule, file, allowed, got, _)) in outcome.report.regressions.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"rule\":\"{}\",\"file\":\"{}\",\"baseline\":{allowed},\"found\":{got}}}",
            json_escape(rule),
            json_escape(file)
        ));
    }
    out.push_str("],\"stale\":[");
    for (i, (rule, file, allowed, got)) in outcome.report.stale.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"rule\":\"{}\",\"file\":\"{}\",\"baseline\":{allowed},\"found\":{got}}}",
            json_escape(rule),
            json_escape(file)
        ));
    }
    out.push_str("]}\n");
    out
}
