//! The conformance rules.
//!
//! | Rule | Enforces | Paper anchor |
//! |------|----------|--------------|
//! | R1   | Figure-4 layer dependencies | §3/§6, Fig. 4 |
//! | R2   | panic-free libraries, `LayerError`-classified public APIs | layered failure model |
//! | R3   | lock acquisition order, no locks across `Platform` ports | engineering viewpoint |
//! | R4   | telemetry events carry the emitting crate's layer tag | telemetry layers |
//! | R5   | determinism discipline: no wall-clock, unseeded rng, or hash-order iteration feeding a fingerprint, wire codec, `EventQueue` ordering, or committed-bench output (call-graph-aware) | replication transparency |
//! | R6   | span discipline: `span_begin`/`span_end` balance on every path, `SpanContext` threaded across `Platform` ports, dotted span names | engineering-viewpoint bindings |

mod r1_layering;
mod r2_errors;
mod r3_locks;
mod r4_telemetry;
mod r5_determinism;
mod r6_spans;

pub use r1_layering::check_layering;
pub use r2_errors::{check_errors, collect_classified_errors};
pub use r3_locks::{check_locks, LockGraph};
pub use r4_telemetry::check_telemetry;
pub use r5_determinism::{check_determinism, collect_hash_names};
pub use r6_spans::check_spans;

use crate::lexer::Token;
use crate::workspace::{CrateRole, Waivers, WorkspaceCrate};

/// Everything a rule needs to know about one file.
pub struct FileContext<'a> {
    /// The owning crate.
    pub krate: &'a WorkspaceCrate,
    /// Repo-relative path with forward slashes (report key).
    pub rel_path: String,
    /// Test-stripped token stream.
    pub tokens: &'a [Token],
    /// Waiver pragmas parsed from the raw source.
    pub waivers: &'a Waivers,
}

impl FileContext<'_> {
    /// The crate's role.
    pub fn role(&self) -> CrateRole {
        self.krate.role
    }
}

/// Walks back from the token *before* `call_dot` (the `.` of a method
/// call) to recover the receiver chain as text, e.g. `self.org` for
/// `self.org.read()`. Stops at any token that cannot continue a simple
/// field/path chain. Returns `None` when there is no receiver (the dot
/// opened the expression).
pub fn receiver_chain(tokens: &[Token], call_dot: usize) -> Option<String> {
    let mut parts: Vec<String> = Vec::new();
    let mut i = call_dot; // index of the `.`
    loop {
        if i == 0 {
            break;
        }
        let prev = &tokens[i - 1];
        match &prev.kind {
            crate::lexer::TokenKind::Ident(id) => {
                parts.push(id.clone());
                i -= 1;
                // A chain continues through `.` or `::` to its left.
                if i == 0 {
                    break;
                }
                let link = &tokens[i - 1];
                if link.kind.is_punct(".") || link.kind.is_punct("::") {
                    parts.push(if link.kind.is_punct(".") { "." } else { "::" }.to_owned());
                    i -= 1;
                } else {
                    break;
                }
            }
            // `)` would mean the receiver is itself a call — treat the
            // chain as opaque rather than misattributing it.
            _ => break,
        }
    }
    if parts.is_empty() {
        return None;
    }
    parts.reverse();
    Some(parts.concat())
}

/// Finds the index of the `)` matching the `(` at `open`.
pub fn matching_paren(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < tokens.len() {
        if tokens[i].kind.is_punct("(") {
            depth += 1;
        } else if tokens[i].kind.is_punct(")") {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    tokens.len().saturating_sub(1)
}
