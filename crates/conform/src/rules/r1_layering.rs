//! R1 — layer dependencies (Figure 4, §3/§6).
//!
//! A layer crate may reference only crates *below* itself in the stack,
//! with two sharpenings:
//!
//! * `cscw-kernel` is the substrate: every crate may use it.
//! * `simnet` (the net layer) is **encapsulated** below the
//!   communication services: only `cscw-messaging` and `cscw-directory`
//!   may name it. Crates above them reach the network through the
//!   environment's `Platform` ports — naming `simnet` from `odp`,
//!   `mocca` or `groupware` bypasses the port abstraction PR 1
//!   introduced (the exact erosion §6's engineering language warns
//!   about).
//!
//! Peer crates (`cscw-messaging` ↔ `cscw-directory`) must not couple,
//! and upward references are always violations. The facade and tool
//! crates assemble the whole stack and are exempt.

use std::collections::BTreeMap;

use super::FileContext;
use crate::diag::Finding;
use crate::lexer::TokenKind;
use crate::workspace::{CrateRole, LayerTag};

/// Import names of workspace crates, mapped to their layer.
fn layer_of_import(name: &str) -> Option<LayerTag> {
    Some(match name {
        "cscw_kernel" => LayerTag::Kernel,
        "simnet" => LayerTag::Net,
        "cscw_messaging" => LayerTag::Messaging,
        "cscw_directory" => LayerTag::Directory,
        "odp" => LayerTag::Odp,
        "cscw_federation" => LayerTag::Federation,
        "cscw_query" => LayerTag::Query,
        "mocca" => LayerTag::Env,
        "groupware" => LayerTag::App,
        _ => return None,
    })
}

/// Checks one file's crate references against the layer order.
pub fn check_layering(ctx: &FileContext<'_>, findings: &mut Vec<Finding>) {
    let CrateRole::Layer(own) = ctx.role() else {
        return; // facade and tools assemble the stack freely
    };
    // Count one reference per (crate, line): `use simnet::{A, B}` is one
    // architectural dependency, not two.
    let mut seen: BTreeMap<(String, u32), ()> = BTreeMap::new();
    for (i, tok) in ctx.tokens.iter().enumerate() {
        let TokenKind::Ident(name) = &tok.kind else {
            continue;
        };
        let Some(target) = layer_of_import(name) else {
            continue;
        };
        if !is_crate_reference(ctx, i) {
            continue;
        }
        if target == own && name == &ctx.krate.import_name {
            continue; // self-reference (macro output, docs)
        }
        if seen.insert((name.clone(), tok.line), ()).is_some() {
            continue;
        }
        let Some(problem) = judge(own, target) else {
            continue;
        };
        if ctx.waivers.covers("R1", tok.line) {
            continue;
        }
        findings.push(Finding::new(
            "R1",
            ctx.rel_path.clone(),
            tok.line,
            format!("{problem}: `{name}` referenced from the {own:?} layer"),
        ));
    }
}

/// Is the ident at `i` used as a crate path root (`name::…`, `use name`,
/// `extern crate name`)?
fn is_crate_reference(ctx: &FileContext<'_>, i: usize) -> bool {
    let toks = ctx.tokens;
    // Not a path root if *preceded* by `::` (e.g. `crate::odp::…` in the
    // facade, or any `foo::odp` module path).
    if i > 0 && toks[i - 1].kind.is_punct("::") {
        return false;
    }
    let followed_by_path = toks
        .get(i + 1)
        .map(|t| t.kind.is_punct("::"))
        .unwrap_or(false);
    let after_use = i > 0
        && toks[i - 1]
            .kind
            .ident()
            .map(|k| k == "use" || k == "crate")
            .unwrap_or(false);
    let after_extern_crate =
        i > 1 && toks[i - 1].kind.is_ident("crate") && toks[i - 2].kind.is_ident("extern");
    followed_by_path || after_use || after_extern_crate
}

/// Returns the violation description, or `None` when the dependency is
/// legal.
fn judge(own: LayerTag, target: LayerTag) -> Option<&'static str> {
    if target == LayerTag::Kernel {
        return None;
    }
    if target == own {
        return None;
    }
    if target.rank() > own.rank() {
        return Some("upward layer dependency");
    }
    if target.rank() == own.rank() {
        return Some("peer-layer dependency");
    }
    // Downward: fine, unless it reaches past the communication services
    // to the net layer.
    if target == LayerTag::Net && own.rank() > LayerTag::Messaging.rank() {
        return Some("net-layer bypass (use the Platform ports / kernel time types)");
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_is_free_for_all() {
        assert_eq!(judge(LayerTag::App, LayerTag::Kernel), None);
        assert_eq!(judge(LayerTag::Net, LayerTag::Kernel), None);
    }

    #[test]
    fn downward_is_legal_but_net_is_encapsulated() {
        assert_eq!(judge(LayerTag::App, LayerTag::Env), None);
        assert_eq!(judge(LayerTag::Env, LayerTag::Odp), None);
        assert_eq!(judge(LayerTag::Messaging, LayerTag::Net), None);
        assert_eq!(judge(LayerTag::Directory, LayerTag::Net), None);
        assert!(judge(LayerTag::Odp, LayerTag::Net).is_some());
        assert!(judge(LayerTag::Env, LayerTag::Net).is_some());
        assert!(judge(LayerTag::App, LayerTag::Net).is_some());
    }

    #[test]
    fn upward_and_peer_are_violations() {
        assert!(judge(LayerTag::Net, LayerTag::Odp).is_some());
        assert!(judge(LayerTag::Messaging, LayerTag::Directory).is_some());
        assert!(judge(LayerTag::Directory, LayerTag::Messaging).is_some());
    }
}
