//! R2 — error-taxonomy coverage (the layered failure model).
//!
//! Two sub-checks over shipping code:
//!
//! * **Panic discipline** — `unwrap()`, `expect("…")`, `panic!`,
//!   `unreachable!`, `todo!` and `unimplemented!` are findings in
//!   library code: a layered system reports failures through its layer's
//!   error type, it does not abort the stack. (`.expect(` is only
//!   flagged when its argument is a string literal, so parser-style
//!   `expect('(')` helper methods are not confused with
//!   `Option::expect`.)
//! * **Public API classification** — a `pub fn` returning
//!   `Result<_, E>` must use an `E` that implements
//!   `cscw_kernel::LayerError` (discovered by scanning the workspace for
//!   `impl … LayerError for X` items), so every cross-layer caller can
//!   classify any failure by layer and kind.

use std::collections::BTreeSet;

use super::FileContext;
use crate::diag::Finding;
use crate::lexer::{Token, TokenKind};
use crate::workspace::CrateRole;

const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// Scans a file for `impl LayerError for X` (possibly path-qualified)
/// and records each `X` into `out`.
pub fn collect_classified_errors(tokens: &[Token], out: &mut BTreeSet<String>) {
    for i in 0..tokens.len() {
        if !tokens[i].kind.is_ident("LayerError") {
            continue;
        }
        if tokens
            .get(i + 1)
            .map(|t| t.kind.is_ident("for"))
            .unwrap_or(false)
        {
            if let Some(name) = tokens.get(i + 2).and_then(|t| t.kind.ident()) {
                out.insert(name.to_owned());
            }
        }
    }
}

/// Checks one file's panic discipline and public API error types.
pub fn check_errors(
    ctx: &FileContext<'_>,
    classified: &BTreeSet<String>,
    findings: &mut Vec<Finding>,
) {
    check_panics(ctx, findings);
    if matches!(ctx.role(), CrateRole::Layer(_)) {
        check_public_apis(ctx, classified, findings);
    }
}

fn check_panics(ctx: &FileContext<'_>, findings: &mut Vec<Finding>) {
    let toks = ctx.tokens;
    for i in 0..toks.len() {
        let Some(id) = toks[i].kind.ident() else {
            continue;
        };
        let line = toks[i].line;
        let flagged: Option<String> = if PANIC_MACROS.contains(&id)
            && toks
                .get(i + 1)
                .map(|t| t.kind.is_punct("!"))
                .unwrap_or(false)
        {
            Some(format!("`{id}!` in library code"))
        } else if id == "unwrap"
            && i > 0
            && toks[i - 1].kind.is_punct(".")
            && toks
                .get(i + 1)
                .map(|t| t.kind.is_punct("("))
                .unwrap_or(false)
            && toks
                .get(i + 2)
                .map(|t| t.kind.is_punct(")"))
                .unwrap_or(false)
        {
            Some("`.unwrap()` in library code".to_owned())
        } else if id == "expect"
            && i > 0
            && toks[i - 1].kind.is_punct(".")
            && toks
                .get(i + 1)
                .map(|t| t.kind.is_punct("("))
                .unwrap_or(false)
            && toks
                .get(i + 2)
                .map(|t| matches!(t.kind, TokenKind::Str(_)))
                .unwrap_or(false)
        {
            Some("`.expect(\"…\")` in library code".to_owned())
        } else {
            None
        };
        if let Some(what) = flagged {
            if !ctx.waivers.covers("R2", line) {
                findings.push(Finding::new(
                    "R2",
                    ctx.rel_path.clone(),
                    line,
                    format!("{what}; return the layer's error type instead"),
                ));
            }
        }
    }
}

/// Error-type names that need no `LayerError` impl: the uninhabited
/// std type, and generic parameters we cannot judge (single-ident
/// uppercase-short names declared in the fn's own generics are skipped
/// by the caller).
fn exempt_error_type(name: &str) -> bool {
    matches!(name, "Infallible")
}

fn check_public_apis(
    ctx: &FileContext<'_>,
    classified: &BTreeSet<String>,
    findings: &mut Vec<Finding>,
) {
    let toks = ctx.tokens;
    let mut i = 0usize;
    while i < toks.len() {
        // `pub fn name…`; `pub(crate)`/`pub(super)` are not public API.
        if !toks[i].kind.is_ident("pub") {
            i += 1;
            continue;
        }
        if toks
            .get(i + 1)
            .map(|t| t.kind.is_punct("("))
            .unwrap_or(false)
        {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        // Allow qualifiers between pub and fn (const, async, unsafe).
        while j < toks.len()
            && toks[j]
                .kind
                .ident()
                .map(|k| matches!(k, "const" | "async" | "unsafe"))
                .unwrap_or(false)
        {
            j += 1;
        }
        if !toks.get(j).map(|t| t.kind.is_ident("fn")).unwrap_or(false) {
            i += 1;
            continue;
        }
        let fn_line = toks[j].line;
        let fn_name = toks
            .get(j + 1)
            .and_then(|t| t.kind.ident())
            .unwrap_or("?")
            .to_owned();
        // Generic parameter names declared on the fn itself.
        let (sig_end, generics) = scan_signature(toks, j + 1);
        if let Some(err_ty) = signature_error_type(toks, j + 1, sig_end) {
            let judged = !generics.contains(&err_ty)
                && !exempt_error_type(&err_ty)
                && !classified.contains(&err_ty);
            if judged && !ctx.waivers.covers("R2", fn_line) {
                findings.push(Finding::new(
                    "R2",
                    ctx.rel_path.clone(),
                    fn_line,
                    format!(
                        "public fallible API `{fn_name}` returns `Result<_, {err_ty}>` \
                         but `{err_ty}` does not implement `cscw_kernel::LayerError`"
                    ),
                ));
            }
        }
        i = sig_end.max(i + 1);
    }
}

/// From the fn-name index, finds the end of the signature (the body `{`
/// or the `;`) and collects generic parameter idents declared in the
/// fn's `<…>` list.
fn scan_signature(toks: &[Token], name_idx: usize) -> (usize, BTreeSet<String>) {
    let mut generics = BTreeSet::new();
    let mut i = name_idx;
    let mut angle = 0i32;
    let mut paren = 0i32;
    let mut in_decl_generics = false;
    while i < toks.len() {
        let t = &toks[i];
        if t.kind.is_punct("<") {
            if angle == 0 && paren == 0 && i == name_idx + 1 {
                in_decl_generics = true;
            }
            angle += 1;
        } else if t.kind.is_punct(">") {
            angle -= 1;
            if angle == 0 {
                in_decl_generics = false;
            }
        } else if t.kind.is_punct("(") {
            paren += 1;
        } else if t.kind.is_punct(")") {
            paren -= 1;
        } else if paren == 0 && angle == 0 && (t.kind.is_punct("{") || t.kind.is_punct(";")) {
            return (i, generics);
        } else if in_decl_generics && angle == 1 {
            if let Some(id) = t.kind.ident() {
                // First ident of each comma-separated segment is the
                // parameter name; bounds after `:` are skipped.
                let prev_sep = toks[..i]
                    .iter()
                    .rev()
                    .take_while(|p| !p.kind.is_punct("<"))
                    .find(|p| p.kind.is_punct(",") || p.kind.is_punct(":"));
                let is_param_name = match prev_sep {
                    None => true,
                    Some(p) => p.kind.is_punct(","),
                };
                if is_param_name && id != "const" && id != "where" {
                    generics.insert(id.to_owned());
                }
            }
        }
        i += 1;
    }
    (toks.len().saturating_sub(1), generics)
}

/// Extracts the error-type name from a `-> Result<…, E>` return type in
/// `toks[start..end]`, if present: the last path-segment ident of the
/// second top-level generic argument. `None` for non-`Result` returns,
/// aliased results (`fmt::Result`), or when no arrow exists.
fn signature_error_type(toks: &[Token], start: usize, end: usize) -> Option<String> {
    // Find `->` at paren/angle depth 0.
    let mut i = start;
    let mut paren = 0i32;
    let mut arrow = None;
    while i < end {
        let t = &toks[i];
        if t.kind.is_punct("(") {
            paren += 1;
        } else if t.kind.is_punct(")") {
            paren -= 1;
        } else if paren == 0 && t.kind.is_punct("->") {
            arrow = Some(i);
            break;
        }
        i += 1;
    }
    let arrow = arrow?;
    // Return type must be `Result` (bare or path-qualified) with generics.
    let mut r = arrow + 1;
    while r < end && (toks[r].kind.is_punct("::") || toks[r].kind.ident().is_some()) {
        if toks[r].kind.is_ident("Result") {
            break;
        }
        r += 1;
    }
    if r >= end || !toks[r].kind.is_ident("Result") {
        return None;
    }
    if !toks
        .get(r + 1)
        .map(|t| t.kind.is_punct("<"))
        .unwrap_or(false)
    {
        return None; // aliased Result (e.g. fmt::Result): not judged
    }
    // Walk the generic args, split at top-level commas. Parens and
    // brackets nest too: the comma in `Result<(A, B), E>` separates the
    // tuple's fields, not the Ok/Err arguments.
    let mut angle = 1i32;
    let mut nested = 0i32; // paren/bracket depth inside the generics
    let mut i = r + 2;
    let mut current_last_ident: Option<String> = None;
    let mut args_done = 0usize;
    while i < end && angle > 0 {
        let t = &toks[i];
        if t.kind.is_punct("(") || t.kind.is_punct("[") {
            nested += 1;
        } else if t.kind.is_punct(")") || t.kind.is_punct("]") {
            nested -= 1;
        } else if t.kind.is_punct("<") {
            angle += 1;
        } else if t.kind.is_punct(">") {
            angle -= 1;
            if angle == 0 {
                args_done += 1;
                if args_done == 2 {
                    return current_last_ident;
                }
            }
        } else if t.kind.is_punct(",") && angle == 1 && nested == 0 {
            args_done += 1;
            if args_done == 2 {
                return current_last_ident;
            }
            current_last_ident = None;
        } else if angle == 1 && args_done == 1 {
            if let Some(id) = t.kind.ident() {
                current_last_ident = Some(id.to_owned());
            }
        }
        i += 1;
    }
    if args_done >= 1 {
        current_last_ident
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn err_ty(sig: &str) -> Option<String> {
        let toks = lex(sig);
        let end = toks.len();
        signature_error_type(&toks, 0, end)
    }

    #[test]
    fn extracts_error_types() {
        assert_eq!(
            err_ty("fn f() -> Result<u32, OdpError> {"),
            Some("OdpError".to_owned())
        );
        assert_eq!(
            err_ty("fn f(&self) -> Result<Vec<&ServiceOffer>, odp::OdpError> {"),
            Some("OdpError".to_owned())
        );
        assert_eq!(
            err_ty("fn f() -> Result<BTreeMap<String, u32>, MtsError> {"),
            Some("MtsError".to_owned())
        );
        assert_eq!(err_ty("fn f() -> u32 {"), None);
        assert_eq!(err_ty("fn f() -> fmt::Result {"), None);
        assert_eq!(
            err_ty("fn f() -> std::result::Result<(), DirectoryError> {"),
            Some("DirectoryError".to_owned())
        );
        // Tuples in the Ok position nest their own commas.
        assert_eq!(
            err_ty("fn f() -> Result<(String, Vec<ServiceOffer>), OdpError> {"),
            Some("OdpError".to_owned())
        );
        assert_eq!(
            err_ty("fn f() -> Result<(BodyPart, ConversionCost), MtsError> {"),
            Some("MtsError".to_owned())
        );
    }

    #[test]
    fn fn_generics_are_collected() {
        let toks = lex("g<T: Clone, E, const N: usize>(x: T) -> Result<T, E> {");
        let (_, generics) = scan_signature(&toks, 0);
        assert!(generics.contains("T"));
        assert!(generics.contains("E"));
        assert!(!generics.contains("Clone"));
        assert!(!generics.contains("usize"));
    }

    #[test]
    fn classified_impls_are_discovered() {
        let mut set = BTreeSet::new();
        collect_classified_errors(
            &lex("impl cscw_kernel::LayerError for MoccaError { }"),
            &mut set,
        );
        collect_classified_errors(&lex("impl LayerError for KernelError {}"), &mut set);
        assert!(set.contains("MoccaError"));
        assert!(set.contains("KernelError"));
    }
}
