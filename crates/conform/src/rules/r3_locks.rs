//! R3 — lock discipline across the environment stack.
//!
//! The environment (`environment.rs`), the organisational trading
//! policy (`trading.rs`) and the kernel telemetry stream
//! (`telemetry.rs`) all guard shared state with locks, and the trading
//! policy's lock is an *alias* of the environment's organisational
//! model (one `Arc<RwLock<OrganisationalModel>>` shared across both
//! files). Two failure modes are checked statically:
//!
//! * **Order inversions** — the rule derives a lock-acquisition graph:
//!   an edge `A → B` is recorded wherever `B` is acquired while a
//!   let-bound guard of `A` is still live. Any cycle in the
//!   workspace-wide graph is reported at each participating edge.
//! * **Locks held across `Platform` ports** — a port call
//!   (`platform.trader()`, `.directory()`, `.transport()`, `.clock()`,
//!   `.telemetry()`) made while any lock guard is live is a finding: on
//!   a distributed platform a port call is network I/O, and the
//!   trader's policy hook re-enters the organisational lock
//!   (`OrgTradingPolicy::allows`), so holding it across the call is a
//!   latent deadlock.
//!
//! Guard liveness is syntactic: `let g = x.read();` holds to the end of
//! the function (or an explicit `drop(g)`); a chained
//! `x.read().method()` is a statement-scoped temporary and releases at
//! the `;`.

use std::collections::{BTreeMap, BTreeSet};

use super::{matching_paren, receiver_chain, FileContext};
use crate::diag::Finding;
use crate::lexer::Token;

const LOCK_METHODS: [&str; 3] = ["read", "write", "lock"];
const PORT_METHODS: [&str; 5] = ["trader", "directory", "transport", "clock", "telemetry"];

/// Receiver-name aliases: distinct field names that guard the same
/// underlying lock. `OrgTradingPolicy.model` is a clone of the
/// environment's `CscwEnvironment.org` (`Arc<RwLock<OrganisationalModel>>`),
/// so both canonicalise to `org-model`.
const LOCK_ALIASES: [(&str, &str); 2] = [("org", "org-model"), ("model", "org-model")];

/// The workspace-wide lock-acquisition graph, accumulated over files.
#[derive(Debug, Default)]
pub struct LockGraph {
    /// `from -> {(to, file, line)}`.
    edges: BTreeMap<String, BTreeSet<(String, String, u32)>>,
}

impl LockGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    fn add_edge(&mut self, from: &str, to: &str, file: &str, line: u32) {
        if from == to {
            return; // re-acquisition is caught as a port/readability
                    // concern elsewhere; self-edges are not an ordering
        }
        self.edges.entry(from.to_owned()).or_default().insert((
            to.to_owned(),
            file.to_owned(),
            line,
        ));
    }

    /// All canonical lock names with outgoing edges.
    pub fn lock_names(&self) -> Vec<&str> {
        self.edges.keys().map(String::as_str).collect()
    }

    /// Reports every edge that participates in a cycle.
    pub fn inversion_findings(&self) -> Vec<Finding> {
        let mut findings = Vec::new();
        for (from, tos) in &self.edges {
            for (to, file, line) in tos {
                if self.reaches(to, from) {
                    findings.push(Finding::new(
                        "R3",
                        file.clone(),
                        *line,
                        format!(
                            "lock order inversion: `{to}` acquired while holding `{from}`, \
                             but `{from}` is also acquired while `{to}` is held elsewhere"
                        ),
                    ));
                }
            }
        }
        findings
    }

    /// Is `to` reachable from `from` along edges?
    fn reaches(&self, from: &str, to: &str) -> bool {
        let mut seen = BTreeSet::new();
        let mut stack = vec![from.to_owned()];
        while let Some(cur) = stack.pop() {
            if cur == to {
                return true;
            }
            if !seen.insert(cur.clone()) {
                continue;
            }
            if let Some(nexts) = self.edges.get(&cur) {
                stack.extend(nexts.iter().map(|(n, _, _)| n.clone()));
            }
        }
        false
    }
}

/// Canonicalises a lock receiver. Struct fields (`self.org`) get a
/// workspace-global identity keyed by the field name, so cross-file
/// ordering over shared state is visible; the alias table further maps
/// fields known to guard the same `Arc` (`org`/`model`) to one name.
/// Anything else (locals, parameters) is keyed per file so unrelated
/// helper locks never collide across files.
fn canonical_lock(receiver: &str, rel_path: &str) -> String {
    let base = receiver.rsplit(['.', ':']).next().unwrap_or(receiver);
    for (field, canon) in LOCK_ALIASES {
        if base == field {
            return canon.to_owned();
        }
    }
    if let Some(field_path) = receiver.strip_prefix("self.") {
        return field_path.to_owned();
    }
    format!("{rel_path}::{receiver}")
}

/// A live, let-bound lock guard.
#[derive(Debug, Clone)]
struct Guard {
    lock: String,
    var: String,
    brace_depth: i32,
}

/// Checks one file: records acquisition edges into `graph` and emits
/// lock-across-port findings directly.
pub fn check_locks(ctx: &FileContext<'_>, graph: &mut LockGraph, findings: &mut Vec<Finding>) {
    let toks = ctx.tokens;
    let mut held: Vec<Guard> = Vec::new();
    let mut brace_depth = 0i32;
    let mut fn_depth: Option<i32> = None; // depth at which the current fn body opened
    let mut stmt_start = 0usize; // token index where the current statement began
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if t.kind.is_punct("{") {
            brace_depth += 1;
            // A fn body opens at the first `{` after a top-level `fn`.
            i += 1;
            stmt_start = i;
            continue;
        }
        if t.kind.is_punct("}") {
            brace_depth -= 1;
            // Dropping out of a block releases guards bound inside it.
            held.retain(|g| g.brace_depth <= brace_depth);
            if let Some(d) = fn_depth {
                if brace_depth < d {
                    fn_depth = None;
                    held.clear();
                }
            }
            i += 1;
            stmt_start = i;
            continue;
        }
        if t.kind.is_punct(";") {
            i += 1;
            stmt_start = i;
            continue;
        }
        if t.kind.is_ident("fn") {
            fn_depth = Some(brace_depth + 1);
            held.clear();
            i += 1;
            continue;
        }
        // drop(guard) releases.
        if t.kind.is_ident("drop")
            && toks
                .get(i + 1)
                .map(|x| x.kind.is_punct("("))
                .unwrap_or(false)
        {
            if let Some(var) = toks.get(i + 2).and_then(|x| x.kind.ident()) {
                held.retain(|g| g.var != var);
            }
        }
        // Method calls: `.name(`.
        if t.kind.is_punct(".") {
            if let Some(method) = toks.get(i + 1).and_then(|x| x.kind.ident()) {
                let has_args = toks
                    .get(i + 2)
                    .map(|x| x.kind.is_punct("("))
                    .unwrap_or(false);
                if has_args && LOCK_METHODS.contains(&method) {
                    let close = matching_paren(toks, i + 2);
                    if close == i + 3 {
                        // Zero-arg call: a genuine lock acquisition shape.
                        if let Some(receiver) = receiver_chain(toks, i) {
                            let lock = canonical_lock(&receiver, &ctx.rel_path);
                            let line = t.line;
                            for g in &held {
                                if g.lock != lock {
                                    graph.add_edge(&g.lock, &lock, &ctx.rel_path, line);
                                }
                            }
                            // Let-bound guard (chain ends right here)?
                            let chained = toks
                                .get(close + 1)
                                .map(|x| x.kind.is_punct("."))
                                .unwrap_or(false);
                            if !chained {
                                if let Some(var) = let_binding_var(toks, stmt_start) {
                                    held.push(Guard {
                                        lock,
                                        var,
                                        brace_depth,
                                    });
                                }
                            }
                        }
                    }
                }
                if has_args && PORT_METHODS.contains(&method) {
                    if let Some(receiver) = receiver_chain(toks, i) {
                        if receiver.contains("platform") && !held.is_empty() {
                            let line = t.line;
                            if !ctx.waivers.covers("R3", line) {
                                let held_names: Vec<&str> =
                                    held.iter().map(|g| g.lock.as_str()).collect();
                                findings.push(Finding::new(
                                    "R3",
                                    ctx.rel_path.clone(),
                                    line,
                                    format!(
                                        "lock `{}` held across Platform port call \
                                         `{receiver}.{method}()`",
                                        held_names.join("`, `")
                                    ),
                                ));
                            }
                        }
                    }
                }
            }
        }
        i += 1;
    }
}

/// If the statement starting at `stmt_start` is `let [mut] name = …`,
/// returns `name`.
fn let_binding_var(toks: &[Token], stmt_start: usize) -> Option<String> {
    let mut i = stmt_start;
    if !toks.get(i)?.kind.is_ident("let") {
        return None;
    }
    i += 1;
    if toks.get(i)?.kind.is_ident("mut") {
        i += 1;
    }
    let name = toks.get(i)?.kind.ident()?.to_owned();
    if name == "_" {
        return None;
    }
    Some(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{lex, strip_test_code};
    use crate::workspace::{CrateRole, LayerTag, Waivers, WorkspaceCrate};

    fn ctx_for<'a>(
        krate: &'a WorkspaceCrate,
        tokens: &'a [Token],
        waivers: &'a Waivers,
        rel: &str,
    ) -> FileContext<'a> {
        FileContext {
            krate,
            rel_path: rel.to_owned(),
            tokens,
            waivers,
        }
    }

    fn run(src: &str, rel: &str, graph: &mut LockGraph) -> Vec<Finding> {
        let krate = WorkspaceCrate {
            dir_name: "core".into(),
            import_name: "mocca".into(),
            role: CrateRole::Layer(LayerTag::Env),
            files: vec![],
        };
        let toks = strip_test_code(lex(src));
        let waivers = Waivers::default();
        let mut findings = Vec::new();
        check_locks(&ctx_for(&krate, &toks, &waivers, rel), graph, &mut findings);
        findings
    }

    #[test]
    fn temporary_guards_do_not_hold() {
        let mut g = LockGraph::new();
        let f = run(
            "fn a(&self) { self.org.read().require(x)?; self.platform.trader().import(&r)?; }",
            "a.rs",
            &mut g,
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn let_bound_guard_across_port_call_is_flagged() {
        let mut g = LockGraph::new();
        let f = run(
            "fn a(&self) { let org = self.org.read(); self.platform.trader().import(&r)?; }",
            "a.rs",
            &mut g,
        );
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("org-model"));
    }

    #[test]
    fn dropping_the_guard_releases_it() {
        let mut g = LockGraph::new();
        let f = run(
            "fn a(&self) { let org = self.org.read(); drop(org); \
             self.platform.trader().import(&r)?; }",
            "a.rs",
            &mut g,
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn block_scoped_guards_release_at_block_end() {
        let mut g = LockGraph::new();
        let f = run(
            "fn a(&self) { { let org = self.org.read(); use_it(&org); } \
             self.platform.transport().notify(a, b, c, d)?; }",
            "a.rs",
            &mut g,
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn inversions_are_detected_across_files() {
        let mut g = LockGraph::new();
        run(
            "fn a(&self) { let x = self.alpha.lock(); let y = self.beta.lock(); }",
            "one.rs",
            &mut g,
        );
        run(
            "fn b(&self) { let y = self.beta.lock(); let x = self.alpha.lock(); }",
            "one.rs",
            &mut g,
        );
        let inv = g.inversion_findings();
        assert_eq!(inv.len(), 2, "{inv:?}");
        assert!(inv[0].message.contains("inversion"));
    }

    #[test]
    fn consistent_order_is_clean() {
        let mut g = LockGraph::new();
        run(
            "fn a(&self) { let x = self.alpha.lock(); let y = self.beta.lock(); }",
            "one.rs",
            &mut g,
        );
        run(
            "fn b(&self) { let x = self.alpha.lock(); let y = self.beta.lock(); }",
            "two.rs",
            &mut g,
        );
        assert!(g.inversion_findings().is_empty());
    }

    #[test]
    fn org_and_model_alias_to_one_lock() {
        let mut g = LockGraph::new();
        run(
            "fn a(&self) { let x = self.org.read(); let y = self.gamma.lock(); }",
            "env.rs",
            &mut g,
        );
        run(
            "fn b(&self) { let y = self.gamma.lock(); let x = self.model.read(); }",
            "pol.rs",
            &mut g,
        );
        assert_eq!(g.inversion_findings().len(), 2);
    }
}
