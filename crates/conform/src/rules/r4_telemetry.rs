//! R4 — telemetry layer-tag conformance.
//!
//! The kernel's `Telemetry` stream exists so one end-to-end operation
//! can be traced down the Figure-4 stack; that only works if each crate
//! tags its observations with *its own* layer. This rule finds calls to
//! the telemetry surface (`incr`, `add`, `emit`, `record_micros`) whose
//! arguments name a `Layer::` variant other than the emitting crate's
//! layer.
//!
//! Port boundaries that deliberately narrate another layer (the
//! platform front-ends recording the layer an operation lowers into)
//! carry explicit `conform: allow(R4)` waivers with their rationale.

use super::{matching_paren, FileContext};
use crate::diag::Finding;
use crate::workspace::CrateRole;

const TELEMETRY_METHODS: [&str; 4] = ["incr", "add", "emit", "record_micros"];

/// Checks one file's telemetry emissions.
pub fn check_telemetry(ctx: &FileContext<'_>, findings: &mut Vec<Finding>) {
    let CrateRole::Layer(own) = ctx.role() else {
        return; // tools and the facade may narrate any layer
    };
    let Some(expected) = own.telemetry_variant() else {
        return; // the kernel itself is layer-neutral
    };
    let toks = ctx.tokens;
    for i in 0..toks.len() {
        if !toks[i].kind.is_punct(".") {
            continue;
        }
        let Some(method) = toks.get(i + 1).and_then(|t| t.kind.ident()) else {
            continue;
        };
        if !TELEMETRY_METHODS.contains(&method) {
            continue;
        }
        let Some(open) = toks.get(i + 2).filter(|t| t.kind.is_punct("(")) else {
            continue;
        };
        let _ = open;
        let close = matching_paren(toks, i + 2);
        // Scan the argument tokens for `Layer::Variant` paths.
        let mut j = i + 3;
        while j + 2 <= close {
            if toks[j].kind.is_ident("Layer") && toks[j + 1].kind.is_punct("::") {
                if let Some(variant) = toks.get(j + 2).and_then(|t| t.kind.ident()) {
                    if variant != expected && !ctx.waivers.covers("R4", toks[j].line) {
                        findings.push(Finding::new(
                            "R4",
                            ctx.rel_path.clone(),
                            toks[j].line,
                            format!(
                                "telemetry tagged `Layer::{variant}` emitted from the \
                                 {own:?} layer (expected `Layer::{expected}`)"
                            ),
                        ));
                    }
                }
            }
            j += 1;
        }
    }
}
