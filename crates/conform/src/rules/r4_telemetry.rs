//! R4 — telemetry layer-tag and name conformance.
//!
//! The kernel's `Telemetry` stream exists so one end-to-end operation
//! can be traced down the Figure-4 stack; that only works if each crate
//! tags its observations with *its own* layer. This rule finds calls to
//! the telemetry surface (`incr`, `add`, `emit`, `record_micros`,
//! `span_begin`, `span_begin_with_parent`) whose arguments name a
//! `Layer::` variant other than the emitting crate's layer.
//!
//! It also checks the *name* convention: a literal event/counter/span
//! name must be a dotted `layer.noun.verb`-style identifier whose
//! first segment is one of the named layer's prefixes (e.g. `net.sent`,
//! `resilience.retry`, `federation.gossip.pulse`) — that prefix is
//! what lets a rendered trace or snapshot be read without consulting
//! the emitting call site. Variable names are not checked.
//!
//! Port boundaries that deliberately narrate another layer (the
//! platform front-ends recording the layer an operation lowers into)
//! carry explicit `conform: allow(R4)` waivers with their rationale.

use super::{matching_paren, FileContext};
use crate::diag::Finding;
use crate::workspace::CrateRole;

const TELEMETRY_METHODS: [&str; 6] = [
    "incr",
    "add",
    "emit",
    "record_micros",
    "span_begin",
    "span_begin_with_parent",
];

/// The name prefixes each Figure-4 layer may label observations with.
/// A layer can own several vocabularies (the Env layer narrates both
/// the environment proper and its resilience shell; the ODP layer
/// speaks as the trader).
fn layer_prefixes(variant: &str) -> &'static [&'static str] {
    match variant {
        "App" => &["app"],
        "Env" => &["env", "resilience"],
        "Federation" => &["federation"],
        "Query" => &["query"],
        "Odp" => &["odp", "trader"],
        "Directory" => &["dir"],
        "Messaging" => &["mts", "gossip"],
        "Net" => &["net"],
        _ => &[],
    }
}

/// Is `name` a dotted `layer.noun.verb`-style identifier: two or more
/// non-empty `[a-z0-9_]` segments joined by `.`? Shared with R6, which
/// applies the same grammar to span names R4 cannot see.
pub(super) fn is_dotted_name(name: &str) -> bool {
    let mut segments = 0usize;
    for seg in name.split('.') {
        if seg.is_empty()
            || !seg
                .bytes()
                .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_')
        {
            return false;
        }
        segments += 1;
    }
    segments >= 2
}

/// Emits naming findings for one literal telemetry name.
fn check_name(
    ctx: &FileContext<'_>,
    findings: &mut Vec<Finding>,
    line: u32,
    variant: &str,
    name: &str,
) {
    if !is_dotted_name(name) {
        findings.push(Finding::new(
            "R4",
            ctx.rel_path.clone(),
            line,
            format!(
                "telemetry name \"{name}\" is not a dotted `layer.noun.verb`-style \
                 identifier (want lowercase segments joined by `.`)"
            ),
        ));
        return;
    }
    let prefixes = layer_prefixes(variant);
    if prefixes.is_empty() {
        return; // unknown variant ident; the tag check handles typos
    }
    let first = name.split('.').next().unwrap_or("");
    if !prefixes.contains(&first) {
        findings.push(Finding::new(
            "R4",
            ctx.rel_path.clone(),
            line,
            format!(
                "telemetry name \"{name}\" does not carry a `Layer::{variant}` \
                 prefix (expected one of {prefixes:?})"
            ),
        ));
    }
}

/// Checks one file's telemetry emissions.
pub fn check_telemetry(ctx: &FileContext<'_>, findings: &mut Vec<Finding>) {
    let CrateRole::Layer(own) = ctx.role() else {
        return; // tools and the facade may narrate any layer
    };
    let Some(expected) = own.telemetry_variant() else {
        return; // the kernel itself is layer-neutral
    };
    let toks = ctx.tokens;
    for i in 0..toks.len() {
        if !toks[i].kind.is_punct(".") {
            continue;
        }
        let Some(method) = toks.get(i + 1).and_then(|t| t.kind.ident()) else {
            continue;
        };
        if !TELEMETRY_METHODS.contains(&method) {
            continue;
        }
        let Some(open) = toks.get(i + 2).filter(|t| t.kind.is_punct("(")) else {
            continue;
        };
        let _ = open;
        let close = matching_paren(toks, i + 2);
        // Scan the argument tokens for `Layer::Variant` paths.
        let mut j = i + 3;
        while j + 2 <= close {
            if toks[j].kind.is_ident("Layer") && toks[j + 1].kind.is_punct("::") {
                if let Some(variant) = toks.get(j + 2).and_then(|t| t.kind.ident()) {
                    let waived = ctx.waivers.covers("R4", toks[j].line);
                    if variant != expected && !waived {
                        findings.push(Finding::new(
                            "R4",
                            ctx.rel_path.clone(),
                            toks[j].line,
                            format!(
                                "telemetry tagged `Layer::{variant}` emitted from the \
                                 {own:?} layer (expected `Layer::{expected}`)"
                            ),
                        ));
                    }
                    // Name convention: a literal name immediately after
                    // the layer tag must be dotted and carry one of the
                    // *named* layer's prefixes. (Only the literal right
                    // after `Layer::X,` is the name — later literals
                    // are detail payloads.)
                    if !waived
                        && toks.get(j + 3).is_some_and(|t| t.kind.is_punct(","))
                        && j + 4 <= close
                    {
                        if let Some(name) = toks.get(j + 4).and_then(|t| t.kind.str_lit()) {
                            check_name(ctx, findings, toks[j + 4].line, variant, name);
                        }
                    }
                }
            }
            j += 1;
        }
    }
}
