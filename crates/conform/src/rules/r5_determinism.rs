//! R5 — determinism discipline.
//!
//! The repo's verification story (seed-stable fault storms, bit-for-bit
//! federation convergence fingerprints, reproducible
//! `BENCH_fed_scale.json`) rests on every replayed run observing the
//! same values in the same order. Three things quietly break that:
//!
//! * **wall-clock reads** (`Instant::now`, `SystemTime::now`) — time
//!   must flow from the kernel `Clock` port, which replays;
//! * **unseeded randomness** (`thread_rng`, `from_entropy`) — entropy
//!   must come from the kernel's seeded rng;
//! * **iteration over `HashMap`/`HashSet`** — hash iteration order is
//!   arbitrary, so it may only happen where the order cannot escape.
//!
//! Wall-clock and unseeded-randomness reads are flagged anywhere in a
//! layer crate's shipping code. Hash iteration is flagged only in
//! *determinism-sensitive* functions — those connected, through the
//! phase-2 call graph, to a fingerprint, wire codec, `EventQueue`
//! ordering, or committed-bench output sink. A debug dump may walk a
//! `HashMap`; a digest may not.
//!
//! Designed-in sites (the kernel `Clock`'s epoch anchor) carry
//! `conform: allow(determinism)` waivers with their rationale; the
//! plain `allow(R5)` spelling works too.

use std::collections::BTreeSet;

use super::{receiver_chain, FileContext};
use crate::diag::Finding;
use crate::graph::CallGraph;
use crate::lexer::Token;
use crate::workspace::CrateRole;

/// Methods whose results expose hash iteration order.
const ITER_METHODS: [&str; 8] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "drain",
    "retain",
];

/// Records, into `out`, every identifier in `toks` that is declared or
/// initialised as a `HashMap`/`HashSet` — `name: HashMap<..>` fields
/// and params, and `let name = HashMap::new()`-style bindings. Scoped
/// per crate: fields declared in one file iterate in another.
pub fn collect_hash_names(toks: &[Token], out: &mut BTreeSet<String>) {
    for i in 0..toks.len() {
        if !toks[i].kind.is_ident("HashMap") && !toks[i].kind.is_ident("HashSet") {
            continue;
        }
        // Walk back over a `std::collections::` path prefix, then any
        // `&`/`&mut` reference sigils (`map: &HashMap<..>` params).
        let mut j = i;
        while j >= 2 && toks[j - 1].kind.is_punct("::") && toks[j - 2].kind.ident().is_some() {
            j -= 2;
        }
        while j >= 1 && (toks[j - 1].kind.is_punct("&") || toks[j - 1].kind.is_ident("mut")) {
            j -= 1;
        }
        if j == 0 {
            continue;
        }
        let before = &toks[j - 1].kind;
        // `name: HashMap<..>` or `name = HashMap::new()`.
        if (before.is_punct(":") || before.is_punct("=")) && j >= 2 {
            if let Some(name) = toks[j - 2].kind.ident() {
                out.insert(name.to_owned());
            }
        }
    }
}

/// Is this token the start of an `X::now()` wall-clock read?
fn wall_clock_read(toks: &[Token], i: usize) -> Option<&'static str> {
    let src = toks[i].kind.ident()?;
    let which = match src {
        "Instant" => "Instant::now()",
        "SystemTime" => "SystemTime::now()",
        _ => return None,
    };
    (toks.get(i + 1).is_some_and(|t| t.kind.is_punct("::"))
        && toks.get(i + 2).is_some_and(|t| t.kind.is_ident("now")))
    .then_some(which)
}

fn waived(ctx: &FileContext<'_>, line: u32) -> bool {
    ctx.waivers.covers("R5", line) || ctx.waivers.covers("determinism", line)
}

/// Checks one file's determinism discipline. `file_idx` is this file's
/// index in the order the call graph was built over; `hash_names` is
/// the owning crate's set of hash-typed identifiers.
pub fn check_determinism(
    ctx: &FileContext<'_>,
    file_idx: usize,
    graph: &CallGraph,
    hash_names: &BTreeSet<String>,
    findings: &mut Vec<Finding>,
) {
    if !matches!(ctx.role(), CrateRole::Layer(_)) {
        return; // tools and the facade measure real time by design
    }
    let toks = ctx.tokens;
    for i in 0..toks.len() {
        let line = toks[i].line;

        // Wall-clock and unseeded-randomness reads: flagged anywhere.
        if let Some(call) = wall_clock_read(toks, i) {
            if !waived(ctx, line) {
                findings.push(Finding::new(
                    "R5",
                    ctx.rel_path.clone(),
                    line,
                    format!(
                        "wall-clock `{call}` in shipping code — time must flow from \
                         the kernel `Clock` port so replays stay deterministic"
                    ),
                ));
            }
            continue;
        }
        if toks[i].kind.is_ident("thread_rng") || toks[i].kind.is_ident("from_entropy") {
            if !waived(ctx, line) {
                let what = toks[i].kind.ident().unwrap_or_default();
                findings.push(Finding::new(
                    "R5",
                    ctx.rel_path.clone(),
                    line,
                    format!(
                        "unseeded randomness `{what}` in shipping code — entropy must \
                         come from the kernel's seeded rng"
                    ),
                ));
            }
            continue;
        }

        // Hash iteration: flagged only in determinism-sensitive code.
        let site = hash_iteration_site(toks, i, hash_names);
        let Some(chain) = site else { continue };
        let Some(f) = graph.fn_at(file_idx, i) else {
            continue;
        };
        let Some(sens) = graph.sensitivity(f) else {
            continue;
        };
        if waived(ctx, line) {
            continue;
        }
        let sink = &graph.fns[sens.sink];
        findings.push(Finding::new(
            "R5",
            ctx.rel_path.clone(),
            line,
            format!(
                "iteration over hash-ordered `{chain}` in `{caller}`, which feeds \
                 {what} via `{sink_name}` — hash iteration order is nondeterministic; \
                 use `BTreeMap`/`BTreeSet` or sort before iterating",
                caller = graph.fns[f].name,
                what = sens.kind.describe(),
                sink_name = sink.name,
            ),
        ));
    }
}

/// If token `i` begins a hash-iteration site, the receiver text.
///
/// Two shapes: a `.iter()`-family method whose receiver chain ends in a
/// hash-typed name, and a `for .. in` loop whose iterated expression is
/// such a chain.
fn hash_iteration_site(toks: &[Token], i: usize, hash_names: &BTreeSet<String>) -> Option<String> {
    // `recv.iter()` / `recv.keys()` / ...
    if toks[i].kind.is_punct(".") {
        let method = toks.get(i + 1).and_then(|t| t.kind.ident())?;
        if !ITER_METHODS.contains(&method) || !toks.get(i + 2)?.kind.is_punct("(") {
            return None;
        }
        let chain = receiver_chain(toks, i)?;
        let last = chain.rsplit(['.', ':']).next().unwrap_or(&chain);
        return hash_names.contains(last).then_some(chain);
    }
    // `for pat in [&][mut] chain {`
    if !toks[i].kind.is_ident("for") {
        return None;
    }
    let mut depth = 0i32;
    let mut j = i + 1;
    // Find the loop's `in` (skipping nested parens in the pattern).
    loop {
        let k = &toks.get(j)?.kind;
        if k.is_punct("(") || k.is_punct("[") {
            depth += 1;
        } else if k.is_punct(")") || k.is_punct("]") {
            depth -= 1;
        } else if depth == 0 && k.is_ident("in") {
            break;
        } else if depth == 0 && (k.is_punct("{") || k.is_punct(";")) {
            return None; // not a `for` loop header after all
        }
        j += 1;
    }
    j += 1;
    while toks
        .get(j)
        .is_some_and(|t| t.kind.is_punct("&") || t.kind.is_ident("mut"))
    {
        j += 1;
    }
    // Read a simple `a.b::c` chain; it must run straight into `{`.
    let mut chain = String::new();
    let mut last = String::new();
    loop {
        let k = &toks.get(j)?.kind;
        if let Some(id) = k.ident() {
            chain.push_str(id);
            last = id.to_owned();
        } else if k.is_punct(".") {
            chain.push('.');
        } else if k.is_punct("::") {
            chain.push_str("::");
        } else if k.is_punct("{") {
            break;
        } else {
            return None; // method call, index, etc. — handled above
        }
        j += 1;
    }
    (!last.is_empty() && hash_names.contains(&last)).then_some(chain)
}
