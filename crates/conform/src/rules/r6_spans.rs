//! R6 — span discipline.
//!
//! PR 7's trace surface only yields depth-ordered trees if every
//! `span_begin`/`span_begin_with_parent` is balanced by a `span_end`
//! on *every* path out of the function that opened it, and if causality
//! that leaves the call stack (a `Platform` port call that turns into a
//! wire frame or deferred delivery) carries its `SpanContext` along.
//! Three checks:
//!
//! * **balance** — a span bound by `let s = ..span_begin..(..);` must
//!   reach a `span_end(s, ..)` in the same function, and no `return`
//!   may execute while it is still open. The span variable may be
//!   re-bound by destructuring (`if let Some((t, s)) = span { .. }`) —
//!   ends through the destructured alias count.
//! * **context threading** — when a tracked span is open across a
//!   `Platform` port call (`.trader()`, `.directory()`,
//!   `.transport()`), the function must thread a `SpanContext`
//!   (mention the type, read `current_context`, or continue with
//!   `span_begin_with_parent`) so the causality survives the hop.
//! * **names** — literal span names obey R4's dotted
//!   `layer.noun.verb` grammar. R4 already judges names that follow a
//!   literal `Layer::X` tag; this check covers spans whose layer
//!   argument is a variable.
//!
//! Helpers that *return* an open span for a caller to close (the sim
//! platform's `port_span`/`end_span` pair) do not bind it with `let`
//! and are deliberately outside the tracked set: the rule governs the
//! common shape without forbidding explicit hand-off designs.

use super::{matching_paren, r4_telemetry::is_dotted_name, receiver_chain, FileContext};
use crate::diag::Finding;
use crate::graph::CallGraph;
use crate::lexer::Token;
use crate::workspace::CrateRole;

/// The `Platform` port methods that move work across a boundary where
/// causality must be threaded explicitly. (`clock`/`telemetry` are
/// read-side ports; nothing leaves through them.)
const BOUNDARY_PORTS: [&str; 3] = ["trader", "directory", "transport"];

/// A `let name = ..span_begin..(..);` binding inside one function.
struct TrackedSpan {
    name: String,
    let_idx: usize,
    stmt_end: usize,
}

/// Checks one file's span discipline.
pub fn check_spans(
    ctx: &FileContext<'_>,
    file_idx: usize,
    graph: &CallGraph,
    findings: &mut Vec<Finding>,
) {
    if !matches!(ctx.role(), CrateRole::Layer(_)) {
        return;
    }
    let toks = ctx.tokens;
    for &f in graph.fns_in_file(file_idx) {
        check_fn(ctx, toks, graph, f, findings);
    }
    check_span_names(ctx, findings);
}

fn check_fn(
    ctx: &FileContext<'_>,
    toks: &[Token],
    graph: &CallGraph,
    f: usize,
    findings: &mut Vec<Finding>,
) {
    let info = &graph.fns[f];
    let (open, close) = (info.body_open, info.body_close);
    for span in tracked_spans(toks, open, close) {
        let aliases = destructure_aliases(toks, open, close, &span.name);
        let ends = end_positions(toks, open, close, &span.name, &aliases);
        let bind_line = toks[span.let_idx].line;
        if ends.is_empty() {
            if !ctx.waivers.covers("R6", bind_line) {
                findings.push(Finding::new(
                    "R6",
                    ctx.rel_path.clone(),
                    bind_line,
                    format!(
                        "span `{}` opened in `{}` has no matching `span_end` — spans \
                         must balance on every path of the function",
                        span.name, info.name
                    ),
                ));
            }
            continue;
        }
        check_early_returns(ctx, toks, &span, info.name.as_str(), close, &ends, findings);
        check_port_threading(ctx, toks, &span, open, close, ends[0], findings);
    }
}

/// Finds `let name = <rhs>;` statements whose right-hand side opens a
/// span without also closing it (an inline begin+end pair inside one
/// statement is already balanced).
fn tracked_spans(toks: &[Token], open: usize, close: usize) -> Vec<TrackedSpan> {
    let mut out = Vec::new();
    let mut i = open + 1;
    while i < close {
        if !toks[i].kind.is_ident("let") {
            i += 1;
            continue;
        }
        let mut q = i + 1;
        if toks.get(q).is_some_and(|t| t.kind.is_ident("mut")) {
            q += 1;
        }
        let Some(name) = toks.get(q).and_then(|t| t.kind.ident()) else {
            i += 1;
            continue;
        };
        if name == "_" || !toks.get(q + 1).is_some_and(|t| t.kind.is_punct("=")) {
            i += 1; // pattern binding (`let Some(x) = ..`) — not tracked
            continue;
        }
        let Some(stmt_end) = statement_end(toks, q + 2, close) else {
            i += 1;
            continue;
        };
        let rhs = &toks[q + 2..stmt_end];
        let begins = rhs
            .iter()
            .any(|t| t.kind.is_ident("span_begin") || t.kind.is_ident("span_begin_with_parent"));
        let ends_inline = rhs.iter().any(|t| t.kind.is_ident("span_end"));
        if begins && !ends_inline {
            out.push(TrackedSpan {
                name: name.to_owned(),
                let_idx: i,
                stmt_end,
            });
        }
        i = stmt_end + 1;
    }
    out
}

/// The index of the `;` ending the statement that starts at `from`,
/// honouring nested parens/brackets/braces (closure bodies, blocks in a
/// `match` right-hand side).
fn statement_end(toks: &[Token], from: usize, close: usize) -> Option<usize> {
    let mut brace = 0i32;
    let mut paren = 0i32;
    let mut i = from;
    while i < close {
        let k = &toks[i].kind;
        if k.is_punct("{") {
            brace += 1;
        } else if k.is_punct("}") {
            brace -= 1;
            if brace < 0 {
                return None; // ran out of the enclosing block
            }
        } else if k.is_punct("(") || k.is_punct("[") {
            paren += 1;
        } else if k.is_punct(")") || k.is_punct("]") {
            paren -= 1;
        } else if k.is_punct(";") && brace == 0 && paren == 0 {
            return Some(i);
        }
        i += 1;
    }
    None
}

/// Identifiers re-bound from `name` by a destructuring `let`/`if let`
/// whose entire right-hand side is `name` — e.g. `s` and `t` in
/// `if let Some((t, s)) = deliver_span { .. }`.
fn destructure_aliases(toks: &[Token], open: usize, close: usize, name: &str) -> Vec<String> {
    let mut aliases = Vec::new();
    for i in open + 1..close {
        let rebind = toks[i].kind.is_ident(name)
            && i > 0
            && toks[i - 1].kind.is_punct("=")
            && toks
                .get(i + 1)
                .is_some_and(|t| t.kind.is_punct("{") || t.kind.is_punct(";"));
        if !rebind {
            continue;
        }
        // Walk back from the `=` to the opening `let`, harvesting the
        // lowercase pattern idents (skipping constructors and `mut`).
        let mut j = i - 1;
        while j > open && !toks[j].kind.is_ident("let") && i - j < 32 {
            if let Some(id) = toks[j].kind.ident() {
                if id != "mut" && id.starts_with(|c: char| c.is_ascii_lowercase() || c == '_') {
                    aliases.push(id.to_owned());
                }
            }
            j -= 1;
        }
    }
    aliases
}

/// Token indices of `span_end(` calls whose first argument is the span
/// or one of its aliases.
fn end_positions(
    toks: &[Token],
    open: usize,
    close: usize,
    name: &str,
    aliases: &[String],
) -> Vec<usize> {
    let mut ends = Vec::new();
    for i in open + 1..close {
        if !toks[i].kind.is_ident("span_end")
            || !toks.get(i + 1).is_some_and(|t| t.kind.is_punct("("))
        {
            continue;
        }
        let Some(arg) = toks.get(i + 2).and_then(|t| t.kind.ident()) else {
            continue;
        };
        if arg == name || aliases.iter().any(|a| a == arg) {
            ends.push(i);
        }
    }
    ends
}

/// Walks the function from the binding to its closing brace with a
/// per-block "span is closed here" flag: entering a block inherits the
/// flag, a matching `span_end` sets it, and a `return` while it is
/// unset may leak the span.
fn check_early_returns(
    ctx: &FileContext<'_>,
    toks: &[Token],
    span: &TrackedSpan,
    fn_name: &str,
    close: usize,
    ends: &[usize],
    findings: &mut Vec<Finding>,
) {
    let mut stack = vec![false];
    for i in span.stmt_end + 1..close {
        let k = &toks[i].kind;
        if ends.contains(&i) {
            if let Some(top) = stack.last_mut() {
                *top = true;
            }
        } else if k.is_punct("{") {
            stack.push(*stack.last().unwrap_or(&false));
        } else if k.is_punct("}") {
            if stack.len() > 1 {
                stack.pop();
            }
        } else if k.is_ident("return") && !stack.last().copied().unwrap_or(false) {
            let line = toks[i].line;
            if !ctx.waivers.covers("R6", line) {
                findings.push(Finding::new(
                    "R6",
                    ctx.rel_path.clone(),
                    line,
                    format!(
                        "early `return` in `{fn_name}` may leave span `{}` (opened on \
                         line {}) unclosed — `span_end` it on this path first",
                        span.name, toks[span.let_idx].line
                    ),
                ));
            }
        }
    }
}

/// A tracked span held open across a `Platform` boundary-port call must
/// thread its context onward.
fn check_port_threading(
    ctx: &FileContext<'_>,
    toks: &[Token],
    span: &TrackedSpan,
    open: usize,
    close: usize,
    first_end: usize,
    findings: &mut Vec<Finding>,
) {
    let threads_context = (open + 1..close).any(|i| {
        toks[i].kind.is_ident("SpanContext")
            || toks[i].kind.is_ident("current_context")
            || toks[i].kind.is_ident("span_begin_with_parent")
    });
    if threads_context {
        return;
    }
    for i in span.stmt_end + 1..first_end {
        if !toks[i].kind.is_punct(".") {
            continue;
        }
        let Some(method) = toks.get(i + 1).and_then(|t| t.kind.ident()) else {
            continue;
        };
        if !BOUNDARY_PORTS.contains(&method)
            || !toks.get(i + 2).is_some_and(|t| t.kind.is_punct("("))
        {
            continue;
        }
        let Some(chain) = receiver_chain(toks, i) else {
            continue;
        };
        let line = toks[i].line;
        if chain.contains("platform") && !ctx.waivers.covers("R6", line) {
            findings.push(Finding::new(
                "R6",
                ctx.rel_path.clone(),
                line,
                format!(
                    "span `{}` is open across the `Platform` port call `{chain}.{method}()` \
                     but no `SpanContext` is threaded — pass the context along (or continue \
                     it with `span_begin_with_parent`) so the trace survives the hop",
                    span.name
                ),
            ));
            return; // one finding per span is enough
        }
    }
}

/// Literal span names must be dotted `layer.noun.verb` identifiers.
/// Names following a literal `Layer::X` tag are R4's to judge.
fn check_span_names(ctx: &FileContext<'_>, findings: &mut Vec<Finding>) {
    let toks = ctx.tokens;
    for i in 0..toks.len() {
        let Some(method) = toks[i].kind.ident() else {
            continue;
        };
        if method != "span_begin" && method != "span_begin_with_parent" {
            continue;
        }
        if !toks.get(i + 1).is_some_and(|t| t.kind.is_punct("(")) {
            continue;
        }
        let close = matching_paren(toks, i + 1);
        for j in i + 2..close {
            let Some(name) = toks[j].kind.str_lit() else {
                continue;
            };
            // `Layer::X, "name"` is R4 territory; skip it here.
            let after_layer_tag = j >= 4
                && toks[j - 1].kind.is_punct(",")
                && toks[j - 2].kind.ident().is_some()
                && toks[j - 3].kind.is_punct("::")
                && toks[j - 4].kind.is_ident("Layer");
            let line = toks[j].line;
            if !after_layer_tag && !is_dotted_name(name) && !ctx.waivers.covers("R6", line) {
                findings.push(Finding::new(
                    "R6",
                    ctx.rel_path.clone(),
                    line,
                    format!(
                        "span name \"{name}\" is not a dotted `layer.noun.verb`-style \
                         identifier (want lowercase segments joined by `.`)"
                    ),
                ));
            }
            break; // first literal is the name; later ones are payload
        }
    }
}
