//! The workspace model: which crates exist, which Figure-4 layer each
//! one occupies, and which `.rs` files belong to each crate's shipping
//! (non-test) code.
//!
//! The layer table is the analyzer's ground truth for the paper's
//! Figure 4: applications over the CSCW environment over the ODP
//! functions over the communication services over the network, with the
//! kernel substrate available to every layer.

use std::fs;
use std::path::{Path, PathBuf};

/// The architectural layer a crate occupies, bottom (0) upward.
/// Mirrors `cscw_kernel::Layer` but is independent of it: the analyzer
/// depends on nothing it checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LayerTag {
    /// The engineering substrate (clocks, rng, telemetry, errors).
    Kernel,
    /// The network substrate.
    Net,
    /// The X.400-style message transfer service.
    Messaging,
    /// The X.500-style directory service.
    Directory,
    /// The ODP engineering layer (trader, binder, transparencies).
    Odp,
    /// The inter-environment federation layer (trader interworking,
    /// anti-entropy replication) between the ODP functions and the
    /// environment.
    Federation,
    /// The standing-query layer (incremental subscriptions over the
    /// directory and replicated knowledge) between the federation and
    /// the environment.
    Query,
    /// The CSCW environment (MOCCA).
    Env,
    /// Groupware applications.
    App,
}

impl LayerTag {
    /// Height in the stack; `Messaging` and `Directory` are peers.
    pub fn rank(self) -> u8 {
        match self {
            LayerTag::Kernel => 0,
            LayerTag::Net => 1,
            LayerTag::Messaging | LayerTag::Directory => 2,
            LayerTag::Odp => 3,
            LayerTag::Federation => 4,
            LayerTag::Query => 5,
            LayerTag::Env => 6,
            LayerTag::App => 7,
        }
    }

    /// The `cscw_kernel::Layer` variant name a crate of this layer must
    /// use in telemetry tags, or `None` when any tag is fine (kernel).
    pub fn telemetry_variant(self) -> Option<&'static str> {
        match self {
            LayerTag::Kernel => None,
            LayerTag::Net => Some("Net"),
            LayerTag::Messaging => Some("Messaging"),
            LayerTag::Directory => Some("Directory"),
            LayerTag::Odp => Some("Odp"),
            LayerTag::Federation => Some("Federation"),
            LayerTag::Query => Some("Query"),
            LayerTag::Env => Some("Env"),
            LayerTag::App => Some("App"),
        }
    }
}

/// What kind of crate this is, for rule applicability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrateRole {
    /// A Figure-4 layer crate: all rules apply.
    Layer(LayerTag),
    /// The top-level facade (`open-cscw`): assembles the whole stack, so
    /// the layering rule does not constrain it; panic discipline does.
    Facade,
    /// Dev tooling (benches, this analyzer): panic discipline only.
    Tool,
}

/// One crate of the workspace.
#[derive(Debug, Clone)]
pub struct WorkspaceCrate {
    /// Directory name under `crates/` (or `"."` for the root package).
    pub dir_name: String,
    /// The name other crates use in `use`/paths (underscored).
    pub import_name: String,
    /// Role in the stack.
    pub role: CrateRole,
    /// Absolute paths of the crate's `src/**/*.rs` files.
    pub files: Vec<PathBuf>,
}

impl WorkspaceCrate {
    /// The crate's layer, when it has one.
    pub fn layer(&self) -> Option<LayerTag> {
        match self.role {
            CrateRole::Layer(l) => Some(l),
            _ => None,
        }
    }
}

/// Maps a crate directory name to (import name, role). Unknown
/// directories under `crates/` are treated as tools, so a new crate
/// fails open on layering until added here — the table *is* the
/// checkable Figure-4 specification.
fn classify(dir_name: &str) -> (String, CrateRole) {
    let (import, role) = match dir_name {
        "kernel" => ("cscw_kernel", CrateRole::Layer(LayerTag::Kernel)),
        "simnet" => ("simnet", CrateRole::Layer(LayerTag::Net)),
        "messaging" => ("cscw_messaging", CrateRole::Layer(LayerTag::Messaging)),
        "directory" => ("cscw_directory", CrateRole::Layer(LayerTag::Directory)),
        "odp" => ("odp", CrateRole::Layer(LayerTag::Odp)),
        "federation" => ("cscw_federation", CrateRole::Layer(LayerTag::Federation)),
        "query" => ("cscw_query", CrateRole::Layer(LayerTag::Query)),
        "core" => ("mocca", CrateRole::Layer(LayerTag::Env)),
        "groupware" => ("groupware", CrateRole::Layer(LayerTag::App)),
        "bench" => ("cscw_bench", CrateRole::Tool),
        "conform" => ("cscw_conform", CrateRole::Tool),
        "." => ("open_cscw", CrateRole::Facade),
        other => return (other.replace('-', "_"), CrateRole::Tool),
    };
    (import.to_owned(), role)
}

/// Discovers the workspace under `root`: the root package's `src/` plus
/// every `crates/*/src/`. `vendor/` is never scanned (stub crates are
/// not part of the architecture), and `tests/`, `benches/` and
/// `examples/` trees are excluded — the rules govern shipping code.
pub fn discover(root: &Path) -> std::io::Result<Vec<WorkspaceCrate>> {
    let mut crates = Vec::new();
    let root_src = root.join("src");
    if root_src.is_dir() {
        crates.push(make_crate(".", &root_src)?);
    }
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        dirs.sort();
        for dir in dirs {
            let src = dir.join("src");
            if !src.is_dir() {
                continue;
            }
            let name = dir
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or_default()
                .to_owned();
            crates.push(make_crate(&name, &src)?);
        }
    }
    Ok(crates)
}

fn make_crate(dir_name: &str, src: &Path) -> std::io::Result<WorkspaceCrate> {
    let (import_name, role) = classify(dir_name);
    let mut files = Vec::new();
    collect_rs(src, &mut files)?;
    files.sort();
    Ok(WorkspaceCrate {
        dir_name: dir_name.to_owned(),
        import_name,
        role,
        files,
    })
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Waivers parsed from a file's comments.
///
/// Two pragma forms, both inside ordinary comments:
///
/// * `conform: allow(R2) — reason` — waives findings of those rules on
///   the same line or the line directly below the comment.
/// * `conform: allow-file(R4) — reason` — waives the whole file for the
///   listed rules.
#[derive(Debug, Default, Clone)]
pub struct Waivers {
    line_rules: Vec<(u32, String)>,
    file_rules: Vec<String>,
}

impl Waivers {
    /// Scans raw source text for waiver pragmas.
    pub fn parse(source: &str) -> Self {
        let mut w = Waivers::default();
        for (idx, line) in source.lines().enumerate() {
            let line_no = (idx + 1) as u32;
            let mut rest = line;
            while let Some(pos) = rest.find("conform: allow") {
                let tail = &rest[pos + "conform: allow".len()..];
                let (file_scope, tail) = match tail.strip_prefix("-file") {
                    Some(t) => (true, t),
                    None => (false, tail),
                };
                if let Some(open) = tail.find('(') {
                    if let Some(close) = tail[open..].find(')') {
                        for rule in tail[open + 1..open + close].split(',') {
                            let rule = rule.trim().to_owned();
                            if rule.is_empty() {
                                continue;
                            }
                            if file_scope {
                                w.file_rules.push(rule);
                            } else {
                                w.line_rules.push((line_no, rule));
                            }
                        }
                    }
                }
                rest = &rest[pos + "conform: allow".len()..];
            }
        }
        w
    }

    /// Is a finding of `rule` at `line` waived?
    pub fn covers(&self, rule: &str, line: u32) -> bool {
        self.file_rules.iter().any(|r| r == rule)
            || self
                .line_rules
                .iter()
                .any(|(l, r)| r == rule && (*l == line || l + 1 == line))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_ranks_follow_figure_4() {
        assert!(LayerTag::Kernel.rank() < LayerTag::Net.rank());
        assert!(LayerTag::Net.rank() < LayerTag::Messaging.rank());
        assert_eq!(LayerTag::Messaging.rank(), LayerTag::Directory.rank());
        assert!(LayerTag::Directory.rank() < LayerTag::Odp.rank());
        assert!(LayerTag::Odp.rank() < LayerTag::Federation.rank());
        assert!(LayerTag::Federation.rank() < LayerTag::Query.rank());
        assert!(LayerTag::Query.rank() < LayerTag::Env.rank());
        assert!(LayerTag::Env.rank() < LayerTag::App.rank());
    }

    #[test]
    fn waivers_cover_same_and_next_line() {
        let src = "fn a() {} // conform: allow(R2) — invariant\nflagged_line();\nother();\n";
        let w = Waivers::parse(src);
        assert!(w.covers("R2", 1));
        assert!(w.covers("R2", 2));
        assert!(!w.covers("R2", 3));
        assert!(!w.covers("R1", 1));
    }

    #[test]
    fn file_waivers_cover_everything() {
        let w = Waivers::parse("//! conform: allow-file(R1,R4) — designated adapter\n");
        assert!(w.covers("R1", 99));
        assert!(w.covers("R4", 1));
        assert!(!w.covers("R2", 1));
    }
}
