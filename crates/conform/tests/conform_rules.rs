//! Fixture-based integration tests: each rule has a clean fixture and a
//! violating fixture, plus the ratchet semantics over synthetic
//! baselines.

use std::path::PathBuf;

use cscw_conform::analyze;
use cscw_conform::baseline::Baseline;
use cscw_conform::diag::Finding;

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn findings_for(name: &str) -> Vec<Finding> {
    analyze(&fixture(name))
        .unwrap_or_else(|e| panic!("analyzing fixture {name}: {e}"))
        .findings
}

#[test]
fn clean_fixture_has_no_findings() {
    let findings = findings_for("clean");
    assert!(findings.is_empty(), "expected clean, got: {findings:#?}");
}

#[test]
fn layering_fixture_flags_bypass_upward_and_peer() {
    let findings = findings_for("layering");
    let r1: Vec<_> = findings.iter().filter(|f| f.rule == "R1").collect();
    assert_eq!(r1.len(), 3, "{findings:#?}");
    assert!(r1
        .iter()
        .any(|f| f.file.contains("groupware") && f.message.contains("net-layer bypass")));
    assert!(r1
        .iter()
        .any(|f| f.file.contains("simnet") && f.message.contains("upward")));
    assert!(r1
        .iter()
        .any(|f| f.file.contains("messaging") && f.message.contains("peer")));
    // The directory crate's downward use of simnet is legal.
    assert!(!r1.iter().any(|f| f.file.contains("directory")));
}

#[test]
fn errors_fixture_flags_panics_and_unclassified_apis() {
    let findings = findings_for("errors");
    let r2: Vec<_> = findings.iter().filter(|f| f.rule == "R2").collect();
    assert_eq!(r2.len(), 4, "{findings:#?}");
    assert!(r2.iter().any(|f| f.message.contains("`.unwrap()`")));
    assert!(r2.iter().any(|f| f.message.contains("`.expect(")));
    assert!(r2.iter().any(|f| f.message.contains("`panic!`")));
    assert!(r2.iter().any(
        |f| f.message.contains("UnclassifiedError") && f.message.contains("does not implement")
    ));
    // The parser-style `expect('(')` helper must not be confused with
    // `Option::expect`.
    assert!(!r2.iter().any(|f| f.line >= 22 && f.line <= 33));
}

#[test]
fn locks_fixture_flags_port_calls_and_inversions() {
    let findings = findings_for("locks");
    let r3: Vec<_> = findings.iter().filter(|f| f.rule == "R3").collect();
    assert_eq!(r3.len(), 3, "{findings:#?}");
    assert!(r3
        .iter()
        .any(|f| f.message.contains("held across Platform port call")
            && f.message.contains("org-model")));
    let inversions: Vec<_> = r3
        .iter()
        .filter(|f| f.message.contains("lock order inversion"))
        .collect();
    assert_eq!(inversions.len(), 2, "{r3:#?}");
}

#[test]
fn telemetry_fixture_flags_foreign_layer_tags() {
    let findings = findings_for("telemetry");
    let r4: Vec<_> = findings.iter().filter(|f| f.rule == "R4").collect();
    assert_eq!(r4.len(), 8, "{findings:#?}");
    let tags: Vec<_> = r4
        .iter()
        .filter(|f| f.message.contains("expected `Layer::Odp`"))
        .collect();
    assert_eq!(tags.len(), 3, "{r4:#?}");
    assert!(tags.iter().any(|f| f.message.contains("Layer::App")));
    assert!(tags.iter().any(|f| f.message.contains("Layer::Net")));
    let names: Vec<_> = r4
        .iter()
        .filter(|f| f.message.contains("telemetry name"))
        .collect();
    assert_eq!(names.len(), 5, "{r4:#?}");
    assert!(names
        .iter()
        .any(|f| f.message.contains("\"importLatency\"") && f.message.contains("not a dotted")));
    assert!(names
        .iter()
        .any(|f| f.message.contains("\"net.sent\"") && f.message.contains("`Layer::Odp` prefix")));
    assert!(
        names
            .iter()
            .any(|f| f.message.contains("\"odp.invoke\"")
                && f.message.contains("`Layer::App` prefix"))
    );
}

#[test]
fn waiver_pragmas_suppress_findings() {
    let findings = findings_for("waivers");
    assert!(
        findings.is_empty(),
        "expected all waived, got: {findings:#?}"
    );
}

#[test]
fn ratchet_passes_at_exact_counts_and_fails_on_one_more() {
    let findings = findings_for("layering");
    assert!(!findings.is_empty());

    // A baseline generated from the findings themselves passes.
    let exact = Baseline::from_findings(&findings);
    assert!(exact.ratchet(&findings).is_pass());

    // Dropping one entry's count by one (simulating a newly introduced
    // violation relative to the recorded debt) must fail the check.
    let mut reduced = findings.clone();
    reduced.pop();
    let tighter = Baseline::from_findings(&reduced);
    let report = tighter.ratchet(&findings);
    assert!(!report.is_pass());
    assert_eq!(report.regressions.len(), 1);

    // Paying down debt only goes stale, never fails the default check.
    let report = exact.ratchet(&reduced);
    assert!(report.is_pass());
    assert!(!report.stale.is_empty());
}

#[test]
fn baseline_round_trips_through_render_and_parse() {
    let findings = findings_for("errors");
    let baseline = Baseline::from_findings(&findings);
    let parsed = Baseline::parse(&baseline.render()).expect("rendered baseline parses");
    assert_eq!(baseline, parsed);
}
