//! Fixture-based integration tests: each rule has a clean fixture and a
//! violating fixture, plus the ratchet semantics over synthetic
//! baselines.

use std::path::PathBuf;

use cscw_conform::analyze;
use cscw_conform::baseline::Baseline;
use cscw_conform::diag::Finding;
use cscw_conform::graph::CallGraph;
use cscw_conform::lexer::{lex, TokenKind};

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn findings_for(name: &str) -> Vec<Finding> {
    analyze(&fixture(name))
        .unwrap_or_else(|e| panic!("analyzing fixture {name}: {e}"))
        .findings
}

#[test]
fn clean_fixture_has_no_findings() {
    let findings = findings_for("clean");
    assert!(findings.is_empty(), "expected clean, got: {findings:#?}");
}

#[test]
fn layering_fixture_flags_bypass_upward_and_peer() {
    let findings = findings_for("layering");
    let r1: Vec<_> = findings.iter().filter(|f| f.rule == "R1").collect();
    assert_eq!(r1.len(), 3, "{findings:#?}");
    assert!(r1
        .iter()
        .any(|f| f.file.contains("groupware") && f.message.contains("net-layer bypass")));
    assert!(r1
        .iter()
        .any(|f| f.file.contains("simnet") && f.message.contains("upward")));
    assert!(r1
        .iter()
        .any(|f| f.file.contains("messaging") && f.message.contains("peer")));
    // The directory crate's downward use of simnet is legal.
    assert!(!r1.iter().any(|f| f.file.contains("directory")));
}

#[test]
fn errors_fixture_flags_panics_and_unclassified_apis() {
    let findings = findings_for("errors");
    let r2: Vec<_> = findings.iter().filter(|f| f.rule == "R2").collect();
    assert_eq!(r2.len(), 4, "{findings:#?}");
    assert!(r2.iter().any(|f| f.message.contains("`.unwrap()`")));
    assert!(r2.iter().any(|f| f.message.contains("`.expect(")));
    assert!(r2.iter().any(|f| f.message.contains("`panic!`")));
    assert!(r2.iter().any(
        |f| f.message.contains("UnclassifiedError") && f.message.contains("does not implement")
    ));
    // The parser-style `expect('(')` helper must not be confused with
    // `Option::expect`.
    assert!(!r2.iter().any(|f| f.line >= 22 && f.line <= 33));
}

#[test]
fn locks_fixture_flags_port_calls_and_inversions() {
    let findings = findings_for("locks");
    let r3: Vec<_> = findings.iter().filter(|f| f.rule == "R3").collect();
    assert_eq!(r3.len(), 3, "{findings:#?}");
    assert!(r3
        .iter()
        .any(|f| f.message.contains("held across Platform port call")
            && f.message.contains("org-model")));
    let inversions: Vec<_> = r3
        .iter()
        .filter(|f| f.message.contains("lock order inversion"))
        .collect();
    assert_eq!(inversions.len(), 2, "{r3:#?}");
}

#[test]
fn telemetry_fixture_flags_foreign_layer_tags() {
    let findings = findings_for("telemetry");
    let r4: Vec<_> = findings.iter().filter(|f| f.rule == "R4").collect();
    assert_eq!(r4.len(), 8, "{findings:#?}");
    let tags: Vec<_> = r4
        .iter()
        .filter(|f| f.message.contains("expected `Layer::Odp`"))
        .collect();
    assert_eq!(tags.len(), 3, "{r4:#?}");
    assert!(tags.iter().any(|f| f.message.contains("Layer::App")));
    assert!(tags.iter().any(|f| f.message.contains("Layer::Net")));
    let names: Vec<_> = r4
        .iter()
        .filter(|f| f.message.contains("telemetry name"))
        .collect();
    assert_eq!(names.len(), 5, "{r4:#?}");
    assert!(names
        .iter()
        .any(|f| f.message.contains("\"importLatency\"") && f.message.contains("not a dotted")));
    assert!(names
        .iter()
        .any(|f| f.message.contains("\"net.sent\"") && f.message.contains("`Layer::Odp` prefix")));
    assert!(
        names
            .iter()
            .any(|f| f.message.contains("\"odp.invoke\"")
                && f.message.contains("`Layer::App` prefix"))
    );
}

#[test]
fn determinism_fixture_flags_sensitive_sites_only() {
    let findings = findings_for("determinism");
    let r5: Vec<_> = findings.iter().filter(|f| f.rule == "R5").collect();
    assert_eq!(r5.len(), 4, "{findings:#?}");
    // The helper's hash iteration is a violation only because lib.rs's
    // `fingerprint` calls it — cross-file, via the call graph.
    assert!(r5.iter().any(|f| f.file.contains("canon.rs")
        && f.message.contains("feeds a fingerprint via `fingerprint`")));
    assert!(r5
        .iter()
        .any(|f| f.message.contains("`EventQueue` ordering via `schedule`")));
    assert!(r5.iter().any(|f| f.message.contains("`Instant::now()`")));
    assert!(r5.iter().any(|f| f.message.contains("`thread_rng`")));
    // The unconnected debug dump iterates the same map legally.
    assert!(!r5.iter().any(|f| f.message.contains("debug_dump")));
    assert_eq!(findings.len(), 4, "only R5 fires: {findings:#?}");
}

#[test]
fn spans_fixture_flags_unbalanced_and_unthreaded() {
    let findings = findings_for("spans");
    let r6: Vec<_> = findings.iter().filter(|f| f.rule == "R6").collect();
    assert_eq!(r6.len(), 4, "{findings:#?}");
    assert!(r6
        .iter()
        .any(|f| f.message.contains("early `return` in `lookup`")));
    assert!(r6
        .iter()
        .any(|f| f.message.contains("opened in `probe`")
            && f.message.contains("no matching `span_end`")));
    assert!(r6
        .iter()
        .any(|f| f.message.contains("\"doLookup\"") && f.message.contains("not a dotted")));
    assert!(r6
        .iter()
        .any(|f| f.message.contains("no `SpanContext` is threaded")));
    // `balanced` closes the span on both paths and must stay silent.
    assert!(!r6.iter().any(|f| f.message.contains("balanced")));
    assert_eq!(findings.len(), 4, "only R6 fires: {findings:#?}");
}

#[test]
fn waiver_pragmas_suppress_findings() {
    let findings = findings_for("waivers");
    assert!(
        findings.is_empty(),
        "expected all waived, got: {findings:#?}"
    );
}

#[test]
fn ratchet_passes_at_exact_counts_and_fails_on_one_more() {
    let findings = findings_for("layering");
    assert!(!findings.is_empty());

    // A baseline generated from the findings themselves passes.
    let exact = Baseline::from_findings(&findings);
    assert!(exact.ratchet(&findings).is_pass());

    // Dropping one entry's count by one (simulating a newly introduced
    // violation relative to the recorded debt) must fail the check.
    let mut reduced = findings.clone();
    reduced.pop();
    let tighter = Baseline::from_findings(&reduced);
    let report = tighter.ratchet(&findings);
    assert!(!report.is_pass());
    assert_eq!(report.regressions.len(), 1);

    // Paying down debt only goes stale, never fails the default check.
    let report = exact.ratchet(&reduced);
    assert!(report.is_pass());
    assert!(!report.stale.is_empty());
}

#[test]
fn baseline_round_trips_through_render_and_parse() {
    let findings = findings_for("errors");
    let baseline = Baseline::from_findings(&findings);
    let parsed = Baseline::parse(&baseline.render()).expect("rendered baseline parses");
    assert_eq!(baseline, parsed);
}

// --- Lexer edge cases the call-graph pass depends on ------------------

#[test]
fn raw_strings_and_nested_comments_do_not_grow_the_call_graph() {
    let src = r####"
pub fn outer(s0: &str) -> String {
    let s = r#"fn fake_in_raw() { phantom(); }"#;
    /* fn fake_in_comment() { /* nested block */ phantom(); } */
    helper(s)
}
fn helper(s: &str) -> String { s.to_owned() }
"####;
    let tokens = lex(src);
    let g = CallGraph::build(&[&tokens]);
    assert!(g.fn_named("fake_in_raw").is_none());
    assert!(g.fn_named("fake_in_comment").is_none());
    assert!(g.fn_named("phantom").is_none());
    let outer = g.fn_named("outer").expect("outer found");
    let helper = g.fn_named("helper").expect("helper found");
    assert_eq!(g.callees(outer), &[helper]);
}

#[test]
fn lifetimes_in_generic_args_lex_as_lifetimes_and_fns_still_resolve() {
    let src = "fn life<'a>(xs: &'a [Entry<'a>]) -> Option<&'a str> { first(xs) }\n\
               fn first<'b>(xs: &'b [Entry<'b>]) -> Option<&'b str> { None }\n";
    let tokens = lex(src);
    assert!(
        tokens.iter().any(|t| t.kind == TokenKind::Lifetime),
        "lifetimes must not lex as char literals"
    );
    assert!(!tokens.iter().any(|t| t.kind == TokenKind::CharLit));
    let g = CallGraph::build(&[&tokens]);
    let life = g.fn_named("life").expect("life found");
    let first = g.fn_named("first").expect("first found");
    assert_eq!(g.callees(life), &[first]);
}

#[test]
fn turbofish_call_sites_are_graph_edges_and_macros_are_not() {
    let src = "fn caller(input: &str) -> u64 {\n\
                   log!(\"not a call\");\n\
                   parse::<u64>(input)\n\
               }\n\
               fn parse<T>(s: &str) -> T { loop {} }\n\
               fn log(s: &str) {}\n";
    let tokens = lex(src);
    let g = CallGraph::build(&[&tokens]);
    let caller = g.fn_named("caller").expect("caller found");
    let parse = g.fn_named("parse").expect("parse found");
    let log = g.fn_named("log").expect("log found");
    assert!(g.callees(caller).contains(&parse), "turbofish edge");
    assert!(!g.callees(caller).contains(&log), "macro is not a call");
}

#[test]
fn trait_method_declarations_define_no_functions() {
    let src = "trait Port {\n\
                   fn declared_only(&self) -> u64;\n\
                   fn with_default(&self) -> u64 { backing() }\n\
               }\n\
               fn backing() -> u64 { 7 }\n";
    let tokens = lex(src);
    let g = CallGraph::build(&[&tokens]);
    assert!(g.fn_named("declared_only").is_none());
    let with_default = g.fn_named("with_default").expect("default body found");
    assert_eq!(g.callees(with_default), &[g.fn_named("backing").unwrap()]);
}
