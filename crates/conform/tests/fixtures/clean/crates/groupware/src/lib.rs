//! Clean fixture: an app-layer crate that plays by all the rules.

use cscw_kernel::Timestamp;
use mocca::CscwEnvironment;

pub enum AppError {
    Missing(String),
}

impl cscw_kernel::LayerError for AppError {
    fn layer(&self) -> cscw_kernel::Layer {
        cscw_kernel::Layer::App
    }
    fn kind(&self) -> &'static str {
        "missing"
    }
}

pub struct App {
    started: Timestamp,
}

impl App {
    pub fn lookup(&self, env: &CscwEnvironment, name: &str) -> Result<Timestamp, AppError> {
        if name.is_empty() {
            return Err(AppError::Missing(name.to_owned()));
        }
        let _ = env;
        Ok(self.started)
    }

    pub fn narrate(&self, telemetry: &cscw_kernel::Telemetry) {
        telemetry.incr(Layer::App, "app.lookup");
    }
}

#[cfg(test)]
mod tests {
    // Tests may panic freely; the analyzer must not look here.
    #[test]
    fn unwrap_is_fine_in_tests() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
        let t: Result<(), ()> = Ok(());
        t.expect("fine in tests");
    }
}
