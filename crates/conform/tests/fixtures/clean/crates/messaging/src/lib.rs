//! Clean fixture: the message transfer layer may name the net layer.

use simnet::NodeId;

pub fn route(node: NodeId) -> NodeId {
    // A doc example naming an upper layer must not count:
    // ```
    // use groupware::Conference;
    // ```
    node
}
