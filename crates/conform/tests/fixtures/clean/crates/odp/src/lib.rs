//! Clean fixture: determinism (R5) and span discipline (R6) done right.

use std::collections::{BTreeMap, HashMap};

use cscw_kernel::telemetry::{Layer, SpanContext, Telemetry};

pub struct Canon {
    ordered: BTreeMap<String, u64>,
    scratch: HashMap<String, u64>,
}

impl Canon {
    /// Sorted iteration feeding the digest: deterministic, no finding.
    pub fn fingerprint(&self) -> String {
        let mut out = String::new();
        for (k, v) in self.ordered.iter() {
            out.push_str(k);
            out.push(':');
            out.push_str(&v.to_string());
        }
        out
    }

    /// Hash iteration with no path to any sink: allowed.
    pub fn scratch_len(&self) -> usize {
        let mut n = 0;
        for _ in self.scratch.iter() {
            n += 1;
        }
        n
    }
}

/// Balanced span whose early return closes it first; the continuation
/// is opened from an explicit parent, so context threads the hop.
fn relay(t: &Telemetry, layer: Layer, parent: SpanContext, miss: bool) -> u32 {
    let span = t.span_begin_with_parent(parent, layer, "odp.relay.run", 1);
    if miss {
        t.span_end(span, 2);
        return 0;
    }
    t.span_end(span, 3);
    1
}

/// The simnet continuation shape: the span rides an `Option` pair and
/// is ended through the destructured alias.
fn deliver(t: Option<&Telemetry>, layer: Layer, parent: SpanContext) {
    let carried = match t {
        Some(tel) => {
            let s = tel.span_begin_with_parent(parent, layer, "odp.deliver.run", 1);
            Some((tel, s))
        }
        None => None,
    };
    dispatch();
    if let Some((tel, s)) = carried {
        tel.span_end(s, 2);
    }
}

fn dispatch() {}
