//! The cross-file helper: nothing in this file names a fingerprint,
//! yet its hash iteration is a violation because `lib.rs`'s
//! `fingerprint` calls it.

use std::collections::HashMap;

pub fn canonical_text(map: &HashMap<String, u64>) -> String {
    let mut out = String::new();
    for (k, v) in map.iter() {
        out.push_str(k);
        out.push(':');
        out.push_str(&v.to_string());
        out.push('\n');
    }
    out
}
