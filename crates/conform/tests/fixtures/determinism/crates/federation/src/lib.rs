//! Violating fixture: determinism discipline (R5).
//!
//! `fingerprint` delegates to a helper in another file that iterates a
//! `HashMap` — only the cross-file call graph can see that the order
//! escapes into the digest. `rearm` feeds `EventQueue` ordering as a
//! transitive *caller* of `schedule`. `debug_dump` iterates the same
//! map but is connected to no sink, so it must stay clean.

mod canon;

use std::collections::HashMap;
use std::time::Instant;

pub struct Store {
    entries: HashMap<String, u64>,
}

impl Store {
    /// Canonical digest over the replicated entries.
    pub fn fingerprint(&self) -> String {
        canon::canonical_text(&self.entries)
    }

    /// Unconnected to any sink: hash iteration here is legal.
    pub fn debug_dump(&self) -> usize {
        let mut n = 0;
        for (_k, _v) in self.entries.iter() {
            n += 1;
        }
        n
    }
}

pub struct Queue {
    marks: HashMap<u64, u64>,
    slots: Vec<u64>,
}

impl Queue {
    /// The ordering sink: what arrives here fires in arrival order.
    pub fn schedule(&mut self, at: u64) {
        self.slots.push(at);
    }

    /// Hash iteration deciding what to schedule: the arbitrary order
    /// escapes into the event queue.
    pub fn rearm(&mut self) {
        let pending: Vec<u64> = self.marks.keys().copied().collect();
        for at in pending {
            self.schedule(at);
        }
    }
}

/// Wall-clock read in shipping code: flagged regardless of the graph.
pub fn stamp() -> u64 {
    let epoch = Instant::now();
    epoch.elapsed().as_micros() as u64
}

/// Unseeded randomness: flagged regardless of the graph.
pub fn jitter() -> u64 {
    let mut rng = thread_rng();
    rng.next_u64()
}
