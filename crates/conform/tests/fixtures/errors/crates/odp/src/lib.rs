//! Violating fixture for R2: panics in library code and a public
//! fallible API with an unclassified error type.

pub struct UnclassifiedError;

pub fn shaky(input: Option<u32>) -> u32 {
    input.unwrap()
}

pub fn louder(input: Result<u32, ()>) -> u32 {
    input.expect("should have been a number")
}

pub fn giving_up() -> ! {
    panic!("cannot continue");
}

pub fn fallible() -> Result<u32, UnclassifiedError> {
    Err(UnclassifiedError)
}

// Not Option::expect: a parser-style helper named `expect` taking a
// char must NOT be flagged.
pub struct Parser;

impl Parser {
    pub fn expect(&mut self, c: char) -> bool {
        c == '('
    }
    pub fn run(&mut self) -> bool {
        self.expect('(')
    }
}

// Generic error parameters cannot be judged and are skipped.
pub fn generic<T, E>(v: Result<T, E>) -> Result<T, E> {
    v
}
