//! Clean half of the layering fixture: the directory may use the net
//! layer below it.

use simnet::NodeId;

pub fn home(node: NodeId) -> NodeId {
    node
}
