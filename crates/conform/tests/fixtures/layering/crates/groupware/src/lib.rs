//! Violating fixture: the app layer reaches straight down to the net
//! layer (R1 net-layer bypass).

use simnet::SimTime;

pub fn now() -> SimTime {
    SimTime::ZERO
}
