//! Violating fixture: peer coupling between the communication services
//! (R1 peer-layer dependency).

use cscw_directory::Dn;

pub fn lookup(dn: &Dn) {
    let _ = dn;
}
