//! Violating fixture: the net layer imports upward (R1).

use odp::Trader;

pub fn broken(t: &Trader) {
    let _ = t;
}
