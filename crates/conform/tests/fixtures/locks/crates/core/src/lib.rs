//! Violating fixture for R3: a guard held across a Platform port call,
//! and a lock-order inversion between two functions.

pub struct Env;

impl Env {
    // Held-across-port: `org` is still live at the trader() call.
    pub fn bad_port_call(&self) {
        let org = self.org.read();
        let offers = self.platform.trader().import(&org);
        drop(offers);
    }

    // Temporary guard: released at the end of the statement, fine.
    pub fn good_port_call(&self) {
        self.org.read().check();
        let _offers = self.platform.trader().import_all();
    }

    // Acquires alpha then beta…
    pub fn forward(&self) {
        let a = self.alpha.lock();
        let b = self.beta.lock();
        drop(b);
        drop(a);
    }

    // …and beta then alpha elsewhere: an inversion.
    pub fn backward(&self) {
        let b = self.beta.lock();
        let a = self.alpha.lock();
        drop(a);
        drop(b);
    }
}
