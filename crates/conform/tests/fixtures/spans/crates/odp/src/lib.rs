//! Violating fixture: span discipline (R6).
//!
//! Every telemetry call here passes the layer as a *variable*, so R4
//! (which keys on literal `Layer::X` tags) stays silent and the
//! findings are R6's alone.

use cscw_kernel::telemetry::{Layer, Telemetry};

pub struct Router {
    platform: BoxedPlatform,
}

/// Early return while the span is still open: the trace leaks.
fn lookup(t: &Telemetry, layer: Layer, miss: bool) -> u32 {
    let span = t.span_begin(layer, "odp.lookup.run", 1);
    if miss {
        return 0;
    }
    t.span_end(span, 2);
    1
}

/// Opened and never ended at all.
fn probe(t: &Telemetry, layer: Layer) {
    let span = t.span_begin(layer, "odp.probe.run", 1);
    let _ = span;
}

/// Non-dotted span name; the variable layer hides it from R4.
fn misnamed(t: &Telemetry, layer: Layer) {
    let span = t.span_begin(layer, "doLookup", 1);
    t.span_end(span, 2);
}

impl Router {
    /// A span held open across a `Platform` port call with no
    /// `SpanContext` threaded: the trace dies at the hop.
    fn route(&mut self, t: &Telemetry, layer: Layer) {
        let span = t.span_begin(layer, "odp.route.hop", 1);
        self.platform.transport().deliver();
        t.span_end(span, 2);
    }
}

/// Clean: the early return closes the span first.
fn balanced(t: &Telemetry, layer: Layer, miss: bool) -> u32 {
    let span = t.span_begin(layer, "odp.balanced.run", 1);
    if miss {
        t.span_end(span, 2);
        return 0;
    }
    t.span_end(span, 3);
    1
}
