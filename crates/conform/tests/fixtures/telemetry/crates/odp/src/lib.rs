//! Violating fixture for R4: the ODP layer tagging telemetry with
//! another layer's tag.

use cscw_kernel::{Layer, Telemetry};

pub fn observe(t: &Telemetry) {
    t.incr(Layer::Odp, "trader.import"); // correct: own layer
    t.incr(Layer::App, "trader.import"); // wrong: upper layer's tag
    t.emit(0, Layer::Net, "trader.import", String::new()); // wrong too
}
