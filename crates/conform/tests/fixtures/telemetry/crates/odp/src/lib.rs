//! Violating fixture for R4: the ODP layer tagging telemetry with
//! another layer's tag, and names that break the dotted
//! `layer.noun.verb` prefix convention.

use cscw_kernel::{Layer, Telemetry};

pub fn observe(t: &Telemetry) {
    t.incr(Layer::Odp, "trader.import"); // correct: own layer, own prefix
    t.incr(Layer::App, "trader.import"); // wrong tag (+ name not app.*)
    t.emit(0, Layer::Net, "trader.import", String::new()); // wrong too
    t.record_micros(Layer::Odp, "importLatency", 3); // name not dotted
    t.incr(Layer::Odp, "net.sent"); // dotted, but a foreign prefix
    t.span_begin(Layer::App, "odp.invoke", 0); // wrong tag on span surface
}
