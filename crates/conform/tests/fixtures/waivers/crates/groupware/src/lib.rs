//! Fixture: violations covered by waiver pragmas produce no findings.
//!
//! conform: allow-file(R4) — fixture exercises the file-level pragma

use cscw_kernel::{Layer, Telemetry};
// conform: allow(R1) — fixture exercises the line-level pragma
use simnet::SimTime;

pub fn tagged(t: &Telemetry) {
    t.incr(Layer::Net, "whatever");
}

pub fn when() -> SimTime {
    // conform: allow(R2) — fixture pragma on the line above the panic
    SimTime::from_micros(always_there().unwrap())
}

fn always_there() -> Option<u64> {
    Some(7)
}

pub fn epoch_micros() -> u64 {
    // conform: allow(determinism) — fixture exercises the R5 alias pragma
    let anchor = std::time::Instant::now();
    anchor.elapsed().as_micros() as u64
}

pub fn leaky(t: &Telemetry, layer: Layer) {
    // conform: allow(R6) — fixture exercises the span-balance waiver
    let span = t.span_begin(layer, "app.leaky.run", 1);
    let _ = span;
}
