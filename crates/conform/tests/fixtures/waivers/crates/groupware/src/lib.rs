//! Fixture: violations covered by waiver pragmas produce no findings.
//!
//! conform: allow-file(R4) — fixture exercises the file-level pragma

use cscw_kernel::{Layer, Telemetry};
// conform: allow(R1) — fixture exercises the line-level pragma
use simnet::SimTime;

pub fn tagged(t: &Telemetry) {
    t.incr(Layer::Net, "whatever");
}

pub fn when() -> SimTime {
    // conform: allow(R2) — fixture pragma on the line above the panic
    SimTime::from_micros(always_there().unwrap())
}

fn always_there() -> Option<u64> {
    Some(7)
}
