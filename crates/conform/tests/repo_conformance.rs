//! The workspace's own conformance gate: `cargo test` enforces the
//! committed baseline, so a layering/panic/lock/telemetry/determinism/
//! span regression fails the test suite even before CI runs the
//! analyzer binary.

use std::path::{Path, PathBuf};

use cscw_conform::baseline::Baseline;
use cscw_conform::diag::Finding;
use cscw_conform::{analyze, check};

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root exists")
}

fn committed_baseline(root: &Path) -> Baseline {
    let path = root.join("conform-baseline.toml");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("reading {}: {e}", path.display()));
    Baseline::parse(&text).expect("committed baseline parses")
}

#[test]
fn workspace_conforms_to_committed_baseline() {
    let root = workspace_root();
    let baseline = committed_baseline(&root);
    let outcome = check(&root, baseline).expect("analysis succeeds");
    let mut detail = String::new();
    for (rule, file, allowed, got, bucket) in &outcome.report.regressions {
        detail.push_str(&format!(
            "\n{rule} {file}: {got} findings, baseline allows {allowed}"
        ));
        for f in bucket {
            detail.push_str(&format!("\n    {f}"));
        }
    }
    assert!(
        outcome.report.is_pass(),
        "conformance regressions (fix them, or if intentional debt, regenerate \
         conform-baseline.toml with `cargo run -p cscw-conform -- check --write-baseline`):{detail}"
    );
}

#[test]
fn groupware_simnet_debt_is_paid_and_stays_paid() {
    // The groupware→simnet bypasses the analyzer originally tracked as
    // debt were paid down (the apps now host nodes through
    // `cscw_messaging::net` and carry kernel `Timestamp`s); the ratchet
    // must hold them at zero.
    let root = workspace_root();
    let baseline = committed_baseline(&root);
    for file in [
        "crates/groupware/src/bbs.rs",
        "crates/groupware/src/conference.rs",
        "crates/groupware/src/lens_mail.rs",
        "crates/groupware/src/procedure.rs",
    ] {
        assert_eq!(
            baseline.count("R1", file),
            0,
            "R1 debt crept back into the baseline for {file}"
        );
    }
}

#[test]
fn panic_debt_is_paid_and_stays_paid() {
    // PR 4 burned down every baselined R2 panic site; the ratchet must
    // hold the whole rule at zero.
    let root = workspace_root();
    let baseline = committed_baseline(&root);
    assert_eq!(
        baseline.total_for_rule("R2"),
        0,
        "R2 panic debt crept back into the baseline"
    );
}

#[test]
fn determinism_and_span_discipline_enter_with_zero_baseline() {
    // R5/R6 landed with the shipping code already clean (simnet's maps
    // became `BTreeMap`s, the kernel clock's epoch carries its
    // determinism waiver): the ratchet must hold both rules at zero,
    // and the strict `check -D` the CI job runs must pass.
    let root = workspace_root();
    let baseline = committed_baseline(&root);
    assert_eq!(
        baseline.total_for_rule("R5"),
        0,
        "R5 determinism debt crept into the baseline"
    );
    assert_eq!(
        baseline.total_for_rule("R6"),
        0,
        "R6 span debt crept into the baseline"
    );
    let outcome = check(&root, baseline).expect("analysis succeeds");
    assert!(
        outcome.is_pass(true),
        "`check -D` must stay clean with R5/R6 enabled: {:#?}",
        outcome.analysis.findings
    );
}

#[test]
fn a_synthetic_violation_fails_the_ratchet() {
    let root = workspace_root();
    let baseline = committed_baseline(&root);
    let mut analysis = analyze(&root).expect("analysis succeeds");
    // Simulate one new net-layer bypass appearing in shipping code.
    analysis.findings.push(Finding::new(
        "R1",
        "crates/groupware/src/bbs.rs",
        1,
        "synthetic: one more `simnet` reference",
    ));
    let report = baseline.ratchet(&analysis.findings);
    assert!(!report.is_pass(), "the synthetic violation must regress");
}
