//! Activities and their lifecycle.
//!
//! "Cooperative working needs to be considered in terms of numerous
//! related activities occurring within an organisational environment"
//! (§3). An [`Activity`] has members (people in activity roles), a
//! lifecycle state machine, an optional deadline and a progress figure
//! for monitoring.

use cscw_directory::Dn;
use cscw_kernel::Timestamp;
use serde::{Deserialize, Serialize};

use crate::error::MoccaError;

/// Identifies an activity.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ActivityId(String);

impl ActivityId {
    /// Creates an id.
    pub fn new(id: impl Into<String>) -> Self {
        ActivityId(id.into())
    }

    /// The raw name.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl std::fmt::Display for ActivityId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for ActivityId {
    fn from(s: &str) -> Self {
        ActivityId::new(s)
    }
}

/// Activity lifecycle states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ActivityState {
    /// Proposed, not yet agreed.
    Proposed,
    /// Running.
    Active,
    /// Temporarily stopped.
    Suspended,
    /// Finished successfully.
    Completed,
    /// Abandoned.
    Cancelled,
}

impl ActivityState {
    /// The state's name, for errors and traces.
    pub fn name(self) -> &'static str {
        match self {
            ActivityState::Proposed => "proposed",
            ActivityState::Active => "active",
            ActivityState::Suspended => "suspended",
            ActivityState::Completed => "completed",
            ActivityState::Cancelled => "cancelled",
        }
    }

    /// Legal transitions: Proposed→Active/Cancelled,
    /// Active→Suspended/Completed/Cancelled, Suspended→Active/Cancelled.
    /// Completed and Cancelled are terminal.
    pub fn can_transition_to(self, next: ActivityState) -> bool {
        use ActivityState::*;
        matches!(
            (self, next),
            (Proposed, Active)
                | (Proposed, Cancelled)
                | (Active, Suspended)
                | (Active, Completed)
                | (Active, Cancelled)
                | (Suspended, Active)
                | (Suspended, Cancelled)
        )
    }

    /// True for terminal states.
    pub fn is_terminal(self) -> bool {
        matches!(self, ActivityState::Completed | ActivityState::Cancelled)
    }
}

/// A member's role within one activity (distinct from organisational
/// roles — the inter-activity model maps between them).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ActivityRole(pub String);

/// One cooperative activity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Activity {
    /// The id.
    pub id: ActivityId,
    /// Human name ("team progress meeting", "joint report").
    pub name: String,
    /// Lifecycle state.
    state: ActivityState,
    /// Members and their activity roles.
    members: Vec<(Dn, ActivityRole)>,
    /// The member responsible for the activity (settled by
    /// negotiation — see [`crate::activity::negotiation`]).
    pub responsible: Option<Dn>,
    /// Optional deadline.
    pub deadline: Option<Timestamp>,
    /// Progress 0..=100, reported by members.
    progress: u8,
}

impl Activity {
    /// Creates a proposed activity.
    pub fn new(id: ActivityId, name: impl Into<String>) -> Self {
        Activity {
            id,
            name: name.into(),
            state: ActivityState::Proposed,
            members: Vec::new(),
            responsible: None,
            deadline: None,
            progress: 0,
        }
    }

    /// The current state.
    pub fn state(&self) -> ActivityState {
        self.state
    }

    /// Transitions the lifecycle.
    ///
    /// # Errors
    ///
    /// [`MoccaError::IllegalTransition`] for transitions outside the
    /// state machine.
    pub fn transition(&mut self, next: ActivityState) -> Result<(), MoccaError> {
        if !self.state.can_transition_to(next) {
            return Err(MoccaError::IllegalTransition {
                activity: self.id.to_string(),
                from: self.state.name(),
                to: next.name(),
            });
        }
        self.state = next;
        Ok(())
    }

    /// Adds a member in a role. Re-joining replaces the role.
    pub fn join(&mut self, person: Dn, role: ActivityRole) {
        if let Some(slot) = self.members.iter_mut().find(|(p, _)| *p == person) {
            slot.1 = role;
        } else {
            self.members.push((person, role));
        }
    }

    /// Removes a member; returns whether they were present. A departing
    /// responsible leaves the activity without a responsible.
    pub fn leave(&mut self, person: &Dn) -> bool {
        let before = self.members.len();
        self.members.retain(|(p, _)| p != person);
        if self.responsible.as_ref() == Some(person) {
            self.responsible = None;
        }
        self.members.len() != before
    }

    /// The members.
    pub fn members(&self) -> &[(Dn, ActivityRole)] {
        &self.members
    }

    /// True when the person participates.
    pub fn has_member(&self, person: &Dn) -> bool {
        self.members.iter().any(|(p, _)| p == person)
    }

    /// A member's activity role.
    pub fn role_of(&self, person: &Dn) -> Option<&ActivityRole> {
        self.members
            .iter()
            .find(|(p, _)| p == person)
            .map(|(_, r)| r)
    }

    /// Progress 0..=100.
    pub fn progress(&self) -> u8 {
        self.progress
    }

    /// Reports progress (clamped to 100). Completing the activity via
    /// progress is intentional: 100% on an active activity transitions
    /// it to Completed.
    ///
    /// # Errors
    ///
    /// [`MoccaError::IllegalTransition`] when reporting progress on a
    /// terminal activity.
    pub fn report_progress(&mut self, progress: u8) -> Result<(), MoccaError> {
        if self.state.is_terminal() {
            return Err(MoccaError::IllegalTransition {
                activity: self.id.to_string(),
                from: self.state.name(),
                to: self.state.name(),
            });
        }
        self.progress = progress.min(100);
        if self.progress == 100 && self.state == ActivityState::Active {
            self.state = ActivityState::Completed;
        }
        Ok(())
    }

    /// True when the deadline has passed without completion.
    pub fn is_overdue(&self, now: Timestamp) -> bool {
        match self.deadline {
            Some(d) => now > d && !matches!(self.state, ActivityState::Completed),
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dn(s: &str) -> Dn {
        s.parse().unwrap()
    }

    fn activity() -> Activity {
        Activity::new("progress-meetings".into(), "Team progress meetings")
    }

    #[test]
    fn lifecycle_happy_path() {
        let mut a = activity();
        assert_eq!(a.state(), ActivityState::Proposed);
        a.transition(ActivityState::Active).unwrap();
        a.transition(ActivityState::Suspended).unwrap();
        a.transition(ActivityState::Active).unwrap();
        a.transition(ActivityState::Completed).unwrap();
        assert!(a.state().is_terminal());
    }

    #[test]
    fn illegal_transitions_are_refused() {
        let mut a = activity();
        assert!(
            a.transition(ActivityState::Completed).is_err(),
            "proposed cannot complete"
        );
        a.transition(ActivityState::Active).unwrap();
        a.transition(ActivityState::Completed).unwrap();
        let err = a.transition(ActivityState::Active).unwrap_err();
        assert!(matches!(err, MoccaError::IllegalTransition { .. }));
        assert!(err.to_string().contains("completed -> active"));
    }

    #[test]
    fn membership_join_leave_rejoin() {
        let mut a = activity();
        a.join(dn("cn=Tom"), ActivityRole("chair".into()));
        a.join(dn("cn=Wolfgang"), ActivityRole("minute-taker".into()));
        assert!(a.has_member(&dn("cn=Tom")));
        assert_eq!(a.role_of(&dn("cn=Tom")).unwrap().0, "chair");
        // Rejoin replaces the role.
        a.join(dn("cn=Tom"), ActivityRole("participant".into()));
        assert_eq!(a.members().len(), 2);
        assert_eq!(a.role_of(&dn("cn=Tom")).unwrap().0, "participant");
        assert!(a.leave(&dn("cn=Tom")));
        assert!(!a.leave(&dn("cn=Tom")));
        assert!(!a.has_member(&dn("cn=Tom")));
    }

    #[test]
    fn departing_responsible_clears_responsibility() {
        let mut a = activity();
        a.join(dn("cn=Tom"), ActivityRole("chair".into()));
        a.responsible = Some(dn("cn=Tom"));
        a.leave(&dn("cn=Tom"));
        assert_eq!(a.responsible, None);
    }

    #[test]
    fn progress_completes_at_100() {
        let mut a = activity();
        a.transition(ActivityState::Active).unwrap();
        a.report_progress(40).unwrap();
        assert_eq!(a.progress(), 40);
        assert_eq!(a.state(), ActivityState::Active);
        a.report_progress(250).unwrap(); // clamped
        assert_eq!(a.progress(), 100);
        assert_eq!(a.state(), ActivityState::Completed);
        assert!(a.report_progress(10).is_err(), "terminal activities freeze");
    }

    #[test]
    fn overdue_detection() {
        let mut a = activity();
        a.deadline = Some(Timestamp::from_secs(100));
        assert!(!a.is_overdue(Timestamp::from_secs(50)));
        assert!(a.is_overdue(Timestamp::from_secs(101)));
        a.transition(ActivityState::Active).unwrap();
        a.report_progress(100).unwrap();
        assert!(
            !a.is_overdue(Timestamp::from_secs(101)),
            "completed is never overdue"
        );
    }
}
