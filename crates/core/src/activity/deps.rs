//! The Inter-activity Model (§5).
//!
//! "Rather than finding a common mechanism for representing activities
//! and roles the aim of the inter-activity model is to allow the
//! dependencies between different activities and roles to be
//! represented within the environment."
//!
//! Dependencies come in the three flavours §3 enumerates: temporal
//! relationships, shared resources and shared information. Temporal
//! `Before` edges must stay acyclic (they induce the schedule);
//! resource- and information-sharing edges may form any graph.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use cscw_directory::Dn;
use serde::{Deserialize, Serialize};

use crate::activity::activity::{Activity, ActivityId, ActivityState};
use crate::error::MoccaError;

/// How two activities relate.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum DependencyKind {
    /// `from` must complete before `to` starts ("well-defined temporal
    /// relationships").
    Before,
    /// Both use the resource ("activities may use common resources").
    SharesResource(Dn),
    /// Both read/write the information object ("activities may share
    /// common information").
    SharesInformation(String),
}

/// One inter-activity dependency edge.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Dependency {
    /// Source activity.
    pub from: ActivityId,
    /// Kind.
    pub kind: DependencyKind,
    /// Target activity.
    pub to: ActivityId,
}

/// The inter-activity model: the registered activities plus the
/// dependency graph between them.
#[derive(Debug, Clone, Default)]
pub struct InterActivityModel {
    activities: BTreeMap<ActivityId, Activity>,
    dependencies: Vec<Dependency>,
}

impl InterActivityModel {
    /// Creates an empty model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an activity.
    ///
    /// # Errors
    ///
    /// [`MoccaError::UnknownActivity`] (with a "duplicate" message) when
    /// an activity with the same id is already registered.
    pub fn register(&mut self, activity: Activity) -> Result<(), MoccaError> {
        if self.activities.contains_key(&activity.id) {
            return Err(MoccaError::UnknownActivity(format!(
                "duplicate activity id {}",
                activity.id
            )));
        }
        self.activities.insert(activity.id.clone(), activity);
        Ok(())
    }

    /// Borrows an activity.
    pub fn activity(&self, id: &ActivityId) -> Option<&Activity> {
        self.activities.get(id)
    }

    /// Mutably borrows an activity.
    pub fn activity_mut(&mut self, id: &ActivityId) -> Option<&mut Activity> {
        self.activities.get_mut(id)
    }

    /// All activities.
    pub fn activities(&self) -> impl Iterator<Item = &Activity> {
        self.activities.values()
    }

    /// Number of activities.
    pub fn len(&self) -> usize {
        self.activities.len()
    }

    /// True when no activities are registered.
    pub fn is_empty(&self) -> bool {
        self.activities.is_empty()
    }

    /// All dependencies.
    pub fn dependencies(&self) -> &[Dependency] {
        &self.dependencies
    }

    /// Adds a dependency between two registered activities.
    ///
    /// # Errors
    ///
    /// * [`MoccaError::UnknownActivity`] — either endpoint missing.
    /// * [`MoccaError::DependencyCycle`] — a `Before` edge would close a
    ///   temporal cycle.
    pub fn add_dependency(
        &mut self,
        from: &ActivityId,
        kind: DependencyKind,
        to: &ActivityId,
    ) -> Result<(), MoccaError> {
        for end in [from, to] {
            if !self.activities.contains_key(end) {
                return Err(MoccaError::UnknownActivity(end.to_string()));
            }
        }
        if kind == DependencyKind::Before && (from == to || self.temporally_reachable(to, from)) {
            return Err(MoccaError::DependencyCycle(from.to_string()));
        }
        let dep = Dependency {
            from: from.clone(),
            kind,
            to: to.clone(),
        };
        if !self.dependencies.contains(&dep) {
            self.dependencies.push(dep);
        }
        Ok(())
    }

    /// Is `target` reachable from `start` along `Before` edges?
    fn temporally_reachable(&self, start: &ActivityId, target: &ActivityId) -> bool {
        let mut seen = BTreeSet::new();
        let mut queue = VecDeque::from([start.clone()]);
        while let Some(current) = queue.pop_front() {
            if &current == target {
                return true;
            }
            if !seen.insert(current.clone()) {
                continue;
            }
            for dep in &self.dependencies {
                if dep.kind == DependencyKind::Before && dep.from == current {
                    queue.push_back(dep.to.clone());
                }
            }
        }
        false
    }

    /// A valid schedule order: topological sort over `Before` edges
    /// (ties broken by id for determinism).
    pub fn schedule_order(&self) -> Vec<ActivityId> {
        let mut indegree: BTreeMap<&ActivityId, usize> =
            self.activities.keys().map(|id| (id, 0)).collect();
        for dep in &self.dependencies {
            if dep.kind == DependencyKind::Before {
                if let Some(d) = indegree.get_mut(&dep.to) {
                    *d += 1;
                }
            }
        }
        let mut ready: BTreeSet<&ActivityId> = indegree
            .iter()
            .filter(|(_, &d)| d == 0)
            .map(|(&id, _)| id)
            .collect();
        let mut order = Vec::with_capacity(self.activities.len());
        while let Some(&next) = ready.iter().next() {
            ready.remove(next);
            order.push(next.clone());
            for dep in &self.dependencies {
                if dep.kind == DependencyKind::Before && dep.from == *next {
                    if let Some(d) = indegree.get_mut(&dep.to) {
                        *d -= 1;
                        if *d == 0 {
                            ready.insert(&dep.to);
                        }
                    }
                }
            }
        }
        order
    }

    /// Activities sharing a resource with `id` (either direction).
    pub fn resource_neighbours(&self, id: &ActivityId) -> Vec<(&ActivityId, &Dn)> {
        self.dependencies
            .iter()
            .filter_map(|d| match &d.kind {
                DependencyKind::SharesResource(res) if &d.from == id => Some((&d.to, res)),
                DependencyKind::SharesResource(res) if &d.to == id => Some((&d.from, res)),
                _ => None,
            })
            .collect()
    }

    /// Everything transitively after `id` (the activities affected if it
    /// slips — the monitoring query).
    pub fn downstream_of(&self, id: &ActivityId) -> Vec<ActivityId> {
        let mut seen = BTreeSet::new();
        let mut queue = VecDeque::from([id.clone()]);
        while let Some(current) = queue.pop_front() {
            for dep in &self.dependencies {
                if dep.kind == DependencyKind::Before
                    && dep.from == current
                    && seen.insert(dep.to.clone())
                {
                    queue.push_back(dep.to.clone());
                }
            }
        }
        seen.into_iter().collect()
    }

    /// May `id` start? All `Before` predecessors must be completed.
    pub fn can_start(&self, id: &ActivityId) -> bool {
        self.dependencies
            .iter()
            .filter(|d| d.kind == DependencyKind::Before && &d.to == id)
            .all(|d| {
                self.activities
                    .get(&d.from)
                    .map(|a| a.state() == ActivityState::Completed)
                    .unwrap_or(false)
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(s: &str) -> ActivityId {
        s.into()
    }

    /// The paper's Channel-Tunnel-flavoured set: meetings, report,
    /// monitoring, interviews.
    fn model() -> InterActivityModel {
        let mut m = InterActivityModel::new();
        for (a, name) in [
            ("interviews", "Site interviews"),
            ("report", "Joint progress report"),
            ("meeting", "Team progress meeting"),
            ("monitoring", "Progress monitoring"),
        ] {
            m.register(Activity::new(a.into(), name)).unwrap();
        }
        m.add_dependency(&id("interviews"), DependencyKind::Before, &id("report"))
            .unwrap();
        m.add_dependency(&id("report"), DependencyKind::Before, &id("meeting"))
            .unwrap();
        m.add_dependency(
            &id("meeting"),
            DependencyKind::SharesResource("cn=room1".parse().unwrap()),
            &id("interviews"),
        )
        .unwrap();
        m.add_dependency(
            &id("report"),
            DependencyKind::SharesInformation("doc:report-draft".into()),
            &id("monitoring"),
        )
        .unwrap();
        m
    }

    #[test]
    fn duplicate_registration_fails() {
        let mut m = model();
        assert!(m.register(Activity::new("report".into(), "again")).is_err());
    }

    #[test]
    fn dependencies_require_known_activities() {
        let mut m = model();
        let err = m
            .add_dependency(&id("ghost"), DependencyKind::Before, &id("report"))
            .unwrap_err();
        assert!(matches!(err, MoccaError::UnknownActivity(_)));
    }

    #[test]
    fn temporal_cycles_are_refused() {
        let mut m = model();
        let err = m
            .add_dependency(&id("meeting"), DependencyKind::Before, &id("interviews"))
            .unwrap_err();
        assert!(matches!(err, MoccaError::DependencyCycle(_)));
        // Self-loop refused too.
        assert!(m
            .add_dependency(&id("report"), DependencyKind::Before, &id("report"))
            .is_err());
        // Non-temporal cycles are fine.
        m.add_dependency(
            &id("meeting"),
            DependencyKind::SharesInformation("doc:x".into()),
            &id("meeting"),
        )
        .unwrap();
    }

    #[test]
    fn schedule_respects_before_edges() {
        let m = model();
        let order = m.schedule_order();
        assert_eq!(order.len(), 4);
        let pos = |x: &str| order.iter().position(|a| a.as_str() == x).unwrap();
        assert!(pos("interviews") < pos("report"));
        assert!(pos("report") < pos("meeting"));
    }

    #[test]
    fn schedule_is_deterministic() {
        let m = model();
        assert_eq!(m.schedule_order(), m.schedule_order());
    }

    #[test]
    fn downstream_propagation() {
        let m = model();
        let affected = m.downstream_of(&id("interviews"));
        assert_eq!(affected.len(), 2);
        assert!(affected.contains(&id("report")));
        assert!(affected.contains(&id("meeting")));
        assert!(m.downstream_of(&id("meeting")).is_empty());
    }

    #[test]
    fn can_start_gates_on_predecessors() {
        let mut m = model();
        assert!(m.can_start(&id("interviews")), "no predecessors");
        assert!(!m.can_start(&id("report")), "interviews not completed");
        {
            let a = m.activity_mut(&id("interviews")).unwrap();
            a.transition(ActivityState::Active).unwrap();
            a.report_progress(100).unwrap();
        }
        assert!(m.can_start(&id("report")));
    }

    #[test]
    fn resource_neighbours_are_bidirectional() {
        let m = model();
        let n1 = m.resource_neighbours(&id("meeting"));
        assert_eq!(n1.len(), 1);
        assert_eq!(n1[0].0.as_str(), "interviews");
        let n2 = m.resource_neighbours(&id("interviews"));
        assert_eq!(n2.len(), 1);
        assert_eq!(n2[0].0.as_str(), "meeting");
    }

    #[test]
    fn duplicate_dependency_edges_collapse() {
        let mut m = model();
        let before = m.dependencies().len();
        m.add_dependency(&id("interviews"), DependencyKind::Before, &id("report"))
            .unwrap();
        assert_eq!(m.dependencies().len(), before);
    }
}
