//! The Inter-activity Model (§5) and activity services (§4).
//!
//! "These services might include: managing the membership of
//! activities; sharing resources between activities; scheduling
//! activities and monitoring the progress of activities; mechanisms for
//! negotiating the responsibility for activities; mechanisms for
//! negotiating the division of competence within activities;
//! coordination of activities."
//!
//! * [`activity`] — the [`Activity`] lifecycle and membership.
//! * [`deps`] — inter-activity dependencies (temporal, shared resource,
//!   shared information) and the schedule they induce.
//! * [`negotiation`] — propose/counter/accept/reject for responsibility
//!   and division of competence.
//! * [`schedule`] — progress monitoring over the whole model.

#[allow(clippy::module_inception)]
pub mod activity;
pub mod deps;
pub mod negotiation;
pub mod schedule;

pub use activity::{Activity, ActivityId, ActivityRole, ActivityState};
pub use deps::{Dependency, DependencyKind, InterActivityModel};
pub use negotiation::{
    Negotiation, NegotiationAction, NegotiationState, NegotiationStep, NegotiationSubject,
};
pub use schedule::{ActivityStatus, Monitor, MonitorReport};
