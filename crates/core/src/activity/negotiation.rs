//! Negotiation of responsibility and division of competence.
//!
//! §4 requires "mechanisms for negotiating the responsibility for
//! activities" and "mechanisms for negotiating the division of
//! competence within activities". This module provides a small
//! propose / counter / accept / reject protocol whose outcome is
//! recorded on the activity.

use cscw_directory::Dn;
use serde::{Deserialize, Serialize};

use crate::activity::activity::ActivityId;
use crate::error::MoccaError;

/// What is being negotiated.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum NegotiationSubject {
    /// Who is responsible for the activity.
    Responsibility(ActivityId),
    /// Who covers a named competence (sub-task) within the activity.
    Competence {
        /// The activity.
        activity: ActivityId,
        /// The competence being divided (e.g. "minute-taking").
        competence: String,
    },
}

/// Protocol states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NegotiationState {
    /// A proposal is on the table for the respondent.
    AwaitingRespondent,
    /// A counter-proposal is on the table for the initiator.
    AwaitingInitiator,
    /// Agreement reached.
    Accepted,
    /// Negotiation abandoned.
    Rejected,
}

/// The move kinds a negotiation step can record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NegotiationAction {
    /// Opening proposal.
    Propose,
    /// Counter-proposal.
    Counter,
    /// Acceptance of the current proposal.
    Accept,
    /// Rejection, closing the negotiation.
    Reject,
}

/// One recorded protocol step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NegotiationStep {
    /// Who moved.
    pub by: Dn,
    /// What they proposed (the assignee under discussion), or `None`
    /// for accept/reject moves.
    pub proposal: Option<Dn>,
    /// The move made.
    pub action: NegotiationAction,
}

/// A negotiation between an initiator and a respondent.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Negotiation {
    /// What it is about.
    pub subject: NegotiationSubject,
    /// Who opened it.
    pub initiator: Dn,
    /// Who must respond.
    pub respondent: Dn,
    state: NegotiationState,
    /// The assignee currently on the table.
    current_proposal: Dn,
    history: Vec<NegotiationStep>,
}

impl Negotiation {
    /// Opens a negotiation: `initiator` proposes `proposal` as the
    /// assignee and awaits `respondent`.
    pub fn propose(
        subject: NegotiationSubject,
        initiator: Dn,
        respondent: Dn,
        proposal: Dn,
    ) -> Self {
        let step = NegotiationStep {
            by: initiator.clone(),
            proposal: Some(proposal.clone()),
            action: NegotiationAction::Propose,
        };
        Negotiation {
            subject,
            initiator,
            respondent,
            state: NegotiationState::AwaitingRespondent,
            current_proposal: proposal,
            history: vec![step],
        }
    }

    /// The protocol state.
    pub fn state(&self) -> NegotiationState {
        self.state
    }

    /// The assignee currently proposed.
    pub fn current_proposal(&self) -> &Dn {
        &self.current_proposal
    }

    /// The recorded steps.
    pub fn history(&self) -> &[NegotiationStep] {
        &self.history
    }

    /// Whose turn it is, or `None` when closed.
    pub fn awaiting(&self) -> Option<&Dn> {
        match self.state {
            NegotiationState::AwaitingRespondent => Some(&self.respondent),
            NegotiationState::AwaitingInitiator => Some(&self.initiator),
            _ => None,
        }
    }

    fn require_turn(&self, who: &Dn) -> Result<(), MoccaError> {
        match self.awaiting() {
            Some(expected) if expected == who => Ok(()),
            Some(expected) => Err(MoccaError::BadNegotiationState(format!(
                "it is {expected}'s turn, not {who}'s"
            ))),
            None => Err(MoccaError::BadNegotiationState(
                "negotiation is closed".into(),
            )),
        }
    }

    /// The party whose turn it is counter-proposes a different assignee;
    /// the turn passes to the other party.
    ///
    /// # Errors
    ///
    /// [`MoccaError::BadNegotiationState`] when it is not `who`'s turn
    /// or the negotiation is closed.
    pub fn counter(&mut self, who: &Dn, proposal: Dn) -> Result<(), MoccaError> {
        self.require_turn(who)?;
        self.history.push(NegotiationStep {
            by: who.clone(),
            proposal: Some(proposal.clone()),
            action: NegotiationAction::Counter,
        });
        self.current_proposal = proposal;
        self.state = if who == &self.respondent {
            NegotiationState::AwaitingInitiator
        } else {
            NegotiationState::AwaitingRespondent
        };
        Ok(())
    }

    /// The party whose turn it is accepts the current proposal.
    ///
    /// # Errors
    ///
    /// As for [`Negotiation::counter`].
    pub fn accept(&mut self, who: &Dn) -> Result<&Dn, MoccaError> {
        self.require_turn(who)?;
        self.history.push(NegotiationStep {
            by: who.clone(),
            proposal: None,
            action: NegotiationAction::Accept,
        });
        self.state = NegotiationState::Accepted;
        Ok(&self.current_proposal)
    }

    /// The party whose turn it is rejects and closes the negotiation.
    ///
    /// # Errors
    ///
    /// As for [`Negotiation::counter`].
    pub fn reject(&mut self, who: &Dn) -> Result<(), MoccaError> {
        self.require_turn(who)?;
        self.history.push(NegotiationStep {
            by: who.clone(),
            proposal: None,
            action: NegotiationAction::Reject,
        });
        self.state = NegotiationState::Rejected;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dn(s: &str) -> Dn {
        s.parse().unwrap()
    }

    fn fresh() -> Negotiation {
        Negotiation::propose(
            NegotiationSubject::Responsibility("report".into()),
            dn("cn=Tom"),
            dn("cn=Wolfgang"),
            dn("cn=Leandro"),
        )
    }

    #[test]
    fn immediate_accept() {
        let mut n = fresh();
        assert_eq!(n.awaiting(), Some(&dn("cn=Wolfgang")));
        let assignee = n.accept(&dn("cn=Wolfgang")).unwrap().clone();
        assert_eq!(assignee, dn("cn=Leandro"));
        assert_eq!(n.state(), NegotiationState::Accepted);
        assert_eq!(n.history().len(), 2);
    }

    #[test]
    fn counter_passes_the_turn() {
        let mut n = fresh();
        n.counter(&dn("cn=Wolfgang"), dn("cn=Wolfgang")).unwrap();
        assert_eq!(n.awaiting(), Some(&dn("cn=Tom")));
        assert_eq!(n.current_proposal(), &dn("cn=Wolfgang"));
        // Initiator counters back, respondent finally accepts.
        n.counter(&dn("cn=Tom"), dn("cn=Leandro")).unwrap();
        assert_eq!(n.awaiting(), Some(&dn("cn=Wolfgang")));
        n.accept(&dn("cn=Wolfgang")).unwrap();
        assert_eq!(n.state(), NegotiationState::Accepted);
        assert_eq!(n.history().len(), 4);
    }

    #[test]
    fn out_of_turn_moves_are_refused() {
        let mut n = fresh();
        assert!(
            n.accept(&dn("cn=Tom")).is_err(),
            "initiator cannot accept own proposal"
        );
        assert!(
            n.counter(&dn("cn=Leandro"), dn("cn=X")).is_err(),
            "third parties have no turn"
        );
    }

    #[test]
    fn closed_negotiations_freeze() {
        let mut n = fresh();
        n.reject(&dn("cn=Wolfgang")).unwrap();
        assert_eq!(n.state(), NegotiationState::Rejected);
        assert_eq!(n.awaiting(), None);
        let err = n.accept(&dn("cn=Wolfgang")).unwrap_err();
        assert!(matches!(err, MoccaError::BadNegotiationState(_)));
        assert!(n.counter(&dn("cn=Tom"), dn("cn=Y")).is_err());
    }

    #[test]
    fn history_records_every_step() {
        let mut n = fresh();
        n.counter(&dn("cn=Wolfgang"), dn("cn=Wolfgang")).unwrap();
        n.reject(&dn("cn=Tom")).unwrap();
        let actions: Vec<NegotiationAction> = n.history().iter().map(|s| s.action).collect();
        assert_eq!(
            actions,
            [
                NegotiationAction::Propose,
                NegotiationAction::Counter,
                NegotiationAction::Reject
            ]
        );
    }

    #[test]
    fn competence_subject_carries_the_task() {
        let n = Negotiation::propose(
            NegotiationSubject::Competence {
                activity: "meeting".into(),
                competence: "minute-taking".into(),
            },
            dn("cn=Tom"),
            dn("cn=Wolfgang"),
            dn("cn=Wolfgang"),
        );
        match &n.subject {
            NegotiationSubject::Competence { competence, .. } => {
                assert_eq!(competence, "minute-taking");
            }
            other => panic!("wrong subject {other:?}"),
        }
    }
}
