//! Scheduling and progress monitoring.
//!
//! §4 requires "scheduling activities and monitoring the progress of
//! activities". The [`Monitor`] derives a report over the inter-activity
//! model: what can start, what is overdue, what a slip would drag with
//! it.

use cscw_kernel::Timestamp;
use serde::{Deserialize, Serialize};

use crate::activity::activity::{ActivityId, ActivityState};
use crate::activity::deps::InterActivityModel;

/// One activity's line in a monitoring report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActivityStatus {
    /// The activity.
    pub id: ActivityId,
    /// Lifecycle state.
    pub state: ActivityState,
    /// Progress 0..=100.
    pub progress: u8,
    /// Past its deadline without completing.
    pub overdue: bool,
    /// All `Before` predecessors are complete (startable now).
    pub startable: bool,
    /// Activities that slip if this one slips.
    pub at_risk_downstream: Vec<ActivityId>,
}

/// A whole-model monitoring report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MonitorReport {
    /// When the report was taken.
    pub at: Timestamp,
    /// Per-activity status in schedule order.
    pub statuses: Vec<ActivityStatus>,
}

impl MonitorReport {
    /// The overdue activities.
    pub fn overdue(&self) -> impl Iterator<Item = &ActivityStatus> {
        self.statuses.iter().filter(|s| s.overdue)
    }

    /// Activities ready to start (proposed + startable).
    pub fn ready_to_start(&self) -> impl Iterator<Item = &ActivityStatus> {
        self.statuses
            .iter()
            .filter(|s| s.state == ActivityState::Proposed && s.startable)
    }

    /// Mean progress over non-terminal activities, or `None` when all
    /// are terminal.
    pub fn mean_active_progress(&self) -> Option<f64> {
        let open: Vec<_> = self
            .statuses
            .iter()
            .filter(|s| !s.state.is_terminal())
            .collect();
        if open.is_empty() {
            return None;
        }
        Some(open.iter().map(|s| s.progress as f64).sum::<f64>() / open.len() as f64)
    }
}

/// Derives monitoring reports from the inter-activity model.
#[derive(Debug, Clone, Copy, Default)]
pub struct Monitor;

impl Monitor {
    /// Takes a report at `now`.
    pub fn report(model: &InterActivityModel, now: Timestamp) -> MonitorReport {
        let order = model.schedule_order();
        let statuses = order
            .iter()
            .filter_map(|id| model.activity(id).map(|a| (id, a)))
            .map(|(id, a)| {
                let overdue = a.is_overdue(now);
                ActivityStatus {
                    id: id.clone(),
                    state: a.state(),
                    progress: a.progress(),
                    overdue,
                    startable: model.can_start(id),
                    at_risk_downstream: if overdue {
                        model.downstream_of(id)
                    } else {
                        Vec::new()
                    },
                }
            })
            .collect();
        MonitorReport { at: now, statuses }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activity::activity::Activity;
    use crate::activity::deps::DependencyKind;

    fn id(s: &str) -> ActivityId {
        s.into()
    }

    fn model() -> InterActivityModel {
        let mut m = InterActivityModel::new();
        for a in ["dig", "line", "open"] {
            m.register(Activity::new(a.into(), a)).unwrap();
        }
        m.add_dependency(&id("dig"), DependencyKind::Before, &id("line"))
            .unwrap();
        m.add_dependency(&id("line"), DependencyKind::Before, &id("open"))
            .unwrap();
        m
    }

    #[test]
    fn report_orders_and_flags_startable() {
        let m = model();
        let report = Monitor::report(&m, Timestamp::ZERO);
        assert_eq!(report.statuses.len(), 3);
        assert_eq!(report.statuses[0].id, id("dig"));
        assert!(report.statuses[0].startable);
        assert!(!report.statuses[1].startable);
        assert_eq!(report.ready_to_start().count(), 1);
    }

    #[test]
    fn overdue_drags_downstream_into_risk() {
        let mut m = model();
        {
            let a = m.activity_mut(&id("dig")).unwrap();
            a.deadline = Some(Timestamp::from_secs(10));
            a.transition(ActivityState::Active).unwrap();
            a.report_progress(50).unwrap();
        }
        let report = Monitor::report(&m, Timestamp::from_secs(20));
        let dig = report.statuses.iter().find(|s| s.id == id("dig")).unwrap();
        assert!(dig.overdue);
        assert_eq!(dig.at_risk_downstream.len(), 2);
        assert_eq!(report.overdue().count(), 1);
    }

    #[test]
    fn mean_progress_ignores_terminal() {
        let mut m = model();
        {
            let a = m.activity_mut(&id("dig")).unwrap();
            a.transition(ActivityState::Active).unwrap();
            a.report_progress(100).unwrap(); // completes
        }
        {
            let a = m.activity_mut(&id("line")).unwrap();
            a.transition(ActivityState::Active).unwrap();
            a.report_progress(60).unwrap();
        }
        let report = Monitor::report(&m, Timestamp::ZERO);
        let mean = report.mean_active_progress().unwrap();
        assert!(
            (mean - 30.0).abs() < 1e-9,
            "mean of 60 and 0 (open activities), got {mean}"
        );
    }

    #[test]
    fn all_terminal_mean_is_none() {
        let mut m = InterActivityModel::new();
        m.register(Activity::new("a".into(), "a")).unwrap();
        {
            let a = m.activity_mut(&id("a")).unwrap();
            a.transition(ActivityState::Active).unwrap();
            a.report_progress(100).unwrap();
        }
        assert_eq!(
            Monitor::report(&m, Timestamp::ZERO).mean_active_progress(),
            None
        );
    }
}
