//! The unified communication channel.
//!
//! §4 requires "the provision of many different forms of communication,
//! including both real-time and asynchronous communication". A
//! [`CommChannel`] gives applications one `send` API over two transports:
//!
//! * **synchronous** — a [`SessionHub`] conference bridge on a `simnet`
//!   node relays utterances to all joined members within the session
//!   epoch, keeping an ordered log (which *time transparency* replays to
//!   absent members);
//! * **asynchronous** — the X.400 substrate, via a
//!   [`cscw_messaging::UserAgent`].

use cscw_directory::Dn;
use cscw_messaging::net::{Message, Node, NodeCtx, NodeId, Payload, Sim, SimTime};
use cscw_messaging::{Ipm, OrAddress, SubmitOptions, UserAgent};
use serde::{Deserialize, Serialize};

/// How a send travelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeliveryMode {
    /// Relayed live through a session hub.
    Immediate,
    /// Queued through the message transfer system.
    StoreAndForward,
}

/// One utterance in a session log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Utterance {
    /// Sequence number within the session.
    pub seq: u64,
    /// When the hub relayed it.
    pub at: SimTime,
    /// Who said it.
    pub from: Dn,
    /// What they said.
    pub content: String,
}

/// Hub wire protocol.
#[derive(Debug)]
pub enum SessionPdu {
    /// Join the session: deliveries will reach `member_node`.
    Join {
        /// Who is joining.
        who: Dn,
        /// Where they receive broadcasts.
        member_node: NodeId,
    },
    /// Leave the session.
    Leave {
        /// Who is leaving.
        who: Dn,
    },
    /// Say something to everyone.
    Utter {
        /// Speaker.
        from: Dn,
        /// Content.
        content: String,
    },
    /// A relayed utterance (hub → members).
    Broadcast(Utterance),
}

/// A conference bridge on a `simnet` node: members join, utterances are
/// relayed to everyone (including the speaker, confirming the round
/// trip) and appended to an ordered log.
#[derive(Debug, Default)]
pub struct SessionHub {
    members: Vec<(Dn, NodeId)>,
    log: Vec<Utterance>,
    next_seq: u64,
}

impl SessionHub {
    /// Creates an empty hub.
    pub fn new() -> Self {
        Self::default()
    }

    /// The ordered session log.
    pub fn log(&self) -> &[Utterance] {
        &self.log
    }

    /// Current members.
    pub fn members(&self) -> impl Iterator<Item = &Dn> {
        self.members.iter().map(|(dn, _)| dn)
    }

    /// True when the person is currently joined.
    pub fn has_member(&self, who: &Dn) -> bool {
        self.members.iter().any(|(dn, _)| dn == who)
    }
}

impl Node for SessionHub {
    fn on_message(&mut self, ctx: &mut NodeCtx<'_>, msg: Message) {
        let Ok(pdu) = msg.payload.downcast::<SessionPdu>() else {
            return;
        };
        match pdu {
            SessionPdu::Join { who, member_node } => {
                self.members.retain(|(dn, _)| dn != &who);
                self.members.push((who, member_node));
                ctx.metrics().incr("session_joins");
            }
            SessionPdu::Leave { who } => {
                self.members.retain(|(dn, _)| dn != &who);
                ctx.metrics().incr("session_leaves");
            }
            SessionPdu::Utter { from, content } => {
                let utterance = Utterance {
                    seq: self.next_seq,
                    at: ctx.now(),
                    from,
                    content,
                };
                self.next_seq += 1;
                self.log.push(utterance.clone());
                ctx.metrics().incr("session_utterances");
                for (_, node) in &self.members {
                    ctx.send_sized(
                        *node,
                        Payload::new(SessionPdu::Broadcast(utterance.clone())),
                        32 + utterance.content.len() as u64,
                    );
                }
            }
            SessionPdu::Broadcast(_) => {}
        }
    }
}

/// A member-side collector of session broadcasts, for applications that
/// do not bring their own node behaviour.
#[derive(Debug, Default)]
pub struct SessionMember {
    received: Vec<Utterance>,
}

impl SessionMember {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Everything received so far, in hub order.
    pub fn received(&self) -> &[Utterance] {
        &self.received
    }
}

impl Node for SessionMember {
    fn on_message(&mut self, _ctx: &mut NodeCtx<'_>, msg: Message) {
        if let Ok(SessionPdu::Broadcast(u)) = msg.payload.downcast::<SessionPdu>() {
            self.received.push(u);
        }
    }
}

/// A participant's handle on a synchronous session.
#[derive(Debug, Clone)]
pub struct SessionHandle {
    /// The hub node.
    pub hub: NodeId,
    /// This member's node.
    pub member_node: NodeId,
    /// This member's identity.
    pub who: Dn,
}

impl SessionHandle {
    /// Joins the session (drives the sim until the join lands).
    pub fn join(&self, sim: &mut Sim) {
        sim.send_from(
            self.member_node,
            self.hub,
            Payload::new(SessionPdu::Join {
                who: self.who.clone(),
                member_node: self.member_node,
            }),
            64,
        );
        sim.run_until_idle();
    }

    /// Leaves the session.
    pub fn leave(&self, sim: &mut Sim) {
        sim.send_from(
            self.member_node,
            self.hub,
            Payload::new(SessionPdu::Leave {
                who: self.who.clone(),
            }),
            32,
        );
        sim.run_until_idle();
    }

    /// Says something to the whole session.
    pub fn utter(&self, sim: &mut Sim, content: &str) {
        sim.send_from(
            self.member_node,
            self.hub,
            Payload::new(SessionPdu::Utter {
                from: self.who.clone(),
                content: content.to_owned(),
            }),
            32 + content.len() as u64,
        );
    }
}

/// One send API over both transports.
#[derive(Debug)]
pub enum CommChannel {
    /// A live session.
    Synchronous(SessionHandle),
    /// Store-and-forward messaging to a fixed recipient list.
    Asynchronous {
        /// The sender's user agent.
        agent: UserAgent,
        /// Recipients.
        to: Vec<OrAddress>,
    },
}

impl CommChannel {
    /// Sends `content`; returns how it travelled. The caller drives the
    /// simulation (synchronous sends are relayed as soon as it runs;
    /// asynchronous sends take the MTS path).
    pub fn send(&mut self, sim: &mut Sim, subject: &str, content: &str) -> DeliveryMode {
        match self {
            CommChannel::Synchronous(handle) => {
                handle.utter(sim, content);
                DeliveryMode::Immediate
            }
            CommChannel::Asynchronous { agent, to } => {
                let from = agent.address().clone();
                for recipient in to.iter() {
                    let ipm = Ipm::text(from.clone(), recipient.clone(), subject, content);
                    agent.submit(sim, ipm, SubmitOptions::default());
                }
                DeliveryMode::StoreAndForward
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{LinkSpec, TopologyBuilder};

    fn dn(s: &str) -> Dn {
        s.parse().unwrap()
    }

    fn session_world() -> (Sim, NodeId, Vec<SessionHandle>) {
        let mut b = TopologyBuilder::new();
        let hub = b.add_node("hub");
        let m1 = b.add_node("m1");
        let m2 = b.add_node("m2");
        b.full_mesh(LinkSpec::lan());
        let mut sim = Sim::new(b.build(), 8);
        sim.register(hub, SessionHub::new());
        sim.register(m1, SessionMember::new());
        sim.register(m2, SessionMember::new());
        let h1 = SessionHandle {
            hub,
            member_node: m1,
            who: dn("cn=Tom"),
        };
        let h2 = SessionHandle {
            hub,
            member_node: m2,
            who: dn("cn=Wolfgang"),
        };
        (sim, hub, vec![h1, h2])
    }

    #[test]
    fn utterances_reach_all_members_in_order() {
        let (mut sim, hub, handles) = session_world();
        handles[0].join(&mut sim);
        handles[1].join(&mut sim);
        handles[0].utter(&mut sim, "hello");
        handles[1].utter(&mut sim, "hi there");
        sim.run_until_idle();

        let log = sim.node::<SessionHub>(hub).unwrap().log();
        assert_eq!(log.len(), 2);
        assert_eq!(log[0].content, "hello");
        assert_eq!(log[1].content, "hi there");
        for node in [handles[0].member_node, handles[1].member_node] {
            let got = sim.node::<SessionMember>(node).unwrap().received();
            assert_eq!(got.len(), 2, "every member hears everything");
            assert!(got[0].seq < got[1].seq);
        }
    }

    #[test]
    fn leave_stops_delivery_but_log_continues() {
        let (mut sim, hub, handles) = session_world();
        handles[0].join(&mut sim);
        handles[1].join(&mut sim);
        handles[1].leave(&mut sim);
        handles[0].utter(&mut sim, "anyone there?");
        sim.run_until_idle();
        assert_eq!(
            sim.node::<SessionMember>(handles[1].member_node)
                .unwrap()
                .received()
                .len(),
            0
        );
        assert_eq!(sim.node::<SessionHub>(hub).unwrap().log().len(), 1);
        assert!(!sim
            .node::<SessionHub>(hub)
            .unwrap()
            .has_member(&dn("cn=Wolfgang")));
    }

    #[test]
    fn rejoin_replaces_member_node() {
        let (mut sim, hub, handles) = session_world();
        handles[0].join(&mut sim);
        handles[0].join(&mut sim); // idempotent re-join
        let members: Vec<_> = sim.node::<SessionHub>(hub).unwrap().members().collect();
        assert_eq!(members.len(), 1);
    }

    #[test]
    fn sync_channel_is_immediate_latency() {
        let (mut sim, _hub, handles) = session_world();
        handles[0].join(&mut sim);
        handles[1].join(&mut sim);
        let mut chan = CommChannel::Synchronous(handles[0].clone());
        let sent_at = sim.now();
        let mode = chan.send(&mut sim, "-", "quick question");
        assert_eq!(mode, DeliveryMode::Immediate);
        sim.run_until_idle();
        // Hub relays exactly one LAN hop (1 ms) after the send.
        let got = sim
            .node::<SessionMember>(handles[1].member_node)
            .unwrap()
            .received();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].at, sent_at + simnet::SimDuration::from_millis(1));
    }

    #[test]
    fn async_channel_goes_store_and_forward_to_all_recipients() {
        use cscw_messaging::{MtaNode, OrAddress, UserAgent};
        let mut b = TopologyBuilder::new();
        let mta = b.add_node("mta");
        let sender_ws = b.add_node("sender");
        b.full_mesh(LinkSpec::lan());
        let mut sim = Sim::new(b.build(), 9);
        let sender: OrAddress = "C=UK;O=L;PN=Sender".parse().unwrap();
        let r1: OrAddress = "C=UK;O=L;PN=R1".parse().unwrap();
        let r2: OrAddress = "C=UK;O=L;PN=R2".parse().unwrap();
        let mut mta_node = MtaNode::new("mta");
        for a in [&sender, &r1, &r2] {
            mta_node.register_mailbox(a.clone());
        }
        sim.register(mta, mta_node);

        let agent = UserAgent::new(sender, sender_ws, mta);
        let mut chan = CommChannel::Asynchronous {
            agent,
            to: vec![r1.clone(), r2.clone()],
        };
        let mode = chan.send(&mut sim, "minutes", "attached");
        assert_eq!(mode, DeliveryMode::StoreAndForward);
        sim.run_until_idle();

        let mta_node = sim.node::<MtaNode>(mta).unwrap();
        for r in [&r1, &r2] {
            let inbox = mta_node.mailbox(r).unwrap().inbox();
            assert_eq!(inbox.len(), 1, "{r} missed the channel send");
            assert_eq!(inbox[0].ipm.heading.subject, "minutes");
        }
        // Store-and-forward costs at least one MTA processing delay.
        assert!(sim.now() >= SimTime::from_millis(100));
    }
}
