//! Media interchange.
//!
//! §4 requires "support for interchange across communication media":
//! when the sender drafts text but the recipient only takes telefax or
//! paper, the environment converts at the boundary rather than failing
//! the communication. [`send_with_interchange`] picks the recipient's
//! most preferred reachable medium, converts, and submits through the
//! X.400 substrate, reporting what it chose and what the conversion
//! cost.

use cscw_directory::Dn;
use cscw_messaging::net::Sim;
use cscw_messaging::{BodyPart, ConversionCost, Heading, Ipm, SubmitOptions, UserAgent};

use crate::comm::model::CommunicationModel;
use crate::error::MoccaError;

/// The outcome of a media-interchanged send.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterchangeReceipt {
    /// The MTS message id.
    pub message_id: u64,
    /// The medium actually used on the wire.
    pub medium: &'static str,
    /// What the conversion cost (0 when the recipient takes text).
    pub cost: ConversionCost,
}

/// Sends `text` from `sender`'s agent to `recipient`, converting to the
/// recipient's best accepted medium.
///
/// Media preference order is the *recipient's* (they are the one who
/// must read it); the sender's capabilities do not constrain the wire
/// format because conversion happens in the environment.
///
/// # Errors
///
/// * [`MoccaError::UnknownOrgObject`] — recipient not registered in the
///   communication model, or without a mailbox.
/// * [`MoccaError::Messaging`] — no accepted medium is reachable from
///   text (e.g. the recipient only accepts opaque binary).
pub fn send_with_interchange(
    sim: &mut Sim,
    agent: &mut UserAgent,
    model: &CommunicationModel,
    recipient: &Dn,
    subject: &str,
    text: &str,
) -> Result<InterchangeReceipt, MoccaError> {
    let communicator = model
        .communicator(recipient)
        .ok_or_else(|| MoccaError::UnknownOrgObject(recipient.to_string()))?;
    let mailbox = communicator
        .mailbox
        .clone()
        .ok_or_else(|| MoccaError::UnknownOrgObject(format!("{recipient} has no mailbox")))?;

    let draft = BodyPart::Text(text.to_owned());
    let mut chosen: Option<(&'static str, BodyPart, ConversionCost)> = None;
    for medium in &communicator.accepted_media {
        let target: &'static str = match medium.as_str() {
            "text" => "text",
            "fax" => "fax",
            "paper" => "paper",
            _ => continue,
        };
        if let Ok((converted, cost)) = draft.convert_to(target) {
            chosen = Some((target, converted, cost));
            break;
        }
    }
    let (medium, body, cost) = chosen.ok_or(MoccaError::Messaging(
        cscw_messaging::MtsError::ConversionImpossible {
            from: "text",
            to: "recipient's media",
        },
    ))?;

    let ipm = Ipm {
        heading: Heading::new(agent.address().clone(), mailbox, subject),
        body: vec![body],
    };
    let message_id = agent.submit(sim, ipm, SubmitOptions::default());
    Ok(InterchangeReceipt {
        message_id,
        medium,
        cost,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::model::Communicator;
    use cscw_messaging::{MtaNode, OrAddress};
    use simnet::{LinkSpec, TopologyBuilder};

    fn dn(s: &str) -> Dn {
        s.parse().unwrap()
    }

    struct World {
        sim: Sim,
        agent: UserAgent,
        model: CommunicationModel,
        recipient_addr: OrAddress,
        mta: simnet::NodeId,
    }

    fn world(recipient_media: &[&str]) -> World {
        let mut b = TopologyBuilder::new();
        let mta = b.add_node("mta");
        let sender_ws = b.add_node("sender");
        b.full_mesh(LinkSpec::lan());
        let mut sim = Sim::new(b.build(), 13);
        let sender_addr: OrAddress = "C=UK;O=L;PN=Sender".parse().unwrap();
        let recipient_addr: OrAddress = "C=UK;O=L;PN=Recipient".parse().unwrap();
        let mut mta_node = MtaNode::new("mta");
        mta_node.register_mailbox(sender_addr.clone());
        mta_node.register_mailbox(recipient_addr.clone());
        sim.register(mta, mta_node);

        let mut model = CommunicationModel::new();
        model.register(
            Communicator::new(dn("cn=R"))
                .with_mailbox(recipient_addr.clone())
                .with_media(recipient_media.iter().copied()),
        );
        World {
            sim,
            agent: UserAgent::new(sender_addr, sender_ws, mta),
            model,
            recipient_addr,
            mta,
        }
    }

    fn delivered_kind(w: &World) -> &'static str {
        let mta = w.sim.node::<MtaNode>(w.mta).unwrap();
        mta.mailbox(&w.recipient_addr).unwrap().inbox()[0].ipm.body[0].kind_name()
    }

    #[test]
    fn text_recipient_gets_text_for_free() {
        let mut w = world(&["text", "fax"]);
        let receipt = send_with_interchange(
            &mut w.sim,
            &mut w.agent,
            &w.model,
            &dn("cn=R"),
            "s",
            "hello",
        )
        .unwrap();
        w.sim.run_until_idle();
        assert_eq!(receipt.medium, "text");
        assert_eq!(receipt.cost, ConversionCost(0));
        assert_eq!(delivered_kind(&w), "text");
    }

    #[test]
    fn fax_only_recipient_gets_a_raster() {
        let mut w = world(&["fax"]);
        let receipt = send_with_interchange(
            &mut w.sim,
            &mut w.agent,
            &w.model,
            &dn("cn=R"),
            "s",
            "please fax this",
        )
        .unwrap();
        w.sim.run_until_idle();
        assert_eq!(receipt.medium, "fax");
        assert!(receipt.cost > ConversionCost(0));
        assert_eq!(delivered_kind(&w), "fax");
    }

    #[test]
    fn paper_preference_wins_when_first() {
        let mut w = world(&["paper", "text"]);
        let receipt = send_with_interchange(
            &mut w.sim,
            &mut w.agent,
            &w.model,
            &dn("cn=R"),
            "s",
            "letter",
        )
        .unwrap();
        w.sim.run_until_idle();
        assert_eq!(receipt.medium, "paper", "recipient preference order rules");
        assert_eq!(delivered_kind(&w), "paper");
    }

    #[test]
    fn unknown_recipients_and_impossible_media_error() {
        let mut w = world(&["text"]);
        assert!(matches!(
            send_with_interchange(
                &mut w.sim,
                &mut w.agent,
                &w.model,
                &dn("cn=Ghost"),
                "s",
                "x"
            ),
            Err(MoccaError::UnknownOrgObject(_))
        ));
        let mut w = world(&["smoke-signals"]);
        assert!(matches!(
            send_with_interchange(&mut w.sim, &mut w.agent, &w.model, &dn("cn=R"), "s", "x"),
            Err(MoccaError::Messaging(_))
        ));
    }
}
