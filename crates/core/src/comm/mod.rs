//! The Communication Model (§5).
//!
//! "The communication model aims to represent communication in terms of
//! the communicators, the information objects they exchange, and the
//! context within which communication takes place."
//!
//! * [`model`] — communicators, contexts, and the exchange ledger.
//! * [`channel`] — the unified channel over synchronous sessions and the
//!   asynchronous X.400 substrate (the basis of *time transparency*).
//! * [`media`] — cross-media interchange at the environment boundary
//!   (text → telefax/paper per recipient capability, §4).

pub mod channel;
pub mod media;
pub mod model;

pub use channel::{CommChannel, DeliveryMode, SessionHub, SessionMember};
pub use media::{send_with_interchange, InterchangeReceipt};
pub use model::{CommContext, CommEvent, CommunicationModel, Communicator};
