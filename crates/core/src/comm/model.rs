//! Communicators, contexts, and the exchange ledger.

use cscw_directory::Dn;
use cscw_kernel::Timestamp;
use cscw_messaging::OrAddress;
use serde::{Deserialize, Serialize};

use crate::activity::ActivityId;
use crate::info::InfoObjectId;

/// A participant in communication, with their reachable media.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Communicator {
    /// Directory identity.
    pub dn: Dn,
    /// X.400 mailbox for asynchronous media.
    pub mailbox: Option<OrAddress>,
    /// Media the communicator accepts, most preferred first
    /// (`"text"`, `"fax"`, `"paper"`): §4's "wide range of media".
    pub accepted_media: Vec<String>,
}

impl Communicator {
    /// Creates a text-only communicator.
    pub fn new(dn: Dn) -> Self {
        Communicator {
            dn,
            mailbox: None,
            accepted_media: vec!["text".to_owned()],
        }
    }

    /// Sets the mailbox.
    #[must_use]
    pub fn with_mailbox(mut self, mailbox: OrAddress) -> Self {
        self.mailbox = Some(mailbox);
        self
    }

    /// Replaces the accepted media list.
    #[must_use]
    pub fn with_media<S: Into<String>>(mut self, media: impl IntoIterator<Item = S>) -> Self {
        self.accepted_media = media.into_iter().map(Into::into).collect();
        self
    }

    /// The most preferred medium both parties accept, if any — the
    /// basis of media interchange decisions.
    pub fn common_medium<'a>(&'a self, other: &Communicator) -> Option<&'a str> {
        self.accepted_media
            .iter()
            .find(|m| other.accepted_media.contains(m))
            .map(String::as_str)
    }
}

/// The context communication happens in: which activity, which
/// participants — "the context within which communication takes place".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CommContext {
    /// Context id.
    pub id: String,
    /// The activity this communication belongs to, when scoped.
    pub activity: Option<ActivityId>,
    /// Participants (by DN).
    pub participants: Vec<Dn>,
}

impl CommContext {
    /// Creates a context.
    pub fn new(id: impl Into<String>, participants: Vec<Dn>) -> Self {
        CommContext {
            id: id.into(),
            activity: None,
            participants,
        }
    }

    /// Scopes the context to an activity.
    #[must_use]
    pub fn in_activity(mut self, activity: ActivityId) -> Self {
        self.activity = Some(activity);
        self
    }
}

/// One recorded exchange.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CommEvent {
    /// When.
    pub at: Timestamp,
    /// Sender.
    pub from: Dn,
    /// Receivers.
    pub to: Vec<Dn>,
    /// Context id.
    pub context: String,
    /// The information object exchanged, when one was.
    pub object: Option<InfoObjectId>,
    /// Whether it travelled synchronously or store-and-forward.
    pub synchronous: bool,
}

/// The communication model: who can communicate, in which contexts,
/// and what has been exchanged.
#[derive(Debug, Clone, Default)]
pub struct CommunicationModel {
    communicators: Vec<Communicator>,
    contexts: Vec<CommContext>,
    ledger: Vec<CommEvent>,
}

impl CommunicationModel {
    /// Creates an empty model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a communicator (replacing any with the same DN).
    pub fn register(&mut self, c: Communicator) {
        self.communicators.retain(|x| x.dn != c.dn);
        self.communicators.push(c);
    }

    /// Looks up a communicator.
    pub fn communicator(&self, dn: &Dn) -> Option<&Communicator> {
        self.communicators.iter().find(|c| &c.dn == dn)
    }

    /// Opens a context.
    pub fn open_context(&mut self, ctx: CommContext) {
        self.contexts.retain(|x| x.id != ctx.id);
        self.contexts.push(ctx);
    }

    /// Looks up a context.
    pub fn context(&self, id: &str) -> Option<&CommContext> {
        self.contexts.iter().find(|c| c.id == id)
    }

    /// Records an exchange.
    pub fn record(&mut self, event: CommEvent) {
        self.ledger.push(event);
    }

    /// The exchanges in a context, in order.
    pub fn events_in<'a>(&'a self, context: &'a str) -> impl Iterator<Item = &'a CommEvent> + 'a {
        self.ledger.iter().filter(move |e| e.context == context)
    }

    /// Every pair that has communicated (deduplicated, order-normalised).
    pub fn communication_pairs(&self) -> Vec<(Dn, Dn)> {
        let mut pairs = Vec::new();
        for e in &self.ledger {
            for to in &e.to {
                let (a, b) = if e.from <= *to {
                    (e.from.clone(), to.clone())
                } else {
                    (to.clone(), e.from.clone())
                };
                if !pairs.contains(&(a.clone(), b.clone())) {
                    pairs.push((a, b));
                }
            }
        }
        pairs
    }

    /// Whole ledger.
    pub fn ledger(&self) -> &[CommEvent] {
        &self.ledger
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dn(s: &str) -> Dn {
        s.parse().unwrap()
    }

    #[test]
    fn common_medium_respects_preference_order() {
        let a = Communicator::new(dn("cn=A")).with_media(["text", "fax"]);
        let b = Communicator::new(dn("cn=B")).with_media(["fax", "paper"]);
        assert_eq!(a.common_medium(&b), Some("fax"));
        assert_eq!(b.common_medium(&a), Some("fax"));
        let c = Communicator::new(dn("cn=C")).with_media(["paper"]);
        assert_eq!(a.common_medium(&c), None);
    }

    #[test]
    fn register_replaces_by_dn() {
        let mut m = CommunicationModel::new();
        m.register(Communicator::new(dn("cn=A")));
        m.register(Communicator::new(dn("cn=A")).with_media(["fax"]));
        assert_eq!(m.communicator(&dn("cn=A")).unwrap().accepted_media, ["fax"]);
    }

    #[test]
    fn context_scoping() {
        let ctx = CommContext::new("report-discussion", vec![dn("cn=A"), dn("cn=B")])
            .in_activity("report".into());
        assert_eq!(ctx.activity.as_ref().unwrap().as_str(), "report");
    }

    #[test]
    fn ledger_queries() {
        let mut m = CommunicationModel::new();
        m.open_context(CommContext::new("c1", vec![dn("cn=A"), dn("cn=B")]));
        m.record(CommEvent {
            at: Timestamp::ZERO,
            from: dn("cn=A"),
            to: vec![dn("cn=B")],
            context: "c1".into(),
            object: Some("doc1".into()),
            synchronous: false,
        });
        m.record(CommEvent {
            at: Timestamp::from_secs(1),
            from: dn("cn=B"),
            to: vec![dn("cn=A")],
            context: "c1".into(),
            object: None,
            synchronous: true,
        });
        assert_eq!(m.events_in("c1").count(), 2);
        assert_eq!(m.events_in("ghost").count(), 0);
        let pairs = m.communication_pairs();
        assert_eq!(pairs.len(), 1, "A→B and B→A normalise to one pair");
    }
}
