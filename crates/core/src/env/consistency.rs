//! Cross-model consistency.
//!
//! The paper closes with its future work: "the details and interrelation
//! of the models outlined in this paper" (§7). This module is that
//! interrelation made checkable — the CSCW-level analogue of the ODP
//! cross-viewpoint consistency check ([`odp::SystemSpec`]): the five
//! MOCCA models describe *one* environment only if they agree on who
//! exists, who participates, and who owns what.

use std::fmt;

use crate::env::environment::CscwEnvironment;

/// One detected disagreement between models.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelInconsistency {
    /// An activity member is not a person in the organisational model.
    UnknownActivityMember {
        /// The activity.
        activity: String,
        /// The unknown member DN.
        member: String,
    },
    /// An activity's responsible is not one of its members.
    ResponsibleNotMember {
        /// The activity.
        activity: String,
        /// The responsible DN.
        responsible: String,
    },
    /// An information object's owner is unknown to the organisational
    /// model.
    UnknownObjectOwner {
        /// The object id.
        object: String,
        /// The unknown owner DN.
        owner: String,
    },
    /// A communication context participant is unknown.
    UnknownCommunicator {
        /// The context id.
        context: String,
        /// The unknown participant DN.
        participant: String,
    },
    /// A communication context is scoped to a nonexistent activity.
    DanglingCommActivity {
        /// The context id.
        context: String,
        /// The missing activity id.
        activity: String,
    },
    /// A responsibility in the expertise model names a nonexistent
    /// activity.
    DanglingResponsibility {
        /// The person carrying it.
        person: String,
        /// The missing activity id.
        activity: String,
    },
}

impl fmt::Display for ModelInconsistency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelInconsistency::UnknownActivityMember { activity, member } => {
                write!(
                    f,
                    "activity {activity}: member {member} is not in the organisational model"
                )
            }
            ModelInconsistency::ResponsibleNotMember {
                activity,
                responsible,
            } => {
                write!(
                    f,
                    "activity {activity}: responsible {responsible} is not a member"
                )
            }
            ModelInconsistency::UnknownObjectOwner { object, owner } => {
                write!(
                    f,
                    "object {object}: owner {owner} is not in the organisational model"
                )
            }
            ModelInconsistency::UnknownCommunicator {
                context,
                participant,
            } => {
                write!(f, "context {context}: participant {participant} is unknown")
            }
            ModelInconsistency::DanglingCommActivity { context, activity } => {
                write!(f, "context {context}: activity {activity} does not exist")
            }
            ModelInconsistency::DanglingResponsibility { person, activity } => {
                write!(
                    f,
                    "{person} carries a responsibility for missing activity {activity}"
                )
            }
        }
    }
}

/// Checks the interrelation of the five models; returns every
/// disagreement found (empty = the models describe one environment).
pub fn check_models(env: &CscwEnvironment) -> Vec<ModelInconsistency> {
    let mut findings = Vec::new();
    let org = env.org();
    let org = org.read();

    // Inter-activity model ↔ organisational model.
    for activity in env.activities().activities() {
        for (member, _) in activity.members() {
            if org.person(member).is_none() {
                findings.push(ModelInconsistency::UnknownActivityMember {
                    activity: activity.id.to_string(),
                    member: member.to_string(),
                });
            }
        }
        if let Some(resp) = &activity.responsible {
            if !activity.has_member(resp) {
                findings.push(ModelInconsistency::ResponsibleNotMember {
                    activity: activity.id.to_string(),
                    responsible: resp.to_string(),
                });
            }
        }
    }

    // Information model ↔ organisational model.
    for kind in ["document", "message", "minutes", "exchanged-artifact"] {
        for id in env.repository().ids_of_kind(kind) {
            if let Some(object) = env.repository().peek(&id) {
                if org.person(&object.owner).is_none() {
                    findings.push(ModelInconsistency::UnknownObjectOwner {
                        object: id.to_string(),
                        owner: object.owner.to_string(),
                    });
                }
            }
        }
    }

    // Communication model ↔ organisational + inter-activity models.
    for event in env.comm().ledger() {
        if let Some(ctx) = env.comm().context(&event.context) {
            for participant in &ctx.participants {
                if org.person(participant).is_none() {
                    let finding = ModelInconsistency::UnknownCommunicator {
                        context: ctx.id.clone(),
                        participant: participant.to_string(),
                    };
                    if !findings.contains(&finding) {
                        findings.push(finding);
                    }
                }
            }
            if let Some(act) = &ctx.activity {
                if env.activities().activity(act).is_none() {
                    let finding = ModelInconsistency::DanglingCommActivity {
                        context: ctx.id.clone(),
                        activity: act.to_string(),
                    };
                    if !findings.contains(&finding) {
                        findings.push(finding);
                    }
                }
            }
        }
    }

    // Expertise model ↔ inter-activity model.
    for person in org.people() {
        if let Some(expertise) = env.expertise().expertise(&person.dn) {
            for resp in &expertise.responsibilities {
                if env.activities().activity(&resp.activity).is_none() {
                    findings.push(ModelInconsistency::DanglingResponsibility {
                        person: person.dn.to_string(),
                        activity: resp.activity.to_string(),
                    });
                }
            }
        }
    }

    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activity::{Activity, ActivityRole};
    use crate::comm::{CommContext, CommEvent};
    use crate::expertise::Responsibility;
    use crate::info::{InfoContent, InfoObject};
    use crate::org::{OrgRule, Person, RelationKind, Role, RuleKind};
    use cscw_directory::Dn;
    use cscw_kernel::Timestamp;

    fn dn(s: &str) -> Dn {
        s.parse().unwrap()
    }

    fn consistent_env() -> CscwEnvironment {
        let mut env = CscwEnvironment::new();
        {
            let org = env.org();
            let mut org = org.write();
            org.add_person(Person::new(dn("cn=Tom"), "Tom"));
            org.add_person(Person::new(dn("cn=Wolfgang"), "Wolfgang"));
            org.add_role(Role::new(dn("cn=coordinator"), "c"));
            org.relate(&dn("cn=Tom"), RelationKind::Occupies, &dn("cn=coordinator"))
                .unwrap();
            org.add_rule(OrgRule::new(
                dn("cn=coordinator"),
                RuleKind::Permit,
                "schedule",
                "activity",
            ));
        }
        env.create_activity(
            &dn("cn=Tom"),
            Activity::new("report".into(), "r"),
            Timestamp::ZERO,
        )
        .unwrap();
        env.join_activity(
            &dn("cn=Tom"),
            &"report".into(),
            ActivityRole("editor".into()),
            Timestamp::ZERO,
        )
        .unwrap();
        env.store_object(
            InfoObject::new(
                "doc".into(),
                "document",
                dn("cn=Tom"),
                InfoContent::Text("x".into()),
            ),
            Some("report".into()),
            Timestamp::ZERO,
        )
        .unwrap();
        env.comm_mut().open_context(
            CommContext::new("c1", vec![dn("cn=Tom"), dn("cn=Wolfgang")])
                .in_activity("report".into()),
        );
        env.comm_mut().record(CommEvent {
            at: Timestamp::ZERO,
            from: dn("cn=Tom"),
            to: vec![dn("cn=Wolfgang")],
            context: "c1".into(),
            object: Some("doc".into()),
            synchronous: false,
        });
        env
    }

    #[test]
    fn consistent_environment_has_no_findings() {
        let env = consistent_env();
        assert!(check_models(&env).is_empty());
    }

    #[test]
    fn ghost_activity_member_is_flagged() {
        let mut env = consistent_env();
        env.activities_mut()
            .activity_mut(&"report".into())
            .unwrap()
            .join(dn("cn=Ghost"), ActivityRole("lurker".into()));
        let findings = check_models(&env);
        assert_eq!(findings.len(), 1);
        assert!(matches!(
            findings[0],
            ModelInconsistency::UnknownActivityMember { .. }
        ));
        assert!(findings[0].to_string().contains("cn=Ghost"));
    }

    #[test]
    fn responsible_outside_membership_is_flagged() {
        let mut env = consistent_env();
        env.activities_mut()
            .activity_mut(&"report".into())
            .unwrap()
            .responsible = Some(dn("cn=Wolfgang"));
        let findings = check_models(&env);
        assert!(findings
            .iter()
            .any(|f| matches!(f, ModelInconsistency::ResponsibleNotMember { .. })));
    }

    #[test]
    fn unknown_object_owner_is_flagged() {
        let mut env = consistent_env();
        env.store_object(
            InfoObject::new(
                "orphan".into(),
                "document",
                dn("cn=Nobody"),
                InfoContent::Text("x".into()),
            ),
            None,
            Timestamp::ZERO,
        )
        .unwrap();
        let findings = check_models(&env);
        assert!(findings
            .iter()
            .any(|f| matches!(f, ModelInconsistency::UnknownObjectOwner { .. })));
    }

    #[test]
    fn dangling_comm_activity_is_flagged() {
        let mut env = consistent_env();
        env.comm_mut().open_context(
            CommContext::new("c2", vec![dn("cn=Tom")]).in_activity("vapourware".into()),
        );
        env.comm_mut().record(CommEvent {
            at: Timestamp::ZERO,
            from: dn("cn=Tom"),
            to: vec![],
            context: "c2".into(),
            object: None,
            synchronous: true,
        });
        let findings = check_models(&env);
        assert!(findings
            .iter()
            .any(|f| matches!(f, ModelInconsistency::DanglingCommActivity { .. })));
    }

    #[test]
    fn dangling_responsibility_is_flagged() {
        let mut env = consistent_env();
        env.expertise_mut().impose(
            &dn("cn=Tom"),
            Responsibility {
                activity: "cancelled-project".into(),
                duty: "chair".into(),
                imposed_by: dn("cn=coordinator"),
            },
        );
        let findings = check_models(&env);
        assert!(findings
            .iter()
            .any(|f| matches!(f, ModelInconsistency::DanglingResponsibility { .. })));
    }

    #[test]
    fn multiple_findings_accumulate() {
        let mut env = consistent_env();
        env.activities_mut()
            .activity_mut(&"report".into())
            .unwrap()
            .join(dn("cn=Ghost"), ActivityRole("l".into()));
        env.expertise_mut().impose(
            &dn("cn=Tom"),
            Responsibility {
                activity: "missing".into(),
                duty: "d".into(),
                imposed_by: dn("cn=coordinator"),
            },
        );
        assert_eq!(check_models(&env).len(), 2);
    }
}
