//! The CSCW environment facade.
//!
//! "A central aim of such environment is to provide interoperability
//! between a variety of applications ensuring that CSCW applications
//! can work in harmony rather than in isolation of each other" (§3,
//! Figure 3). [`CscwEnvironment`] wires the five MOCCA models, the four
//! CSCW transparencies, tailoring, the application registry and the
//! interop hub into one object, and attaches the organisational
//! knowledge base to the ODP trader as §6.1 proposes.
//!
//! Every service the environment performs is counted in an operations
//! ledger; the F4 bench uses it to show the CSCW layer's cost over raw
//! ODP.
//!
//! The environment is *platform-pluggable*: all distribution-touching
//! work (trading, directory, message transfer) goes through the
//! [`Platform`] ports, so the same environment runs in-process
//! ([`LocalPlatform`]) or across a simulated network
//! ([`SimPlatform`](crate::platform::SimPlatform)).

use std::collections::BTreeMap;
use std::sync::Arc;

use cscw_directory::{Attribute, ChangeCollector, DirOp, Dn, Entry, Rdn};
use cscw_federation::{FederationPort, RemoteDelivery};
use cscw_kernel::Layer;
use cscw_kernel::Timestamp;
use cscw_messaging::OrAddress;
use cscw_query::{CompiledQuery, QueryDelta, Source, SubscriptionId, SubscriptionRegistry};
use parking_lot::RwLock;

use crate::activity::{Activity, ActivityId, ActivityRole, InterActivityModel};
use crate::comm::CommunicationModel;
use crate::env::events::{EnvEvent, EventBus};
use crate::env::interop::{ClosedWorld, FormatMapping, InteropHub, NativeArtifact};
use crate::env::registry::{AppDescriptor, AppId, AppRegistry};
use crate::error::MoccaError;
use crate::expertise::UserExpertiseModel;
use crate::info::{InfoContent, InfoObject, InfoObjectId, InformationRepository};
use crate::org::{KnowledgeBase, OrgTradingPolicy, OrganisationalModel, ENV_PRINCIPAL};
use crate::platform::{DirectoryPort, LocalPlatform, Platform, TraderPort, TransportPort};
use crate::tailor::TailorStore;
use crate::transparency::activity::ActivityIsolation;
use crate::transparency::{CscwTransparencySelection, OrganisationTransparency, ViewRegistry};

/// The service type under which registered applications are advertised
/// to the platform's trader (one offer per [`register_app`]).
///
/// [`register_app`]: CscwEnvironment::register_app
pub const APP_SERVICE_TYPE: &str = "cscw-application";

/// The trader interface type every registered application offers.
fn app_service_type() -> odp::InterfaceType {
    odp::InterfaceType::new(APP_SERVICE_TYPE).with_operation(odp::OperationSig::new(
        "deliver",
        [odp::ValueKind::Text],
        odp::ValueKind::Bool,
    ))
}

/// O/R address for a registered application's notification mailbox.
fn app_address(app: &AppId) -> Option<OrAddress> {
    OrAddress::new("ZZ", "mocca", ["apps"], app.as_str()).ok()
}

/// O/R address for a person; DN separators are not legal in O/R
/// components, so they are folded to `-` (`cn=Tom` → `cn-Tom`).
fn person_address(dn: &Dn) -> Option<OrAddress> {
    let name: String = dn
        .to_string()
        .chars()
        .map(|c| {
            if c == '=' || c == ',' || c == ';' {
                '-'
            } else {
                c
            }
        })
        .collect();
    OrAddress::new("ZZ", "mocca", ["users"], name).ok()
}

/// Deterministic single-line rendering of object content for federation
/// replica entries (gossip bodies are line-oriented).
fn render_content(content: &InfoContent) -> String {
    match content {
        InfoContent::Text(t) => format!("text:{}", t.replace('\n', " ")),
        InfoContent::Fields(fields) => {
            let body: Vec<String> = fields.iter().map(|(k, v)| format!("{k}={v}")).collect();
            format!("fields:{}", body.join(";"))
        }
        InfoContent::Binary { format, data } => format!("binary:{format}:{} bytes", data.len()),
    }
}

/// The assembled open CSCW environment.
pub struct CscwEnvironment {
    org: Arc<RwLock<OrganisationalModel>>,
    knowledge: KnowledgeBase,
    activities: InterActivityModel,
    repository: InformationRepository,
    comm: CommunicationModel,
    expertise: UserExpertiseModel,
    tailoring: TailorStore,
    transparencies: CscwTransparencySelection,
    org_transparency: OrganisationTransparency,
    views: ViewRegistry,
    registry: AppRegistry,
    hub: InteropHub,
    bus: EventBus,
    platform: Box<dyn Platform>,
    federation: Option<Box<dyn FederationPort>>,
    queries: SubscriptionRegistry,
    knowledge_changes: ChangeCollector,
    query_apps: BTreeMap<SubscriptionId, AppId>,
    pending_deltas: Vec<(SubscriptionId, QueryDelta)>,
    operations: u64,
}

impl std::fmt::Debug for CscwEnvironment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CscwEnvironment")
            .field("activities", &self.activities.len())
            .field("objects", &self.repository.len())
            .field("apps", &self.registry.apps().len())
            .field("operations", &self.operations)
            .finish()
    }
}

impl Default for CscwEnvironment {
    fn default() -> Self {
        Self::new()
    }
}

impl CscwEnvironment {
    /// Creates an environment on the in-process [`LocalPlatform`] with
    /// all transparencies engaged and the organisational trading policy
    /// attached to the platform's trader.
    pub fn new() -> Self {
        Self::with_platform(Box::new(LocalPlatform::new()))
    }

    /// Creates an environment whose platform ports are wrapped in a
    /// [`ResilientPlatform`](crate::ResilientPlatform) — retries with
    /// seeded-jitter backoff, per-port circuit breakers, and graceful
    /// degradation — before the environment is constructed on top.
    ///
    /// This is the failure-transparent configuration RM-ODP asks of the
    /// engineering infrastructure: applications above the environment
    /// see transient platform faults masked, degraded (flagged stale)
    /// answers while a breaker is open, and classified errors otherwise.
    pub fn with_resilient_platform(platform: Box<dyn Platform>, seed: u64) -> Self {
        Self::with_platform(Box::new(
            crate::ResilientPlatform::new(platform).with_seed(seed),
        ))
    }

    /// Creates an environment on an arbitrary engineering platform.
    ///
    /// The platform's trader gets the organisational trading policy
    /// attached and the [`APP_SERVICE_TYPE`] registered, so application
    /// registration can advertise offers immediately.
    pub fn with_platform(mut platform: Box<dyn Platform>) -> Self {
        let org = Arc::new(RwLock::new(OrganisationalModel::new()));
        platform
            .trader()
            .attach_policy(Box::new(OrgTradingPolicy::new(org.clone())));
        platform.trader().register_service_type(app_service_type());
        // The knowledge base feeds a change collector; the standing-
        // query registry consumes its deltas and shares the platform's
        // telemetry stream.
        let knowledge_changes = ChangeCollector::new();
        let mut knowledge = KnowledgeBase::new();
        knowledge.observe(Arc::new(knowledge_changes.clone()));
        let queries = SubscriptionRegistry::with_telemetry(platform.telemetry().clone());
        CscwEnvironment {
            org,
            knowledge,
            activities: InterActivityModel::new(),
            repository: InformationRepository::new(),
            comm: CommunicationModel::new(),
            expertise: UserExpertiseModel::new(),
            tailoring: TailorStore::new(),
            transparencies: CscwTransparencySelection::full(),
            org_transparency: OrganisationTransparency::new(),
            views: ViewRegistry::new(),
            registry: AppRegistry::new(),
            hub: InteropHub::new(),
            bus: EventBus::new(),
            platform,
            federation: None,
            queries,
            knowledge_changes,
            query_apps: BTreeMap::new(),
            pending_deltas: Vec::new(),
            operations: 0,
        }
    }

    /// Installs a federation port: the environment joins an
    /// inter-environment federation. Applications already registered
    /// are advertised immediately; future registrations advertise as
    /// they happen, and [`exchange`](Self::exchange) falls through to
    /// federated resolution when the local trader cannot locate the
    /// destination.
    pub fn install_federation(&mut self, mut port: Box<dyn FederationPort>) {
        for descriptor in self.registry.apps() {
            port.advertise_app(descriptor.id.as_str());
        }
        self.emit_env("env.federation_installed", port.domain());
        self.federation = Some(port);
    }

    /// The federation domain this environment joined, if any.
    pub fn federation_domain(&self) -> Option<String> {
        self.federation.as_ref().map(|p| p.domain())
    }

    /// The canonical fingerprint of this environment's replicated
    /// knowledge (None when not federated).
    pub fn federation_fingerprint(&self) -> Option<String> {
        self.federation.as_ref().map(|p| p.replica_fingerprint())
    }

    fn count_op(&mut self) {
        self.operations += 1;
    }

    /// Emits an environment-layer telemetry event on the platform's
    /// stream.
    fn emit_env(&self, name: &'static str, detail: String) {
        let t = self.platform.telemetry();
        t.incr(Layer::Env, name);
        t.emit(self.platform.clock().now_micros(), Layer::Env, name, detail);
    }

    /// Emits an application-layer telemetry event (the environment
    /// recording what the *application* asked of it).
    fn emit_app(&self, name: &'static str, detail: String) {
        let t = self.platform.telemetry();
        // conform: allow(R4) — deliberate: the event belongs to the app
        t.incr(Layer::App, name);
        // conform: allow(R4) — deliberate: the event belongs to the app
        t.emit(self.platform.clock().now_micros(), Layer::App, name, detail);
    }

    /// Environment operations performed (each lowers to ODP/substrate
    /// work; the F4 layering bench reads this).
    pub fn operations(&self) -> u64 {
        self.operations
    }

    // ---- model access ----------------------------------------------------

    /// The shared organisational model.
    pub fn org(&self) -> Arc<RwLock<OrganisationalModel>> {
        self.org.clone()
    }

    /// The inter-activity model.
    pub fn activities(&self) -> &InterActivityModel {
        &self.activities
    }

    /// Mutable inter-activity model access.
    pub fn activities_mut(&mut self) -> &mut InterActivityModel {
        &mut self.activities
    }

    /// The information repository.
    pub fn repository(&self) -> &InformationRepository {
        &self.repository
    }

    /// Mutable repository access.
    pub fn repository_mut(&mut self) -> &mut InformationRepository {
        &mut self.repository
    }

    /// The communication model.
    pub fn comm(&self) -> &CommunicationModel {
        &self.comm
    }

    /// Mutable communication model access.
    pub fn comm_mut(&mut self) -> &mut CommunicationModel {
        &mut self.comm
    }

    /// The user-expertise model.
    pub fn expertise(&self) -> &UserExpertiseModel {
        &self.expertise
    }

    /// Mutable expertise access.
    pub fn expertise_mut(&mut self) -> &mut UserExpertiseModel {
        &mut self.expertise
    }

    /// The tailoring store.
    pub fn tailoring(&self) -> &TailorStore {
        &self.tailoring
    }

    /// Mutable tailoring access.
    pub fn tailoring_mut(&mut self) -> &mut TailorStore {
        &mut self.tailoring
    }

    /// The organisational knowledge base (directory-backed).
    pub fn knowledge(&self) -> &KnowledgeBase {
        &self.knowledge
    }

    /// Mutable knowledge-base access, for entries maintained beyond
    /// what [`publish_knowledge`](Self::publish_knowledge) mirrors
    /// (e.g. project state attributes). Pump afterwards with
    /// [`pump_queries`](Self::pump_queries) to push the resulting
    /// standing-query deltas.
    pub fn knowledge_mut(&mut self) -> &mut KnowledgeBase {
        &mut self.knowledge
    }

    /// Publishes the organisational model into the knowledge base and
    /// mirrors every entry into the platform's directory (already-
    /// existing entries are left alone — publication is idempotent).
    ///
    /// # Errors
    ///
    /// Any directory error from entry creation.
    pub fn publish_knowledge(&mut self) -> Result<usize, MoccaError> {
        self.count_op();
        let org = self.org.read().clone();
        let published = self.knowledge.publish(&org)?;
        self.emit_env("env.publish_knowledge", format!("{published} entries"));
        let entries: Vec<Entry> = self.knowledge.dit().iter().cloned().collect();
        for entry in &entries {
            match self.platform.directory().apply(DirOp::Add(entry.clone())) {
                Ok(_) | Err(cscw_directory::DirectoryError::EntryExists(_)) => {}
                Err(e) => return Err(e.into()),
            }
        }
        // Replicate the organisational model into the federation: each
        // DIT entry becomes a versioned replica entry gossiped to peer
        // environments (publication is idempotent — unchanged values
        // do not advance the replica clock). The same resolved pairs
        // feed the local knowledge-query shadow.
        if let Some(port) = self.federation.as_mut() {
            let mut pairs = Vec::with_capacity(entries.len());
            for entry in &entries {
                let key = format!("org:{}", entry.dn());
                let value = entry.to_string();
                port.publish_entry(&key, &value);
                pairs.push((key, value));
            }
            let at = self.platform.clock().now_micros();
            let deltas = self.queries.apply_replicated(&pairs, at);
            self.dispatch_query_deltas(deltas)?;
        }
        // Entry subscriptions see the publication's DIT changes.
        self.pump_queries()?;
        Ok(published)
    }

    // ---- standing queries (selective awareness) ---------------------------

    /// The standing-query registry (result sets, re-scan counter).
    pub fn queries(&self) -> &SubscriptionRegistry {
        &self.queries
    }

    /// Registers a standing query over the organisational knowledge.
    /// Entry queries (`class = …`, attribute and edge predicates) watch
    /// the knowledge base's DIT; knowledge queries (`from knowledge
    /// key/value …`) watch the federation's replicated knowledge. The
    /// initial result set and every later change arrive as
    /// [`QueryDelta`]s, collected via
    /// [`take_query_deltas`](Self::take_query_deltas).
    ///
    /// # Errors
    ///
    /// [`MoccaError::Query`] when the query fails to parse or compile.
    pub fn subscribe(&mut self, src: &str) -> Result<SubscriptionId, MoccaError> {
        self.subscribe_inner(src, None)
    }

    /// As [`subscribe`](Self::subscribe), but deltas are pushed to the
    /// registered application's mailbox through the platform's message
    /// transfer port (subject `query-delta`) instead of being buffered.
    ///
    /// # Errors
    ///
    /// As [`subscribe`](Self::subscribe).
    pub fn subscribe_for_app(
        &mut self,
        src: &str,
        app: &AppId,
    ) -> Result<SubscriptionId, MoccaError> {
        self.subscribe_inner(src, Some(app.clone()))
    }

    fn subscribe_inner(
        &mut self,
        src: &str,
        app: Option<AppId>,
    ) -> Result<SubscriptionId, MoccaError> {
        self.count_op();
        // Flush buffered directory changes first so priming sees a
        // consistent tree and emits no duplicate deltas.
        self.pump_queries()?;
        let at = self.platform.clock().now_micros();
        let source = CompiledQuery::compile(src)?.source();
        let id = self.queries.subscribe(src, at)?;
        if let Some(app) = app {
            self.query_apps.insert(id, app);
        }
        let initial = match source {
            Source::Entries => self.queries.prime(id, self.knowledge.dit(), at)?,
            Source::Knowledge => {
                // Seed the knowledge shadow from the replica snapshot;
                // older subscriptions see real catch-up deltas, if any.
                if let Some(port) = self.federation.as_ref() {
                    let snapshot = port.replica_snapshot();
                    let catchup = self.queries.apply_replicated(&snapshot, at);
                    self.dispatch_query_deltas(catchup)?;
                }
                self.queries.prime_knowledge(id, at)?
            }
        };
        self.emit_env("env.subscribe", format!("{id}: {src}"));
        let deltas: Vec<_> = initial.into_iter().map(|d| (id, d)).collect();
        self.dispatch_query_deltas(deltas)?;
        Ok(id)
    }

    /// Cancels a standing query; returns whether it existed.
    pub fn unsubscribe(&mut self, id: SubscriptionId) -> bool {
        self.query_apps.remove(&id);
        self.queries.unsubscribe(id)
    }

    /// Feeds buffered knowledge-base changes through the standing
    /// queries. Called implicitly by the operations that mutate the
    /// knowledge base; call it directly after mutating the DIT through
    /// [`knowledge_mut`](Self::knowledge_mut).
    ///
    /// # Errors
    ///
    /// Transport errors from app-bound delta delivery.
    pub fn pump_queries(&mut self) -> Result<(), MoccaError> {
        let changes = self.knowledge_changes.drain();
        if changes.is_empty() {
            return Ok(());
        }
        let at = self.platform.clock().now_micros();
        let deltas = self
            .queries
            .apply_dit_changes(&changes, self.knowledge.dit(), at);
        self.dispatch_query_deltas(deltas)
    }

    /// Feeds resolved replicated-knowledge applies (key, value pairs a
    /// gossip ingest surfaced) through the standing queries. The
    /// federation driver calls this on the receiving environment after
    /// each ingest. Returns how many deltas were emitted.
    ///
    /// # Errors
    ///
    /// Transport errors from app-bound delta delivery.
    pub fn ingest_replicated(&mut self, pairs: &[(String, String)]) -> Result<usize, MoccaError> {
        if pairs.is_empty() {
            return Ok(0);
        }
        let at = self.platform.clock().now_micros();
        let deltas = self.queries.apply_replicated(pairs, at);
        let emitted = deltas.len();
        self.dispatch_query_deltas(deltas)?;
        Ok(emitted)
    }

    /// Drains the buffered deltas of subscriptions without an app
    /// binding, in emission order.
    pub fn take_query_deltas(&mut self) -> Vec<(SubscriptionId, QueryDelta)> {
        std::mem::take(&mut self.pending_deltas)
    }

    /// Routes emitted deltas: app-bound subscriptions get a mailbox
    /// notification through the MTS, the rest buffer for
    /// [`take_query_deltas`](Self::take_query_deltas).
    fn dispatch_query_deltas(
        &mut self,
        deltas: Vec<(SubscriptionId, QueryDelta)>,
    ) -> Result<(), MoccaError> {
        for (id, delta) in deltas {
            self.emit_env("env.query_delta", format!("{id}: {delta}"));
            let Some(app) = self.query_apps.get(&id) else {
                self.pending_deltas.push((id, delta));
                continue;
            };
            let from = OrAddress::new("ZZ", "mocca", ["queries"], id.to_string()).ok();
            if let (Some(from), Some(dest)) = (from, app_address(app)) {
                self.platform.transport().notify(
                    &from,
                    &dest,
                    "query-delta",
                    &format!("{id} {delta}"),
                )?;
            }
        }
        Ok(())
    }

    /// The engineering platform the environment runs on.
    pub fn platform(&self) -> &dyn Platform {
        self.platform.as_ref()
    }

    /// Mutable platform access.
    pub fn platform_mut(&mut self) -> &mut dyn Platform {
        self.platform.as_mut()
    }

    /// The platform's layer-tagged telemetry stream.
    pub fn telemetry(&self) -> &cscw_kernel::Telemetry {
        self.platform.telemetry()
    }

    /// The platform's trading port (with the organisational policy
    /// attached) — to register service types, export offers and import.
    pub fn trader_mut(&mut self) -> &mut dyn TraderPort {
        self.platform.trader()
    }

    /// The platform's directory port.
    pub fn directory_mut(&mut self) -> &mut dyn DirectoryPort {
        self.platform.directory()
    }

    /// The platform's message-transfer port.
    pub fn transport_mut(&mut self) -> &mut dyn TransportPort {
        self.platform.transport()
    }

    /// The view registry.
    pub fn views(&self) -> &ViewRegistry {
        &self.views
    }

    /// Mutable view registry access.
    pub fn views_mut(&mut self) -> &mut ViewRegistry {
        &mut self.views
    }

    /// The organisation-transparency layer.
    pub fn org_transparency(&self) -> &OrganisationTransparency {
        &self.org_transparency
    }

    /// Mutable organisation-transparency access.
    pub fn org_transparency_mut(&mut self) -> &mut OrganisationTransparency {
        &mut self.org_transparency
    }

    /// The event bus.
    pub fn bus(&self) -> &EventBus {
        &self.bus
    }

    /// Mutable bus access.
    pub fn bus_mut(&mut self) -> &mut EventBus {
        &mut self.bus
    }

    // ---- transparencies ---------------------------------------------------

    /// Current CSCW transparency selection.
    pub fn transparencies(&self) -> CscwTransparencySelection {
        self.transparencies
    }

    /// Re-selects transparencies (user-tailorable, §6.1); updates the
    /// bus isolation policy to match.
    pub fn select_transparencies(&mut self, selection: CscwTransparencySelection) {
        self.transparencies = selection;
        self.bus.set_isolation(if selection.activity {
            ActivityIsolation::on()
        } else {
            ActivityIsolation::off()
        });
    }

    // ---- application registry & interop (Figures 2/3) ---------------------

    /// Registers an application with its mapping into the common
    /// information model. One registration makes it interoperable with
    /// every other registered application, and exports a
    /// [`APP_SERVICE_TYPE`] offer to the platform's trader so the
    /// application can be *located* through the trading function.
    pub fn register_app(&mut self, descriptor: AppDescriptor, mapping: FormatMapping) {
        self.count_op();
        let id = descriptor.id.clone();
        self.emit_env("env.register_app", id.to_string());
        self.hub.register_mapping(id.clone(), mapping);
        self.registry.register(descriptor);
        let export = self.platform.trader().export(
            APP_SERVICE_TYPE,
            &app_service_type(),
            odp::InterfaceRef {
                object: id.as_str().into(),
                node: cscw_messaging::net::NodeId::from_raw(0),
                interface: APP_SERVICE_TYPE.into(),
            },
            vec![("app".to_owned(), odp::Value::from(id.as_str()))],
        );
        if export.is_err() {
            // Registration itself succeeded; the app is just not
            // locatable via trading (e.g. the trader node is down).
            self.emit_env("env.app_offer_failed", id.to_string());
        }
        // Advertise into the federation so peer environments can
        // resolve this application through trader interworking.
        if let Some(port) = self.federation.as_mut() {
            port.advertise_app(id.as_str());
        }
    }

    /// The application registry.
    pub fn apps(&self) -> &AppRegistry {
        &self.registry
    }

    /// The interop hub.
    pub fn hub(&self) -> &InteropHub {
        &self.hub
    }

    /// Exchanges an artifact between two registered applications via
    /// the common model, recording it in the information repository as
    /// a shared object owned by `sharer`.
    ///
    /// The exchange is *lowered* through the platform, walking the
    /// Figure-4 stack top to bottom: the application's request (App),
    /// the environment service (Env), a trader import locating the
    /// destination application (Odp), a directory record of the shared
    /// object (Directory) and a notification to the destination
    /// application's mailbox (Messaging) — each of which becomes Net
    /// traffic on a distributed platform.
    ///
    /// When the destination application is not registered locally but a
    /// federation port is installed, the exchange is routed *across
    /// environments*: the federated trader resolves the hosting domain,
    /// the artifact is lowered to the common information model and
    /// delivered to the peer environment, and the caller gets the
    /// common-form artifact back (the peer raises it natively on its
    /// side).
    ///
    /// # Errors
    ///
    /// * [`MoccaError::UnknownApplication`] — unmapped application
    ///   (locally, and in the federation when one is joined).
    /// * [`MoccaError::Federation`] — the federation could not resolve
    ///   or route (partition, hop limit).
    /// * Repository errors for the shared record.
    /// * Substrate errors when the platform cannot complete the
    ///   lowering (trader unreachable, transfer failed).
    pub fn exchange(
        &mut self,
        sharer: &Dn,
        artifact: &NativeArtifact,
        to: &AppId,
        at: Timestamp,
    ) -> Result<NativeArtifact, MoccaError> {
        // The App/Env boundary is where a trace is minted: the root
        // span is the application's request, its Env child is this
        // service, and every lowering below (trader, directory, MTS,
        // net, federation) parents under them — one exchange, one
        // causally-ordered tree down the Figure-4 stack.
        let t = self.platform.telemetry().clone();
        let now = self.platform.clock().now_micros();
        // conform: allow(R4) — deliberate: the root span belongs to the app
        let app_span = t.span_begin(Layer::App, "app.exchange", now);
        let env_span = t.span_begin(Layer::Env, "env.exchange", now);
        let result = self.exchange_inner(sharer, artifact, to, at);
        let end = self.platform.clock().now_micros();
        t.span_end(env_span, end);
        t.span_end(app_span, end);
        result
    }

    fn exchange_inner(
        &mut self,
        sharer: &Dn,
        artifact: &NativeArtifact,
        to: &AppId,
        at: Timestamp,
    ) -> Result<NativeArtifact, MoccaError> {
        self.count_op();
        self.emit_app(
            "app.exchange",
            format!("{} -> {} by {sharer}", artifact.app, to),
        );
        self.emit_env("env.exchange", format!("{} -> {to}", artifact.app));
        let common = self.hub.to_common(artifact)?;
        if self.registry.app(to).is_none() && self.federation.is_some() {
            return self.exchange_remote(sharer, artifact, to, common, at);
        }
        let result = self.hub.exchange(artifact, to)?;
        // Locate the destination application through the trading
        // function (§6.1): the environment imports under its own
        // engineering identity.
        let offers = self
            .platform
            .trader()
            .import(&odp::ImportRequest::any(APP_SERVICE_TYPE).with_importer(ENV_PRINCIPAL))?;
        let located = offers
            .iter()
            .any(|o| o.property("app").and_then(odp::Value::as_text) == Some(to.as_str()));
        if !located {
            return Err(MoccaError::UnknownApplication(to.to_string()));
        }
        // Record the exchanged object in the shared repository (ids are
        // deterministic per exchange count).
        let id = InfoObjectId::new(format!("xchg:{}:{}", self.hub.conversions_performed(), to));
        self.repository.store(InfoObject::new(
            id.clone(),
            "exchanged-artifact",
            sharer.clone(),
            InfoContent::Fields(common),
        ))?;
        self.mirror_to_directory(&id, "exchanged-artifact", sharer);
        // Notify the destination application's mailbox via the MTS.
        if let (Some(from), Some(dest)) = (person_address(sharer), app_address(to)) {
            self.platform
                .transport()
                .notify(&from, &dest, "artifact-exchanged", id.as_str())?;
        }
        self.bus.publish(EnvEvent {
            kind: "artifact-exchanged".into(),
            activity: None,
            at,
            payload: InfoContent::fields([
                ("from", artifact.app.to_string()),
                ("to", to.to_string()),
                ("object", id.to_string()),
            ]),
        });
        Ok(result)
    }

    /// Routes an exchange whose destination lives in a peer environment
    /// through the federation: resolve the hosting domain via trader
    /// interworking, then hand the common-form artifact to the fabric
    /// for delivery.
    fn exchange_remote(
        &mut self,
        sharer: &Dn,
        artifact: &NativeArtifact,
        to: &AppId,
        common: std::collections::BTreeMap<String, String>,
        at: Timestamp,
    ) -> Result<NativeArtifact, MoccaError> {
        let Some(port) = self.federation.as_mut() else {
            // Only reachable if the caller raced an uninstall; classify
            // as the local miss it would have been.
            return Err(MoccaError::UnknownApplication(to.to_string()));
        };
        let resolution = port.resolve_app(to.as_str(), at)?;
        let delivery = RemoteDelivery {
            from_domain: port.domain(),
            to_domain: resolution.domain.clone(),
            sharer: sharer.to_string(),
            from_app: artifact.app.to_string(),
            to_app: to.to_string(),
            fields: common.clone(),
            at,
            // Carry the sending exchange's span across the domain
            // boundary so the peer's delivery joins the same trace.
            ctx: self.platform.telemetry().current_context(),
        };
        port.route_exchange(delivery)?;
        self.emit_env(
            "env.exchange_remote",
            format!("{to} @ {}", resolution.domain),
        );
        // Record the outbound exchange locally; ids are deterministic
        // per the operations ledger (the remote path performs no local
        // conversion to count).
        let id = InfoObjectId::new(format!("xchg-remote:{}:{}", self.operations, to));
        self.repository.store(InfoObject::new(
            id.clone(),
            "exchanged-artifact-remote",
            sharer.clone(),
            InfoContent::Fields(common.clone()),
        ))?;
        self.mirror_to_directory(&id, "exchanged-artifact-remote", sharer);
        self.bus.publish(EnvEvent {
            kind: "artifact-exchanged".into(),
            activity: None,
            at,
            payload: InfoContent::fields([
                ("from", artifact.app.to_string()),
                ("to", to.to_string()),
                ("object", id.to_string()),
                ("domain", resolution.domain),
            ]),
        });
        // The caller gets the artifact in the common information model;
        // the destination environment raises it into the peer's native
        // format on delivery.
        Ok(NativeArtifact {
            app: to.clone(),
            format: "common".to_owned(),
            fields: common,
        })
    }

    /// Accepts an exchange routed here by a peer environment: raises
    /// the common-form payload into the destination application's
    /// native format, records it, and notifies the application's
    /// mailbox — the inbound half of federated
    /// [`exchange`](Self::exchange).
    ///
    /// # Errors
    ///
    /// * [`MoccaError::UnknownApplication`] — the destination is not
    ///   registered here (stale federation advertisement).
    /// * Repository errors for the delivered record.
    pub fn deliver_remote_artifact(
        &mut self,
        delivery: &RemoteDelivery,
    ) -> Result<NativeArtifact, MoccaError> {
        // Resume the sender's trace if the delivery carried a context
        // (same-process federations share trace identity); otherwise
        // the delivery roots a trace of its own.
        let t = self.platform.telemetry().clone();
        let now = self.platform.clock().now_micros();
        let span = match delivery.ctx {
            Some(parent) => t.span_begin_with_parent(parent, Layer::Env, "env.deliver_remote", now),
            None => t.span_begin(Layer::Env, "env.deliver_remote", now),
        };
        let result = self.deliver_remote_inner(delivery);
        t.span_end(span, self.platform.clock().now_micros());
        result
    }

    fn deliver_remote_inner(
        &mut self,
        delivery: &RemoteDelivery,
    ) -> Result<NativeArtifact, MoccaError> {
        self.count_op();
        self.emit_env(
            "env.deliver_remote",
            format!("{} <- {}", delivery.to_app, delivery.from_domain),
        );
        let to = AppId::new(delivery.to_app.clone());
        let raised = self.hub.from_common(&to, &delivery.fields)?;
        let sharer = delivery.sharer.parse::<Dn>().unwrap_or_else(|_| Dn::root());
        let id = InfoObjectId::new(format!(
            "xchg-in:{}:{}",
            self.operations, delivery.from_domain
        ));
        self.repository.store(InfoObject::new(
            id.clone(),
            "exchanged-artifact-inbound",
            sharer.clone(),
            InfoContent::Fields(delivery.fields.clone()),
        ))?;
        self.mirror_to_directory(&id, "exchanged-artifact-inbound", &sharer);
        if let (Some(from), Some(dest)) = (person_address(&sharer), app_address(&to)) {
            self.platform
                .transport()
                .notify(&from, &dest, "artifact-exchanged", id.as_str())?;
        }
        self.bus.publish(EnvEvent {
            kind: "artifact-delivered".into(),
            activity: None,
            at: delivery.at,
            payload: InfoContent::fields([
                ("from-domain", delivery.from_domain.clone()),
                ("to", delivery.to_app.clone()),
                ("object", id.to_string()),
            ]),
        });
        Ok(raised)
    }

    /// Best-effort directory record of a stored object; objects whose
    /// ids cannot form a valid RDN are simply not mirrored, and an
    /// already-present record is left alone.
    fn mirror_to_directory(&mut self, id: &InfoObjectId, kind: &str, owner: &Dn) {
        let Ok(rdn) = Rdn::new("cn", id.as_str()) else {
            return;
        };
        let entry = Entry::new(Dn::root().child(rdn))
            .with_class("cscwresource")
            .with_attr(Attribute::single("cn", id.as_str()))
            .with_attr(Attribute::single("resourcetype", kind))
            .with_attr(Attribute::single("owner", owner.to_string()));
        let _ = self.platform.directory().apply(DirOp::Add(entry));
    }

    // ---- activities --------------------------------------------------------

    /// Creates an activity, checking the creator's organisational
    /// authority for `schedule` on `activity`.
    ///
    /// # Errors
    ///
    /// * [`MoccaError::AccessDenied`] — creator lacks the right.
    /// * Duplicate registration errors.
    pub fn create_activity(
        &mut self,
        creator: &Dn,
        activity: Activity,
        at: Timestamp,
    ) -> Result<(), MoccaError> {
        self.count_op();
        self.org.read().require(creator, "schedule", "activity")?;
        let id = activity.id.clone();
        self.activities.register(activity)?;
        self.bus.publish(EnvEvent {
            kind: "activity-created".into(),
            activity: Some(id.clone()),
            at,
            payload: InfoContent::fields([("id", id.to_string()), ("by", creator.to_string())]),
        });
        Ok(())
    }

    /// Joins a person to an activity in a role and refreshes their bus
    /// memberships.
    ///
    /// # Errors
    ///
    /// [`MoccaError::UnknownActivity`] when the activity is missing.
    pub fn join_activity(
        &mut self,
        person: &Dn,
        id: &ActivityId,
        role: ActivityRole,
        at: Timestamp,
    ) -> Result<(), MoccaError> {
        self.count_op();
        let activity = self
            .activities
            .activity_mut(id)
            .ok_or_else(|| MoccaError::UnknownActivity(id.to_string()))?;
        activity.join(person.clone(), role);
        let memberships: Vec<ActivityId> = self
            .activities
            .activities()
            .filter(|a| a.has_member(person))
            .map(|a| a.id.clone())
            .collect();
        self.bus.subscribe(person.clone(), memberships);
        self.bus.publish(EnvEvent {
            kind: "member-joined".into(),
            activity: Some(id.clone()),
            at,
            payload: InfoContent::fields([("who", person.to_string())]),
        });
        Ok(())
    }

    // ---- information -------------------------------------------------------

    /// Stores an information object, publishing a scoped event.
    ///
    /// # Errors
    ///
    /// Repository errors (duplicate id).
    pub fn store_object(
        &mut self,
        object: InfoObject,
        activity: Option<ActivityId>,
        at: Timestamp,
    ) -> Result<(), MoccaError> {
        self.count_op();
        let id = object.id.clone();
        let kind = object.kind.clone();
        let owner = object.owner.clone();
        self.emit_env("env.store_object", id.to_string());
        let rendered = render_content(&object.content);
        self.repository.store(object)?;
        self.mirror_to_directory(&id, &kind, &owner);
        // Replicate the information-model record into the federation
        // (and the local knowledge-query shadow).
        if let Some(port) = self.federation.as_mut() {
            let key = format!("info:{id}");
            let value = format!("{kind}:{rendered}");
            port.publish_entry(&key, &value);
            let at = self.platform.clock().now_micros();
            let deltas = self.queries.apply_replicated(&[(key, value)], at);
            self.dispatch_query_deltas(deltas)?;
        }
        self.bus.publish(EnvEvent {
            kind: "object-stored".into(),
            activity,
            at,
            payload: InfoContent::fields([("id", id.to_string())]),
        });
        Ok(())
    }

    /// Reads an object *as the reader sees it*: access-checked, then
    /// rendered through their view when view transparency is engaged.
    ///
    /// # Errors
    ///
    /// Repository access errors.
    pub fn read_object(
        &mut self,
        reader: &Dn,
        id: &InfoObjectId,
    ) -> Result<InfoContent, MoccaError> {
        self.count_op();
        let org = self.org.read();
        let object = self.repository.fetch(&org, reader, id)?;
        Ok(if self.transparencies.view {
            self.views.render_for(reader, object)
        } else {
            object.content.clone()
        })
    }

    // ---- inter-organisational cooperation ----------------------------------

    /// May these two people cooperate over a service? With organisation
    /// transparency engaged this consults the domain registry; with it
    /// disengaged the check is skipped and the *caller* owns the
    /// consequences (the ablation the R5 bench measures).
    ///
    /// # Errors
    ///
    /// [`MoccaError::IncompatiblePolicies`] /
    /// [`MoccaError::UnknownOrgObject`] from the transparency layer.
    pub fn check_cooperation(
        &mut self,
        importer: &Dn,
        exporter: &Dn,
        service_type: &str,
    ) -> Result<(), MoccaError> {
        self.count_op();
        if !self.transparencies.organisation {
            return Ok(());
        }
        self.org_transparency
            .check_interaction(importer, exporter, service_type)
    }

    // ---- expertise-driven assignment ----------------------------------------

    /// Suggests who should take responsibility for work needing `skill`
    /// at `min_level`: the best-ranked capable person who is a member of
    /// the activity (or the best overall when `activity` is `None`).
    /// The negotiation protocol then formalises the assignment — this is
    /// the opening proposal, not a decree.
    pub fn suggest_responsible(
        &mut self,
        skill: &str,
        min_level: u8,
        activity: Option<&ActivityId>,
    ) -> Option<Dn> {
        self.count_op();
        let ranked = self.expertise.find_capable(skill, min_level);
        match activity.and_then(|id| self.activities.activity(id)) {
            Some(act) => ranked
                .into_iter()
                .map(|(dn, _)| dn.clone())
                .find(|dn| act.has_member(dn)),
            None => ranked.first().map(|(dn, _)| (*dn).clone()),
        }
    }

    // ---- model interrelation (§7) -------------------------------------------

    /// Checks that the five models agree with each other — the paper's
    /// closing future work ("the details and interrelation of the
    /// models") made executable. Empty result = consistent.
    pub fn check_consistency(&self) -> Vec<crate::env::consistency::ModelInconsistency> {
        crate::env::consistency::check_models(self)
    }

    // ---- figure 2 baseline -------------------------------------------------

    /// Builds the closed-world baseline for the currently registered
    /// applications with only `adapters` pairs wired — used by the
    /// F2/F3 experiment.
    pub fn closed_world_baseline(
        &self,
        adapters: impl IntoIterator<Item = (AppId, AppId, FormatMapping)>,
    ) -> ClosedWorld {
        let mut world = ClosedWorld::new();
        for (from, to, mapping) in adapters {
            world.install_adapter(from, to, mapping);
        }
        world
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::registry::Quadrant;
    use crate::org::{OrgRule, Person, RelationKind, Role, RuleKind};

    fn dn(s: &str) -> Dn {
        s.parse().unwrap()
    }

    /// An environment with Tom (coordinator) and Wolfgang (member).
    fn env() -> CscwEnvironment {
        let e = CscwEnvironment::new();
        {
            let mut org = e.org.write();
            org.add_person(Person::new(dn("cn=Tom"), "Tom"));
            org.add_person(Person::new(dn("cn=Wolfgang"), "Wolfgang"));
            org.add_role(Role::new(dn("cn=coordinator"), "coordinator"));
            org.relate(&dn("cn=Tom"), RelationKind::Occupies, &dn("cn=coordinator"))
                .unwrap();
            org.add_rule(OrgRule::new(
                dn("cn=coordinator"),
                RuleKind::Permit,
                "schedule",
                "activity",
            ));
        }
        e
    }

    #[test]
    fn activity_creation_is_authorised() {
        let mut e = env();
        let a = Activity::new("report".into(), "Joint report");
        assert!(e
            .create_activity(&dn("cn=Wolfgang"), a.clone(), Timestamp::ZERO)
            .is_err_and(|err| matches!(err, MoccaError::AccessDenied { .. })));
        e.create_activity(&dn("cn=Tom"), a, Timestamp::ZERO)
            .unwrap();
        assert_eq!(e.activities().len(), 1);
    }

    #[test]
    fn joining_updates_bus_memberships() {
        let mut e = env();
        e.create_activity(
            &dn("cn=Tom"),
            Activity::new("report".into(), "r"),
            Timestamp::ZERO,
        )
        .unwrap();
        e.join_activity(
            &dn("cn=Wolfgang"),
            &"report".into(),
            ActivityRole("writer".into()),
            Timestamp::ZERO,
        )
        .unwrap();
        // A scoped event reaches the member.
        e.bus_mut().publish(EnvEvent {
            kind: "object-updated".into(),
            activity: Some("report".into()),
            at: Timestamp::ZERO,
            payload: InfoContent::Text("x".into()),
        });
        let got = e.bus().delivered_to(&dn("cn=Wolfgang"));
        assert!(got.iter().any(|ev| ev.kind == "object-updated"));
        assert!(e
            .join_activity(
                &dn("cn=Tom"),
                &"ghost".into(),
                ActivityRole("x".into()),
                Timestamp::ZERO
            )
            .is_err());
    }

    #[test]
    fn read_object_applies_views_only_when_engaged() {
        let mut e = env();
        let obj = InfoObject::new(
            "doc1".into(),
            "document",
            dn("cn=Tom"),
            InfoContent::fields([("title", "Report"), ("secret", "x")]),
        );
        e.store_object(obj, None, Timestamp::ZERO).unwrap();
        e.views_mut().set_view(
            dn("cn=Tom"),
            "document",
            crate::transparency::View::selecting([("title", "Title")]),
        );
        let seen = e.read_object(&dn("cn=Tom"), &"doc1".into()).unwrap();
        assert_eq!(seen.field("Title"), Some("Report"));
        assert_eq!(seen.field("secret"), None);

        let mut selection = e.transparencies();
        selection.view = false;
        e.select_transparencies(selection);
        let raw = e.read_object(&dn("cn=Tom"), &"doc1".into()).unwrap();
        assert_eq!(raw.field("secret"), Some("x"));
    }

    #[test]
    fn exchange_goes_through_hub_and_repository() {
        let mut e = env();
        for (id, native, common) in [
            ("sharedx", "window_title", "title"),
            ("com", "subject", "title"),
        ] {
            e.register_app(
                AppDescriptor {
                    id: id.into(),
                    name: id.into(),
                    quadrant: Quadrant::DESKTOP_CONFERENCE,
                    native_format: format!("{id}-native"),
                    kinds: vec!["document".into()],
                },
                FormatMapping::new([(native, common)]),
            );
        }
        let artifact = NativeArtifact::new(
            "sharedx".into(),
            "sharedx-native",
            [("window_title", "Minutes".to_owned())],
        );
        let got = e
            .exchange(&dn("cn=Tom"), &artifact, &"com".into(), Timestamp::ZERO)
            .unwrap();
        assert_eq!(
            got.fields.get("subject").map(String::as_str),
            Some("Minutes")
        );
        assert_eq!(
            e.repository().len(),
            1,
            "exchange recorded as shared object"
        );
        assert_eq!(e.hub().mappings_needed(), 2);
    }

    #[test]
    fn cooperation_check_respects_transparency_toggle() {
        let mut e = env();
        // Nothing configured: with transparency on, unknown people fail…
        let err = e
            .check_cooperation(&dn("cn=Tom"), &dn("cn=Wolfgang"), "document-store")
            .unwrap_err();
        assert!(matches!(err, MoccaError::UnknownOrgObject(_)));
        // …with it off, the check is the caller's problem.
        let mut sel = e.transparencies();
        sel.organisation = false;
        e.select_transparencies(sel);
        assert!(e
            .check_cooperation(&dn("cn=Tom"), &dn("cn=Wolfgang"), "document-store")
            .is_ok());
    }

    #[test]
    fn trader_carries_org_policy() {
        let mut e = env();
        {
            let mut org = e.org.write();
            org.add_rule(OrgRule::new(
                dn("cn=coordinator"),
                RuleKind::Permit,
                "import",
                "service:scheduler",
            ));
        }
        let iface = odp::InterfaceType::new("scheduler").with_operation(odp::OperationSig::new(
            "book",
            [odp::ValueKind::Text],
            odp::ValueKind::Bool,
        ));
        e.trader_mut().register_service_type(iface.clone());
        e.trader_mut()
            .export(
                "scheduler",
                &iface,
                odp::InterfaceRef {
                    object: "sched1".into(),
                    node: simnet::NodeId::from_raw(0),
                    interface: "scheduler".into(),
                },
                vec![],
            )
            .unwrap();
        // Tom (coordinator) may import; Wolfgang may not.
        let ok = e
            .trader_mut()
            .import(&odp::ImportRequest::any("scheduler").with_importer("cn=Tom"));
        assert!(ok.is_ok());
        let denied = e
            .trader_mut()
            .import(&odp::ImportRequest::any("scheduler").with_importer("cn=Wolfgang"));
        assert!(denied.is_err());
    }

    #[test]
    fn suggest_responsible_prefers_capable_members() {
        use crate::expertise::Capability;
        let mut e = env();
        e.create_activity(
            &dn("cn=Tom"),
            Activity::new("report".into(), "r"),
            Timestamp::ZERO,
        )
        .unwrap();
        e.join_activity(
            &dn("cn=Tom"),
            &"report".into(),
            ActivityRole("editor".into()),
            Timestamp::ZERO,
        )
        .unwrap();
        e.expertise_mut()
            .declare_capability(&dn("cn=Tom"), Capability::new("writing", 3));
        e.expertise_mut()
            .declare_capability(&dn("cn=Wolfgang"), Capability::new("writing", 5));
        // Overall best is Wolfgang…
        assert_eq!(
            e.suggest_responsible("writing", 3, None),
            Some(dn("cn=Wolfgang"))
        );
        // …but within the activity only Tom qualifies.
        let within = e.suggest_responsible("writing", 3, Some(&"report".into()));
        assert_eq!(within, Some(dn("cn=Tom")));
        // Nobody has the skill at level 5 inside the activity.
        assert_eq!(
            e.suggest_responsible("writing", 5, Some(&"report".into())),
            None
        );
        assert_eq!(e.suggest_responsible("juggling", 1, None), None);
    }

    #[test]
    fn operations_ledger_counts_environment_work() {
        let mut e = env();
        let before = e.operations();
        e.create_activity(
            &dn("cn=Tom"),
            Activity::new("a".into(), "a"),
            Timestamp::ZERO,
        )
        .unwrap();
        e.store_object(
            InfoObject::new(
                "o".into(),
                "document",
                dn("cn=Tom"),
                InfoContent::Text("x".into()),
            ),
            None,
            Timestamp::ZERO,
        )
        .unwrap();
        assert_eq!(e.operations(), before + 2);
    }
}
