//! The CSCW environment facade.
//!
//! "A central aim of such environment is to provide interoperability
//! between a variety of applications ensuring that CSCW applications
//! can work in harmony rather than in isolation of each other" (§3,
//! Figure 3). [`CscwEnvironment`] wires the five MOCCA models, the four
//! CSCW transparencies, tailoring, the application registry and the
//! interop hub into one object, and attaches the organisational
//! knowledge base to the ODP trader as §6.1 proposes.
//!
//! Every service the environment performs is counted in an operations
//! ledger; the F4 bench uses it to show the CSCW layer's cost over raw
//! ODP.

use std::sync::Arc;

use cscw_directory::Dn;
use parking_lot::RwLock;
use simnet::SimTime;

use crate::activity::{Activity, ActivityId, ActivityRole, InterActivityModel};
use crate::comm::CommunicationModel;
use crate::env::events::{EnvEvent, EventBus};
use crate::env::interop::{ClosedWorld, FormatMapping, InteropHub, NativeArtifact};
use crate::env::registry::{AppDescriptor, AppId, AppRegistry};
use crate::error::MoccaError;
use crate::expertise::UserExpertiseModel;
use crate::info::{InfoContent, InfoObject, InfoObjectId, InformationRepository};
use crate::org::{KnowledgeBase, OrgTradingPolicy, OrganisationalModel};
use crate::tailor::TailorStore;
use crate::transparency::activity::ActivityIsolation;
use crate::transparency::{CscwTransparencySelection, OrganisationTransparency, ViewRegistry};

/// The assembled open CSCW environment.
pub struct CscwEnvironment {
    org: Arc<RwLock<OrganisationalModel>>,
    knowledge: KnowledgeBase,
    activities: InterActivityModel,
    repository: InformationRepository,
    comm: CommunicationModel,
    expertise: UserExpertiseModel,
    tailoring: TailorStore,
    transparencies: CscwTransparencySelection,
    org_transparency: OrganisationTransparency,
    views: ViewRegistry,
    registry: AppRegistry,
    hub: InteropHub,
    bus: EventBus,
    trader: odp::Trader,
    operations: u64,
}

impl std::fmt::Debug for CscwEnvironment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CscwEnvironment")
            .field("activities", &self.activities.len())
            .field("objects", &self.repository.len())
            .field("apps", &self.registry.apps().len())
            .field("operations", &self.operations)
            .finish()
    }
}

impl Default for CscwEnvironment {
    fn default() -> Self {
        Self::new()
    }
}

impl CscwEnvironment {
    /// Creates an environment with all transparencies engaged and the
    /// organisational trading policy attached to its trader.
    pub fn new() -> Self {
        let org = Arc::new(RwLock::new(OrganisationalModel::new()));
        let mut trader = odp::Trader::new("mocca-trader");
        trader.attach_policy(OrgTradingPolicy::new(org.clone()));
        CscwEnvironment {
            org,
            knowledge: KnowledgeBase::new(),
            activities: InterActivityModel::new(),
            repository: InformationRepository::new(),
            comm: CommunicationModel::new(),
            expertise: UserExpertiseModel::new(),
            tailoring: TailorStore::new(),
            transparencies: CscwTransparencySelection::full(),
            org_transparency: OrganisationTransparency::new(),
            views: ViewRegistry::new(),
            registry: AppRegistry::new(),
            hub: InteropHub::new(),
            bus: EventBus::new(),
            trader,
            operations: 0,
        }
    }

    fn count_op(&mut self) {
        self.operations += 1;
    }

    /// Environment operations performed (each lowers to ODP/substrate
    /// work; the F4 layering bench reads this).
    pub fn operations(&self) -> u64 {
        self.operations
    }

    // ---- model access ----------------------------------------------------

    /// The shared organisational model.
    pub fn org(&self) -> Arc<RwLock<OrganisationalModel>> {
        self.org.clone()
    }

    /// The inter-activity model.
    pub fn activities(&self) -> &InterActivityModel {
        &self.activities
    }

    /// Mutable inter-activity model access.
    pub fn activities_mut(&mut self) -> &mut InterActivityModel {
        &mut self.activities
    }

    /// The information repository.
    pub fn repository(&self) -> &InformationRepository {
        &self.repository
    }

    /// Mutable repository access.
    pub fn repository_mut(&mut self) -> &mut InformationRepository {
        &mut self.repository
    }

    /// The communication model.
    pub fn comm(&self) -> &CommunicationModel {
        &self.comm
    }

    /// Mutable communication model access.
    pub fn comm_mut(&mut self) -> &mut CommunicationModel {
        &mut self.comm
    }

    /// The user-expertise model.
    pub fn expertise(&self) -> &UserExpertiseModel {
        &self.expertise
    }

    /// Mutable expertise access.
    pub fn expertise_mut(&mut self) -> &mut UserExpertiseModel {
        &mut self.expertise
    }

    /// The tailoring store.
    pub fn tailoring(&self) -> &TailorStore {
        &self.tailoring
    }

    /// Mutable tailoring access.
    pub fn tailoring_mut(&mut self) -> &mut TailorStore {
        &mut self.tailoring
    }

    /// The organisational knowledge base (directory-backed).
    pub fn knowledge(&self) -> &KnowledgeBase {
        &self.knowledge
    }

    /// Publishes the organisational model into the knowledge base.
    ///
    /// # Errors
    ///
    /// Any directory error from entry creation.
    pub fn publish_knowledge(&mut self) -> Result<usize, MoccaError> {
        self.count_op();
        let org = self.org.read().clone();
        self.knowledge.publish(&org)
    }

    /// The environment's trader (with the organisational policy
    /// attached).
    pub fn trader(&self) -> &odp::Trader {
        &self.trader
    }

    /// Mutable trader access (to register service types and offers).
    pub fn trader_mut(&mut self) -> &mut odp::Trader {
        &mut self.trader
    }

    /// The view registry.
    pub fn views(&self) -> &ViewRegistry {
        &self.views
    }

    /// Mutable view registry access.
    pub fn views_mut(&mut self) -> &mut ViewRegistry {
        &mut self.views
    }

    /// The organisation-transparency layer.
    pub fn org_transparency(&self) -> &OrganisationTransparency {
        &self.org_transparency
    }

    /// Mutable organisation-transparency access.
    pub fn org_transparency_mut(&mut self) -> &mut OrganisationTransparency {
        &mut self.org_transparency
    }

    /// The event bus.
    pub fn bus(&self) -> &EventBus {
        &self.bus
    }

    /// Mutable bus access.
    pub fn bus_mut(&mut self) -> &mut EventBus {
        &mut self.bus
    }

    // ---- transparencies ---------------------------------------------------

    /// Current CSCW transparency selection.
    pub fn transparencies(&self) -> CscwTransparencySelection {
        self.transparencies
    }

    /// Re-selects transparencies (user-tailorable, §6.1); updates the
    /// bus isolation policy to match.
    pub fn select_transparencies(&mut self, selection: CscwTransparencySelection) {
        self.transparencies = selection;
        self.bus.set_isolation(if selection.activity {
            ActivityIsolation::on()
        } else {
            ActivityIsolation::off()
        });
    }

    // ---- application registry & interop (Figures 2/3) ---------------------

    /// Registers an application with its mapping into the common
    /// information model. One registration makes it interoperable with
    /// every other registered application.
    pub fn register_app(&mut self, descriptor: AppDescriptor, mapping: FormatMapping) {
        self.count_op();
        self.hub.register_mapping(descriptor.id.clone(), mapping);
        self.registry.register(descriptor);
    }

    /// The application registry.
    pub fn apps(&self) -> &AppRegistry {
        &self.registry
    }

    /// The interop hub.
    pub fn hub(&self) -> &InteropHub {
        &self.hub
    }

    /// Exchanges an artifact between two registered applications via
    /// the common model, recording it in the information repository as
    /// a shared object owned by `sharer`.
    ///
    /// # Errors
    ///
    /// * [`MoccaError::UnknownApplication`] — unmapped application.
    /// * Repository errors for the shared record.
    pub fn exchange(
        &mut self,
        sharer: &Dn,
        artifact: &NativeArtifact,
        to: &AppId,
        at: SimTime,
    ) -> Result<NativeArtifact, MoccaError> {
        self.count_op();
        let common = self.hub.to_common(artifact)?;
        let result = self.hub.exchange(artifact, to)?;
        // Record the exchanged object in the shared repository (ids are
        // deterministic per exchange count).
        let id = InfoObjectId::new(format!("xchg:{}:{}", self.hub.conversions_performed(), to));
        self.repository.store(InfoObject::new(
            id.clone(),
            "exchanged-artifact",
            sharer.clone(),
            InfoContent::Fields(common),
        ))?;
        self.bus.publish(EnvEvent {
            kind: "artifact-exchanged".into(),
            activity: None,
            at,
            payload: InfoContent::fields([
                ("from", artifact.app.to_string()),
                ("to", to.to_string()),
                ("object", id.to_string()),
            ]),
        });
        Ok(result)
    }

    // ---- activities --------------------------------------------------------

    /// Creates an activity, checking the creator's organisational
    /// authority for `schedule` on `activity`.
    ///
    /// # Errors
    ///
    /// * [`MoccaError::AccessDenied`] — creator lacks the right.
    /// * Duplicate registration errors.
    pub fn create_activity(
        &mut self,
        creator: &Dn,
        activity: Activity,
        at: SimTime,
    ) -> Result<(), MoccaError> {
        self.count_op();
        self.org.read().require(creator, "schedule", "activity")?;
        let id = activity.id.clone();
        self.activities.register(activity)?;
        self.bus.publish(EnvEvent {
            kind: "activity-created".into(),
            activity: Some(id.clone()),
            at,
            payload: InfoContent::fields([("id", id.to_string()), ("by", creator.to_string())]),
        });
        Ok(())
    }

    /// Joins a person to an activity in a role and refreshes their bus
    /// memberships.
    ///
    /// # Errors
    ///
    /// [`MoccaError::UnknownActivity`] when the activity is missing.
    pub fn join_activity(
        &mut self,
        person: &Dn,
        id: &ActivityId,
        role: ActivityRole,
        at: SimTime,
    ) -> Result<(), MoccaError> {
        self.count_op();
        let activity = self
            .activities
            .activity_mut(id)
            .ok_or_else(|| MoccaError::UnknownActivity(id.to_string()))?;
        activity.join(person.clone(), role);
        let memberships: Vec<ActivityId> = self
            .activities
            .activities()
            .filter(|a| a.has_member(person))
            .map(|a| a.id.clone())
            .collect();
        self.bus.subscribe(person.clone(), memberships);
        self.bus.publish(EnvEvent {
            kind: "member-joined".into(),
            activity: Some(id.clone()),
            at,
            payload: InfoContent::fields([("who", person.to_string())]),
        });
        Ok(())
    }

    // ---- information -------------------------------------------------------

    /// Stores an information object, publishing a scoped event.
    ///
    /// # Errors
    ///
    /// Repository errors (duplicate id).
    pub fn store_object(
        &mut self,
        object: InfoObject,
        activity: Option<ActivityId>,
        at: SimTime,
    ) -> Result<(), MoccaError> {
        self.count_op();
        let id = object.id.clone();
        self.repository.store(object)?;
        self.bus.publish(EnvEvent {
            kind: "object-stored".into(),
            activity,
            at,
            payload: InfoContent::fields([("id", id.to_string())]),
        });
        Ok(())
    }

    /// Reads an object *as the reader sees it*: access-checked, then
    /// rendered through their view when view transparency is engaged.
    ///
    /// # Errors
    ///
    /// Repository access errors.
    pub fn read_object(
        &mut self,
        reader: &Dn,
        id: &InfoObjectId,
    ) -> Result<InfoContent, MoccaError> {
        self.count_op();
        let org = self.org.read();
        let object = self.repository.fetch(&org, reader, id)?;
        Ok(if self.transparencies.view {
            self.views.render_for(reader, object)
        } else {
            object.content.clone()
        })
    }

    // ---- inter-organisational cooperation ----------------------------------

    /// May these two people cooperate over a service? With organisation
    /// transparency engaged this consults the domain registry; with it
    /// disengaged the check is skipped and the *caller* owns the
    /// consequences (the ablation the R5 bench measures).
    ///
    /// # Errors
    ///
    /// [`MoccaError::IncompatiblePolicies`] /
    /// [`MoccaError::UnknownOrgObject`] from the transparency layer.
    pub fn check_cooperation(
        &mut self,
        importer: &Dn,
        exporter: &Dn,
        service_type: &str,
    ) -> Result<(), MoccaError> {
        self.count_op();
        if !self.transparencies.organisation {
            return Ok(());
        }
        self.org_transparency
            .check_interaction(importer, exporter, service_type)
    }

    // ---- expertise-driven assignment ----------------------------------------

    /// Suggests who should take responsibility for work needing `skill`
    /// at `min_level`: the best-ranked capable person who is a member of
    /// the activity (or the best overall when `activity` is `None`).
    /// The negotiation protocol then formalises the assignment — this is
    /// the opening proposal, not a decree.
    pub fn suggest_responsible(
        &mut self,
        skill: &str,
        min_level: u8,
        activity: Option<&ActivityId>,
    ) -> Option<Dn> {
        self.count_op();
        let ranked = self.expertise.find_capable(skill, min_level);
        match activity.and_then(|id| self.activities.activity(id)) {
            Some(act) => ranked
                .into_iter()
                .map(|(dn, _)| dn.clone())
                .find(|dn| act.has_member(dn)),
            None => ranked.first().map(|(dn, _)| (*dn).clone()),
        }
    }

    // ---- model interrelation (§7) -------------------------------------------

    /// Checks that the five models agree with each other — the paper's
    /// closing future work ("the details and interrelation of the
    /// models") made executable. Empty result = consistent.
    pub fn check_consistency(&self) -> Vec<crate::env::consistency::ModelInconsistency> {
        crate::env::consistency::check_models(self)
    }

    // ---- figure 2 baseline -------------------------------------------------

    /// Builds the closed-world baseline for the currently registered
    /// applications with only `adapters` pairs wired — used by the
    /// F2/F3 experiment.
    pub fn closed_world_baseline(
        &self,
        adapters: impl IntoIterator<Item = (AppId, AppId, FormatMapping)>,
    ) -> ClosedWorld {
        let mut world = ClosedWorld::new();
        for (from, to, mapping) in adapters {
            world.install_adapter(from, to, mapping);
        }
        world
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::registry::Quadrant;
    use crate::org::{OrgRule, Person, RelationKind, Role, RuleKind};

    fn dn(s: &str) -> Dn {
        s.parse().unwrap()
    }

    /// An environment with Tom (coordinator) and Wolfgang (member).
    fn env() -> CscwEnvironment {
        let e = CscwEnvironment::new();
        {
            let mut org = e.org.write();
            org.add_person(Person::new(dn("cn=Tom"), "Tom"));
            org.add_person(Person::new(dn("cn=Wolfgang"), "Wolfgang"));
            org.add_role(Role::new(dn("cn=coordinator"), "coordinator"));
            org.relate(&dn("cn=Tom"), RelationKind::Occupies, &dn("cn=coordinator"))
                .unwrap();
            org.add_rule(OrgRule::new(
                dn("cn=coordinator"),
                RuleKind::Permit,
                "schedule",
                "activity",
            ));
        }
        e
    }

    #[test]
    fn activity_creation_is_authorised() {
        let mut e = env();
        let a = Activity::new("report".into(), "Joint report");
        assert!(e
            .create_activity(&dn("cn=Wolfgang"), a.clone(), SimTime::ZERO)
            .is_err_and(|err| matches!(err, MoccaError::AccessDenied { .. })));
        e.create_activity(&dn("cn=Tom"), a, SimTime::ZERO).unwrap();
        assert_eq!(e.activities().len(), 1);
    }

    #[test]
    fn joining_updates_bus_memberships() {
        let mut e = env();
        e.create_activity(
            &dn("cn=Tom"),
            Activity::new("report".into(), "r"),
            SimTime::ZERO,
        )
        .unwrap();
        e.join_activity(
            &dn("cn=Wolfgang"),
            &"report".into(),
            ActivityRole("writer".into()),
            SimTime::ZERO,
        )
        .unwrap();
        // A scoped event reaches the member.
        e.bus_mut().publish(EnvEvent {
            kind: "object-updated".into(),
            activity: Some("report".into()),
            at: SimTime::ZERO,
            payload: InfoContent::Text("x".into()),
        });
        let got = e.bus().delivered_to(&dn("cn=Wolfgang"));
        assert!(got.iter().any(|ev| ev.kind == "object-updated"));
        assert!(e
            .join_activity(
                &dn("cn=Tom"),
                &"ghost".into(),
                ActivityRole("x".into()),
                SimTime::ZERO
            )
            .is_err());
    }

    #[test]
    fn read_object_applies_views_only_when_engaged() {
        let mut e = env();
        let obj = InfoObject::new(
            "doc1".into(),
            "document",
            dn("cn=Tom"),
            InfoContent::fields([("title", "Report"), ("secret", "x")]),
        );
        e.store_object(obj, None, SimTime::ZERO).unwrap();
        e.views_mut().set_view(
            dn("cn=Tom"),
            "document",
            crate::transparency::View::selecting([("title", "Title")]),
        );
        let seen = e.read_object(&dn("cn=Tom"), &"doc1".into()).unwrap();
        assert_eq!(seen.field("Title"), Some("Report"));
        assert_eq!(seen.field("secret"), None);

        let mut selection = e.transparencies();
        selection.view = false;
        e.select_transparencies(selection);
        let raw = e.read_object(&dn("cn=Tom"), &"doc1".into()).unwrap();
        assert_eq!(raw.field("secret"), Some("x"));
    }

    #[test]
    fn exchange_goes_through_hub_and_repository() {
        let mut e = env();
        for (id, native, common) in [
            ("sharedx", "window_title", "title"),
            ("com", "subject", "title"),
        ] {
            e.register_app(
                AppDescriptor {
                    id: id.into(),
                    name: id.into(),
                    quadrant: Quadrant::DESKTOP_CONFERENCE,
                    native_format: format!("{id}-native"),
                    kinds: vec!["document".into()],
                },
                FormatMapping::new([(native, common)]),
            );
        }
        let artifact = NativeArtifact::new(
            "sharedx".into(),
            "sharedx-native",
            [("window_title", "Minutes".to_owned())],
        );
        let got = e
            .exchange(&dn("cn=Tom"), &artifact, &"com".into(), SimTime::ZERO)
            .unwrap();
        assert_eq!(
            got.fields.get("subject").map(String::as_str),
            Some("Minutes")
        );
        assert_eq!(
            e.repository().len(),
            1,
            "exchange recorded as shared object"
        );
        assert_eq!(e.hub().mappings_needed(), 2);
    }

    #[test]
    fn cooperation_check_respects_transparency_toggle() {
        let mut e = env();
        // Nothing configured: with transparency on, unknown people fail…
        let err = e
            .check_cooperation(&dn("cn=Tom"), &dn("cn=Wolfgang"), "document-store")
            .unwrap_err();
        assert!(matches!(err, MoccaError::UnknownOrgObject(_)));
        // …with it off, the check is the caller's problem.
        let mut sel = e.transparencies();
        sel.organisation = false;
        e.select_transparencies(sel);
        assert!(e
            .check_cooperation(&dn("cn=Tom"), &dn("cn=Wolfgang"), "document-store")
            .is_ok());
    }

    #[test]
    fn trader_carries_org_policy() {
        let mut e = env();
        {
            let mut org = e.org.write();
            org.add_rule(OrgRule::new(
                dn("cn=coordinator"),
                RuleKind::Permit,
                "import",
                "service:scheduler",
            ));
        }
        let iface = odp::InterfaceType::new("scheduler").with_operation(odp::OperationSig::new(
            "book",
            [odp::ValueKind::Text],
            odp::ValueKind::Bool,
        ));
        e.trader_mut().register_service_type(iface.clone());
        e.trader_mut()
            .export(
                "scheduler",
                &iface,
                odp::InterfaceRef {
                    object: "sched1".into(),
                    node: simnet::NodeId::from_raw(0),
                    interface: "scheduler".into(),
                },
                [],
            )
            .unwrap();
        // Tom (coordinator) may import; Wolfgang may not.
        let ok = e
            .trader()
            .import(&odp::ImportRequest::any("scheduler").with_importer("cn=Tom"));
        assert!(ok.is_ok());
        let denied = e
            .trader()
            .import(&odp::ImportRequest::any("scheduler").with_importer("cn=Wolfgang"));
        assert!(denied.is_err());
    }

    #[test]
    fn suggest_responsible_prefers_capable_members() {
        use crate::expertise::Capability;
        let mut e = env();
        e.create_activity(
            &dn("cn=Tom"),
            Activity::new("report".into(), "r"),
            SimTime::ZERO,
        )
        .unwrap();
        e.join_activity(
            &dn("cn=Tom"),
            &"report".into(),
            ActivityRole("editor".into()),
            SimTime::ZERO,
        )
        .unwrap();
        e.expertise_mut()
            .declare_capability(&dn("cn=Tom"), Capability::new("writing", 3));
        e.expertise_mut()
            .declare_capability(&dn("cn=Wolfgang"), Capability::new("writing", 5));
        // Overall best is Wolfgang…
        assert_eq!(
            e.suggest_responsible("writing", 3, None),
            Some(dn("cn=Wolfgang"))
        );
        // …but within the activity only Tom qualifies.
        let within = e.suggest_responsible("writing", 3, Some(&"report".into()));
        assert_eq!(within, Some(dn("cn=Tom")));
        // Nobody has the skill at level 5 inside the activity.
        assert_eq!(
            e.suggest_responsible("writing", 5, Some(&"report".into())),
            None
        );
        assert_eq!(e.suggest_responsible("juggling", 1, None), None);
    }

    #[test]
    fn operations_ledger_counts_environment_work() {
        let mut e = env();
        let before = e.operations();
        e.create_activity(&dn("cn=Tom"), Activity::new("a".into(), "a"), SimTime::ZERO)
            .unwrap();
        e.store_object(
            InfoObject::new(
                "o".into(),
                "document",
                dn("cn=Tom"),
                InfoContent::Text("x".into()),
            ),
            None,
            SimTime::ZERO,
        )
        .unwrap();
        assert_eq!(e.operations(), before + 2);
    }
}
