//! The environment event bus, with activity-scoped delivery.
//!
//! Applications publish events (activity started, object changed,
//! member joined…); subscribers receive them filtered through
//! [`ActivityIsolation`] — the concrete mechanism behind activity
//! transparency. Disturbances (deliveries that only happen because
//! isolation is off) are counted, giving R5 its measurable effect.

use std::collections::{BTreeMap, BTreeSet};

use cscw_directory::Dn;
use cscw_kernel::Timestamp;
use serde::{Deserialize, Serialize};

use crate::activity::ActivityId;
use crate::info::InfoContent;
use crate::transparency::activity::{ActivityIsolation, Visibility};

/// One environment event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnvEvent {
    /// Event kind (`activity-started`, `object-updated`, `utterance`…).
    pub kind: String,
    /// The activity it belongs to; `None` for environment-wide events.
    pub activity: Option<ActivityId>,
    /// When it happened.
    pub at: Timestamp,
    /// Structured payload.
    pub payload: InfoContent,
}

/// A subscriber's mailbox on the bus.
#[derive(Debug, Clone, Default)]
struct Subscription {
    memberships: BTreeSet<ActivityId>,
    delivered: Vec<EnvEvent>,
    disturbances: u64,
}

/// The event bus.
#[derive(Debug, Default)]
pub struct EventBus {
    isolation: Option<ActivityIsolation>,
    subscriptions: BTreeMap<Dn, Subscription>,
    published: u64,
}

impl EventBus {
    /// Creates a bus with isolation engaged.
    pub fn new() -> Self {
        EventBus {
            isolation: Some(ActivityIsolation::on()),
            ..Default::default()
        }
    }

    /// Sets the isolation policy (the activity-transparency toggle).
    pub fn set_isolation(&mut self, isolation: ActivityIsolation) {
        self.isolation = Some(isolation);
    }

    /// Subscribes a person with their current activity memberships.
    pub fn subscribe(&mut self, who: Dn, memberships: impl IntoIterator<Item = ActivityId>) {
        let sub = self.subscriptions.entry(who).or_default();
        sub.memberships = memberships.into_iter().collect();
    }

    /// Updates a subscriber's memberships (joining/leaving activities).
    pub fn update_memberships(
        &mut self,
        who: &Dn,
        memberships: impl IntoIterator<Item = ActivityId>,
    ) {
        if let Some(sub) = self.subscriptions.get_mut(who) {
            sub.memberships = memberships.into_iter().collect();
        }
    }

    /// Publishes an event to all subscribers per the isolation policy.
    /// Returns how many subscribers received it.
    pub fn publish(&mut self, event: EnvEvent) -> usize {
        self.published += 1;
        let isolation = self.isolation.unwrap_or(ActivityIsolation::on());
        let mut delivered = 0;
        for sub in self.subscriptions.values_mut() {
            match isolation.classify(event.activity.as_ref(), &sub.memberships) {
                Visibility::Relevant => {
                    sub.delivered.push(event.clone());
                    delivered += 1;
                }
                Visibility::Disturbance => {
                    sub.delivered.push(event.clone());
                    sub.disturbances += 1;
                    delivered += 1;
                }
                Visibility::Hidden => {}
            }
        }
        delivered
    }

    /// The events a subscriber has received, in publish order.
    pub fn delivered_to(&self, who: &Dn) -> &[EnvEvent] {
        self.subscriptions
            .get(who)
            .map(|s| s.delivered.as_slice())
            .unwrap_or(&[])
    }

    /// How many of a subscriber's deliveries were disturbances.
    pub fn disturbances_of(&self, who: &Dn) -> u64 {
        self.subscriptions
            .get(who)
            .map(|s| s.disturbances)
            .unwrap_or(0)
    }

    /// Total disturbances across all subscribers.
    pub fn total_disturbances(&self) -> u64 {
        self.subscriptions.values().map(|s| s.disturbances).sum()
    }

    /// Total events published.
    pub fn published_count(&self) -> u64 {
        self.published
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dn(s: &str) -> Dn {
        s.parse().unwrap()
    }

    fn event(kind: &str, activity: Option<&str>) -> EnvEvent {
        EnvEvent {
            kind: kind.to_owned(),
            activity: activity.map(ActivityId::from),
            at: Timestamp::ZERO,
            payload: InfoContent::Text(kind.to_owned()),
        }
    }

    fn bus() -> EventBus {
        let mut b = EventBus::new();
        b.subscribe(dn("cn=Tom"), [ActivityId::from("report")]);
        b.subscribe(dn("cn=Wolfgang"), [ActivityId::from("meeting")]);
        b
    }

    #[test]
    fn scoped_events_reach_members_only() {
        let mut b = bus();
        let n = b.publish(event("object-updated", Some("report")));
        assert_eq!(n, 1);
        assert_eq!(b.delivered_to(&dn("cn=Tom")).len(), 1);
        assert!(b.delivered_to(&dn("cn=Wolfgang")).is_empty());
        assert_eq!(b.total_disturbances(), 0);
    }

    #[test]
    fn broadcasts_reach_everyone_without_disturbance() {
        let mut b = bus();
        let n = b.publish(event("environment-notice", None));
        assert_eq!(n, 2);
        assert_eq!(b.total_disturbances(), 0);
    }

    #[test]
    fn isolation_off_delivers_everything_and_counts_disturbance() {
        let mut b = bus();
        b.set_isolation(ActivityIsolation::off());
        let n = b.publish(event("object-updated", Some("report")));
        assert_eq!(n, 2, "everyone gets it");
        assert_eq!(b.disturbances_of(&dn("cn=Wolfgang")), 1);
        assert_eq!(
            b.disturbances_of(&dn("cn=Tom")),
            0,
            "members are never disturbed"
        );
        assert_eq!(b.total_disturbances(), 1);
    }

    #[test]
    fn membership_updates_take_effect() {
        let mut b = bus();
        b.publish(event("e1", Some("meeting")));
        assert!(b.delivered_to(&dn("cn=Tom")).is_empty());
        b.update_memberships(&dn("cn=Tom"), [ActivityId::from("meeting")]);
        b.publish(event("e2", Some("meeting")));
        assert_eq!(b.delivered_to(&dn("cn=Tom")).len(), 1);
        assert_eq!(b.published_count(), 2);
    }

    #[test]
    fn unknown_subscribers_read_empty() {
        let b = bus();
        assert!(b.delivered_to(&dn("cn=Ghost")).is_empty());
        assert_eq!(b.disturbances_of(&dn("cn=Ghost")), 0);
    }
}
