//! Application interoperability: the hub (Figure 3) and the closed
//! pairwise baseline (Figure 2).
//!
//! Every application speaks its own *native format*: a named bag of
//! fields. The **hub** requires each application to register one
//! [`FormatMapping`] between its native field names and the common
//! information model; any two registered applications can then exchange
//! artifacts via common form, at a cost of exactly two conversions and
//! N total mappings.
//!
//! The **closed world** has no common model: an exchange succeeds only
//! if someone has hand-written a direct adapter for that ordered pair —
//! up to N·(N−1) adapters, and any missing pair is a failed exchange.
//! The F2/F3 bench measures exactly this contrast.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::env::registry::AppId;
use crate::error::MoccaError;

/// An artifact in some application's native format.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NativeArtifact {
    /// The producing application.
    pub app: AppId,
    /// The format name (must match the app's descriptor).
    pub format: String,
    /// Native fields.
    pub fields: BTreeMap<String, String>,
}

impl NativeArtifact {
    /// Creates an artifact.
    pub fn new(
        app: AppId,
        format: &str,
        fields: impl IntoIterator<Item = (&'static str, String)>,
    ) -> Self {
        NativeArtifact {
            app,
            format: format.to_owned(),
            fields: fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect(),
        }
    }
}

/// A bidirectional mapping between native field names and common-model
/// field names.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FormatMapping {
    /// Pairs of (native field, common field).
    pub pairs: Vec<(String, String)>,
}

impl FormatMapping {
    /// Builds a mapping from pairs.
    pub fn new<N: Into<String>, C: Into<String>>(pairs: impl IntoIterator<Item = (N, C)>) -> Self {
        FormatMapping {
            pairs: pairs
                .into_iter()
                .map(|(n, c)| (n.into(), c.into()))
                .collect(),
        }
    }

    /// Native → common: renames known fields, drops unknown ones (an
    /// application's private fields do not pollute the common model).
    pub fn to_common(&self, fields: &BTreeMap<String, String>) -> BTreeMap<String, String> {
        let mut out = BTreeMap::new();
        for (native, common) in &self.pairs {
            if let Some(v) = fields.get(native) {
                out.insert(common.clone(), v.clone());
            }
        }
        out
    }

    /// Common → native: the inverse renaming; common fields the app has
    /// no name for are dropped (it cannot represent them).
    pub fn from_common(&self, fields: &BTreeMap<String, String>) -> BTreeMap<String, String> {
        let mut out = BTreeMap::new();
        for (native, common) in &self.pairs {
            if let Some(v) = fields.get(common) {
                out.insert(native.clone(), v.clone());
            }
        }
        out
    }
}

/// The environment's interop hub (Figure 3): one mapping per app.
#[derive(Debug, Clone, Default)]
pub struct InteropHub {
    mappings: BTreeMap<AppId, FormatMapping>,
    conversions_performed: u64,
}

impl InteropHub {
    /// Creates an empty hub.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an application's mapping to the common model.
    pub fn register_mapping(&mut self, app: AppId, mapping: FormatMapping) {
        self.mappings.insert(app, mapping);
    }

    /// Number of mappings the hub needed — O(N), Figure 3's point.
    pub fn mappings_needed(&self) -> usize {
        self.mappings.len()
    }

    /// Conversions performed so far (2 per exchange).
    pub fn conversions_performed(&self) -> u64 {
        self.conversions_performed
    }

    /// Exchanges an artifact from its producing app to `to`, through
    /// the common model.
    ///
    /// # Errors
    ///
    /// [`MoccaError::UnknownApplication`] when either end has no
    /// registered mapping.
    pub fn exchange(
        &mut self,
        artifact: &NativeArtifact,
        to: &AppId,
    ) -> Result<NativeArtifact, MoccaError> {
        let from_mapping = self
            .mappings
            .get(&artifact.app)
            .ok_or_else(|| MoccaError::UnknownApplication(artifact.app.to_string()))?;
        let to_mapping = self
            .mappings
            .get(to)
            .ok_or_else(|| MoccaError::UnknownApplication(to.to_string()))?;
        let common = from_mapping.to_common(&artifact.fields);
        let native = to_mapping.from_common(&common);
        self.conversions_performed += 2;
        Ok(NativeArtifact {
            app: to.clone(),
            format: format!("{to}-native"),
            fields: native,
        })
    }

    /// Materialises a common-model artifact into `to`'s native format —
    /// the receiving half of an exchange whose sending half ran in a
    /// *different* environment (one conversion; the sender already paid
    /// the other).
    ///
    /// # Errors
    ///
    /// [`MoccaError::UnknownApplication`] when `to` has no registered
    /// mapping.
    pub fn from_common(
        &mut self,
        to: &AppId,
        common: &BTreeMap<String, String>,
    ) -> Result<NativeArtifact, MoccaError> {
        let to_mapping = self
            .mappings
            .get(to)
            .ok_or_else(|| MoccaError::UnknownApplication(to.to_string()))?;
        let native = to_mapping.from_common(common);
        self.conversions_performed += 1;
        Ok(NativeArtifact {
            app: to.clone(),
            format: format!("{to}-native"),
            fields: native,
        })
    }

    /// The common form of an artifact (for storing in the information
    /// repository).
    ///
    /// # Errors
    ///
    /// [`MoccaError::UnknownApplication`] when the app is unmapped.
    pub fn to_common(
        &self,
        artifact: &NativeArtifact,
    ) -> Result<BTreeMap<String, String>, MoccaError> {
        Ok(self
            .mappings
            .get(&artifact.app)
            .ok_or_else(|| MoccaError::UnknownApplication(artifact.app.to_string()))?
            .to_common(&artifact.fields))
    }
}

/// The closed world (Figure 2): explicit per-ordered-pair adapters.
#[derive(Debug, Clone, Default)]
pub struct ClosedWorld {
    adapters: BTreeMap<(AppId, AppId), FormatMapping>,
    conversions_performed: u64,
    failed_exchanges: u64,
}

impl ClosedWorld {
    /// Creates an empty closed world.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs a hand-written adapter for the ordered pair
    /// `(from, to)`. The mapping's pairs are (from-field, to-field).
    pub fn install_adapter(&mut self, from: AppId, to: AppId, mapping: FormatMapping) {
        self.adapters.insert((from, to), mapping);
    }

    /// Number of adapters written — up to O(N²), Figure 2's point.
    pub fn adapters_needed(&self) -> usize {
        self.adapters.len()
    }

    /// Conversions performed so far (1 per successful exchange — direct
    /// adapters are cheaper per message, which is exactly the trade-off
    /// the crossover bench shows).
    pub fn conversions_performed(&self) -> u64 {
        self.conversions_performed
    }

    /// Exchanges that failed for want of an adapter.
    pub fn failed_exchanges(&self) -> u64 {
        self.failed_exchanges
    }

    /// Attempts a direct exchange.
    ///
    /// # Errors
    ///
    /// [`MoccaError::NoConversionPath`] when no adapter exists for the
    /// ordered pair.
    pub fn exchange(
        &mut self,
        artifact: &NativeArtifact,
        to: &AppId,
    ) -> Result<NativeArtifact, MoccaError> {
        match self.adapters.get(&(artifact.app.clone(), to.clone())) {
            Some(mapping) => {
                self.conversions_performed += 1;
                // A direct adapter *is* a to_common whose "common" names
                // are the target's native names.
                let fields = mapping.to_common(&artifact.fields);
                Ok(NativeArtifact {
                    app: to.clone(),
                    format: format!("{to}-native"),
                    fields,
                })
            }
            None => {
                self.failed_exchanges += 1;
                Err(MoccaError::NoConversionPath {
                    from: artifact.app.to_string(),
                    to: to.to_string(),
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three apps with different native vocabularies for a document.
    fn hub() -> InteropHub {
        let mut h = InteropHub::new();
        h.register_mapping(
            "sharedx".into(),
            FormatMapping::new([("window_title", "title"), ("window_body", "body")]),
        );
        h.register_mapping(
            "com".into(),
            FormatMapping::new([("subject", "title"), ("entry_text", "body")]),
        );
        h.register_mapping(
            "lens".into(),
            FormatMapping::new([("Subject", "title"), ("Text", "body"), ("Folder", "folder")]),
        );
        h
    }

    fn sharedx_doc() -> NativeArtifact {
        NativeArtifact::new(
            "sharedx".into(),
            "sharedx-native",
            [
                ("window_title", "Minutes".to_owned()),
                ("window_body", "We agreed.".to_owned()),
            ],
        )
    }

    #[test]
    fn hub_exchange_translates_vocabulary() {
        let mut h = hub();
        let got = h.exchange(&sharedx_doc(), &"com".into()).unwrap();
        assert_eq!(
            got.fields.get("subject").map(String::as_str),
            Some("Minutes")
        );
        assert_eq!(
            got.fields.get("entry_text").map(String::as_str),
            Some("We agreed.")
        );
        assert_eq!(h.conversions_performed(), 2);
    }

    #[test]
    fn hub_needs_one_mapping_per_app() {
        let h = hub();
        assert_eq!(h.mappings_needed(), 3);
    }

    #[test]
    fn hub_any_pair_works_without_extra_registration() {
        let mut h = hub();
        for to in ["com", "lens"] {
            assert!(h.exchange(&sharedx_doc(), &to.into()).is_ok());
        }
        // Reverse direction too.
        let com_doc = NativeArtifact::new(
            "com".into(),
            "com-native",
            [
                ("subject", "Re: Minutes".to_owned()),
                ("entry_text", "I disagree.".to_owned()),
            ],
        );
        let back = h.exchange(&com_doc, &"sharedx".into()).unwrap();
        assert_eq!(
            back.fields.get("window_title").map(String::as_str),
            Some("Re: Minutes")
        );
    }

    #[test]
    fn hub_unknown_app_is_an_error() {
        let mut h = hub();
        assert!(matches!(
            h.exchange(&sharedx_doc(), &"ghost".into()).unwrap_err(),
            MoccaError::UnknownApplication(_)
        ));
        let alien = NativeArtifact::new("alien".into(), "alien", []);
        assert!(h.exchange(&alien, &"com".into()).is_err());
    }

    #[test]
    fn private_fields_do_not_cross_the_hub() {
        let mut h = hub();
        let mut doc = sharedx_doc();
        doc.fields.insert("x11_display".into(), ":0".into());
        let got = h.exchange(&doc, &"lens".into()).unwrap();
        assert!(got.fields.values().all(|v| v != ":0"));
        // But lens's extra "Folder" concept simply stays empty rather
        // than failing.
        assert!(!got.fields.contains_key("Folder"));
    }

    #[test]
    fn closed_world_needs_a_specific_adapter_per_direction() {
        let mut w = ClosedWorld::new();
        w.install_adapter(
            "sharedx".into(),
            "com".into(),
            FormatMapping::new([("window_title", "subject"), ("window_body", "entry_text")]),
        );
        assert!(w.exchange(&sharedx_doc(), &"com".into()).is_ok());
        // The reverse direction was never written: fails.
        let com_doc = NativeArtifact::new("com".into(), "com-native", []);
        let err = w.exchange(&com_doc, &"sharedx".into()).unwrap_err();
        assert!(matches!(err, MoccaError::NoConversionPath { .. }));
        assert_eq!(w.failed_exchanges(), 1);
        assert_eq!(w.adapters_needed(), 1);
        assert_eq!(w.conversions_performed(), 1, "direct adapter converts once");
    }

    #[test]
    fn mapping_round_trip_preserves_shared_fields() {
        let m = FormatMapping::new([("a", "x"), ("b", "y")]);
        let mut native = BTreeMap::new();
        native.insert("a".to_owned(), "1".to_owned());
        native.insert("b".to_owned(), "2".to_owned());
        native.insert("private".to_owned(), "3".to_owned());
        let common = m.to_common(&native);
        let back = m.from_common(&common);
        assert_eq!(back.get("a").map(String::as_str), Some("1"));
        assert_eq!(back.get("b").map(String::as_str), Some("2"));
        assert!(!back.contains_key("private"));
    }
}
