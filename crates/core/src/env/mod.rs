//! The CSCW environment (§3, Figures 2–4).
//!
//! * [`registry`] — applications and the groupware time–space matrix.
//! * [`interop`] — the common-model hub (Figure 3) and the closed
//!   pairwise baseline (Figure 2).
//! * [`events`] — the activity-scoped event bus.
//! * [`environment`] — the facade wiring the five models together.
//! * [`consistency`] — the §7 "interrelation of the models" made
//!   checkable.

pub mod consistency;
pub mod environment;
pub mod events;
pub mod interop;
pub mod registry;

pub use consistency::{check_models, ModelInconsistency};
pub use environment::CscwEnvironment;
pub use events::{EnvEvent, EventBus};
pub use interop::{ClosedWorld, FormatMapping, InteropHub, NativeArtifact};
pub use registry::{AppDescriptor, AppId, AppRegistry, PlaceMode, Quadrant, TimeMode};
