//! Application registration.
//!
//! The environment knows each CSCW application by a descriptor: which
//! quadrant of the groupware time–space matrix (Figure 1) it occupies,
//! which information-object kinds it produces and consumes, and how its
//! native format maps to the common information model.

use serde::{Deserialize, Serialize};

/// Identifies a registered application.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AppId(String);

impl AppId {
    /// Creates an id.
    pub fn new(id: impl Into<String>) -> Self {
        AppId(id.into())
    }

    /// The raw name.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl std::fmt::Display for AppId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for AppId {
    fn from(s: &str) -> Self {
        AppId::new(s)
    }
}

/// The time dimension of Figure 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TimeMode {
    /// Same time (synchronous interaction).
    SameTime,
    /// Different times (asynchronous interaction).
    DifferentTimes,
}

/// The place dimension of Figure 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PlaceMode {
    /// Same place (co-located, e.g. a meeting room).
    SamePlace,
    /// Different places (remote).
    DifferentPlaces,
}

/// One cell of the groupware time–space matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Quadrant {
    /// Time dimension.
    pub time: TimeMode,
    /// Place dimension.
    pub place: PlaceMode,
}

impl Quadrant {
    /// Same time, same place — meeting rooms (COLAB).
    pub const MEETING_ROOM: Quadrant = Quadrant {
        time: TimeMode::SameTime,
        place: PlaceMode::SamePlace,
    };
    /// Same time, different places — desktop conferencing (Shared X).
    pub const DESKTOP_CONFERENCE: Quadrant = Quadrant {
        time: TimeMode::SameTime,
        place: PlaceMode::DifferentPlaces,
    };
    /// Different times, same place — shared workstations / procedure
    /// systems (DOMINO).
    pub const SHARED_FACILITY: Quadrant = Quadrant {
        time: TimeMode::DifferentTimes,
        place: PlaceMode::SamePlace,
    };
    /// Different times, different places — message & conferencing
    /// systems (COM, Object Lens).
    pub const CORRESPONDENCE: Quadrant = Quadrant {
        time: TimeMode::DifferentTimes,
        place: PlaceMode::DifferentPlaces,
    };

    /// All four quadrants.
    pub fn all() -> [Quadrant; 4] {
        [
            Quadrant::MEETING_ROOM,
            Quadrant::DESKTOP_CONFERENCE,
            Quadrant::SHARED_FACILITY,
            Quadrant::CORRESPONDENCE,
        ]
    }
}

/// A registered application.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppDescriptor {
    /// The id.
    pub id: AppId,
    /// Human name.
    pub name: String,
    /// Where it sits in the time–space matrix.
    pub quadrant: Quadrant,
    /// The name of its native artifact format.
    pub native_format: String,
    /// Information-object kinds it can produce/consume through the hub.
    pub kinds: Vec<String>,
}

/// The application registry.
#[derive(Debug, Clone, Default)]
pub struct AppRegistry {
    apps: Vec<AppDescriptor>,
}

impl AppRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or re-registers) an application.
    pub fn register(&mut self, descriptor: AppDescriptor) {
        self.apps.retain(|a| a.id != descriptor.id);
        self.apps.push(descriptor);
    }

    /// Looks up an application.
    pub fn app(&self, id: &AppId) -> Option<&AppDescriptor> {
        self.apps.iter().find(|a| &a.id == id)
    }

    /// All registered applications.
    pub fn apps(&self) -> &[AppDescriptor] {
        &self.apps
    }

    /// Applications in a quadrant.
    pub fn in_quadrant(&self, quadrant: Quadrant) -> Vec<&AppDescriptor> {
        self.apps
            .iter()
            .filter(|a| a.quadrant == quadrant)
            .collect()
    }

    /// Matrix coverage: which quadrants have at least one application —
    /// the "co-existence of remote/local, synchronous/asynchronous"
    /// check (§3).
    pub fn covered_quadrants(&self) -> Vec<Quadrant> {
        Quadrant::all()
            .into_iter()
            .filter(|q| self.apps.iter().any(|a| a.quadrant == *q))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry() -> AppRegistry {
        let mut r = AppRegistry::new();
        for (id, q) in [
            ("colab", Quadrant::MEETING_ROOM),
            ("sharedx", Quadrant::DESKTOP_CONFERENCE),
            ("com", Quadrant::CORRESPONDENCE),
        ] {
            r.register(AppDescriptor {
                id: id.into(),
                name: id.to_uppercase(),
                quadrant: q,
                native_format: format!("{id}-format"),
                kinds: vec!["document".into()],
            });
        }
        r
    }

    #[test]
    fn register_and_lookup() {
        let r = registry();
        assert_eq!(r.apps().len(), 3);
        assert!(r.app(&"colab".into()).is_some());
        assert!(r.app(&"ghost".into()).is_none());
    }

    #[test]
    fn reregistration_replaces() {
        let mut r = registry();
        r.register(AppDescriptor {
            id: "colab".into(),
            name: "Colab v2".into(),
            quadrant: Quadrant::MEETING_ROOM,
            native_format: "colab2".into(),
            kinds: vec![],
        });
        assert_eq!(r.apps().len(), 3);
        assert_eq!(r.app(&"colab".into()).unwrap().name, "Colab v2");
    }

    #[test]
    fn quadrant_queries() {
        let r = registry();
        assert_eq!(r.in_quadrant(Quadrant::MEETING_ROOM).len(), 1);
        assert!(r.in_quadrant(Quadrant::SHARED_FACILITY).is_empty());
        let covered = r.covered_quadrants();
        assert_eq!(covered.len(), 3, "one quadrant uncovered");
        assert!(!covered.contains(&Quadrant::SHARED_FACILITY));
    }

    #[test]
    fn quadrant_constants_are_distinct() {
        let all = Quadrant::all();
        for (i, a) in all.iter().enumerate() {
            for (j, b) in all.iter().enumerate() {
                assert_eq!(i == j, a == b);
            }
        }
    }
}
