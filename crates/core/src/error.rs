//! MOCCA environment error type.

use std::error::Error;
use std::fmt;

/// Errors returned by the MOCCA CSCW environment.
#[derive(Debug, Clone, PartialEq)]
pub enum MoccaError {
    /// The named organisational object is unknown.
    UnknownOrgObject(String),
    /// The named activity is unknown.
    UnknownActivity(String),
    /// An activity state transition is not legal.
    IllegalTransition {
        /// The activity.
        activity: String,
        /// Current state name.
        from: &'static str,
        /// Requested state name.
        to: &'static str,
    },
    /// An inter-activity dependency would create a temporal cycle.
    DependencyCycle(String),
    /// The person lacks the right for the action.
    AccessDenied {
        /// Who was refused.
        who: String,
        /// What they tried.
        action: String,
        /// On what.
        target: String,
    },
    /// Inter-organisational policies are incompatible for this
    /// interaction (the paper's "interaction is not possible due to
    /// incompatible policies").
    IncompatiblePolicies(String),
    /// The named information object is unknown.
    UnknownInfoObject(String),
    /// No conversion path exists between two application formats.
    NoConversionPath {
        /// Producing application.
        from: String,
        /// Consuming application.
        to: String,
    },
    /// The named application is not registered with the environment.
    UnknownApplication(String),
    /// A negotiation operation is invalid in the current state.
    BadNegotiationState(String),
    /// A tailoring value violates the parameter's constraint.
    TailoringViolation(String),
    /// The underlying directory refused an operation.
    Directory(cscw_directory::DirectoryError),
    /// The underlying message transfer system refused an operation.
    Messaging(cscw_messaging::MtsError),
    /// The underlying ODP layer refused an operation.
    Odp(odp::OdpError),
    /// The federation layer refused an operation.
    Federation(cscw_federation::FederationError),
    /// The standing-query layer refused an operation.
    Query(cscw_query::QueryError),
}

impl fmt::Display for MoccaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MoccaError::UnknownOrgObject(s) => write!(f, "unknown organisational object: {s}"),
            MoccaError::UnknownActivity(s) => write!(f, "unknown activity: {s}"),
            MoccaError::IllegalTransition { activity, from, to } => {
                write!(f, "activity {activity}: illegal transition {from} -> {to}")
            }
            MoccaError::DependencyCycle(s) => write!(f, "dependency cycle involving {s}"),
            MoccaError::AccessDenied {
                who,
                action,
                target,
            } => {
                write!(f, "access denied: {who} may not {action} {target}")
            }
            MoccaError::IncompatiblePolicies(s) => write!(f, "incompatible policies: {s}"),
            MoccaError::UnknownInfoObject(s) => write!(f, "unknown information object: {s}"),
            MoccaError::NoConversionPath { from, to } => {
                write!(f, "no conversion path from {from} to {to}")
            }
            MoccaError::UnknownApplication(s) => write!(f, "unknown application: {s}"),
            MoccaError::BadNegotiationState(s) => write!(f, "bad negotiation state: {s}"),
            MoccaError::TailoringViolation(s) => write!(f, "tailoring violation: {s}"),
            MoccaError::Directory(e) => write!(f, "directory: {e}"),
            MoccaError::Messaging(e) => write!(f, "messaging: {e}"),
            MoccaError::Odp(e) => write!(f, "odp: {e}"),
            MoccaError::Federation(e) => write!(f, "federation: {e}"),
            MoccaError::Query(e) => write!(f, "query: {e}"),
        }
    }
}

impl Error for MoccaError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            MoccaError::Directory(e) => Some(e),
            MoccaError::Messaging(e) => Some(e),
            MoccaError::Odp(e) => Some(e),
            MoccaError::Federation(e) => Some(e),
            MoccaError::Query(e) => Some(e),
            _ => None,
        }
    }
}

impl cscw_kernel::LayerError for MoccaError {
    /// Wrapped substrate errors keep the layer they came from; the
    /// environment's own failures are [`Layer::Env`](cscw_kernel::Layer).
    fn layer(&self) -> cscw_kernel::Layer {
        match self {
            MoccaError::Directory(e) => e.layer(),
            MoccaError::Messaging(e) => e.layer(),
            MoccaError::Odp(e) => e.layer(),
            MoccaError::Federation(e) => e.layer(),
            MoccaError::Query(e) => e.layer(),
            _ => cscw_kernel::Layer::Env,
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            MoccaError::UnknownOrgObject(_) => "unknown_org_object",
            MoccaError::UnknownActivity(_) => "unknown_activity",
            MoccaError::IllegalTransition { .. } => "illegal_transition",
            MoccaError::DependencyCycle(_) => "dependency_cycle",
            MoccaError::AccessDenied { .. } => "access_denied",
            MoccaError::IncompatiblePolicies(_) => "incompatible_policies",
            MoccaError::UnknownInfoObject(_) => "unknown_info_object",
            MoccaError::NoConversionPath { .. } => "no_conversion_path",
            MoccaError::UnknownApplication(_) => "unknown_application",
            MoccaError::BadNegotiationState(_) => "bad_negotiation_state",
            MoccaError::TailoringViolation(_) => "tailoring_violation",
            MoccaError::Directory(e) => e.kind(),
            MoccaError::Messaging(e) => e.kind(),
            MoccaError::Odp(e) => e.kind(),
            MoccaError::Federation(e) => e.kind(),
            MoccaError::Query(e) => e.kind(),
        }
    }

    fn class(&self) -> cscw_kernel::ErrorClass {
        match self {
            MoccaError::Directory(e) => e.class(),
            MoccaError::Messaging(e) => e.class(),
            MoccaError::Odp(e) => e.class(),
            MoccaError::Federation(e) => e.class(),
            MoccaError::Query(e) => e.class(),
            _ => cscw_kernel::ErrorClass::Permanent,
        }
    }
}

impl From<cscw_directory::DirectoryError> for MoccaError {
    fn from(e: cscw_directory::DirectoryError) -> Self {
        MoccaError::Directory(e)
    }
}

impl From<cscw_messaging::MtsError> for MoccaError {
    fn from(e: cscw_messaging::MtsError) -> Self {
        MoccaError::Messaging(e)
    }
}

impl From<odp::OdpError> for MoccaError {
    fn from(e: odp::OdpError) -> Self {
        MoccaError::Odp(e)
    }
}

impl From<cscw_federation::FederationError> for MoccaError {
    fn from(e: cscw_federation::FederationError) -> Self {
        MoccaError::Federation(e)
    }
}

impl From<cscw_query::QueryError> for MoccaError {
    fn from(e: cscw_query::QueryError) -> Self {
        MoccaError::Query(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let e = MoccaError::Directory(cscw_directory::DirectoryError::InvalidFilter("(".into()));
        assert!(e.to_string().contains("directory"));
        assert!(e.source().is_some());
        let e = MoccaError::AccessDenied {
            who: "cn=X".into(),
            action: "read".into(),
            target: "doc1".into(),
        };
        assert!(e.source().is_none());
        assert!(e.to_string().contains("may not read"));
    }

    #[test]
    fn conversions_from_substrate_errors() {
        let _: MoccaError = cscw_messaging::MtsError::HopLimitExceeded.into();
        let _: MoccaError = odp::OdpError::FederationLoop.into();
        let _: MoccaError =
            cscw_directory::DirectoryError::NoSuchEntry("c=UK".parse().unwrap()).into();
    }

    #[test]
    fn layer_classification_keeps_the_source_layer() {
        use cscw_kernel::{Layer, LayerError};

        let own = MoccaError::UnknownActivity("review".into());
        assert_eq!(own.layer(), Layer::Env);
        assert_eq!(own.kind(), "unknown_activity");

        let wrapped: MoccaError = odp::OdpError::FederationLoop.into();
        assert_eq!(wrapped.layer(), Layer::Odp);
        assert_eq!(wrapped.kind(), "federation_loop");

        let k = wrapped.to_kernel();
        assert_eq!(k.layer(), Layer::Odp);
        assert!(k.to_string().starts_with("[odp/federation_loop]"));
    }

    #[test]
    fn transience_follows_the_wrapped_error() {
        use cscw_kernel::LayerError;

        let transient: MoccaError = odp::OdpError::Unavailable("no reply".into()).into();
        assert!(transient.class().is_transient());
        let permanent: MoccaError = odp::OdpError::FederationLoop.into();
        assert!(!permanent.class().is_transient());
        assert!(!MoccaError::UnknownActivity("review".into())
            .class()
            .is_transient());
    }
}
