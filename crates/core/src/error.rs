//! MOCCA environment error type.

use std::error::Error;
use std::fmt;

/// Errors returned by the MOCCA CSCW environment.
#[derive(Debug, Clone, PartialEq)]
pub enum MoccaError {
    /// The named organisational object is unknown.
    UnknownOrgObject(String),
    /// The named activity is unknown.
    UnknownActivity(String),
    /// An activity state transition is not legal.
    IllegalTransition {
        /// The activity.
        activity: String,
        /// Current state name.
        from: &'static str,
        /// Requested state name.
        to: &'static str,
    },
    /// An inter-activity dependency would create a temporal cycle.
    DependencyCycle(String),
    /// The person lacks the right for the action.
    AccessDenied {
        /// Who was refused.
        who: String,
        /// What they tried.
        action: String,
        /// On what.
        target: String,
    },
    /// Inter-organisational policies are incompatible for this
    /// interaction (the paper's "interaction is not possible due to
    /// incompatible policies").
    IncompatiblePolicies(String),
    /// The named information object is unknown.
    UnknownInfoObject(String),
    /// No conversion path exists between two application formats.
    NoConversionPath {
        /// Producing application.
        from: String,
        /// Consuming application.
        to: String,
    },
    /// The named application is not registered with the environment.
    UnknownApplication(String),
    /// A negotiation operation is invalid in the current state.
    BadNegotiationState(String),
    /// A tailoring value violates the parameter's constraint.
    TailoringViolation(String),
    /// The underlying directory refused an operation.
    Directory(cscw_directory::DirectoryError),
    /// The underlying message transfer system refused an operation.
    Messaging(cscw_messaging::MtsError),
    /// The underlying ODP layer refused an operation.
    Odp(odp::OdpError),
}

impl fmt::Display for MoccaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MoccaError::UnknownOrgObject(s) => write!(f, "unknown organisational object: {s}"),
            MoccaError::UnknownActivity(s) => write!(f, "unknown activity: {s}"),
            MoccaError::IllegalTransition { activity, from, to } => {
                write!(f, "activity {activity}: illegal transition {from} -> {to}")
            }
            MoccaError::DependencyCycle(s) => write!(f, "dependency cycle involving {s}"),
            MoccaError::AccessDenied {
                who,
                action,
                target,
            } => {
                write!(f, "access denied: {who} may not {action} {target}")
            }
            MoccaError::IncompatiblePolicies(s) => write!(f, "incompatible policies: {s}"),
            MoccaError::UnknownInfoObject(s) => write!(f, "unknown information object: {s}"),
            MoccaError::NoConversionPath { from, to } => {
                write!(f, "no conversion path from {from} to {to}")
            }
            MoccaError::UnknownApplication(s) => write!(f, "unknown application: {s}"),
            MoccaError::BadNegotiationState(s) => write!(f, "bad negotiation state: {s}"),
            MoccaError::TailoringViolation(s) => write!(f, "tailoring violation: {s}"),
            MoccaError::Directory(e) => write!(f, "directory: {e}"),
            MoccaError::Messaging(e) => write!(f, "messaging: {e}"),
            MoccaError::Odp(e) => write!(f, "odp: {e}"),
        }
    }
}

impl Error for MoccaError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            MoccaError::Directory(e) => Some(e),
            MoccaError::Messaging(e) => Some(e),
            MoccaError::Odp(e) => Some(e),
            _ => None,
        }
    }
}

impl From<cscw_directory::DirectoryError> for MoccaError {
    fn from(e: cscw_directory::DirectoryError) -> Self {
        MoccaError::Directory(e)
    }
}

impl From<cscw_messaging::MtsError> for MoccaError {
    fn from(e: cscw_messaging::MtsError) -> Self {
        MoccaError::Messaging(e)
    }
}

impl From<odp::OdpError> for MoccaError {
    fn from(e: odp::OdpError) -> Self {
        MoccaError::Odp(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let e = MoccaError::Directory(cscw_directory::DirectoryError::InvalidFilter("(".into()));
        assert!(e.to_string().contains("directory"));
        assert!(e.source().is_some());
        let e = MoccaError::AccessDenied {
            who: "cn=X".into(),
            action: "read".into(),
            target: "doc1".into(),
        };
        assert!(e.source().is_none());
        assert!(e.to_string().contains("may not read"));
    }

    #[test]
    fn conversions_from_substrate_errors() {
        let _: MoccaError = cscw_messaging::MtsError::HopLimitExceeded.into();
        let _: MoccaError = odp::OdpError::FederationLoop.into();
        let _: MoccaError =
            cscw_directory::DirectoryError::NoSuchEntry("c=UK".parse().unwrap()).into();
    }
}
