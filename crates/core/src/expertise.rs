//! The User Expertise Model (§5).
//!
//! "This model is expressed in terms of user's responsibility, which is
//! imposed by the organisation and user's capabilities, which describes
//! the users individual skills."

use cscw_directory::Dn;
use serde::{Deserialize, Serialize};

use crate::activity::ActivityId;

/// One skill a user holds, with a proficiency level.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Capability {
    /// The skill name (`minute-taking`, `odp-modelling`, `german`…).
    pub skill: String,
    /// Proficiency 1..=5.
    pub level: u8,
}

impl Capability {
    /// Creates a capability (level clamped to 1..=5).
    pub fn new(skill: impl Into<String>, level: u8) -> Self {
        Capability {
            skill: skill.into(),
            level: level.clamp(1, 5),
        }
    }
}

/// A responsibility imposed by the organisation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Responsibility {
    /// The activity it concerns.
    pub activity: ActivityId,
    /// The duty (`chair`, `deliver-report`…).
    pub duty: String,
    /// The organisational role that imposed it.
    pub imposed_by: Dn,
}

/// One user's expertise record.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Expertise {
    /// Individual skills.
    pub capabilities: Vec<Capability>,
    /// Organisation-imposed duties.
    pub responsibilities: Vec<Responsibility>,
}

impl Expertise {
    /// The level held for a skill (0 when absent).
    pub fn level(&self, skill: &str) -> u8 {
        self.capabilities
            .iter()
            .find(|c| c.skill == skill)
            .map(|c| c.level)
            .unwrap_or(0)
    }
}

/// The environment-wide expertise model.
#[derive(Debug, Clone, Default)]
pub struct UserExpertiseModel {
    records: Vec<(Dn, Expertise)>,
}

impl UserExpertiseModel {
    /// Creates an empty model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a capability for a person (replacing a previous level
    /// for the same skill).
    pub fn declare_capability(&mut self, person: &Dn, capability: Capability) {
        let record = self.record_mut(person);
        record.capabilities.retain(|c| c.skill != capability.skill);
        record.capabilities.push(capability);
    }

    /// Imposes a responsibility on a person.
    pub fn impose(&mut self, person: &Dn, responsibility: Responsibility) {
        self.record_mut(person)
            .responsibilities
            .push(responsibility);
    }

    fn record_mut(&mut self, person: &Dn) -> &mut Expertise {
        let pos = match self.records.iter().position(|(dn, _)| dn == person) {
            Some(pos) => pos,
            None => {
                self.records.push((person.clone(), Expertise::default()));
                self.records.len() - 1
            }
        };
        &mut self.records[pos].1
    }

    /// A person's record.
    pub fn expertise(&self, person: &Dn) -> Option<&Expertise> {
        self.records
            .iter()
            .find(|(dn, _)| dn == person)
            .map(|(_, e)| e)
    }

    /// People holding `skill` at `min_level` or better, best first, ties
    /// broken by fewest responsibilities (least loaded) then by DN.
    /// This is the "find the best person for the task" query the
    /// environment offers other systems.
    pub fn find_capable(&self, skill: &str, min_level: u8) -> Vec<(&Dn, u8)> {
        let mut hits: Vec<(&Dn, u8, usize)> = self
            .records
            .iter()
            .filter_map(|(dn, e)| {
                let level = e.level(skill);
                (level >= min_level).then_some((dn, level, e.responsibilities.len()))
            })
            .collect();
        hits.sort_by(|a, b| b.1.cmp(&a.1).then(a.2.cmp(&b.2)).then(a.0.cmp(b.0)));
        hits.into_iter().map(|(dn, level, _)| (dn, level)).collect()
    }

    /// The duties a person carries for an activity.
    pub fn duties_in(&self, person: &Dn, activity: &ActivityId) -> Vec<&Responsibility> {
        self.expertise(person)
            .map(|e| {
                e.responsibilities
                    .iter()
                    .filter(|r| &r.activity == activity)
                    .collect()
            })
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dn(s: &str) -> Dn {
        s.parse().unwrap()
    }

    fn model() -> UserExpertiseModel {
        let mut m = UserExpertiseModel::new();
        m.declare_capability(&dn("cn=Tom"), Capability::new("odp-modelling", 3));
        m.declare_capability(&dn("cn=Wolfgang"), Capability::new("odp-modelling", 5));
        m.declare_capability(&dn("cn=Leandro"), Capability::new("odp-modelling", 5));
        m.declare_capability(&dn("cn=Leandro"), Capability::new("catalan", 5));
        m.impose(
            &dn("cn=Leandro"),
            Responsibility {
                activity: "workshop".into(),
                duty: "organise".into(),
                imposed_by: dn("cn=chair"),
            },
        );
        m
    }

    #[test]
    fn levels_clamp_and_default_to_zero() {
        assert_eq!(Capability::new("x", 9).level, 5);
        assert_eq!(Capability::new("x", 0).level, 1);
        let m = model();
        assert_eq!(m.expertise(&dn("cn=Tom")).unwrap().level("catalan"), 0);
        assert!(m.expertise(&dn("cn=Nobody")).is_none());
    }

    #[test]
    fn redeclaring_replaces_level() {
        let mut m = model();
        m.declare_capability(&dn("cn=Tom"), Capability::new("odp-modelling", 4));
        assert_eq!(
            m.expertise(&dn("cn=Tom")).unwrap().level("odp-modelling"),
            4
        );
        assert_eq!(m.expertise(&dn("cn=Tom")).unwrap().capabilities.len(), 1);
    }

    #[test]
    fn find_capable_ranks_by_level_then_load() {
        let m = model();
        let hits = m.find_capable("odp-modelling", 3);
        assert_eq!(hits.len(), 3);
        // Wolfgang and Leandro are both level 5, but Leandro carries a
        // responsibility, so Wolfgang ranks first.
        assert_eq!(hits[0].0, &dn("cn=Wolfgang"));
        assert_eq!(hits[1].0, &dn("cn=Leandro"));
        assert_eq!(hits[2].0, &dn("cn=Tom"));
        assert!(m.find_capable("odp-modelling", 4).len() == 2);
        assert!(m.find_capable("cooking", 1).is_empty());
    }

    #[test]
    fn duties_are_scoped_by_activity() {
        let m = model();
        assert_eq!(m.duties_in(&dn("cn=Leandro"), &"workshop".into()).len(), 1);
        assert!(m.duties_in(&dn("cn=Leandro"), &"other".into()).is_empty());
        assert!(m.duties_in(&dn("cn=Tom"), &"workshop".into()).is_empty());
    }
}
