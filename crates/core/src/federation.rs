//! Federating N environments — the event-driven driver.
//!
//! `cscw-federation` provides the mechanisms (trader interworking,
//! anti-entropy replication, remote routing) and the scheduler that
//! paces them ([`FederationRuntime`]); this module provides the
//! *assembly*: [`FederatedEnvironments`] owns a set of
//! [`CscwEnvironment`]s and one [`FederationFabric`], wires each
//! environment to the fabric through its [`FederationPort`], and
//! drives the whole federation from scheduled events —
//! [`run_for`](FederatedEnvironments::run_for) /
//! [`run_until_converged`](FederatedEnvironments::run_until_converged)
//! poll the runtime and act on each [`Pulse`]: a gossip pulse pushes
//! one site's anti-entropy exchange over its up out-links, a pump
//! pulse drains that site's queued remote deliveries. Offer-TTL expiry
//! and scheduled partitions/heals execute inside the runtime itself.
//! No caller hand-cranks rounds; the earlier
//! [`pump`](FederatedEnvironments::pump) /
//! [`gossip_round`](FederatedEnvironments::gossip_round) /
//! [`gossip_until_quiet`](FederatedEnvironments::gossip_until_quiet)
//! coordinator surface survives as thin compatibility shims over the
//! same per-link / per-domain internals.
//!
//! Gossip frames ride the *messaging layer*: each exchange ships the
//! digest and delta as [`cscw_messaging::gossip::GossipFrame`]
//! notifications through the receiving environment's transport port,
//! so a platform fault (e.g. under a flaky [`ResilientPlatform`]
//! substrate) degrades gossip for that pulse instead of silently
//! bypassing the stack — anti-entropy catches up on the next pulse.
//!
//! [`ResilientPlatform`]: crate::platform::ResilientPlatform
//!
//! conform: allow-file(R4) — this module IS the federation driver: it
//! narrates gossip/pump pulses onto the fabric's Federation-layer
//! stream even though the assembly lives in the environment crate.

use std::collections::BTreeMap;

use cscw_federation::{FederatedTrader, FederationFabric, FederationRuntime, Pulse, RuntimeConfig};
use cscw_kernel::{Layer, Timestamp};
use cscw_messaging::gossip::GossipFrame;
use cscw_messaging::OrAddress;
use odp::LinkState;

use crate::env::CscwEnvironment;
use crate::error::MoccaError;

/// O/R address of a federation domain's gossip mailbox.
fn domain_address(domain: &str) -> Option<OrAddress> {
    OrAddress::new("ZZ", "mocca", ["federation"], domain).ok()
}

/// Delta-frame budget for a healthy link, in replica updates.
/// Consecutive transport refusals halve it (floor 1) until the link
/// recovers, so a congested receiver gets smaller catch-up frames.
const DELTA_CAP_BASE: usize = 64;

/// What one [`gossip_round`](FederatedEnvironments::gossip_round) did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GossipRound {
    /// Links walked (up links only).
    pub links_walked: usize,
    /// Links skipped because the receiving environment's transport
    /// refused the frames (platform fault); retried next round.
    pub links_degraded: usize,
    /// Replica updates applied across all receivers.
    pub updates_applied: usize,
    /// Encoded gossip-frame bytes shipped over transports.
    pub bytes_on_wire: u64,
}

/// What an event-driven run ([`FederatedEnvironments::run_for`]) did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunReport {
    /// Simulated microseconds the run advanced.
    pub micros: u64,
    /// Gossip pulses handled (one per site timer firing).
    pub gossip_pulses: usize,
    /// Pump pulses handled.
    pub pump_pulses: usize,
    /// Up links walked across all gossip pulses.
    pub links_walked: usize,
    /// Links whose frames a transport refused (retried next pulse).
    pub links_degraded: usize,
    /// Replica updates applied across all receivers.
    pub updates_applied: usize,
    /// Remote artifacts delivered into destination environments.
    pub deliveries: usize,
    /// Encoded gossip-frame bytes shipped over transports.
    pub bytes_on_wire: u64,
}

impl RunReport {
    /// Field-wise accumulation of a later slice into this report.
    pub fn absorb(&mut self, other: &RunReport) {
        self.micros += other.micros;
        self.gossip_pulses += other.gossip_pulses;
        self.pump_pulses += other.pump_pulses;
        self.links_walked += other.links_walked;
        self.links_degraded += other.links_degraded;
        self.updates_applied += other.updates_applied;
        self.deliveries += other.deliveries;
        self.bytes_on_wire += other.bytes_on_wire;
    }
}

/// Outcome of [`FederatedEnvironments::run_until_converged`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ConvergenceReport {
    /// Did every replica reach the same fingerprint (with no pending
    /// deliveries) within the budget?
    pub converged: bool,
    /// Simulated microseconds consumed.
    pub sim_micros: u64,
    /// Accumulated activity over the whole run.
    pub activity: RunReport,
}

/// Outcome of shipping one link's digest + delta pair.
enum LinkShip {
    /// The receiving transport refused the frames; nothing applied.
    Degraded,
    /// Frames shipped and the delta applied.
    Applied {
        /// Replica updates the receiver applied.
        updates: usize,
        /// Encoded bytes of both frames.
        bytes: u64,
        /// Simulated time the receiving platform spent on the frames.
        micros: u64,
    },
}

/// N federated environments and the fabric that joins them.
#[derive(Debug, Default)]
pub struct FederatedEnvironments {
    fabric: FederationFabric,
    envs: BTreeMap<String, CscwEnvironment>,
    runtime: Option<FederationRuntime>,
    /// Consecutive transport refusals per directed link — the
    /// congestion-pressure signal that shrinks delta frames and defers
    /// gossip pulses. Cleared the moment a link ships successfully.
    pressure: BTreeMap<(String, String), u32>,
}

impl FederatedEnvironments {
    /// An empty federation with a default fabric.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty federation with a configured trader (hop budget, TTL).
    pub fn with_trader(trader: FederatedTrader) -> Self {
        Self::with_fabric(FederationFabric::with_trader(trader))
    }

    /// An empty federation over a pre-built fabric. This is how a
    /// harness routes federation telemetry onto a shared stream
    /// ([`FederationFabric::with_telemetry`]) so one exchange's trace
    /// covers the environment and federation layers together.
    pub fn with_fabric(fabric: FederationFabric) -> Self {
        FederatedEnvironments {
            fabric,
            envs: BTreeMap::new(),
            runtime: None,
            pressure: BTreeMap::new(),
        }
    }

    /// The shared fabric (for inspection: telemetry, fingerprints).
    pub fn fabric(&self) -> &FederationFabric {
        &self.fabric
    }

    /// Joins `env` to the federation as `domain`: the environment gets
    /// a port onto the fabric and its already-registered applications
    /// are advertised. Federating the same domain twice replaces the
    /// previous environment.
    pub fn federate(&mut self, domain: impl Into<String>, mut env: CscwEnvironment) {
        let domain = domain.into();
        let port = self.fabric.join(&domain);
        env.install_federation(Box::new(port));
        if let Some(rt) = self.runtime.as_mut() {
            rt.install_site(&domain);
        }
        self.envs.insert(domain, env);
    }

    /// The federated domains, in name order.
    pub fn domains(&self) -> Vec<String> {
        self.envs.keys().cloned().collect()
    }

    /// A federated environment by domain.
    pub fn env(&self, domain: &str) -> Option<&CscwEnvironment> {
        self.envs.get(domain)
    }

    /// Mutable access to a federated environment.
    pub fn env_mut(&mut self, domain: &str) -> Option<&mut CscwEnvironment> {
        self.envs.get_mut(domain)
    }

    /// Adds a directed trader link between domains.
    pub fn link(&self, from: &str, to: &str) {
        self.fabric.link(from, to);
    }

    /// Links two domains both ways.
    pub fn link_bidi(&self, a: &str, b: &str) {
        self.fabric.link_bidi(a, b);
    }

    /// Sets one directed link's health; `false` when no such link.
    pub fn set_link_state(&self, from: &str, to: &str, state: LinkState) -> bool {
        self.fabric.set_link_state(from, to, state)
    }

    /// Drains the deliveries queued into one domain's environment.
    fn pump_domain(&mut self, domain: &str) -> Result<usize, MoccaError> {
        let deliveries = self.fabric.take_inbound(domain);
        let Some(env) = self.envs.get_mut(domain) else {
            return Ok(0);
        };
        let mut delivered = 0;
        let before = env.platform_mut().clock().now_micros();
        for delivery in deliveries {
            env.deliver_remote_artifact(&delivery)?;
            delivered += 1;
        }
        if delivered > 0 {
            let after = env.platform_mut().clock().now_micros();
            self.fabric.telemetry().record_micros(
                Layer::Federation,
                "federation.pump.pulse.micros",
                after.saturating_sub(before),
            );
        }
        Ok(delivered)
    }

    /// One link's anti-entropy exchange: builds `dst`'s digest, answers
    /// it with `src`'s delta, ships both frames through `dst`'s
    /// transport as gossip notifications, and applies the delta.
    fn gossip_link(&mut self, src: &str, dst: &str) -> Result<LinkShip, MoccaError> {
        let t = self.fabric.telemetry();
        let key = (src.to_owned(), dst.to_owned());
        let failures = self.pressure.get(&key).copied().unwrap_or(0);
        let cap = (failures > 0).then(|| (DELTA_CAP_BASE >> failures.min(6)).max(1));
        let digest = self.fabric.digest_frame(dst)?;
        let delta = self.fabric.delta_frame_capped(src, &digest, cap)?;
        let digest_wire = digest.encode();
        let delta_wire = delta.encode();
        let started = self
            .envs
            .get_mut(dst)
            .map(|env| env.platform_mut().clock().now_micros());
        // Lower both frames through the receiving environment's
        // messaging port; a refusal means this link gossips on the
        // next pulse instead.
        let shipped = (|| {
            let (from, to) = (domain_address(src)?, domain_address(dst)?);
            let env = self.envs.get_mut(dst)?;
            let transport = env.platform_mut().transport();
            transport
                .notify(&from, &to, "federation-gossip", &digest_wire)
                .ok()?;
            transport
                .notify(&from, &to, "federation-gossip", &delta_wire)
                .ok()
        })();
        if shipped.is_none() {
            *self.pressure.entry(key).or_insert(0) += 1;
            t.incr(Layer::Federation, "federation.gossip.pressure");
            return Ok(LinkShip::Degraded);
        }
        self.pressure.remove(&key);
        let finished = self
            .envs
            .get_mut(dst)
            .map(|env| env.platform_mut().clock().now_micros());
        let micros = match (started, finished) {
            (Some(before), Some(after)) => after.saturating_sub(before),
            _ => 0,
        };
        t.record_micros(Layer::Federation, "federation.gossip.link.micros", micros);
        // The apply span parents on the context the *wire* frame
        // carried — the receiver only ever saw the encoded bytes.
        let at = finished.unwrap_or_default();
        let carried = GossipFrame::decode(&delta_wire).ok().and_then(|f| f.ctx);
        let span = match carried {
            Some(parent) => {
                t.span_begin_with_parent(parent, Layer::Federation, "federation.gossip.apply", at)
            }
            None => t.span_begin(Layer::Federation, "federation.gossip.apply", at),
        };
        let report = self.fabric.ingest_delta(dst, &delta);
        t.span_end(span, at);
        let report = report?;
        // Surface what the ingest applied to the receiving
        // environment's standing queries, as resolved key/value pairs
        // — awareness deltas flow from the change stream, not from
        // re-scanning the replica.
        if !report.applied.is_empty() {
            let keys: std::collections::BTreeSet<String> =
                report.applied.iter().map(|e| e.key.clone()).collect();
            let pairs: Vec<(String, String)> = keys
                .into_iter()
                .filter_map(|k| self.fabric.replica_get(dst, &k).map(|v| (k, v)))
                .collect();
            if let Some(env) = self.envs.get_mut(dst) {
                env.ingest_replicated(&pairs)?;
            }
        }
        Ok(LinkShip::Applied {
            updates: report.applied_count(),
            bytes: (digest_wire.len() + delta_wire.len()) as u64,
            micros,
        })
    }

    /// One site's gossip pulse: anti-entropy over every up out-link,
    /// traced as one `federation.gossip.pulse` root span whose context
    /// rides every frame the pulse ships.
    fn gossip_from(&mut self, site: &str, report: &mut RunReport) -> Result<(), MoccaError> {
        let t = self.fabric.telemetry();
        let now = self
            .runtime
            .as_ref()
            .map(|rt| rt.now().as_micros())
            .unwrap_or_default();
        let span = t.span_begin(Layer::Federation, "federation.gossip.pulse", now);
        let mut pulse_micros = 0u64;
        let result = (|| {
            let mut degraded_here = false;
            for (src, dst, state) in self.fabric.links() {
                if src != site || state != LinkState::Up {
                    continue;
                }
                if !self.envs.contains_key(&src) || !self.envs.contains_key(&dst) {
                    continue;
                }
                report.links_walked += 1;
                match self.gossip_link(&src, &dst)? {
                    LinkShip::Degraded => {
                        report.links_degraded += 1;
                        degraded_here = true;
                    }
                    LinkShip::Applied {
                        updates,
                        bytes,
                        micros,
                    } => {
                        report.updates_applied += updates;
                        report.bytes_on_wire += bytes;
                        pulse_micros += micros;
                    }
                }
            }
            // Backpressure upward: a pulse that hit a refusing
            // transport earns the site one gossip period of quiet
            // before its next exchange (the frames it ships then are
            // already shrunk by the per-link pressure cap).
            if degraded_here {
                if let Some(rt) = self.runtime.as_mut() {
                    rt.defer_gossip(site, 1);
                }
            }
            Ok(())
        })();
        t.record_micros(
            Layer::Federation,
            "federation.gossip.pulse.micros",
            pulse_micros,
        );
        t.span_end(span, now.saturating_add(pulse_micros));
        result
    }

    /// Starts the event-driven runtime over the current fabric (no-op
    /// when one is already running — the existing runtime and its
    /// clock are kept). [`run_for`](Self::run_for) and
    /// [`run_until_converged`](Self::run_until_converged) call this
    /// implicitly; call it yourself first when you need to
    /// [`schedule_link_change`](Self::schedule_link_change) before
    /// running.
    pub fn start_runtime(&mut self, config: RuntimeConfig) -> &mut FederationRuntime {
        let fabric = self.fabric.clone();
        self.runtime
            .get_or_insert_with(|| FederationRuntime::new(fabric, config))
    }

    /// The event-driven runtime, once started.
    pub fn runtime(&self) -> Option<&FederationRuntime> {
        self.runtime.as_ref()
    }

    /// Schedules a link partition/heal as a first-class runtime event.
    /// Returns `false` when the runtime has not been started.
    pub fn schedule_link_change(
        &mut self,
        at: Timestamp,
        from: &str,
        to: &str,
        state: LinkState,
    ) -> bool {
        match self.runtime.as_mut() {
            Some(rt) => {
                rt.schedule_link_change(at, from, to, state);
                true
            }
            None => false,
        }
    }

    /// Advances the federation `duration_micros` of simulated time,
    /// acting on every scheduled event in the window: gossip pulses
    /// push one site's exchanges, pump pulses drain one site's
    /// deliveries, TTL sweeps and scheduled link changes execute inside
    /// the runtime. Starts the runtime under `seed` if not yet running
    /// (a later call's `seed` is ignored — the running schedule wins).
    ///
    /// # Errors
    ///
    /// [`MoccaError::Federation`] on fabric-level failures; delivery
    /// errors as in [`pump`](Self::pump). Transport refusals degrade
    /// the link for that pulse instead of erroring.
    pub fn run_for(&mut self, duration_micros: u64, seed: u64) -> Result<RunReport, MoccaError> {
        self.start_runtime(RuntimeConfig::seeded(seed));
        let mut report = RunReport {
            micros: duration_micros,
            ..RunReport::default()
        };
        let Some(deadline) = self.runtime.as_ref().map(|rt| rt.now() + duration_micros) else {
            return Ok(report);
        };
        loop {
            let pulse = match self.runtime.as_mut() {
                Some(rt) => rt.poll(deadline),
                None => None,
            };
            let Some((_, pulse)) = pulse else {
                break;
            };
            match pulse {
                Pulse::Gossip { site } => {
                    report.gossip_pulses += 1;
                    self.gossip_from(&site, &mut report)?;
                }
                Pulse::Pump { site } => {
                    report.pump_pulses += 1;
                    report.deliveries += self.pump_domain(&site)?;
                }
            }
        }
        Ok(report)
    }

    /// Runs the event-driven federation until every replica holds the
    /// same fingerprint and no remote delivery is pending, or
    /// `max_micros` of simulated time is exhausted. Time advances in
    /// whole gossip periods, so the convergence instant is
    /// deterministic per seed.
    ///
    /// # Errors
    ///
    /// As [`run_for`](Self::run_for).
    pub fn run_until_converged(
        &mut self,
        seed: u64,
        max_micros: u64,
    ) -> Result<ConvergenceReport, MoccaError> {
        let config = self.start_runtime(RuntimeConfig::seeded(seed)).config();
        let slice = config.gossip_period_micros.max(1);
        let mut report = ConvergenceReport::default();
        loop {
            if self.converged() && self.fabric.pending_inbound() == 0 {
                report.converged = true;
                return Ok(report);
            }
            if report.sim_micros >= max_micros {
                return Ok(report);
            }
            let step = slice.min(max_micros - report.sim_micros);
            let activity = self.run_for(step, seed)?;
            report.sim_micros += step;
            report.activity.absorb(&activity);
        }
    }

    /// Delivers every queued remote exchange into its destination
    /// environment. Returns how many artifacts were delivered.
    ///
    /// Compatibility shim over the event-driven runtime's pump path:
    /// [`run_for`](Self::run_for) does this per-site on scheduled pump
    /// pulses.
    ///
    /// # Errors
    ///
    /// The first delivery error ([`MoccaError::UnknownApplication`]
    /// for stale advertisements, repository/transport errors);
    /// deliveries queued after the failing one remain undelivered.
    pub fn pump(&mut self) -> Result<usize, MoccaError> {
        let mut delivered = 0;
        for domain in self.domains() {
            delivered += self.pump_domain(&domain)?;
        }
        Ok(delivered)
    }

    /// One anti-entropy round over every *up* link `src → dst`.
    ///
    /// Compatibility shim over the event-driven runtime's gossip path:
    /// [`run_for`](Self::run_for) does this per-site on scheduled
    /// gossip pulses. A transport refusal (platform fault on the
    /// receiving side) degrades that link for this round — the frames
    /// are not applied, and the next round retries from unchanged
    /// watermarks. Down links are skipped entirely.
    ///
    /// # Errors
    ///
    /// [`MoccaError::Federation`] on fabric-level failures (unknown
    /// domain, undecodable frames) — not on transport refusals.
    pub fn gossip_round(&mut self) -> Result<GossipRound, MoccaError> {
        let mut round = GossipRound::default();
        for (src, dst, state) in self.fabric.links() {
            if state != LinkState::Up {
                continue;
            }
            if !self.envs.contains_key(&src) || !self.envs.contains_key(&dst) {
                continue;
            }
            round.links_walked += 1;
            match self.gossip_link(&src, &dst)? {
                LinkShip::Degraded => round.links_degraded += 1,
                LinkShip::Applied {
                    updates,
                    bytes,
                    micros: _,
                } => {
                    round.updates_applied += updates;
                    round.bytes_on_wire += bytes;
                }
            }
        }
        Ok(round)
    }

    /// Runs gossip rounds until no round applies an update (converged)
    /// or `max_rounds` is exhausted. Returns the number of rounds run.
    ///
    /// Compatibility shim; prefer
    /// [`run_until_converged`](Self::run_until_converged).
    ///
    /// # Errors
    ///
    /// As [`gossip_round`](Self::gossip_round).
    pub fn gossip_until_quiet(&mut self, max_rounds: usize) -> Result<usize, MoccaError> {
        for n in 1..=max_rounds {
            if self.gossip_round()?.updates_applied == 0 {
                return Ok(n);
            }
        }
        Ok(max_rounds)
    }

    /// Current congestion pressure on a directed link: consecutive
    /// transport refusals since the last successful ship (0 for a
    /// healthy or unknown link).
    pub fn link_pressure(&self, from: &str, to: &str) -> u32 {
        self.pressure
            .get(&(from.to_owned(), to.to_owned()))
            .copied()
            .unwrap_or(0)
    }

    /// Every domain's replica fingerprint, in domain order.
    pub fn fingerprints(&self) -> BTreeMap<String, String> {
        self.envs
            .keys()
            .map(|d| (d.clone(), self.fabric.replica_fingerprint(d)))
            .collect()
    }

    /// Have all replicas converged to the same state?
    pub fn converged(&self) -> bool {
        let mut prints = self.fingerprints().into_values();
        match prints.next() {
            None => true,
            Some(first) => prints.all(|p| p == first),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::{AppDescriptor, AppId, FormatMapping, NativeArtifact, Quadrant};
    use crate::platform::Platform;
    use cscw_directory::Dn;
    use cscw_kernel::Timestamp;

    fn env_with_app(app: &str, field: &str) -> CscwEnvironment {
        let mut env = CscwEnvironment::new();
        env.register_app(
            AppDescriptor {
                id: app.into(),
                name: app.to_owned(),
                quadrant: Quadrant::CORRESPONDENCE,
                native_format: format!("{app}-native"),
                kinds: vec!["document".into()],
            },
            FormatMapping::new([(field, "title")]),
        );
        env
    }

    #[test]
    fn federated_exchange_crosses_environments() {
        let mut fed = FederatedEnvironments::new();
        fed.federate("env-a", env_with_app("sharedx", "subject"));
        fed.federate("env-b", env_with_app("com", "betreff"));
        fed.link_bidi("env-a", "env-b");

        let sharer: Dn = "cn=Tom".parse().unwrap();
        let artifact = NativeArtifact {
            app: AppId::new("sharedx"),
            format: "sharedx-native".into(),
            fields: BTreeMap::from([("subject".to_owned(), "Minutes".to_owned())]),
        };
        let out = fed
            .env_mut("env-a")
            .unwrap()
            .exchange(&sharer, &artifact, &AppId::new("com"), Timestamp::ZERO)
            .expect("federated exchange");
        assert_eq!(out.format, "common");
        assert_eq!(fed.pump().unwrap(), 1);
        // The destination environment raised and recorded the artifact.
        let env_b = fed.env("env-b").unwrap();
        assert_eq!(env_b.repository().len(), 1);
    }

    #[test]
    fn gossip_converges_and_quiesces() {
        let mut fed = FederatedEnvironments::new();
        fed.federate("env-a", env_with_app("a1", "f"));
        fed.federate("env-b", env_with_app("b1", "f"));
        fed.federate("env-c", env_with_app("c1", "f"));
        fed.link_bidi("env-a", "env-b");
        fed.link_bidi("env-b", "env-c");
        for (domain, note) in [("env-a", "alpha"), ("env-c", "gamma")] {
            fed.env_mut(domain)
                .unwrap()
                .store_object(
                    crate::info::InfoObject::new(
                        crate::info::InfoObjectId::new(format!("doc-{note}")),
                        "note",
                        "cn=Tom".parse().unwrap(),
                        crate::info::InfoContent::Text(note.into()),
                    ),
                    None,
                    Timestamp::ZERO,
                )
                .unwrap();
        }
        assert!(!fed.converged());
        let rounds = fed.gossip_until_quiet(8).unwrap();
        assert!(rounds <= 8);
        assert!(fed.converged(), "fingerprints: {:?}", fed.fingerprints());
    }

    fn three_site_fed() -> FederatedEnvironments {
        let mut fed = FederatedEnvironments::new();
        fed.federate("env-a", env_with_app("a1", "f"));
        fed.federate("env-b", env_with_app("b1", "f"));
        fed.federate("env-c", env_with_app("c1", "f"));
        fed.link_bidi("env-a", "env-b");
        fed.link_bidi("env-b", "env-c");
        for (domain, note) in [("env-a", "alpha"), ("env-c", "gamma")] {
            fed.env_mut(domain)
                .unwrap()
                .store_object(
                    crate::info::InfoObject::new(
                        crate::info::InfoObjectId::new(format!("doc-{note}")),
                        "note",
                        "cn=Tom".parse().unwrap(),
                        crate::info::InfoContent::Text(note.into()),
                    ),
                    None,
                    Timestamp::ZERO,
                )
                .unwrap();
        }
        fed
    }

    #[test]
    fn run_until_converged_needs_no_hand_cranked_rounds() {
        let mut fed = three_site_fed();
        assert!(!fed.converged());
        let report = fed.run_until_converged(1, 60_000_000).unwrap();
        assert!(report.converged, "fingerprints: {:?}", fed.fingerprints());
        assert!(fed.converged());
        assert!(report.activity.gossip_pulses > 0);
        assert!(report.activity.bytes_on_wire > 0, "frames must ship");
        assert!(report.sim_micros > 0 && report.sim_micros <= 60_000_000);
    }

    #[test]
    fn event_driven_runs_are_seed_deterministic() {
        let run = |seed: u64| {
            let mut fed = three_site_fed();
            let report = fed.run_until_converged(seed, 60_000_000).unwrap();
            (report, fed.fingerprints())
        };
        let (r1a, f1a) = run(1);
        let (r1b, f1b) = run(1);
        assert_eq!(r1a, r1b, "same seed must replay the same run");
        assert_eq!(f1a, f1b);
        let (r2, f2) = run(2);
        assert_eq!(f1a, f2, "converged state is seed-independent");
        assert_ne!(
            r1a.activity.gossip_pulses, 0,
            "sanity: seed 2 run did work too: {r2:?}"
        );
    }

    #[test]
    fn run_for_pumps_remote_deliveries_on_schedule() {
        let mut fed = FederatedEnvironments::new();
        fed.federate("env-a", env_with_app("sharedx", "subject"));
        fed.federate("env-b", env_with_app("com", "betreff"));
        fed.link_bidi("env-a", "env-b");
        let sharer: Dn = "cn=Tom".parse().unwrap();
        let artifact = NativeArtifact {
            app: AppId::new("sharedx"),
            format: "sharedx-native".into(),
            fields: BTreeMap::from([("subject".to_owned(), "Minutes".to_owned())]),
        };
        fed.env_mut("env-a")
            .unwrap()
            .exchange(&sharer, &artifact, &AppId::new("com"), Timestamp::ZERO)
            .expect("federated exchange");
        assert_eq!(fed.fabric().pending_inbound(), 1);
        // One simulated second of event-driven time delivers it —
        // no explicit pump() call.
        let report = fed.run_for(1_000_000, 1).unwrap();
        assert_eq!(report.deliveries, 1);
        assert_eq!(fed.fabric().pending_inbound(), 0);
        assert_eq!(fed.env("env-b").unwrap().repository().len(), 1);
    }

    /// A platform whose transport refuses its first `refusals` notify
    /// calls, then behaves — a stand-in for a congested receiver.
    struct CongestedPlatform {
        inner: crate::platform::LocalPlatform,
        refusals_left: u32,
    }

    impl crate::platform::Platform for CongestedPlatform {
        fn name(&self) -> &'static str {
            "congested"
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
        fn clock(&self) -> &dyn cscw_kernel::Clock {
            self.inner.clock()
        }
        fn telemetry(&self) -> &cscw_kernel::Telemetry {
            self.inner.telemetry()
        }
        fn trader(&mut self) -> &mut dyn crate::platform::TraderPort {
            self.inner.trader()
        }
        fn directory(&mut self) -> &mut dyn crate::platform::DirectoryPort {
            self.inner.directory()
        }
        fn transport(&mut self) -> &mut dyn crate::platform::TransportPort {
            self
        }
    }

    impl crate::platform::TransportPort for CongestedPlatform {
        fn notify(
            &mut self,
            from: &OrAddress,
            to: &OrAddress,
            subject: &str,
            body: &str,
        ) -> Result<u64, cscw_messaging::MtsError> {
            if self.refusals_left > 0 {
                self.refusals_left -= 1;
                return Err(cscw_messaging::MtsError::Unavailable("congested".into()));
            }
            self.inner.transport().notify(from, to, subject, body)
        }
        fn delivered(&mut self, to: &OrAddress) -> Vec<String> {
            self.inner.transport().delivered(to)
        }
    }

    #[test]
    fn transport_refusals_build_pressure_defer_gossip_and_recover() {
        let mut fed = FederatedEnvironments::new();
        fed.federate("env-a", env_with_app("a1", "f"));
        // env-b's transport refuses the first two gossip frames.
        let mut env_b = CscwEnvironment::with_platform(Box::new(CongestedPlatform {
            inner: crate::platform::LocalPlatform::new(),
            refusals_left: 2,
        }));
        env_b.register_app(
            AppDescriptor {
                id: "b1".into(),
                name: "b1".to_owned(),
                quadrant: Quadrant::CORRESPONDENCE,
                native_format: "b1-native".into(),
                kinds: vec!["document".into()],
            },
            FormatMapping::new([("f", "title")]),
        );
        fed.federate("env-b", env_b);
        fed.link_bidi("env-a", "env-b");
        fed.env_mut("env-a")
            .unwrap()
            .store_object(
                crate::info::InfoObject::new(
                    crate::info::InfoObjectId::new("doc-alpha"),
                    "note",
                    "cn=Tom".parse().unwrap(),
                    crate::info::InfoContent::Text("alpha".into()),
                ),
                None,
                Timestamp::ZERO,
            )
            .unwrap();

        let report = fed.run_until_converged(1, 60_000_000).unwrap();
        assert!(report.converged, "fingerprints: {:?}", fed.fingerprints());
        assert!(
            report.activity.links_degraded >= 2,
            "both refusals must degrade a→b pulses: {report:?}"
        );
        // Pressure built during congestion must clear on recovery.
        assert_eq!(fed.link_pressure("env-a", "env-b"), 0);
        let t = fed.fabric().telemetry();
        assert_eq!(
            t.counter(Layer::Federation, "federation.gossip.pressure"),
            2
        );
        assert!(
            t.counter(Layer::Federation, "federation.runtime.gossip.deferred") >= 2,
            "each degraded pulse must earn a quiet period"
        );
    }

    #[test]
    fn scheduled_heal_lets_a_partitioned_federation_converge() {
        let mut fed = three_site_fed();
        fed.start_runtime(cscw_federation::RuntimeConfig::seeded(1));
        // Partition env-b <-> env-c immediately; heal at t = 2s.
        fed.set_link_state("env-b", "env-c", LinkState::Down);
        fed.set_link_state("env-c", "env-b", LinkState::Down);
        for (from, to) in [("env-b", "env-c"), ("env-c", "env-b")] {
            assert!(fed.schedule_link_change(
                Timestamp::from_micros(2_000_000),
                from,
                to,
                LinkState::Up,
            ));
        }
        // Before the heal: a and b agree, c is isolated.
        let report = fed.run_for(1_500_000, 1).unwrap();
        assert!(report.gossip_pulses > 0);
        assert!(!fed.converged(), "partition must hold back env-c");
        // After the heal fires, convergence completes.
        let report = fed.run_until_converged(1, 60_000_000).unwrap();
        assert!(report.converged, "fingerprints: {:?}", fed.fingerprints());
    }
}
