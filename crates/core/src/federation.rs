//! Federating N environments — the coordinator.
//!
//! `cscw-federation` provides the mechanisms (trader interworking,
//! anti-entropy replication, remote routing); this module provides the
//! *assembly*: [`FederatedEnvironments`] owns a set of
//! [`CscwEnvironment`]s and one [`FederationFabric`], wires each
//! environment to the fabric through its [`FederationPort`], pumps
//! queued remote deliveries into their destination environments, and
//! drives anti-entropy gossip rounds over the trader link graph.
//!
//! Gossip frames ride the *messaging layer*: each round ships the
//! digest and delta as [`cscw_messaging::gossip::GossipFrame`]
//! notifications through the receiving environment's transport port,
//! so a platform fault (e.g. under a flaky [`ResilientPlatform`]
//! substrate) degrades gossip for that round instead of silently
//! bypassing the stack — anti-entropy catches up on the next round.
//!
//! [`ResilientPlatform`]: crate::platform::ResilientPlatform

use std::collections::BTreeMap;

use cscw_federation::{FederatedTrader, FederationFabric};
use cscw_messaging::OrAddress;
use odp::LinkState;

use crate::env::CscwEnvironment;
use crate::error::MoccaError;

/// O/R address of a federation domain's gossip mailbox.
fn domain_address(domain: &str) -> Option<OrAddress> {
    OrAddress::new("ZZ", "mocca", ["federation"], domain).ok()
}

/// What one [`gossip_round`](FederatedEnvironments::gossip_round) did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GossipRound {
    /// Links walked (up links only).
    pub links_walked: usize,
    /// Links skipped because the receiving environment's transport
    /// refused the frames (platform fault); retried next round.
    pub links_degraded: usize,
    /// Replica updates applied across all receivers.
    pub updates_applied: usize,
}

/// N federated environments and the fabric that joins them.
#[derive(Debug, Default)]
pub struct FederatedEnvironments {
    fabric: FederationFabric,
    envs: BTreeMap<String, CscwEnvironment>,
}

impl FederatedEnvironments {
    /// An empty federation with a default fabric.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty federation with a configured trader (hop budget, TTL).
    pub fn with_trader(trader: FederatedTrader) -> Self {
        FederatedEnvironments {
            fabric: FederationFabric::with_trader(trader),
            envs: BTreeMap::new(),
        }
    }

    /// The shared fabric (for inspection: telemetry, fingerprints).
    pub fn fabric(&self) -> &FederationFabric {
        &self.fabric
    }

    /// Joins `env` to the federation as `domain`: the environment gets
    /// a port onto the fabric and its already-registered applications
    /// are advertised. Federating the same domain twice replaces the
    /// previous environment.
    pub fn federate(&mut self, domain: impl Into<String>, mut env: CscwEnvironment) {
        let domain = domain.into();
        let port = self.fabric.join(&domain);
        env.install_federation(Box::new(port));
        self.envs.insert(domain, env);
    }

    /// The federated domains, in name order.
    pub fn domains(&self) -> Vec<String> {
        self.envs.keys().cloned().collect()
    }

    /// A federated environment by domain.
    pub fn env(&self, domain: &str) -> Option<&CscwEnvironment> {
        self.envs.get(domain)
    }

    /// Mutable access to a federated environment.
    pub fn env_mut(&mut self, domain: &str) -> Option<&mut CscwEnvironment> {
        self.envs.get_mut(domain)
    }

    /// Adds a directed trader link between domains.
    pub fn link(&self, from: &str, to: &str) {
        self.fabric.link(from, to);
    }

    /// Links two domains both ways.
    pub fn link_bidi(&self, a: &str, b: &str) {
        self.fabric.link_bidi(a, b);
    }

    /// Sets one directed link's health; `false` when no such link.
    pub fn set_link_state(&self, from: &str, to: &str, state: LinkState) -> bool {
        self.fabric.set_link_state(from, to, state)
    }

    /// Delivers every queued remote exchange into its destination
    /// environment. Returns how many artifacts were delivered.
    ///
    /// # Errors
    ///
    /// The first delivery error ([`MoccaError::UnknownApplication`]
    /// for stale advertisements, repository/transport errors);
    /// deliveries queued after the failing one remain undelivered.
    pub fn pump(&mut self) -> Result<usize, MoccaError> {
        let mut delivered = 0;
        let domains = self.domains();
        for domain in domains {
            let deliveries = self.fabric.take_inbound(&domain);
            let Some(env) = self.envs.get_mut(&domain) else {
                continue;
            };
            for delivery in deliveries {
                env.deliver_remote_artifact(&delivery)?;
                delivered += 1;
            }
        }
        Ok(delivered)
    }

    /// One anti-entropy round: for every *up* link `src → dst`, builds
    /// `dst`'s digest, answers it with `src`'s delta, ships both frames
    /// through `dst`'s transport as gossip notifications, and applies
    /// the delta to `dst`'s replica.
    ///
    /// A transport refusal (platform fault on the receiving side)
    /// degrades that link for this round — the frames are not applied,
    /// and the next round retries from unchanged watermarks. Down links
    /// are skipped entirely.
    ///
    /// # Errors
    ///
    /// [`MoccaError::Federation`] on fabric-level failures (unknown
    /// domain, undecodable frames) — not on transport refusals.
    pub fn gossip_round(&mut self) -> Result<GossipRound, MoccaError> {
        let mut round = GossipRound::default();
        for (src, dst, state) in self.fabric.links() {
            if state != LinkState::Up {
                continue;
            }
            if !self.envs.contains_key(&src) || !self.envs.contains_key(&dst) {
                continue;
            }
            round.links_walked += 1;
            let digest = self.fabric.digest_frame(&dst)?;
            let delta = self.fabric.delta_frame(&src, &digest)?;
            // Lower both frames through the receiving environment's
            // messaging port; a refusal means this link gossips next
            // round instead.
            let shipped = (|| {
                let (from, to) = (domain_address(&src)?, domain_address(&dst)?);
                let env = self.envs.get_mut(&dst)?;
                let transport = env.platform_mut().transport();
                transport
                    .notify(&from, &to, "federation-gossip", &digest.encode())
                    .ok()?;
                transport
                    .notify(&from, &to, "federation-gossip", &delta.encode())
                    .ok()
            })();
            if shipped.is_none() {
                round.links_degraded += 1;
                continue;
            }
            round.updates_applied += self.fabric.ingest_delta(&dst, &delta)?;
        }
        Ok(round)
    }

    /// Runs gossip rounds until no round applies an update (converged)
    /// or `max_rounds` is exhausted. Returns the number of rounds run.
    ///
    /// # Errors
    ///
    /// As [`gossip_round`](Self::gossip_round).
    pub fn gossip_until_quiet(&mut self, max_rounds: usize) -> Result<usize, MoccaError> {
        for n in 1..=max_rounds {
            if self.gossip_round()?.updates_applied == 0 {
                return Ok(n);
            }
        }
        Ok(max_rounds)
    }

    /// Every domain's replica fingerprint, in domain order.
    pub fn fingerprints(&self) -> BTreeMap<String, String> {
        self.envs
            .keys()
            .map(|d| (d.clone(), self.fabric.replica_fingerprint(d)))
            .collect()
    }

    /// Have all replicas converged to the same state?
    pub fn converged(&self) -> bool {
        let mut prints = self.fingerprints().into_values();
        match prints.next() {
            None => true,
            Some(first) => prints.all(|p| p == first),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::{AppDescriptor, AppId, FormatMapping, NativeArtifact, Quadrant};
    use cscw_directory::Dn;
    use cscw_kernel::Timestamp;

    fn env_with_app(app: &str, field: &str) -> CscwEnvironment {
        let mut env = CscwEnvironment::new();
        env.register_app(
            AppDescriptor {
                id: app.into(),
                name: app.to_owned(),
                quadrant: Quadrant::CORRESPONDENCE,
                native_format: format!("{app}-native"),
                kinds: vec!["document".into()],
            },
            FormatMapping::new([(field, "title")]),
        );
        env
    }

    #[test]
    fn federated_exchange_crosses_environments() {
        let mut fed = FederatedEnvironments::new();
        fed.federate("env-a", env_with_app("sharedx", "subject"));
        fed.federate("env-b", env_with_app("com", "betreff"));
        fed.link_bidi("env-a", "env-b");

        let sharer: Dn = "cn=Tom".parse().unwrap();
        let artifact = NativeArtifact {
            app: AppId::new("sharedx"),
            format: "sharedx-native".into(),
            fields: BTreeMap::from([("subject".to_owned(), "Minutes".to_owned())]),
        };
        let out = fed
            .env_mut("env-a")
            .unwrap()
            .exchange(&sharer, &artifact, &AppId::new("com"), Timestamp::ZERO)
            .expect("federated exchange");
        assert_eq!(out.format, "common");
        assert_eq!(fed.pump().unwrap(), 1);
        // The destination environment raised and recorded the artifact.
        let env_b = fed.env("env-b").unwrap();
        assert_eq!(env_b.repository().len(), 1);
    }

    #[test]
    fn gossip_converges_and_quiesces() {
        let mut fed = FederatedEnvironments::new();
        fed.federate("env-a", env_with_app("a1", "f"));
        fed.federate("env-b", env_with_app("b1", "f"));
        fed.federate("env-c", env_with_app("c1", "f"));
        fed.link_bidi("env-a", "env-b");
        fed.link_bidi("env-b", "env-c");
        for (domain, note) in [("env-a", "alpha"), ("env-c", "gamma")] {
            fed.env_mut(domain)
                .unwrap()
                .store_object(
                    crate::info::InfoObject::new(
                        crate::info::InfoObjectId::new(format!("doc-{note}")),
                        "note",
                        "cn=Tom".parse().unwrap(),
                        crate::info::InfoContent::Text(note.into()),
                    ),
                    None,
                    Timestamp::ZERO,
                )
                .unwrap();
        }
        assert!(!fed.converged());
        let rounds = fed.gossip_until_quiet(8).unwrap();
        assert!(rounds <= 8);
        assert!(fed.converged(), "fingerprints: {:?}", fed.fingerprints());
    }
}
