//! Access control over information objects.
//!
//! §4: "appropriate access control mechanisms. (Traditionally, roles
//! have been used to signify different access rights of users.)"
//! Grants name either a person or a role DN; a person holds a right when
//! they are granted it directly or through any role they occupy.
//! Rights are ordered (`Share > Write > Read`): a higher grant implies
//! the lower ones. The owner always holds every right.

use cscw_directory::Dn;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

use crate::error::MoccaError;
use crate::info::object::InfoObjectId;
use crate::org::OrganisationalModel;

/// Rights over an information object, in increasing order of power.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum AccessRight {
    /// May read the object.
    Read,
    /// May update the object (implies read).
    Write,
    /// May grant access to others (implies write).
    Share,
}

/// One grant: a principal (person or role DN) holds a right.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Grant {
    /// The person or role.
    pub principal: Dn,
    /// The right held.
    pub right: AccessRight,
}

/// Per-object access control lists.
#[derive(Debug, Clone, Default)]
pub struct AccessControl {
    acls: BTreeMap<InfoObjectId, Vec<Grant>>,
    owners: BTreeMap<InfoObjectId, Dn>,
}

impl AccessControl {
    /// Creates empty ACLs.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers the object's owner (who implicitly holds every right).
    pub fn set_owner(&mut self, object: InfoObjectId, owner: Dn) {
        self.owners.insert(object, owner);
    }

    /// Grants a right (idempotent; a stronger existing grant is kept).
    pub fn grant(&mut self, object: &InfoObjectId, principal: Dn, right: AccessRight) {
        let acl = self.acls.entry(object.clone()).or_default();
        if let Some(existing) = acl.iter_mut().find(|g| g.principal == principal) {
            if existing.right < right {
                existing.right = right;
            }
        } else {
            acl.push(Grant { principal, right });
        }
    }

    /// Revokes every grant the principal has on the object; returns
    /// whether anything was removed. Ownership is not revocable.
    pub fn revoke(&mut self, object: &InfoObjectId, principal: &Dn) -> bool {
        match self.acls.get_mut(object) {
            Some(acl) => {
                let before = acl.len();
                acl.retain(|g| &g.principal != principal);
                acl.len() != before
            }
            None => false,
        }
    }

    /// The grants on an object.
    pub fn grants(&self, object: &InfoObjectId) -> &[Grant] {
        self.acls.get(object).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Does `person` hold `right` on `object`? Checks ownership, direct
    /// grants, and grants to any organisational role the person
    /// occupies. Removing a role can therefore never *add* access
    /// (monotonicity — property-tested).
    pub fn check(
        &self,
        org: &OrganisationalModel,
        person: &Dn,
        right: AccessRight,
        object: &InfoObjectId,
    ) -> bool {
        if self.owners.get(object) == Some(person) {
            return true;
        }
        let Some(acl) = self.acls.get(object) else {
            return false;
        };
        let roles = org.roles_of(person);
        acl.iter()
            .any(|g| g.right >= right && (&g.principal == person || roles.contains(&g.principal)))
    }

    /// [`AccessControl::check`] as a `Result`.
    ///
    /// # Errors
    ///
    /// [`MoccaError::AccessDenied`] when the right is not held.
    pub fn require(
        &self,
        org: &OrganisationalModel,
        person: &Dn,
        right: AccessRight,
        object: &InfoObjectId,
    ) -> Result<(), MoccaError> {
        if self.check(org, person, right, object) {
            Ok(())
        } else {
            Err(MoccaError::AccessDenied {
                who: person.to_string(),
                action: format!("{right:?}").to_lowercase(),
                target: object.to_string(),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::org::{Person, RelationKind, Role};

    fn dn(s: &str) -> Dn {
        s.parse().unwrap()
    }

    fn org() -> OrganisationalModel {
        let mut m = OrganisationalModel::new();
        m.add_person(Person::new(dn("cn=Tom"), "Tom"));
        m.add_person(Person::new(dn("cn=Wolfgang"), "Wolfgang"));
        m.add_person(Person::new(dn("cn=Leandro"), "Leandro"));
        m.add_role(Role::new(dn("cn=editors"), "editors"));
        m.relate(
            &dn("cn=Wolfgang"),
            RelationKind::Occupies,
            &dn("cn=editors"),
        )
        .unwrap();
        m
    }

    fn doc() -> InfoObjectId {
        "doc:report".into()
    }

    #[test]
    fn owner_holds_everything() {
        let mut ac = AccessControl::new();
        ac.set_owner(doc(), dn("cn=Tom"));
        let org = org();
        for right in [AccessRight::Read, AccessRight::Write, AccessRight::Share] {
            assert!(ac.check(&org, &dn("cn=Tom"), right, &doc()));
        }
        assert!(!ac.check(&org, &dn("cn=Leandro"), AccessRight::Read, &doc()));
    }

    #[test]
    fn higher_rights_imply_lower() {
        let mut ac = AccessControl::new();
        ac.grant(&doc(), dn("cn=Leandro"), AccessRight::Write);
        let org = org();
        assert!(ac.check(&org, &dn("cn=Leandro"), AccessRight::Read, &doc()));
        assert!(ac.check(&org, &dn("cn=Leandro"), AccessRight::Write, &doc()));
        assert!(!ac.check(&org, &dn("cn=Leandro"), AccessRight::Share, &doc()));
    }

    #[test]
    fn role_grants_reach_occupants() {
        let mut ac = AccessControl::new();
        ac.grant(&doc(), dn("cn=editors"), AccessRight::Write);
        let org = org();
        assert!(ac.check(&org, &dn("cn=Wolfgang"), AccessRight::Write, &doc()));
        assert!(
            !ac.check(&org, &dn("cn=Leandro"), AccessRight::Read, &doc()),
            "not an editor"
        );
    }

    #[test]
    fn regrant_keeps_strongest() {
        let mut ac = AccessControl::new();
        ac.grant(&doc(), dn("cn=Leandro"), AccessRight::Share);
        ac.grant(&doc(), dn("cn=Leandro"), AccessRight::Read);
        let org = org();
        assert!(ac.check(&org, &dn("cn=Leandro"), AccessRight::Share, &doc()));
        assert_eq!(ac.grants(&doc()).len(), 1);
    }

    #[test]
    fn revoke_removes_access() {
        let mut ac = AccessControl::new();
        ac.grant(&doc(), dn("cn=Leandro"), AccessRight::Read);
        assert!(ac.revoke(&doc(), &dn("cn=Leandro")));
        assert!(!ac.revoke(&doc(), &dn("cn=Leandro")));
        let org = org();
        assert!(!ac.check(&org, &dn("cn=Leandro"), AccessRight::Read, &doc()));
    }

    #[test]
    fn require_formats_denial() {
        let ac = AccessControl::new();
        let org = org();
        let err = ac
            .require(&org, &dn("cn=Leandro"), AccessRight::Write, &doc())
            .unwrap_err();
        assert!(err.to_string().contains("may not write"));
    }
}
