//! The Information Model (§5).
//!
//! "The Mocca information model aims to allow information used within
//! different CSCW systems to be represented externally and to be shared
//! between systems."
//!
//! * [`object`] — information objects and the common content model.
//! * [`relations`] — composition/dependency/derivation graph.
//! * [`access`] — role-based access control (§4's requirement).
//! * [`repository`] — the access-checked shared store.

pub mod access;
pub mod object;
pub mod relations;
pub mod repository;

pub use access::{AccessControl, AccessRight, Grant};
pub use object::{InfoContent, InfoObject, InfoObjectId};
pub use relations::{InfoRelation, InfoRelationKind, InfoRelations};
pub use repository::InformationRepository;
