//! Information objects.
//!
//! "The Mocca information model aims to allow information used within
//! different CSCW systems to be represented externally and to be shared
//! between systems. The model is expressed in terms of information
//! objects, the relationships between these objects (e.g. composition,
//! dependencies) and the access to these objects" (§5).

use std::collections::BTreeMap;

use cscw_directory::Dn;
use serde::{Deserialize, Serialize};

/// Identifies an information object.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct InfoObjectId(String);

impl InfoObjectId {
    /// Creates an id.
    pub fn new(id: impl Into<String>) -> Self {
        InfoObjectId(id.into())
    }

    /// The raw name.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl std::fmt::Display for InfoObjectId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for InfoObjectId {
    fn from(s: &str) -> Self {
        InfoObjectId::new(s)
    }
}

/// The content of an information object, in the *common* representation
/// every registered application can convert to and from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum InfoContent {
    /// Unstructured text.
    Text(String),
    /// Semi-structured fields — the exchange lingua franca
    /// (Object-Lens-style semi-structured objects).
    Fields(BTreeMap<String, String>),
    /// Opaque bytes with a format label (not convertible, only carried).
    Binary {
        /// Format label.
        format: String,
        /// The bytes.
        data: Vec<u8>,
    },
}

impl InfoContent {
    /// Builds field content from pairs.
    pub fn fields<K: Into<String>, V: Into<String>>(
        pairs: impl IntoIterator<Item = (K, V)>,
    ) -> Self {
        InfoContent::Fields(
            pairs
                .into_iter()
                .map(|(k, v)| (k.into(), v.into()))
                .collect(),
        )
    }

    /// A field value, when field-structured.
    pub fn field(&self, key: &str) -> Option<&str> {
        match self {
            InfoContent::Fields(map) => map.get(key).map(String::as_str),
            _ => None,
        }
    }

    /// Approximate size in bytes.
    pub fn size(&self) -> usize {
        match self {
            InfoContent::Text(s) => s.len(),
            InfoContent::Fields(map) => map.iter().map(|(k, v)| k.len() + v.len()).sum(),
            InfoContent::Binary { data, .. } => data.len(),
        }
    }
}

/// An information object in the shared model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InfoObject {
    /// The id.
    pub id: InfoObjectId,
    /// Kind tag (`document`, `message`, `minutes`, `annotation`, …).
    pub kind: String,
    /// Owning person (directory DN).
    pub owner: Dn,
    /// Version, bumped on every update.
    pub version: u32,
    /// The content.
    pub content: InfoContent,
}

impl InfoObject {
    /// Creates a version-1 object.
    pub fn new(id: InfoObjectId, kind: &str, owner: Dn, content: InfoContent) -> Self {
        InfoObject {
            id,
            kind: kind.to_owned(),
            owner,
            version: 1,
            content,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fields_builder_and_accessor() {
        let c = InfoContent::fields([("title", "Progress report"), ("status", "draft")]);
        assert_eq!(c.field("title"), Some("Progress report"));
        assert_eq!(c.field("missing"), None);
        assert_eq!(InfoContent::Text("x".into()).field("title"), None);
    }

    #[test]
    fn sizes() {
        assert_eq!(InfoContent::Text("abc".into()).size(), 3);
        assert_eq!(InfoContent::fields([("a", "xy")]).size(), 3);
        assert_eq!(
            InfoContent::Binary {
                format: "oda".into(),
                data: vec![0; 7]
            }
            .size(),
            7
        );
    }

    #[test]
    fn new_objects_start_at_version_one() {
        let o = InfoObject::new(
            "doc1".into(),
            "document",
            "cn=Tom".parse().unwrap(),
            InfoContent::Text("hello".into()),
        );
        assert_eq!(o.version, 1);
        assert_eq!(o.kind, "document");
        assert_eq!(o.id.to_string(), "doc1");
    }
}
