//! Relationships between information objects.
//!
//! "…the relationships between these objects (e.g. composition,
//! dependencies)…" (§5). Composition (`PartOf`) must stay acyclic — an
//! object cannot transitively contain itself; dependency and derivation
//! edges are unconstrained.

use std::collections::{BTreeSet, VecDeque};

use serde::{Deserialize, Serialize};

use crate::error::MoccaError;
use crate::info::object::InfoObjectId;

/// How two information objects relate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InfoRelationKind {
    /// `from` is a component of `to` (composition).
    PartOf,
    /// `from` depends on `to` (invalidate `from` when `to` changes).
    DependsOn,
    /// `from` was derived from `to` (provenance).
    DerivedFrom,
}

/// One relation edge.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InfoRelation {
    /// Source object.
    pub from: InfoObjectId,
    /// Kind.
    pub kind: InfoRelationKind,
    /// Target object.
    pub to: InfoObjectId,
}

/// The relation graph.
#[derive(Debug, Clone, Default)]
pub struct InfoRelations {
    edges: Vec<InfoRelation>,
}

impl InfoRelations {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an edge.
    ///
    /// # Errors
    ///
    /// [`MoccaError::DependencyCycle`] when a `PartOf` edge would make
    /// an object (transitively) part of itself.
    pub fn add(
        &mut self,
        from: InfoObjectId,
        kind: InfoRelationKind,
        to: InfoObjectId,
    ) -> Result<(), MoccaError> {
        if kind == InfoRelationKind::PartOf
            && (from == to || self.reachable(&to, &from, InfoRelationKind::PartOf))
        {
            return Err(MoccaError::DependencyCycle(from.to_string()));
        }
        let edge = InfoRelation { from, kind, to };
        if !self.edges.contains(&edge) {
            self.edges.push(edge);
        }
        Ok(())
    }

    /// All edges.
    pub fn edges(&self) -> &[InfoRelation] {
        &self.edges
    }

    fn reachable(
        &self,
        start: &InfoObjectId,
        target: &InfoObjectId,
        kind: InfoRelationKind,
    ) -> bool {
        let mut seen = BTreeSet::new();
        let mut queue = VecDeque::from([start.clone()]);
        while let Some(current) = queue.pop_front() {
            if &current == target {
                return true;
            }
            if !seen.insert(current.clone()) {
                continue;
            }
            for e in &self.edges {
                if e.kind == kind && e.from == current {
                    queue.push_back(e.to.clone());
                }
            }
        }
        false
    }

    /// Direct components of a composite.
    pub fn parts_of(&self, whole: &InfoObjectId) -> Vec<&InfoObjectId> {
        self.edges
            .iter()
            .filter(|e| e.kind == InfoRelationKind::PartOf && &e.to == whole)
            .map(|e| &e.from)
            .collect()
    }

    /// The composite an object belongs to, if any (single parent by
    /// convention: the first recorded).
    pub fn whole_of(&self, part: &InfoObjectId) -> Option<&InfoObjectId> {
        self.edges
            .iter()
            .find(|e| e.kind == InfoRelationKind::PartOf && &e.from == part)
            .map(|e| &e.to)
    }

    /// Everything that (transitively) depends on `object` — the
    /// invalidation set when it changes.
    pub fn dependents_of(&self, object: &InfoObjectId) -> Vec<InfoObjectId> {
        let mut seen = BTreeSet::new();
        let mut queue = VecDeque::from([object.clone()]);
        while let Some(current) = queue.pop_front() {
            for e in &self.edges {
                if e.kind == InfoRelationKind::DependsOn
                    && e.to == current
                    && seen.insert(e.from.clone())
                {
                    queue.push_back(e.from.clone());
                }
            }
        }
        seen.into_iter().collect()
    }

    /// The provenance chain of `object` (what it was derived from,
    /// transitively, nearest first).
    pub fn provenance_of(&self, object: &InfoObjectId) -> Vec<InfoObjectId> {
        let mut chain = Vec::new();
        let mut current = object.clone();
        loop {
            let next = self
                .edges
                .iter()
                .find(|e| e.kind == InfoRelationKind::DerivedFrom && e.from == current)
                .map(|e| e.to.clone());
            match next {
                Some(src) if !chain.contains(&src) => {
                    chain.push(src.clone());
                    current = src;
                }
                _ => return chain,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(s: &str) -> InfoObjectId {
        s.into()
    }

    fn graph() -> InfoRelations {
        let mut g = InfoRelations::new();
        g.add(id("chapter1"), InfoRelationKind::PartOf, id("report"))
            .unwrap();
        g.add(id("chapter2"), InfoRelationKind::PartOf, id("report"))
            .unwrap();
        g.add(id("summary"), InfoRelationKind::DependsOn, id("report"))
            .unwrap();
        g.add(id("slides"), InfoRelationKind::DependsOn, id("summary"))
            .unwrap();
        g.add(id("report"), InfoRelationKind::DerivedFrom, id("proposal"))
            .unwrap();
        g
    }

    #[test]
    fn composition_queries() {
        let g = graph();
        let parts = g.parts_of(&id("report"));
        assert_eq!(parts.len(), 2);
        assert_eq!(g.whole_of(&id("chapter1")), Some(&id("report")));
        assert_eq!(g.whole_of(&id("report")), None);
    }

    #[test]
    fn composition_cycles_are_refused() {
        let mut g = graph();
        let err = g
            .add(id("report"), InfoRelationKind::PartOf, id("chapter1"))
            .unwrap_err();
        assert!(matches!(err, MoccaError::DependencyCycle(_)));
        assert!(g.add(id("x"), InfoRelationKind::PartOf, id("x")).is_err());
        // Dependency cycles are allowed (mutual dependency is real).
        g.add(id("report"), InfoRelationKind::DependsOn, id("summary"))
            .unwrap();
    }

    #[test]
    fn invalidation_set_is_transitive() {
        let g = graph();
        let deps = g.dependents_of(&id("report"));
        assert_eq!(deps.len(), 2);
        assert!(deps.contains(&id("summary")));
        assert!(deps.contains(&id("slides")));
        assert!(g.dependents_of(&id("slides")).is_empty());
    }

    #[test]
    fn provenance_chain() {
        let mut g = graph();
        g.add(
            id("proposal"),
            InfoRelationKind::DerivedFrom,
            id("call-for-tenders"),
        )
        .unwrap();
        let chain = g.provenance_of(&id("report"));
        assert_eq!(chain, vec![id("proposal"), id("call-for-tenders")]);
    }

    #[test]
    fn duplicate_edges_collapse() {
        let mut g = graph();
        let before = g.edges().len();
        g.add(id("chapter1"), InfoRelationKind::PartOf, id("report"))
            .unwrap();
        assert_eq!(g.edges().len(), before);
    }
}
