//! The shared information repository.
//!
//! Stores information objects in the common model, enforces access
//! control, tracks relations and versions. This is the concrete "set of
//! services which encourage the cooperative sharing of information"
//! (§4); the environment's interop hub exchanges objects *through* it.

use std::collections::BTreeMap;

use cscw_directory::Dn;

use crate::error::MoccaError;
use crate::info::access::{AccessControl, AccessRight};
use crate::info::object::{InfoContent, InfoObject, InfoObjectId};
use crate::info::relations::{InfoRelationKind, InfoRelations};
use crate::org::OrganisationalModel;

/// The repository: objects + relations + ACLs.
#[derive(Debug, Default)]
pub struct InformationRepository {
    objects: BTreeMap<InfoObjectId, InfoObject>,
    relations: InfoRelations,
    access: AccessControl,
}

impl InformationRepository {
    /// Creates an empty repository.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stores a new object; the creator becomes its owner.
    ///
    /// # Errors
    ///
    /// [`MoccaError::UnknownInfoObject`] (with a "duplicate" message)
    /// when the id is taken.
    pub fn store(&mut self, object: InfoObject) -> Result<(), MoccaError> {
        if self.objects.contains_key(&object.id) {
            return Err(MoccaError::UnknownInfoObject(format!(
                "duplicate id {}",
                object.id
            )));
        }
        self.access
            .set_owner(object.id.clone(), object.owner.clone());
        self.objects.insert(object.id.clone(), object);
        Ok(())
    }

    /// Reads an object, access-checked.
    ///
    /// # Errors
    ///
    /// * [`MoccaError::UnknownInfoObject`] — no such object.
    /// * [`MoccaError::AccessDenied`] — reader lacks `Read`.
    pub fn fetch(
        &self,
        org: &OrganisationalModel,
        reader: &Dn,
        id: &InfoObjectId,
    ) -> Result<&InfoObject, MoccaError> {
        self.access.require(org, reader, AccessRight::Read, id)?;
        self.objects
            .get(id)
            .ok_or_else(|| MoccaError::UnknownInfoObject(id.to_string()))
    }

    /// Updates an object's content, bumping its version.
    ///
    /// # Errors
    ///
    /// * [`MoccaError::UnknownInfoObject`] — no such object.
    /// * [`MoccaError::AccessDenied`] — writer lacks `Write`.
    pub fn update(
        &mut self,
        org: &OrganisationalModel,
        writer: &Dn,
        id: &InfoObjectId,
        content: InfoContent,
    ) -> Result<u32, MoccaError> {
        self.access.require(org, writer, AccessRight::Write, id)?;
        let obj = self
            .objects
            .get_mut(id)
            .ok_or_else(|| MoccaError::UnknownInfoObject(id.to_string()))?;
        obj.content = content;
        obj.version += 1;
        Ok(obj.version)
    }

    /// Grants access, which requires the granter to hold `Share`.
    ///
    /// # Errors
    ///
    /// * [`MoccaError::AccessDenied`] — granter lacks `Share`.
    /// * [`MoccaError::UnknownInfoObject`] — no such object.
    pub fn share(
        &mut self,
        org: &OrganisationalModel,
        granter: &Dn,
        id: &InfoObjectId,
        with: Dn,
        right: AccessRight,
    ) -> Result<(), MoccaError> {
        if !self.objects.contains_key(id) {
            return Err(MoccaError::UnknownInfoObject(id.to_string()));
        }
        self.access.require(org, granter, AccessRight::Share, id)?;
        self.access.grant(id, with, right);
        Ok(())
    }

    /// Relates two stored objects.
    ///
    /// # Errors
    ///
    /// * [`MoccaError::UnknownInfoObject`] — either object missing.
    /// * [`MoccaError::DependencyCycle`] — illegal composition cycle.
    pub fn relate(
        &mut self,
        from: &InfoObjectId,
        kind: InfoRelationKind,
        to: &InfoObjectId,
    ) -> Result<(), MoccaError> {
        for end in [from, to] {
            if !self.objects.contains_key(end) {
                return Err(MoccaError::UnknownInfoObject(end.to_string()));
            }
        }
        self.relations.add(from.clone(), kind, to.clone())
    }

    /// The relation graph.
    pub fn relations(&self) -> &InfoRelations {
        &self.relations
    }

    /// The access-control state (for direct grant management).
    pub fn access_mut(&mut self) -> &mut AccessControl {
        &mut self.access
    }

    /// Read access to ACLs.
    pub fn access(&self) -> &AccessControl {
        &self.access
    }

    /// Unchecked read (environment internals, monitoring).
    pub fn peek(&self, id: &InfoObjectId) -> Option<&InfoObject> {
        self.objects.get(id)
    }

    /// Number of stored objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Ids of all objects of a kind.
    pub fn ids_of_kind(&self, kind: &str) -> Vec<InfoObjectId> {
        self.objects
            .values()
            .filter(|o| o.kind == kind)
            .map(|o| o.id.clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::org::Person;

    fn dn(s: &str) -> Dn {
        s.parse().unwrap()
    }

    fn org() -> OrganisationalModel {
        let mut m = OrganisationalModel::new();
        m.add_person(Person::new(dn("cn=Tom"), "Tom"));
        m.add_person(Person::new(dn("cn=Wolfgang"), "Wolfgang"));
        m
    }

    fn repo_with_doc() -> InformationRepository {
        let mut r = InformationRepository::new();
        r.store(InfoObject::new(
            "doc1".into(),
            "document",
            dn("cn=Tom"),
            InfoContent::Text("draft".into()),
        ))
        .unwrap();
        r
    }

    #[test]
    fn owner_reads_and_writes_others_do_not() {
        let mut r = repo_with_doc();
        let org = org();
        assert!(r.fetch(&org, &dn("cn=Tom"), &"doc1".into()).is_ok());
        assert!(matches!(
            r.fetch(&org, &dn("cn=Wolfgang"), &"doc1".into())
                .unwrap_err(),
            MoccaError::AccessDenied { .. }
        ));
        let v = r
            .update(
                &org,
                &dn("cn=Tom"),
                &"doc1".into(),
                InfoContent::Text("v2".into()),
            )
            .unwrap();
        assert_eq!(v, 2);
    }

    #[test]
    fn sharing_requires_share_right() {
        let mut r = repo_with_doc();
        let org = org();
        // Wolfgang cannot share what he cannot touch.
        assert!(r
            .share(
                &org,
                &dn("cn=Wolfgang"),
                &"doc1".into(),
                dn("cn=Wolfgang"),
                AccessRight::Read
            )
            .is_err());
        // Owner shares read with Wolfgang.
        r.share(
            &org,
            &dn("cn=Tom"),
            &"doc1".into(),
            dn("cn=Wolfgang"),
            AccessRight::Read,
        )
        .unwrap();
        assert!(r.fetch(&org, &dn("cn=Wolfgang"), &"doc1".into()).is_ok());
        // Read does not imply write.
        assert!(r
            .update(
                &org,
                &dn("cn=Wolfgang"),
                &"doc1".into(),
                InfoContent::Text("x".into())
            )
            .is_err());
    }

    #[test]
    fn duplicate_store_fails() {
        let mut r = repo_with_doc();
        let dup = InfoObject::new(
            "doc1".into(),
            "document",
            dn("cn=Tom"),
            InfoContent::Text("again".into()),
        );
        assert!(r.store(dup).is_err());
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn relations_require_stored_objects() {
        let mut r = repo_with_doc();
        let err = r
            .relate(&"ghost".into(), InfoRelationKind::DependsOn, &"doc1".into())
            .unwrap_err();
        assert!(matches!(err, MoccaError::UnknownInfoObject(_)));
        r.store(InfoObject::new(
            "summary".into(),
            "document",
            dn("cn=Tom"),
            InfoContent::Text("sum".into()),
        ))
        .unwrap();
        r.relate(
            &"summary".into(),
            InfoRelationKind::DependsOn,
            &"doc1".into(),
        )
        .unwrap();
        assert_eq!(r.relations().dependents_of(&"doc1".into()).len(), 1);
    }

    #[test]
    fn kind_index() {
        let mut r = repo_with_doc();
        r.store(InfoObject::new(
            "m1".into(),
            "message",
            dn("cn=Tom"),
            InfoContent::Text("hi".into()),
        ))
        .unwrap();
        assert_eq!(r.ids_of_kind("document").len(), 1);
        assert_eq!(r.ids_of_kind("message").len(), 1);
        assert!(r.ids_of_kind("minutes").is_empty());
    }
}
