//! # mocca — the open CSCW environment
//!
//! This crate is the primary contribution of the reproduced paper
//! (Navarro, Prinz, Rodden — *"Open CSCW Systems: Will ODP help?"*,
//! ICDCS 1992): the **MOCCA environment**, a middleware layer between
//! CSCW applications and an ODP platform (the paper's Figure 4) that
//! lets heterogeneous groupware "work in harmony rather than in
//! isolation of each other" (Figure 3).
//!
//! ## The five models (§5)
//!
//! | Model | Module | In one line |
//! |---|---|---|
//! | Organisational | [`org`] | people/roles/resources/projects, relations, deontic rules, directory-backed knowledge base, trading policy |
//! | Inter-activity | [`activity`] | activities, membership, temporal/resource/information dependencies, negotiation, monitoring |
//! | Information | [`info`] | information objects, composition/dependency relations, role-based access, shared repository |
//! | Communication | [`comm`] | communicators, contexts, and one channel API over live sessions and X.400 |
//! | User expertise | [`expertise`] | capabilities (individual) and responsibilities (organisation-imposed) |
//!
//! ## The four CSCW transparencies (§4)
//!
//! [`transparency`] implements organisation, time, view and activity
//! transparency — all **user-selectable** ([`tailor`]), which is the
//! paper's main demand on ODP (§6.1).
//!
//! ## The environment (§3)
//!
//! [`env::CscwEnvironment`] assembles everything, registers
//! applications with one format mapping each ([`env::InteropHub`],
//! Figure 3) and offers the closed pairwise world as an explicit
//! baseline ([`env::ClosedWorld`], Figure 2).
//!
//! ## The platform ([`platform`])
//!
//! Substrates: `cscw-kernel` (clocks, telemetry, layered errors),
//! `simnet` (network), `cscw-directory` (X.500), `cscw-messaging`
//! (X.400), `odp` (trader, transparencies, viewpoints). The
//! environment reaches them only through the [`platform::Platform`]
//! ports. Operations that share state across applications —
//! `exchange`, `store_object`, `publish_knowledge`, `register_app` —
//! lower through those ports onto the trader, directory and MTS
//! (in-process on [`platform::LocalPlatform`], across a simulated
//! network on [`platform::SimPlatform`]); purely model-local
//! operations (activity bookkeeping, expertise queries, tailoring)
//! stay in the environment layer. That is Figure 4's subset claim at
//! the granularity the code actually implements.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod activity;
pub mod comm;
pub mod env;
mod error;
pub mod expertise;
pub mod federation;
pub mod info;
pub mod org;
pub mod platform;
pub mod tailor;
pub mod transparency;

pub use env::CscwEnvironment;
pub use error::MoccaError;
pub use federation::{ConvergenceReport, FederatedEnvironments, GossipRound, RunReport};
pub use platform::{
    DirectoryPort, LocalPlatform, Platform, ResilientPlatform, SimPlatform, TraderPort,
    TransportPort,
};
