//! The organisational knowledge base, stored in the X.500 directory.
//!
//! §4 requires "maintaining a knowledge base of people, resources and
//! on-going activities" with "smooth integration and utilization of
//! standard information repositories, for example, the X.500 directory
//! service". This module publishes the organisational model into a
//! [`Dit`] (or a distributed DSA via [`Dua`]) and answers queries from
//! it, so other environments can interoperate through the standard
//! repository rather than through MOCCA's in-memory structures.

use cscw_directory::{Attribute, Dit, Dn, Dua, Entry, Filter, SearchRequest, SearchScope};
use cscw_messaging::net::Sim;

use crate::error::MoccaError;
use crate::org::model::OrganisationalModel;

/// Publishes organisational objects as directory entries and answers
/// people/resource queries from the directory.
#[derive(Debug, Default)]
pub struct KnowledgeBase {
    dit: Dit,
}

impl KnowledgeBase {
    /// Creates an empty knowledge base backed by a local DIT.
    pub fn new() -> Self {
        Self::default()
    }

    /// The backing DIT.
    pub fn dit(&self) -> &Dit {
        &self.dit
    }

    /// Ensures every ancestor of `dn` exists, fabricating plain
    /// organisational entries as needed (countries, organizations,
    /// units) so deep publishes never fail on missing parents.
    fn ensure_ancestors(&mut self, dn: &Dn) -> Result<(), MoccaError> {
        let rdns = dn.rdns();
        let mut prefix = Dn::root();
        for rdn in &rdns[..rdns.len().saturating_sub(1)] {
            prefix = prefix.child(rdn.clone());
            if self.dit.get(&prefix).is_some() {
                continue;
            }
            let class = match rdn.attr().as_str() {
                "c" => "country",
                "o" => "organization",
                "ou" => "organizationalunit",
                _ => "organizationalunit",
            };
            let mut entry = Entry::new(prefix.clone()).with_class(class);
            entry.put_attr(Attribute::single(rdn.attr().as_str(), rdn.value()));
            if class == "organizationalunit" && rdn.attr().as_str() != "ou" {
                entry.put_attr(Attribute::single("ou", rdn.value()));
            }
            self.dit.add(entry)?;
        }
        Ok(())
    }

    /// Publishes (or republishes) the whole organisational model into
    /// the DIT. Returns how many entries were written.
    ///
    /// # Errors
    ///
    /// Any [`cscw_directory::DirectoryError`] from entry creation.
    pub fn publish(&mut self, model: &OrganisationalModel) -> Result<usize, MoccaError> {
        let mut written = 0;
        for person in model.people() {
            self.ensure_ancestors(&person.dn)?;
            if self.dit.get(&person.dn).is_some() {
                continue;
            }
            let mut e = Entry::new(person.dn.clone())
                .with_class("person")
                .with_attr(Attribute::single("cn", person.name.as_str()))
                .with_attr(Attribute::single(
                    "sn",
                    person
                        .name
                        .split_whitespace()
                        .last()
                        .unwrap_or(&person.name),
                ));
            if let Some(mb) = &person.mailbox {
                e.put_attr(Attribute::single("mail", mb.to_string()));
            }
            // Roles become multi-valued attributes for searchability.
            for role in model.roles_of(&person.dn) {
                e.put_attr(Attribute::single("occupiesrole", role.to_string()));
            }
            self.dit.add(e)?;
            written += 1;
        }
        for resource in model.resources() {
            self.ensure_ancestors(&resource.dn)?;
            if self.dit.get(&resource.dn).is_some() {
                continue;
            }
            let e = Entry::new(resource.dn.clone())
                .with_class("cscwresource")
                .with_attr(Attribute::single("cn", resource.name.as_str()))
                .with_attr(Attribute::single(
                    "resourcetype",
                    resource.resource_type.as_str(),
                ));
            self.dit.add(e)?;
            written += 1;
        }
        Ok(written)
    }

    /// Finds people by filter (e.g. `(occupiesrole=cn=coordinator)`).
    ///
    /// # Errors
    ///
    /// Any directory search error.
    pub fn find_people(&self, filter: Filter) -> Result<Vec<Entry>, MoccaError> {
        let combined = Filter::and([Filter::eq("objectclass", "person"), filter]);
        Ok(self.dit.search_all(combined)?)
    }

    /// Finds resources of a type.
    ///
    /// # Errors
    ///
    /// Any directory search error.
    pub fn find_resources(&self, resource_type: &str) -> Result<Vec<Entry>, MoccaError> {
        Ok(self.dit.search_all(Filter::and([
            Filter::eq("objectclass", "cscwresource"),
            Filter::eq("resourcetype", resource_type),
        ]))?)
    }

    /// Pushes the local knowledge base to a remote DSA via a [`Dua`]
    /// (the distributed deployment the paper assumes). Entries that
    /// already exist remotely are skipped. Returns how many were pushed.
    ///
    /// # Errors
    ///
    /// [`MoccaError::Directory`] on any remote failure other than
    /// "entry exists".
    pub fn push_to_dsa(&self, sim: &mut Sim, dua: &mut Dua) -> Result<usize, MoccaError> {
        let mut pushed = 0;
        for entry in self.dit.iter() {
            match dua.add(sim, entry.clone()) {
                Ok(()) => pushed += 1,
                Err(cscw_directory::DirectoryError::EntryExists(_)) => {}
                Err(e) => return Err(e.into()),
            }
        }
        Ok(pushed)
    }

    /// Queries a remote DSA for people matching a filter.
    ///
    /// # Errors
    ///
    /// Any remote directory error.
    pub fn find_people_remote(
        sim: &mut Sim,
        dua: &mut Dua,
        base: Dn,
        filter: Filter,
    ) -> Result<Vec<Entry>, MoccaError> {
        let combined = Filter::and([Filter::eq("objectclass", "person"), filter]);
        let out = dua.search(
            sim,
            SearchRequest::new(base, SearchScope::Subtree, combined),
        )?;
        Ok(out.entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::org::objects::{Person, Resource, Role};
    use crate::org::RelationKind;

    fn dn(s: &str) -> Dn {
        s.parse().unwrap()
    }

    fn model() -> OrganisationalModel {
        let mut m = OrganisationalModel::new();
        m.add_person(Person::new(
            dn("c=UK,o=Lancaster,cn=Tom Rodden"),
            "Tom Rodden",
        ));
        m.add_person(Person::new(
            dn("c=DE,o=GMD,cn=Wolfgang Prinz"),
            "Wolfgang Prinz",
        ));
        m.add_role(Role::new(dn("cn=coordinator"), "coordinator"));
        m.relate(
            &dn("c=UK,o=Lancaster,cn=Tom Rodden"),
            RelationKind::Occupies,
            &dn("cn=coordinator"),
        )
        .unwrap();
        m.add_resource(Resource::new(
            dn("c=UK,o=Lancaster,cn=Room 1"),
            "Room 1",
            "meeting-room",
        ));
        m
    }

    #[test]
    fn publish_creates_ancestors_and_entries() {
        let mut kb = KnowledgeBase::new();
        let written = kb.publish(&model()).unwrap();
        assert_eq!(written, 3, "two people and one resource");
        // Ancestors were fabricated.
        assert!(kb.dit().get(&dn("c=UK")).is_some());
        assert!(kb.dit().get(&dn("c=UK,o=Lancaster")).is_some());
        assert!(kb.dit().get(&dn("c=DE,o=GMD")).is_some());
    }

    #[test]
    fn publish_is_idempotent() {
        let mut kb = KnowledgeBase::new();
        let m = model();
        kb.publish(&m).unwrap();
        let second = kb.publish(&m).unwrap();
        assert_eq!(second, 0);
    }

    #[test]
    fn find_people_by_role_attribute() {
        let mut kb = KnowledgeBase::new();
        kb.publish(&model()).unwrap();
        let coordinators = kb
            .find_people(Filter::eq("occupiesrole", "cn=coordinator"))
            .unwrap();
        assert_eq!(coordinators.len(), 1);
        assert_eq!(coordinators[0].first_text("cn"), Some("Tom Rodden"));
        let all = kb.find_people(Filter::True).unwrap();
        assert_eq!(all.len(), 2);
    }

    #[test]
    fn find_resources_by_type() {
        let mut kb = KnowledgeBase::new();
        kb.publish(&model()).unwrap();
        let rooms = kb.find_resources("meeting-room").unwrap();
        assert_eq!(rooms.len(), 1);
        assert!(kb.find_resources("printer").unwrap().is_empty());
    }
}
