//! The organisational knowledge base, stored in the X.500 directory.
//!
//! §4 requires "maintaining a knowledge base of people, resources and
//! on-going activities" with "smooth integration and utilization of
//! standard information repositories, for example, the X.500 directory
//! service". This module publishes the organisational model into a
//! [`Dit`] (or a distributed DSA via [`Dua`]) and answers queries from
//! it, so other environments can interoperate through the standard
//! repository rather than through MOCCA's in-memory structures.

use std::collections::BTreeSet;
use std::sync::Arc;

use cscw_directory::{
    Attribute, Dit, DitObserver, Dn, Dua, Entry, Filter, SearchRequest, SearchScope,
};
use cscw_messaging::net::Sim;

use crate::error::MoccaError;
use crate::org::model::OrganisationalModel;
use crate::org::objects::RelationKind;

/// Publishes organisational objects as directory entries and answers
/// people/resource queries from the directory.
#[derive(Debug)]
pub struct KnowledgeBase {
    dit: Dit,
}

impl Default for KnowledgeBase {
    fn default() -> Self {
        Self::new()
    }
}

impl KnowledgeBase {
    /// Creates an empty knowledge base backed by a local DIT (the
    /// standard schema already carries the CSCW extension classes,
    /// `cscwproject` included).
    pub fn new() -> Self {
        KnowledgeBase { dit: Dit::new() }
    }

    /// The backing DIT.
    pub fn dit(&self) -> &Dit {
        &self.dit
    }

    /// Mutable access to the backing DIT (for callers that maintain
    /// entries beyond what [`publish`](Self::publish) mirrors, e.g.
    /// project state attributes).
    pub fn dit_mut(&mut self) -> &mut Dit {
        &mut self.dit
    }

    /// Attaches a change observer to the backing DIT; every
    /// publication or direct mutation notifies it (the standing-query
    /// layer's feed).
    pub fn observe(&mut self, observer: Arc<dyn DitObserver>) {
        self.dit.observe(observer);
    }

    /// Ensures every ancestor of `dn` exists, fabricating plain
    /// organisational entries as needed (countries, organizations,
    /// units) so deep publishes never fail on missing parents.
    fn ensure_ancestors(&mut self, dn: &Dn) -> Result<(), MoccaError> {
        let rdns = dn.rdns();
        let mut prefix = Dn::root();
        for rdn in &rdns[..rdns.len().saturating_sub(1)] {
            prefix = prefix.child(rdn.clone());
            if self.dit.get(&prefix).is_some() {
                continue;
            }
            let class = match rdn.attr().as_str() {
                "c" => "country",
                "o" => "organization",
                "ou" => "organizationalunit",
                _ => "organizationalunit",
            };
            let mut entry = Entry::new(prefix.clone()).with_class(class);
            entry.put_attr(Attribute::single(rdn.attr().as_str(), rdn.value()));
            if class == "organizationalunit" && rdn.attr().as_str() != "ou" {
                entry.put_attr(Attribute::single("ou", rdn.value()));
            }
            self.dit.add(entry)?;
        }
        Ok(())
    }

    /// The organisational edges a person carries as directory
    /// attributes: role occupancy, group membership, and project work
    /// (`MemberOf` relations whose target is a project).
    fn person_edges(
        model: &OrganisationalModel,
        person: &Dn,
    ) -> [(&'static str, BTreeSet<String>); 3] {
        let occupies: BTreeSet<String> = model.roles_of(person).iter().map(Dn::to_string).collect();
        let mut memberof = BTreeSet::new();
        let mut workson = BTreeSet::new();
        for rel in model.relations() {
            if rel.kind != RelationKind::MemberOf || &rel.from != person {
                continue;
            }
            memberof.insert(rel.to.to_string());
            if model.project(&rel.to).is_some() {
                workson.insert(rel.to.to_string());
            }
        }
        [
            ("occupiesrole", occupies),
            ("memberof", memberof),
            ("workson", workson),
        ]
    }

    /// Brings an existing entry's edge attributes in line with the
    /// model; a no-op (and silent for observers) when nothing differs.
    /// Returns 1 when the entry was rewritten.
    fn sync_edges(
        &mut self,
        dn: &Dn,
        desired: &[(&'static str, BTreeSet<String>)],
    ) -> Result<usize, MoccaError> {
        let Some(entry) = self.dit.get(dn) else {
            return Ok(0);
        };
        let differs = desired.iter().any(|(attr, want)| {
            let have: BTreeSet<String> = entry
                .attr(*attr)
                .map(|a| {
                    a.values()
                        .iter()
                        .filter_map(|v| v.as_text())
                        .map(str::to_owned)
                        .collect()
                })
                .unwrap_or_default();
            have != *want
        });
        if !differs {
            return Ok(0);
        }
        self.dit.modify(dn, |e| {
            for (attr, want) in desired {
                if want.is_empty() {
                    e.remove_attr(&(*attr).into());
                } else {
                    e.replace_attr(Attribute::multi(*attr, want.iter().map(String::as_str)));
                }
            }
        })?;
        Ok(1)
    }

    /// Publishes (or republishes) the whole organisational model into
    /// the DIT. Returns how many entries were written (added, or
    /// rewritten because their organisational edges changed —
    /// republishing an unchanged model writes nothing).
    ///
    /// # Errors
    ///
    /// Any [`cscw_directory::DirectoryError`] from entry creation.
    pub fn publish(&mut self, model: &OrganisationalModel) -> Result<usize, MoccaError> {
        let mut written = 0;
        for person in model.people() {
            self.ensure_ancestors(&person.dn)?;
            let edges = Self::person_edges(model, &person.dn);
            if self.dit.get(&person.dn).is_some() {
                written += self.sync_edges(&person.dn, &edges)?;
                continue;
            }
            let mut e = Entry::new(person.dn.clone())
                .with_class("person")
                .with_attr(Attribute::single("cn", person.name.as_str()))
                .with_attr(Attribute::single(
                    "sn",
                    person
                        .name
                        .split_whitespace()
                        .last()
                        .unwrap_or(&person.name),
                ));
            if let Some(mb) = &person.mailbox {
                e.put_attr(Attribute::single("mail", mb.to_string()));
            }
            // Edges become multi-valued attributes for searchability
            // (and for the query layer's edge traversal).
            for (attr, values) in &edges {
                for value in values {
                    e.put_attr(Attribute::single(*attr, value.as_str()));
                }
            }
            self.dit.add(e)?;
            written += 1;
        }
        // Projects and units become entries of their own, so edge
        // targets (`works-on`, `member-of`) resolve within the DIT.
        for project in model.projects() {
            self.ensure_ancestors(&project.dn)?;
            if self.dit.get(&project.dn).is_some() {
                continue;
            }
            let e = Entry::new(project.dn.clone())
                .with_class("cscwproject")
                .with_attr(Attribute::single("cn", project.name.as_str()));
            self.dit.add(e)?;
            written += 1;
        }
        for unit in model.units() {
            self.ensure_ancestors(&unit.dn)?;
            if self.dit.get(&unit.dn).is_some() {
                continue;
            }
            let e = Entry::new(unit.dn.clone())
                .with_class("organizationalunit")
                .with_attr(Attribute::single("ou", unit.name.as_str()));
            self.dit.add(e)?;
            written += 1;
        }
        for resource in model.resources() {
            self.ensure_ancestors(&resource.dn)?;
            if self.dit.get(&resource.dn).is_some() {
                continue;
            }
            let e = Entry::new(resource.dn.clone())
                .with_class("cscwresource")
                .with_attr(Attribute::single("cn", resource.name.as_str()))
                .with_attr(Attribute::single(
                    "resourcetype",
                    resource.resource_type.as_str(),
                ));
            self.dit.add(e)?;
            written += 1;
        }
        Ok(written)
    }

    /// Finds people by filter (e.g. `(occupiesrole=cn=coordinator)`).
    ///
    /// # Errors
    ///
    /// Any directory search error.
    pub fn find_people(&self, filter: Filter) -> Result<Vec<Entry>, MoccaError> {
        let combined = Filter::and([Filter::eq("objectclass", "person"), filter]);
        Ok(self.dit.search_all(combined)?)
    }

    /// Finds resources of a type.
    ///
    /// # Errors
    ///
    /// Any directory search error.
    pub fn find_resources(&self, resource_type: &str) -> Result<Vec<Entry>, MoccaError> {
        Ok(self.dit.search_all(Filter::and([
            Filter::eq("objectclass", "cscwresource"),
            Filter::eq("resourcetype", resource_type),
        ]))?)
    }

    /// Pushes the local knowledge base to a remote DSA via a [`Dua`]
    /// (the distributed deployment the paper assumes). Entries that
    /// already exist remotely are skipped. Returns how many were pushed.
    ///
    /// # Errors
    ///
    /// [`MoccaError::Directory`] on any remote failure other than
    /// "entry exists".
    pub fn push_to_dsa(&self, sim: &mut Sim, dua: &mut Dua) -> Result<usize, MoccaError> {
        let mut pushed = 0;
        for entry in self.dit.iter() {
            match dua.add(sim, entry.clone()) {
                Ok(()) => pushed += 1,
                Err(cscw_directory::DirectoryError::EntryExists(_)) => {}
                Err(e) => return Err(e.into()),
            }
        }
        Ok(pushed)
    }

    /// Queries a remote DSA for people matching a filter.
    ///
    /// # Errors
    ///
    /// Any remote directory error.
    pub fn find_people_remote(
        sim: &mut Sim,
        dua: &mut Dua,
        base: Dn,
        filter: Filter,
    ) -> Result<Vec<Entry>, MoccaError> {
        let combined = Filter::and([Filter::eq("objectclass", "person"), filter]);
        let out = dua.search(
            sim,
            SearchRequest::new(base, SearchScope::Subtree, combined),
        )?;
        Ok(out.entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::org::objects::{Person, Resource, Role};
    use crate::org::RelationKind;

    fn dn(s: &str) -> Dn {
        s.parse().unwrap()
    }

    fn model() -> OrganisationalModel {
        let mut m = OrganisationalModel::new();
        m.add_person(Person::new(
            dn("c=UK,o=Lancaster,cn=Tom Rodden"),
            "Tom Rodden",
        ));
        m.add_person(Person::new(
            dn("c=DE,o=GMD,cn=Wolfgang Prinz"),
            "Wolfgang Prinz",
        ));
        m.add_role(Role::new(dn("cn=coordinator"), "coordinator"));
        m.relate(
            &dn("c=UK,o=Lancaster,cn=Tom Rodden"),
            RelationKind::Occupies,
            &dn("cn=coordinator"),
        )
        .unwrap();
        m.add_resource(Resource::new(
            dn("c=UK,o=Lancaster,cn=Room 1"),
            "Room 1",
            "meeting-room",
        ));
        m
    }

    #[test]
    fn publish_creates_ancestors_and_entries() {
        let mut kb = KnowledgeBase::new();
        let written = kb.publish(&model()).unwrap();
        assert_eq!(written, 3, "two people and one resource");
        // Ancestors were fabricated.
        assert!(kb.dit().get(&dn("c=UK")).is_some());
        assert!(kb.dit().get(&dn("c=UK,o=Lancaster")).is_some());
        assert!(kb.dit().get(&dn("c=DE,o=GMD")).is_some());
    }

    #[test]
    fn publish_is_idempotent() {
        let mut kb = KnowledgeBase::new();
        let m = model();
        kb.publish(&m).unwrap();
        let second = kb.publish(&m).unwrap();
        assert_eq!(second, 0);
    }

    #[test]
    fn find_people_by_role_attribute() {
        let mut kb = KnowledgeBase::new();
        kb.publish(&model()).unwrap();
        let coordinators = kb
            .find_people(Filter::eq("occupiesrole", "cn=coordinator"))
            .unwrap();
        assert_eq!(coordinators.len(), 1);
        assert_eq!(coordinators[0].first_text("cn"), Some("Tom Rodden"));
        let all = kb.find_people(Filter::True).unwrap();
        assert_eq!(all.len(), 2);
    }

    #[test]
    fn find_resources_by_type() {
        let mut kb = KnowledgeBase::new();
        kb.publish(&model()).unwrap();
        let rooms = kb.find_resources("meeting-room").unwrap();
        assert_eq!(rooms.len(), 1);
        assert!(kb.find_resources("printer").unwrap().is_empty());
    }
}
