//! The Organisational Model (§5).
//!
//! "A central motivation for the development of open CSCW systems and
//! the Mocca project is the realisation that organisational context is
//! crucial to the success of CSCW systems."
//!
//! * [`objects`] — people, roles, resources, projects, units, relations.
//! * [`model`] — the aggregate model with derived queries and
//!   role-based authorisation.
//! * [`rules`] — the deontic rule base (permit/forbid/oblige).
//! * [`knowledge`] — the knowledge base published into the X.500
//!   directory (§4's requirement).
//! * [`trading`] — the organisational trading policy attached to the ODP
//!   trader (§6.1's proposal).

pub mod knowledge;
pub mod model;
pub mod objects;
pub mod rules;
pub mod trading;

pub use knowledge::KnowledgeBase;
pub use model::OrganisationalModel;
pub use objects::{OrgRelation, OrgUnit, Person, Project, RelationKind, Resource, Role};
pub use rules::{evaluate, obligations, Authorisation, OrgRule, RuleKind};
pub use trading::{OrgTradingPolicy, ENV_PRINCIPAL};
