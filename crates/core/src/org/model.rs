//! The organisational model: objects + relations + rules.
//!
//! "The aim of the organisational model is to make explicit the sharing
//! of organisational resources, policies and regulations" (§5).

use std::collections::BTreeMap;

use cscw_directory::Dn;

use crate::error::MoccaError;
use crate::org::objects::{OrgRelation, OrgUnit, Person, Project, RelationKind, Resource, Role};
use crate::org::rules::{evaluate, Authorisation, OrgRule};

/// The in-memory organisational model.
///
/// All objects are indexed by their directory DN;
/// [`crate::org::knowledge::KnowledgeBase`] mirrors the model into the
/// X.500 directory.
#[derive(Debug, Clone, Default)]
pub struct OrganisationalModel {
    people: BTreeMap<Dn, Person>,
    roles: BTreeMap<Dn, Role>,
    resources: BTreeMap<Dn, Resource>,
    projects: BTreeMap<Dn, Project>,
    units: BTreeMap<Dn, OrgUnit>,
    relations: Vec<OrgRelation>,
    rules: Vec<OrgRule>,
}

impl OrganisationalModel {
    /// Creates an empty model.
    pub fn new() -> Self {
        Self::default()
    }

    // ---- population -----------------------------------------------------

    /// Adds a person.
    pub fn add_person(&mut self, person: Person) {
        self.people.insert(person.dn.clone(), person);
    }

    /// Adds a role.
    pub fn add_role(&mut self, role: Role) {
        self.roles.insert(role.dn.clone(), role);
    }

    /// Adds a resource.
    pub fn add_resource(&mut self, resource: Resource) {
        self.resources.insert(resource.dn.clone(), resource);
    }

    /// Adds a project.
    pub fn add_project(&mut self, project: Project) {
        self.projects.insert(project.dn.clone(), project);
    }

    /// Adds an organisational unit.
    pub fn add_unit(&mut self, unit: OrgUnit) {
        self.units.insert(unit.dn.clone(), unit);
    }

    /// Records a relation between two known objects.
    ///
    /// # Errors
    ///
    /// [`MoccaError::UnknownOrgObject`] when either endpoint is unknown
    /// to the model.
    pub fn relate(&mut self, from: &Dn, kind: RelationKind, to: &Dn) -> Result<(), MoccaError> {
        for end in [from, to] {
            if !self.knows(end) {
                return Err(MoccaError::UnknownOrgObject(end.to_string()));
            }
        }
        let rel = OrgRelation {
            from: from.clone(),
            kind,
            to: to.clone(),
        };
        if !self.relations.contains(&rel) {
            self.relations.push(rel);
        }
        Ok(())
    }

    /// Adds an authorisation rule.
    pub fn add_rule(&mut self, rule: OrgRule) {
        self.rules.push(rule);
    }

    // ---- lookups --------------------------------------------------------

    /// True when any object with this DN exists.
    pub fn knows(&self, dn: &Dn) -> bool {
        self.people.contains_key(dn)
            || self.roles.contains_key(dn)
            || self.resources.contains_key(dn)
            || self.projects.contains_key(dn)
            || self.units.contains_key(dn)
    }

    /// A person by DN.
    pub fn person(&self, dn: &Dn) -> Option<&Person> {
        self.people.get(dn)
    }

    /// A role by DN.
    pub fn role(&self, dn: &Dn) -> Option<&Role> {
        self.roles.get(dn)
    }

    /// A resource by DN.
    pub fn resource(&self, dn: &Dn) -> Option<&Resource> {
        self.resources.get(dn)
    }

    /// All people.
    pub fn people(&self) -> impl Iterator<Item = &Person> {
        self.people.values()
    }

    /// All resources.
    pub fn resources(&self) -> impl Iterator<Item = &Resource> {
        self.resources.values()
    }

    /// All projects.
    pub fn projects(&self) -> impl Iterator<Item = &Project> {
        self.projects.values()
    }

    /// All organisational units.
    pub fn units(&self) -> impl Iterator<Item = &OrgUnit> {
        self.units.values()
    }

    /// A project by DN.
    pub fn project(&self, dn: &Dn) -> Option<&Project> {
        self.projects.get(dn)
    }

    /// All rules.
    pub fn rules(&self) -> &[OrgRule] {
        &self.rules
    }

    /// All relations.
    pub fn relations(&self) -> &[OrgRelation] {
        &self.relations
    }

    // ---- derived queries -------------------------------------------------

    /// The roles a person occupies.
    pub fn roles_of(&self, person: &Dn) -> Vec<Dn> {
        self.relations
            .iter()
            .filter(|r| r.kind == RelationKind::Occupies && &r.from == person)
            .map(|r| r.to.clone())
            .collect()
    }

    /// The people occupying a role.
    pub fn occupants_of(&self, role: &Dn) -> Vec<Dn> {
        self.relations
            .iter()
            .filter(|r| r.kind == RelationKind::Occupies && &r.to == role)
            .map(|r| r.from.clone())
            .collect()
    }

    /// Members of a unit or project.
    pub fn members_of(&self, group: &Dn) -> Vec<Dn> {
        self.relations
            .iter()
            .filter(|r| r.kind == RelationKind::MemberOf && &r.to == group)
            .map(|r| r.from.clone())
            .collect()
    }

    /// The management chain upward from a person (nearest first).
    /// Cycles are tolerated (each manager appears once).
    pub fn reporting_chain(&self, person: &Dn) -> Vec<Dn> {
        let mut chain = Vec::new();
        let mut current = person.clone();
        loop {
            let next = self
                .relations
                .iter()
                .find(|r| r.kind == RelationKind::ReportsTo && r.from == current)
                .map(|r| r.to.clone());
            match next {
                Some(boss) if !chain.contains(&boss) && boss != *person => {
                    chain.push(boss.clone());
                    current = boss;
                }
                _ => return chain,
            }
        }
    }

    /// Full authorisation check: collects the person's roles and
    /// evaluates the rule base.
    pub fn authorise(&self, person: &Dn, action: &str, target_kind: &str) -> Authorisation {
        evaluate(&self.rules, &self.roles_of(person), action, target_kind)
    }

    /// Convenience: authorisation as a `Result`.
    ///
    /// # Errors
    ///
    /// [`MoccaError::AccessDenied`] unless permitted.
    pub fn require(&self, person: &Dn, action: &str, target_kind: &str) -> Result<(), MoccaError> {
        if self.authorise(person, action, target_kind).is_permitted() {
            Ok(())
        } else {
            Err(MoccaError::AccessDenied {
                who: person.to_string(),
                action: action.to_owned(),
                target: target_kind.to_owned(),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::org::rules::RuleKind;

    fn dn(s: &str) -> Dn {
        s.parse().unwrap()
    }

    /// A small Lancaster/GMD world.
    fn model() -> OrganisationalModel {
        let mut m = OrganisationalModel::new();
        m.add_person(Person::new(dn("c=UK,cn=Tom"), "Tom"));
        m.add_person(Person::new(dn("c=UK,cn=Gordon"), "Gordon"));
        m.add_person(Person::new(dn("c=DE,cn=Wolfgang"), "Wolfgang"));
        m.add_role(Role::new(dn("cn=coordinator"), "coordinator"));
        m.add_role(Role::new(dn("cn=member"), "member"));
        m.add_project(Project::new(dn("cn=mocca"), "MOCCA"));
        m.add_resource(Resource::new(dn("cn=room1"), "Room 1", "meeting-room"));
        m.relate(
            &dn("c=UK,cn=Tom"),
            RelationKind::Occupies,
            &dn("cn=coordinator"),
        )
        .unwrap();
        m.relate(&dn("c=UK,cn=Tom"), RelationKind::Occupies, &dn("cn=member"))
            .unwrap();
        m.relate(
            &dn("c=DE,cn=Wolfgang"),
            RelationKind::Occupies,
            &dn("cn=member"),
        )
        .unwrap();
        m.relate(&dn("c=UK,cn=Tom"), RelationKind::MemberOf, &dn("cn=mocca"))
            .unwrap();
        m.relate(
            &dn("c=DE,cn=Wolfgang"),
            RelationKind::MemberOf,
            &dn("cn=mocca"),
        )
        .unwrap();
        m.relate(
            &dn("c=UK,cn=Tom"),
            RelationKind::ReportsTo,
            &dn("c=UK,cn=Gordon"),
        )
        .unwrap();
        m.add_rule(OrgRule::new(
            dn("cn=coordinator"),
            RuleKind::Permit,
            "schedule",
            "activity",
        ));
        m.add_rule(OrgRule::new(dn("cn=member"), RuleKind::Permit, "read", "*"));
        m
    }

    #[test]
    fn relations_require_known_objects() {
        let mut m = model();
        let err = m
            .relate(&dn("cn=ghost"), RelationKind::Occupies, &dn("cn=member"))
            .unwrap_err();
        assert!(matches!(err, MoccaError::UnknownOrgObject(_)));
    }

    #[test]
    fn relate_is_idempotent() {
        let mut m = model();
        let before = m.relations().len();
        m.relate(&dn("c=UK,cn=Tom"), RelationKind::Occupies, &dn("cn=member"))
            .unwrap();
        assert_eq!(m.relations().len(), before);
    }

    #[test]
    fn role_and_membership_queries() {
        let m = model();
        let roles = m.roles_of(&dn("c=UK,cn=Tom"));
        assert_eq!(roles.len(), 2);
        assert_eq!(m.occupants_of(&dn("cn=member")).len(), 2);
        let members = m.members_of(&dn("cn=mocca"));
        assert_eq!(members.len(), 2);
    }

    #[test]
    fn reporting_chain_walks_up() {
        let m = model();
        assert_eq!(
            m.reporting_chain(&dn("c=UK,cn=Tom")),
            vec![dn("c=UK,cn=Gordon")]
        );
        assert!(m.reporting_chain(&dn("c=UK,cn=Gordon")).is_empty());
    }

    #[test]
    fn reporting_cycle_terminates() {
        let mut m = model();
        m.relate(
            &dn("c=UK,cn=Gordon"),
            RelationKind::ReportsTo,
            &dn("c=UK,cn=Tom"),
        )
        .unwrap();
        let chain = m.reporting_chain(&dn("c=UK,cn=Tom"));
        assert_eq!(
            chain,
            vec![dn("c=UK,cn=Gordon")],
            "cycle does not revisit the start"
        );
    }

    #[test]
    fn authorisation_via_roles() {
        let m = model();
        assert!(m
            .authorise(&dn("c=UK,cn=Tom"), "schedule", "activity")
            .is_permitted());
        assert!(!m
            .authorise(&dn("c=DE,cn=Wolfgang"), "schedule", "activity")
            .is_permitted());
        assert!(m
            .require(&dn("c=DE,cn=Wolfgang"), "read", "document")
            .is_ok());
        let err = m
            .require(&dn("c=DE,cn=Wolfgang"), "schedule", "activity")
            .unwrap_err();
        assert!(matches!(err, MoccaError::AccessDenied { .. }));
    }

    #[test]
    fn knows_covers_all_kinds() {
        let m = model();
        for d in ["c=UK,cn=Tom", "cn=coordinator", "cn=mocca", "cn=room1"] {
            assert!(m.knows(&dn(d)), "{d}");
        }
        assert!(!m.knows(&dn("cn=ghost")));
    }
}
