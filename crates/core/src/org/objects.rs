//! Organisational objects.
//!
//! "The model is constructed from a set of organisational objects (e.g.
//! resources, projects, people, roles), organisational relations and
//! rules" (§5, The Organisational Model). Identities are directory
//! distinguished names, so the knowledge base can live in the X.500
//! directory as the paper proposes.

use cscw_directory::Dn;
use cscw_messaging::OrAddress;
use serde::{Deserialize, Serialize};

/// A person known to the organisation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Person {
    /// Directory identity.
    pub dn: Dn,
    /// Display name.
    pub name: String,
    /// X.400 mailbox, when the person is reachable by message.
    pub mailbox: Option<OrAddress>,
}

impl Person {
    /// Creates a person.
    pub fn new(dn: Dn, name: impl Into<String>) -> Self {
        Person {
            dn,
            name: name.into(),
            mailbox: None,
        }
    }

    /// Sets the mailbox.
    #[must_use]
    pub fn with_mailbox(mut self, mailbox: OrAddress) -> Self {
        self.mailbox = Some(mailbox);
        self
    }
}

/// An organisational role ("traditionally, roles have been used to
/// signify different access rights of users", §4).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Role {
    /// Directory identity.
    pub dn: Dn,
    /// Role name (e.g. `project-coordinator`).
    pub name: String,
    /// Free-text description.
    pub description: String,
}

impl Role {
    /// Creates a role.
    pub fn new(dn: Dn, name: impl Into<String>) -> Self {
        Role {
            dn,
            name: name.into(),
            description: String::new(),
        }
    }
}

/// A shareable organisational resource (meeting room, printer,
/// repository…).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Resource {
    /// Directory identity.
    pub dn: Dn,
    /// Resource name.
    pub name: String,
    /// Kind tag (`meeting-room`, `printer`, `repository`…).
    pub resource_type: String,
}

impl Resource {
    /// Creates a resource.
    pub fn new(dn: Dn, name: impl Into<String>, resource_type: impl Into<String>) -> Self {
        Resource {
            dn,
            name: name.into(),
            resource_type: resource_type.into(),
        }
    }
}

/// A project: a long-lived organisational undertaking that activities
/// belong to (e.g. "building the Channel Tunnel", §3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Project {
    /// Directory identity.
    pub dn: Dn,
    /// Project name.
    pub name: String,
}

impl Project {
    /// Creates a project.
    pub fn new(dn: Dn, name: impl Into<String>) -> Self {
        Project {
            dn,
            name: name.into(),
        }
    }
}

/// An organisational unit (department, institute, group).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OrgUnit {
    /// Directory identity.
    pub dn: Dn,
    /// Unit name.
    pub name: String,
}

impl OrgUnit {
    /// Creates a unit.
    pub fn new(dn: Dn, name: impl Into<String>) -> Self {
        OrgUnit {
            dn,
            name: name.into(),
        }
    }
}

/// A typed relation between two organisational objects (by DN).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OrgRelation {
    /// Source object.
    pub from: Dn,
    /// Relation kind.
    pub kind: RelationKind,
    /// Target object.
    pub to: Dn,
}

/// The relation kinds the organisational model tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RelationKind {
    /// Person reports to person.
    ReportsTo,
    /// Person is a member of a unit or project.
    MemberOf,
    /// Person occupies a role.
    Occupies,
    /// Role is responsible for a resource, project or activity.
    ResponsibleFor,
    /// A unit owns a resource.
    Owns,
    /// A project belongs to a unit.
    PartOf,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_construct() {
        let dn: Dn = "c=UK,o=Lancaster,cn=Tom Rodden".parse().unwrap();
        let mailbox: OrAddress = "C=UK;O=Lancaster;PN=Tom Rodden".parse().unwrap();
        let p = Person::new(dn.clone(), "Tom Rodden").with_mailbox(mailbox.clone());
        assert_eq!(p.dn, dn);
        assert_eq!(p.mailbox, Some(mailbox));
        let r = Role::new("c=UK,cn=coordinator".parse().unwrap(), "coordinator");
        assert_eq!(r.name, "coordinator");
        let res = Resource::new("c=UK,cn=room1".parse().unwrap(), "Room 1", "meeting-room");
        assert_eq!(res.resource_type, "meeting-room");
    }

    #[test]
    fn relations_are_plain_data() {
        let rel = OrgRelation {
            from: "c=UK,cn=Tom".parse().unwrap(),
            kind: RelationKind::Occupies,
            to: "c=UK,cn=coordinator".parse().unwrap(),
        };
        assert_eq!(rel.kind, RelationKind::Occupies);
        assert_ne!(RelationKind::Occupies, RelationKind::MemberOf);
    }
}
