//! Organisational rules: role-based authorisation with deontic
//! modality.
//!
//! Rules bind roles (not individuals) to actions on target kinds, in the
//! X.500/role tradition the paper cites: "traditionally, roles have been
//! used to signify different access rights of users" (§4). Prohibitions
//! override permissions; obligations are permissions that monitoring can
//! audit against.

use cscw_directory::Dn;
use serde::{Deserialize, Serialize};

/// Rule modality.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RuleKind {
    /// The role may perform the action.
    Permit,
    /// The role must not perform the action (overrides permits).
    Forbid,
    /// The role must perform the action (implies permit).
    Oblige,
}

/// One organisational rule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OrgRule {
    /// The role the rule binds (by DN).
    pub role: Dn,
    /// Modality.
    pub kind: RuleKind,
    /// Action name (`read`, `schedule`, `import`, …).
    pub action: String,
    /// The kind of target it applies to (`document`, `activity`,
    /// `service:printer`, …); `*` matches every kind.
    pub target_kind: String,
}

impl OrgRule {
    /// Creates a rule.
    pub fn new(role: Dn, kind: RuleKind, action: &str, target_kind: &str) -> Self {
        OrgRule {
            role,
            kind,
            action: action.to_owned(),
            target_kind: target_kind.to_owned(),
        }
    }

    /// True when the rule speaks about this action/target pair.
    pub fn applies_to(&self, action: &str, target_kind: &str) -> bool {
        self.action == action && (self.target_kind == "*" || self.target_kind == target_kind)
    }
}

/// The verdict of evaluating the rules for a set of roles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Authorisation {
    /// Some rule permits (or obliges) and none forbids.
    Permitted,
    /// A rule forbids (regardless of permits).
    Forbidden,
    /// No rule speaks: the default-deny posture applies.
    NotCovered,
}

impl Authorisation {
    /// True only for [`Authorisation::Permitted`].
    pub fn is_permitted(self) -> bool {
        self == Authorisation::Permitted
    }
}

/// Evaluates `rules` for a principal holding `roles`.
pub fn evaluate(rules: &[OrgRule], roles: &[Dn], action: &str, target_kind: &str) -> Authorisation {
    let mut permitted = false;
    for rule in rules {
        if !roles.contains(&rule.role) || !rule.applies_to(action, target_kind) {
            continue;
        }
        match rule.kind {
            RuleKind::Forbid => return Authorisation::Forbidden,
            RuleKind::Permit | RuleKind::Oblige => permitted = true,
        }
    }
    if permitted {
        Authorisation::Permitted
    } else {
        Authorisation::NotCovered
    }
}

/// The obligations a set of roles carries (for progress monitoring).
pub fn obligations<'a>(rules: &'a [OrgRule], roles: &[Dn]) -> Vec<&'a OrgRule> {
    rules
        .iter()
        .filter(|r| r.kind == RuleKind::Oblige && roles.contains(&r.role))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn role(n: &str) -> Dn {
        format!("cn={n}").parse().unwrap()
    }

    fn rules() -> Vec<OrgRule> {
        vec![
            OrgRule::new(
                role("coordinator"),
                RuleKind::Permit,
                "schedule",
                "activity",
            ),
            OrgRule::new(role("coordinator"), RuleKind::Oblige, "monitor", "activity"),
            OrgRule::new(role("visitor"), RuleKind::Forbid, "schedule", "activity"),
            OrgRule::new(role("member"), RuleKind::Permit, "read", "*"),
        ]
    }

    #[test]
    fn permit_and_default_deny() {
        let rs = rules();
        assert_eq!(
            evaluate(&rs, &[role("coordinator")], "schedule", "activity"),
            Authorisation::Permitted
        );
        assert_eq!(
            evaluate(&rs, &[role("coordinator")], "delete", "activity"),
            Authorisation::NotCovered
        );
        assert!(!Authorisation::NotCovered.is_permitted());
    }

    #[test]
    fn forbid_overrides_permit() {
        let rs = rules();
        // Someone who is both coordinator and visitor: forbid wins.
        assert_eq!(
            evaluate(
                &rs,
                &[role("coordinator"), role("visitor")],
                "schedule",
                "activity"
            ),
            Authorisation::Forbidden
        );
    }

    #[test]
    fn oblige_implies_permit() {
        let rs = rules();
        assert_eq!(
            evaluate(&rs, &[role("coordinator")], "monitor", "activity"),
            Authorisation::Permitted
        );
    }

    #[test]
    fn wildcard_target() {
        let rs = rules();
        assert_eq!(
            evaluate(&rs, &[role("member")], "read", "document"),
            Authorisation::Permitted
        );
        assert_eq!(
            evaluate(&rs, &[role("member")], "read", "activity"),
            Authorisation::Permitted
        );
        assert_eq!(
            evaluate(&rs, &[role("member")], "write", "document"),
            Authorisation::NotCovered
        );
    }

    #[test]
    fn obligations_are_listed_per_role() {
        let rs = rules();
        let obs = obligations(&rs, &[role("coordinator")]);
        assert_eq!(obs.len(), 1);
        assert_eq!(obs[0].action, "monitor");
        assert!(obligations(&rs, &[role("member")]).is_empty());
    }
}
