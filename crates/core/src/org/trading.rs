//! The organisational trading policy.
//!
//! §6.1: "within future ODP systems aimed at supporting CSCW
//! applications the organisational knowledge base considered in the
//! Mocca environment will be associated to the trader, containing or
//! dictating among other the trading policy." This module is that
//! association: an [`odp::TradingPolicy`] whose decisions come from the
//! organisational rule base, so trader imports respect organisational
//! authority. Bench R6 measures imports with and without it.

use std::sync::Arc;

use cscw_directory::Dn;
use odp::{ServiceOffer, TradingPolicy, Value};
use parking_lot::RwLock;

use crate::org::model::OrganisationalModel;

/// The DN under which the environment itself performs engineering
/// imports (e.g. locating the destination application's interface
/// during an exchange). Those imports are the environment's own
/// plumbing — user-level authority for the *cooperation* is checked by
/// `CscwEnvironment::check_cooperation`, not by the trading policy.
pub const ENV_PRINCIPAL: &str = "cn=mocca-environment";

/// Trading policy driven by organisational rules.
///
/// An import of service type `T` by principal `P` (the import request's
/// `importer` string, a directory DN) is allowed iff the organisational
/// model authorises `P` to perform action `"import"` on target kind
/// `"service:T"`. Offers carrying an `org` property are additionally
/// checked for action `"import-from"` on `"org:<value>"` — the
/// inter-organisational hook. The environment's own engineering
/// identity ([`ENV_PRINCIPAL`]) is always allowed.
#[derive(Clone)]
pub struct OrgTradingPolicy {
    model: Arc<RwLock<OrganisationalModel>>,
}

impl std::fmt::Debug for OrgTradingPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OrgTradingPolicy").finish_non_exhaustive()
    }
}

impl OrgTradingPolicy {
    /// Creates the policy over a shared organisational model.
    pub fn new(model: Arc<RwLock<OrganisationalModel>>) -> Self {
        OrgTradingPolicy { model }
    }
}

impl TradingPolicy for OrgTradingPolicy {
    fn name(&self) -> &str {
        "mocca-organisational-policy"
    }

    fn allows(&self, offer: &ServiceOffer, importer: &str) -> bool {
        if importer == ENV_PRINCIPAL {
            return true;
        }
        let Ok(dn) = importer.parse::<Dn>() else {
            return false; // unidentified importers get nothing
        };
        let model = self.model.read();
        let service_target = format!("service:{}", offer.service_type());
        if !model
            .authorise(&dn, "import", &service_target)
            .is_permitted()
        {
            return false;
        }
        if let Some(org) = offer.property("org").and_then(Value::as_text) {
            let org_target = format!("org:{org}");
            if !model
                .authorise(&dn, "import-from", &org_target)
                .is_permitted()
            {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::org::objects::{Person, Role};
    use crate::org::rules::{OrgRule, RuleKind};
    use crate::org::RelationKind;
    use odp::{ImportRequest, InterfaceRef, InterfaceType, OperationSig, Trader, ValueKind};
    use simnet::NodeId;

    fn dn(s: &str) -> Dn {
        s.parse().unwrap()
    }

    fn shared_model() -> Arc<RwLock<OrganisationalModel>> {
        let mut m = OrganisationalModel::new();
        m.add_person(Person::new(dn("c=UK,cn=Tom"), "Tom"));
        m.add_person(Person::new(dn("c=DE,cn=Wolfgang"), "Wolfgang"));
        m.add_role(Role::new(dn("cn=staff"), "staff"));
        m.relate(&dn("c=UK,cn=Tom"), RelationKind::Occupies, &dn("cn=staff"))
            .unwrap();
        // Staff may import printers, and may import from GMD but not UPC.
        m.add_rule(OrgRule::new(
            dn("cn=staff"),
            RuleKind::Permit,
            "import",
            "service:printer",
        ));
        m.add_rule(OrgRule::new(
            dn("cn=staff"),
            RuleKind::Permit,
            "import-from",
            "org:GMD",
        ));
        m.add_rule(OrgRule::new(
            dn("cn=staff"),
            RuleKind::Forbid,
            "import-from",
            "org:UPC",
        ));
        Arc::new(RwLock::new(m))
    }

    fn trader_with_policy(model: Arc<RwLock<OrganisationalModel>>) -> Trader {
        let iface = InterfaceType::new("printer").with_operation(OperationSig::new(
            "print",
            [ValueKind::Text],
            ValueKind::Bool,
        ));
        let mut t = Trader::new("t");
        t.register_service_type(iface.clone());
        for (i, org) in ["GMD", "UPC"].iter().enumerate() {
            t.export(
                "printer",
                &iface,
                InterfaceRef {
                    object: format!("lp{i}").as_str().into(),
                    node: NodeId::from_raw(i as u32),
                    interface: "printer".into(),
                },
                [("org", Value::from(*org))],
            )
            .unwrap();
        }
        t.attach_policy(OrgTradingPolicy::new(model));
        t
    }

    #[test]
    fn authorised_importer_sees_only_policy_compatible_offers() {
        let t = trader_with_policy(shared_model());
        let req = ImportRequest::any("printer").with_importer("c=UK,cn=Tom");
        let offers = t.import(&req).unwrap();
        assert_eq!(offers.len(), 1, "UPC offer filtered by import-from rule");
        assert_eq!(offers[0].property("org").unwrap(), &Value::from("GMD"));
    }

    #[test]
    fn person_without_role_sees_nothing() {
        let t = trader_with_policy(shared_model());
        let req = ImportRequest::any("printer").with_importer("c=DE,cn=Wolfgang");
        assert!(
            t.import(&req).is_err(),
            "no permit rule for Wolfgang's (empty) roles"
        );
    }

    #[test]
    fn anonymous_or_garbage_importers_are_refused() {
        let t = trader_with_policy(shared_model());
        assert!(
            t.import(&ImportRequest::any("printer")).is_err(),
            "empty importer"
        );
        let req = ImportRequest::any("printer").with_importer("not a dn ,,,=");
        assert!(t.import(&req).is_err());
    }

    #[test]
    fn policy_reflects_model_changes_live() {
        let model = shared_model();
        let t = trader_with_policy(model.clone());
        // Grant Wolfgang the staff role at runtime.
        model
            .write()
            .relate(
                &dn("c=DE,cn=Wolfgang"),
                RelationKind::Occupies,
                &dn("cn=staff"),
            )
            .unwrap();
        let req = ImportRequest::any("printer").with_importer("c=DE,cn=Wolfgang");
        assert_eq!(t.import(&req).unwrap().len(), 1);
    }
}
