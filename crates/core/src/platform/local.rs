//! The in-process platform: the zero-network fast path.
//!
//! conform: allow-file(R4) — like the simulated platform, the port
//! front-end narrates the layer each call lowers *into*, so both
//! platforms produce comparable per-layer telemetry.

use std::collections::BTreeMap;

use cscw_directory::{DirOp, DirResult, DirectoryError, Dit};
use cscw_kernel::{Clock, Layer, Telemetry, WallClock};
use cscw_messaging::{MtsError, OrAddress};
use odp::{
    ImportRequest, InterfaceRef, InterfaceType, OdpError, ServiceOffer, Trader, TradingPolicy,
    Value,
};

use super::{DirectoryPort, Platform, TraderPort, TransportPort};

/// A stored local notification: originator, subject, body.
type Note = (OrAddress, String, String);

/// Everything in one address space: a [`Trader`], a [`Dit`] and
/// in-memory mailboxes. No wire is crossed, so no `Net`-layer telemetry
/// appears — but the port calls still emit their own layer's events, so
/// even a local run tells the layered story down to the substrate
/// boundary.
pub struct LocalPlatform {
    trader: Trader,
    dit: Dit,
    mailboxes: BTreeMap<OrAddress, Vec<Note>>,
    telemetry: Telemetry,
    clock: WallClock,
    next_message_id: u64,
}

impl std::fmt::Debug for LocalPlatform {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LocalPlatform")
            .field("offers", &self.trader.offer_count())
            .field("mailboxes", &self.mailboxes.len())
            .finish_non_exhaustive()
    }
}

impl Default for LocalPlatform {
    fn default() -> Self {
        Self::new()
    }
}

impl LocalPlatform {
    /// Creates an empty local platform.
    pub fn new() -> Self {
        LocalPlatform {
            trader: Trader::new("mocca-trader"),
            dit: Dit::new(),
            mailboxes: BTreeMap::new(),
            telemetry: Telemetry::new(),
            clock: WallClock::new(),
            next_message_id: 1,
        }
    }

    /// Read access to the backing directory information tree.
    pub fn dit(&self) -> &Dit {
        &self.dit
    }

    /// Read access to the backing trader.
    pub fn raw_trader(&self) -> &Trader {
        &self.trader
    }

    fn emit(&self, layer: Layer, name: &'static str, detail: String) {
        self.telemetry.incr(layer, name);
        self.telemetry
            .emit(self.clock.now_micros(), layer, name, detail);
    }
}

impl TraderPort for LocalPlatform {
    fn register_service_type(&mut self, iface: InterfaceType) {
        self.trader.register_service_type(iface);
    }

    fn export(
        &mut self,
        service_type: &str,
        offering_type: &InterfaceType,
        interface: InterfaceRef,
        properties: Vec<(String, Value)>,
    ) -> Result<odp::OfferId, OdpError> {
        self.emit(Layer::Odp, "odp.export", format!("offer of {service_type}"));
        self.trader
            .export_dynamic(service_type, offering_type, interface, properties)
    }

    fn import(&mut self, request: &ImportRequest) -> Result<Vec<ServiceOffer>, OdpError> {
        self.emit(
            Layer::Odp,
            "odp.import",
            format!("seeking {}", request.service_type),
        );
        self.trader
            .import(request)
            .map(|offers| offers.into_iter().cloned().collect())
    }

    fn attach_policy(&mut self, policy: Box<dyn TradingPolicy>) {
        self.trader.attach_policy_boxed(policy);
    }

    fn offer_count(&mut self) -> usize {
        self.trader.offer_count()
    }
}

impl DirectoryPort for LocalPlatform {
    fn apply(&mut self, op: DirOp) -> Result<DirResult, DirectoryError> {
        self.emit(Layer::Directory, "dir.apply", format!("{}", op.target()));
        match op {
            DirOp::Add(entry) => {
                self.dit.add(entry)?;
                Ok(DirResult::Done)
            }
            DirOp::Remove(dn) => {
                self.dit.remove(&dn)?;
                Ok(DirResult::Done)
            }
            DirOp::Modify(dn, mods) => {
                self.dit.modify(&dn, |e| {
                    for m in &mods {
                        m.apply(e);
                    }
                })?;
                Ok(DirResult::Done)
            }
            DirOp::Rename(from, to) => {
                self.dit.rename(&from, to)?;
                Ok(DirResult::Done)
            }
            DirOp::Read(dn) => Ok(DirResult::Entry(self.dit.read(&dn)?.clone())),
            DirOp::Search(req) => Ok(DirResult::Search(self.dit.search(&req)?)),
        }
    }
}

impl TransportPort for LocalPlatform {
    fn notify(
        &mut self,
        from: &OrAddress,
        to: &OrAddress,
        subject: &str,
        body: &str,
    ) -> Result<u64, MtsError> {
        self.emit(Layer::Messaging, "mts.submit", format!("{from} -> {to}"));
        let id = self.next_message_id;
        self.next_message_id += 1;
        self.mailboxes.entry(to.clone()).or_default().push((
            from.clone(),
            subject.to_owned(),
            body.to_owned(),
        ));
        Ok(id)
    }

    fn delivered(&mut self, to: &OrAddress) -> Vec<String> {
        self.mailboxes
            .get(to)
            .map(|notes| {
                notes
                    .iter()
                    .map(|(_, subject, _)| subject.clone())
                    .collect()
            })
            .unwrap_or_default()
    }
}

impl Platform for LocalPlatform {
    fn name(&self) -> &'static str {
        "local"
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn clock(&self) -> &dyn Clock {
        &self.clock
    }

    fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    fn trader(&mut self) -> &mut dyn TraderPort {
        self
    }

    fn directory(&mut self) -> &mut dyn DirectoryPort {
        self
    }

    fn transport(&mut self) -> &mut dyn TransportPort {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cscw_directory::{Attribute, Entry};

    fn addr(name: &str) -> OrAddress {
        OrAddress::new("ZZ", "mocca", ["users"], name).unwrap()
    }

    #[test]
    fn directory_port_mirrors_dsa_semantics() {
        let mut p = LocalPlatform::new();
        let dn: cscw_directory::Dn = "cn=doc1".parse().unwrap();
        let entry = Entry::new(dn.clone())
            .with_class("cscwresource")
            .with_attr(Attribute::single("cn", "doc1"))
            .with_attr(Attribute::single("resourcetype", "document"));
        assert!(matches!(p.apply(DirOp::Add(entry)), Ok(DirResult::Done)));
        let got = p.apply(DirOp::Read(dn.clone())).unwrap();
        assert!(matches!(got, DirResult::Entry(e) if e.dn() == &dn));
        assert!(matches!(
            p.apply(DirOp::Remove("cn=ghost".parse().unwrap())),
            Err(DirectoryError::NoSuchEntry(_))
        ));
        assert_eq!(p.telemetry().counter(Layer::Directory, "dir.apply"), 3);
    }

    #[test]
    fn transport_port_delivers_in_memory() {
        let mut p = LocalPlatform::new();
        p.notify(&addr("env"), &addr("tom"), "artifact-exchanged", "doc1")
            .unwrap();
        p.notify(&addr("env"), &addr("tom"), "object-stored", "doc2")
            .unwrap();
        assert_eq!(
            p.delivered(&addr("tom")),
            vec!["artifact-exchanged".to_owned(), "object-stored".to_owned()]
        );
        assert!(p.delivered(&addr("nobody")).is_empty());
        assert_eq!(p.telemetry().counter(Layer::Messaging, "mts.submit"), 2);
    }
}
