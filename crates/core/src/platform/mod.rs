//! Engineering platforms: where the environment's distribution work
//! actually runs.
//!
//! §6 of the paper maps the MOCCA environment onto ODP engineering
//! functions — trading (§6.1), the directory-backed organisational
//! knowledge base, and message transfer. The [`Platform`] trait is that
//! mapping made explicit: a platform supplies the clock, the telemetry
//! stream, and three *ports* (trader, directory, transport) through
//! which every distribution-touching environment operation is lowered.
//!
//! Two implementations ship:
//!
//! * [`LocalPlatform`] — everything in-process, the zero-network fast
//!   path. This is what [`CscwEnvironment::new`] uses, and it preserves
//!   the pre-platform behaviour exactly.
//! * [`SimPlatform`] — the same ports lowered onto `simnet` nodes: a
//!   [`odp::TraderNode`], a [`cscw_directory::DsaNode`] and a
//!   [`cscw_messaging::MtaNode`] on a LAN, driven through the existing
//!   `RemoteTrader`/`Dua`/`UserAgent` facades. Every port call becomes
//!   real (simulated) wire traffic, so a single environment operation
//!   produces telemetry tagged at every layer of the Figure-4 stack.
//!
//! Both platforms run the same environment scenario suite; the layering
//! integration test asserts the per-layer telemetry story on the sim
//! platform.
//!
//! [`CscwEnvironment::new`]: crate::CscwEnvironment::new

mod local;
mod resilient;
mod sim;

pub use local::LocalPlatform;
pub use resilient::ResilientPlatform;
pub use sim::SimPlatform;

use cscw_directory::{DirOp, DirResult, DirectoryError};
use cscw_kernel::{Clock, Telemetry};
use cscw_messaging::{MtsError, OrAddress};
use odp::{
    ImportRequest, InterfaceRef, InterfaceType, OdpError, OfferId, ServiceOffer, TradingPolicy,
    Value,
};

/// The trading function (§6.1): service-offer export and policy-checked
/// import.
///
/// `import` returns owned offers because on a distributed platform the
/// offers crossed the wire to get here.
pub trait TraderPort {
    /// Registers a service type with the platform's trader.
    fn register_service_type(&mut self, iface: InterfaceType);

    /// Exports an offer of `service_type`.
    ///
    /// # Errors
    ///
    /// Conformance and availability errors from the trader.
    fn export(
        &mut self,
        service_type: &str,
        offering_type: &InterfaceType,
        interface: InterfaceRef,
        properties: Vec<(String, Value)>,
    ) -> Result<OfferId, OdpError>;

    /// Imports offers matching `request`, after policy filtering.
    ///
    /// # Errors
    ///
    /// [`OdpError::NoMatchingOffer`] and friends, or
    /// [`OdpError::Unavailable`] when the trader cannot be reached.
    fn import(&mut self, request: &ImportRequest) -> Result<Vec<ServiceOffer>, OdpError>;

    /// Attaches a trading policy to the platform's trader.
    fn attach_policy(&mut self, policy: Box<dyn TradingPolicy>);

    /// Number of offers the trader currently holds.
    fn offer_count(&mut self) -> usize;
}

/// The directory function: the X.500-shaped store behind the
/// organisational knowledge base.
pub trait DirectoryPort {
    /// Applies one directory operation.
    ///
    /// # Errors
    ///
    /// Any [`DirectoryError`] from the responsible DSA, or
    /// [`DirectoryError::Unavailable`] when none answers.
    fn apply(&mut self, op: DirOp) -> Result<DirResult, DirectoryError>;
}

/// The message-transfer function: X.400-shaped store-and-forward
/// notification.
pub trait TransportPort {
    /// Submits a notification message from `from` to `to`.
    ///
    /// # Errors
    ///
    /// [`MtsError`] variants for invalid addresses or failed transfer.
    fn notify(
        &mut self,
        from: &OrAddress,
        to: &OrAddress,
        subject: &str,
        body: &str,
    ) -> Result<u64, MtsError>;

    /// Subjects of messages delivered to `to` so far (test/observation
    /// hook).
    fn delivered(&mut self, to: &OrAddress) -> Vec<String>;
}

/// A pluggable engineering platform for the CSCW environment.
///
/// Object-safe on purpose: the environment holds `Box<dyn Platform>`,
/// so the application layer never knows whether its trading, directory
/// and messaging calls run in-process or across a simulated network.
pub trait Platform: std::any::Any {
    /// Short platform name (for diagnostics).
    fn name(&self) -> &'static str;

    /// The platform as [`Any`](std::any::Any), so harnesses that know
    /// the concrete type (fault injectors, bench probes) can reach it
    /// through the environment's `Box<dyn Platform>`.
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;

    /// The platform's clock (kernel time source).
    fn clock(&self) -> &dyn Clock;

    /// The platform's layer-tagged telemetry stream.
    fn telemetry(&self) -> &Telemetry;

    /// The trading port.
    fn trader(&mut self) -> &mut dyn TraderPort;

    /// The directory port.
    fn directory(&mut self) -> &mut dyn DirectoryPort;

    /// The message-transfer port.
    fn transport(&mut self) -> &mut dyn TransportPort;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn platform_trait_is_object_safe() {
        fn takes(_: &mut dyn Platform) {}
        let mut p = LocalPlatform::new();
        takes(&mut p);
        let mut boxed: Box<dyn Platform> = Box::new(LocalPlatform::new());
        assert_eq!(boxed.name(), "local");
        assert_eq!(boxed.trader().offer_count(), 0);
    }
}
