//! Failure-transparent decoration of a [`Platform`]'s ports.
//!
//! RM-ODP makes failure transparency an obligation of the engineering
//! infrastructure, not of applications (§6 maps MOCCA onto exactly that
//! infrastructure). [`ResilientPlatform`] discharges the obligation at
//! the port boundary: every fallible trader/directory/transport call on
//! the wrapped platform runs under a [`RetryPolicy`] (bounded
//! exponential backoff, jitter from the kernel's seeded RNG — so a
//! simulated run with a fixed seed replays exactly) and a per-port
//! [`CircuitBreaker`].
//!
//! When a breaker opens the platform *degrades* instead of failing
//! blindly:
//!
//! * trader imports fall back to the last-known offers for the service
//!   type, if any were ever seen;
//! * directory reads and searches are served from a stale-read cache,
//!   flagged by the `resilience.directory.stale_read` counter and a
//!   `resilience.stale_read` event;
//! * mutations and transport submissions are refused fast with the
//!   port's `Unavailable` error (a stale write would not be a write).
//!
//! Congestion is a first-class failure here: on a queue-bounded
//! simulated network ([`super::SimPlatform::with_link_spec`]) a shed
//! request produces the port's `Unavailable` error, which classifies
//! as *transient* — so sustained overload alone walks a breaker to
//! open, with zero injected faults.
//!
//! Everything the decorator does is visible in the platform's
//! [`Telemetry`] stream, tagged [`Layer::Env`] (the decorator lives
//! with the environment, above the ports it guards): per-port
//! `resilience.<port>.attempts` / `.retries` / `.rejected` /
//! `.degraded` counters plus `.breaker_open` / `.breaker_half_open` /
//! `.breaker_closed` transition counters.

use std::collections::BTreeMap;

use cscw_directory::{DirOp, DirResult, DirectoryError};
use cscw_kernel::{
    BreakerState, CircuitBreaker, Clock, Deadline, ErrorClass, Layer, LayerError, RetryPolicy,
    SeededRng, Telemetry, Timestamp,
};
use cscw_messaging::{MtsError, OrAddress};
use odp::{
    ImportRequest, InterfaceRef, InterfaceType, OdpError, OfferId, ServiceOffer, TradingPolicy,
    Value,
};

use super::{DirectoryPort, Platform, TraderPort, TransportPort};

/// Which port a policy decision concerns. Each port gets its own
/// breaker and its own telemetry counter names (counter names must be
/// `'static`, so they are enumerated here rather than formatted).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Port {
    Trader,
    Directory,
    Transport,
}

impl Port {
    fn attempts(self) -> &'static str {
        match self {
            Port::Trader => "resilience.trader.attempts",
            Port::Directory => "resilience.directory.attempts",
            Port::Transport => "resilience.transport.attempts",
        }
    }

    fn call_span(self) -> &'static str {
        match self {
            Port::Trader => "resilience.trader.call",
            Port::Directory => "resilience.directory.call",
            Port::Transport => "resilience.transport.call",
        }
    }

    fn retries(self) -> &'static str {
        match self {
            Port::Trader => "resilience.trader.retries",
            Port::Directory => "resilience.directory.retries",
            Port::Transport => "resilience.transport.retries",
        }
    }

    fn rejected(self) -> &'static str {
        match self {
            Port::Trader => "resilience.trader.rejected",
            Port::Directory => "resilience.directory.rejected",
            Port::Transport => "resilience.transport.rejected",
        }
    }

    fn degraded(self) -> &'static str {
        match self {
            Port::Trader => "resilience.trader.degraded",
            Port::Directory => "resilience.directory.degraded",
            Port::Transport => "resilience.transport.degraded",
        }
    }

    fn transition(self, to: BreakerState) -> &'static str {
        match (self, to) {
            (Port::Trader, BreakerState::Open) => "resilience.trader.breaker_open",
            (Port::Trader, BreakerState::HalfOpen) => "resilience.trader.breaker_half_open",
            (Port::Trader, BreakerState::Closed) => "resilience.trader.breaker_closed",
            (Port::Directory, BreakerState::Open) => "resilience.directory.breaker_open",
            (Port::Directory, BreakerState::HalfOpen) => "resilience.directory.breaker_half_open",
            (Port::Directory, BreakerState::Closed) => "resilience.directory.breaker_closed",
            (Port::Transport, BreakerState::Open) => "resilience.transport.breaker_open",
            (Port::Transport, BreakerState::HalfOpen) => "resilience.transport.breaker_half_open",
            (Port::Transport, BreakerState::Closed) => "resilience.transport.breaker_closed",
        }
    }
}

/// The policy state shared by all three ports, split from the wrapped
/// platform so the retry driver can borrow both halves at once.
#[derive(Debug)]
struct Resilience {
    policy: RetryPolicy,
    call_budget_micros: Option<u64>,
    rng: SeededRng,
    trader_breaker: CircuitBreaker,
    directory_breaker: CircuitBreaker,
    transport_breaker: CircuitBreaker,
    telemetry: Telemetry,
}

impl Resilience {
    fn breaker(&mut self, port: Port) -> &mut CircuitBreaker {
        match port {
            Port::Trader => &mut self.trader_breaker,
            Port::Directory => &mut self.directory_breaker,
            Port::Transport => &mut self.transport_breaker,
        }
    }

    fn note_transitions(&mut self, port: Port, before: BreakerState, now_micros: u64) {
        let after = self.breaker(port).state();
        if before != after {
            // A breaker transition gets its own span so the trace that
            // tripped (or re-closed) the breaker shows it in its tree.
            let span = self
                .telemetry
                .span_begin(Layer::Env, "resilience.breaker", now_micros);
            self.telemetry.incr(Layer::Env, port.transition(after));
            self.telemetry.emit(
                now_micros,
                Layer::Env,
                "resilience.breaker",
                format!("{port:?} {} -> {}", before.as_str(), after.as_str()),
            );
            self.telemetry.span_end(span, now_micros);
        }
    }
}

/// How one policed call ended.
enum CallOutcome<T, E> {
    /// The wrapped port answered (possibly after retries).
    Ok(T),
    /// The breaker was open: the call never reached the port.
    Rejected,
    /// The port failed and the policy gave up.
    Failed(E),
}

/// Drives one port call under the retry policy and breaker.
///
/// Borrow note: `inner` and `ctl` are disjoint fields of
/// [`ResilientPlatform`], split at every call site so the closure may
/// take the platform while the driver mutates the policy state.
fn policed<T, E: LayerError>(
    inner: &mut dyn Platform,
    ctl: &mut Resilience,
    port: Port,
    op: &'static str,
    call: impl FnMut(&mut dyn Platform) -> Result<T, E>,
) -> CallOutcome<T, E> {
    // One span per policed port call: retries, backoffs and breaker
    // transitions all nest under it — and under whatever trace the
    // caller (e.g. an `exchange`) has open — so resilience activity is
    // attributable to the operation that triggered it.
    let start = inner.clock().now_micros();
    let span = ctl
        .telemetry
        .span_begin(Layer::Env, port.call_span(), start);
    let outcome = policed_attempts(inner, ctl, port, op, call);
    let end = inner.clock().now_micros();
    ctl.telemetry.span_end(span, end);
    outcome
}

/// The retry loop of [`policed`], separated so the wrapping span closes
/// on every exit path.
fn policed_attempts<T, E: LayerError>(
    inner: &mut dyn Platform,
    ctl: &mut Resilience,
    port: Port,
    op: &'static str,
    mut call: impl FnMut(&mut dyn Platform) -> Result<T, E>,
) -> CallOutcome<T, E> {
    let start = Timestamp::from_micros(inner.clock().now_micros());
    let deadline = match ctl.call_budget_micros {
        Some(budget) => Deadline::within(start, budget),
        None => Deadline::NEVER,
    };
    let before = ctl.breaker(port).state();
    if !ctl.breaker(port).admit(start) {
        ctl.telemetry.incr(Layer::Env, port.rejected());
        return CallOutcome::Rejected;
    }
    ctl.note_transitions(port, before, start.as_micros());

    let mut attempt: u32 = 0;
    loop {
        ctl.telemetry.incr(Layer::Env, port.attempts());
        let result = call(inner);
        let now = Timestamp::from_micros(inner.clock().now_micros());
        match result {
            Ok(value) => {
                let before = ctl.breaker(port).state();
                ctl.breaker(port).record_success();
                ctl.note_transitions(port, before, now.as_micros());
                return CallOutcome::Ok(value);
            }
            Err(e) => {
                let class = e.class();
                let before = ctl.breaker(port).state();
                if class.is_transient() {
                    // An infrastructure fault: count it against the
                    // breaker.
                    ctl.breaker(port).record_failure(now);
                } else {
                    // The port *answered*, with a fault of the request;
                    // connectivity-wise that is a success.
                    ctl.breaker(port).record_success();
                }
                ctl.note_transitions(port, before, now.as_micros());
                let retryable = ctl.policy.should_retry(attempt, class)
                    && ctl.breaker(port).state() == BreakerState::Closed;
                if !retryable {
                    return CallOutcome::Failed(e);
                }
                let backoff = ctl.policy.backoff_micros(attempt, &mut ctl.rng);
                if deadline.expired(now) || backoff > deadline.remaining_micros(now) {
                    return CallOutcome::Failed(e);
                }
                // The retry span covers the backoff wait; its end is
                // the wait's end in platform time even though the
                // simulated clock does not advance during it.
                let retry_span =
                    ctl.telemetry
                        .span_begin(Layer::Env, "resilience.retry", now.as_micros());
                ctl.telemetry.incr(Layer::Env, port.retries());
                ctl.telemetry
                    .record_micros(Layer::Env, "resilience.backoff", backoff);
                ctl.telemetry.emit(
                    now.as_micros(),
                    Layer::Env,
                    "resilience.retry",
                    format!("{op} attempt {} backoff {backoff}µs", attempt + 1),
                );
                ctl.telemetry
                    .span_end(retry_span, now.as_micros().saturating_add(backoff));
                attempt += 1;
            }
        }
    }
}

/// A [`Platform`] decorator that masks transient port faults.
///
/// Wrap any platform and hand the result to the environment:
///
/// ```
/// use mocca::{CscwEnvironment, LocalPlatform, ResilientPlatform};
///
/// let platform = ResilientPlatform::new(Box::new(LocalPlatform::new()));
/// let env = CscwEnvironment::with_platform(Box::new(platform));
/// assert_eq!(env.platform().name(), "resilient");
/// ```
pub struct ResilientPlatform {
    inner: Box<dyn Platform>,
    ctl: Resilience,
    /// Last successful offers per service type — the degraded answer
    /// when the trader breaker is open.
    offer_cache: BTreeMap<String, Vec<ServiceOffer>>,
    /// Last successful read/search results, keyed by the operation —
    /// the (stale) degraded answer when the directory breaker is open.
    read_cache: BTreeMap<String, DirResult>,
}

impl ResilientPlatform {
    /// Breaker threshold: consecutive transient failures before a port
    /// opens.
    const DEFAULT_FAILURE_THRESHOLD: u32 = 3;
    /// Breaker cooldown in platform time before a half-open probe.
    const DEFAULT_COOLDOWN_MICROS: u64 = 200_000;

    /// Wraps `inner` with the default policy (three attempts, 10 ms
    /// base backoff, breakers opening after three consecutive transient
    /// failures, 200 ms cooldown, jitter seed 0).
    pub fn new(inner: Box<dyn Platform>) -> Self {
        let telemetry = inner.telemetry().clone();
        ResilientPlatform {
            inner,
            ctl: Resilience {
                policy: RetryPolicy::default(),
                call_budget_micros: None,
                rng: SeededRng::seed_from(0),
                trader_breaker: Self::default_breaker(),
                directory_breaker: Self::default_breaker(),
                transport_breaker: Self::default_breaker(),
                telemetry,
            },
            offer_cache: BTreeMap::new(),
            read_cache: BTreeMap::new(),
        }
    }

    fn default_breaker() -> CircuitBreaker {
        CircuitBreaker::new(
            Self::DEFAULT_FAILURE_THRESHOLD,
            Self::DEFAULT_COOLDOWN_MICROS,
        )
    }

    /// Replaces the retry policy.
    pub fn with_policy(mut self, policy: RetryPolicy) -> Self {
        self.ctl.policy = policy;
        self
    }

    /// Re-seeds the jitter stream (keep this in step with the
    /// platform's own seed for a fully reproducible run).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.ctl.rng = SeededRng::seed_from(seed);
        self
    }

    /// Replaces all three breakers with `CircuitBreaker::new(threshold,
    /// cooldown_micros)`.
    pub fn with_breakers(mut self, threshold: u32, cooldown_micros: u64) -> Self {
        self.ctl.trader_breaker = CircuitBreaker::new(threshold, cooldown_micros);
        self.ctl.directory_breaker = CircuitBreaker::new(threshold, cooldown_micros);
        self.ctl.transport_breaker = CircuitBreaker::new(threshold, cooldown_micros);
        self
    }

    /// Caps the platform time one policed call (retries included) may
    /// consume before the policy gives up.
    pub fn with_call_budget_micros(mut self, budget: u64) -> Self {
        self.ctl.call_budget_micros = Some(budget);
        self
    }

    /// The wrapped platform, for fault injection in tests.
    pub fn inner_mut(&mut self) -> &mut dyn Platform {
        self.inner.as_mut()
    }

    /// Current `(trader, directory, transport)` breaker states, for
    /// observation by harnesses and health surfaces.
    pub fn breaker_states(&self) -> (BreakerState, BreakerState, BreakerState) {
        (
            self.ctl.trader_breaker.state(),
            self.ctl.directory_breaker.state(),
            self.ctl.transport_breaker.state(),
        )
    }

    fn now_micros(&self) -> u64 {
        self.inner.clock().now_micros()
    }
}

impl std::fmt::Debug for ResilientPlatform {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResilientPlatform")
            .field("inner", &self.inner.name())
            .field("policy", &self.ctl.policy)
            .field("trader_breaker", &self.ctl.trader_breaker.state())
            .field("directory_breaker", &self.ctl.directory_breaker.state())
            .field("transport_breaker", &self.ctl.transport_breaker.state())
            .finish()
    }
}

impl Platform for ResilientPlatform {
    fn name(&self) -> &'static str {
        "resilient"
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn clock(&self) -> &dyn Clock {
        self.inner.clock()
    }

    fn telemetry(&self) -> &Telemetry {
        // The handle captured at construction: the same stream as the
        // wrapped platform's, but stable across `inner` swaps in tests.
        &self.ctl.telemetry
    }

    fn trader(&mut self) -> &mut dyn TraderPort {
        self
    }

    fn directory(&mut self) -> &mut dyn DirectoryPort {
        self
    }

    fn transport(&mut self) -> &mut dyn TransportPort {
        self
    }
}

impl TraderPort for ResilientPlatform {
    fn register_service_type(&mut self, iface: InterfaceType) {
        self.inner.trader().register_service_type(iface);
    }

    fn export(
        &mut self,
        service_type: &str,
        offering_type: &InterfaceType,
        interface: InterfaceRef,
        properties: Vec<(String, Value)>,
    ) -> Result<OfferId, OdpError> {
        match policed(
            self.inner.as_mut(),
            &mut self.ctl,
            Port::Trader,
            "trader.export",
            |p| {
                p.trader().export(
                    service_type,
                    offering_type,
                    interface.clone(),
                    properties.clone(),
                )
            },
        ) {
            CallOutcome::Ok(id) => Ok(id),
            // There is no safe degraded answer for an export: the offer
            // either reached the trader or it did not.
            CallOutcome::Rejected => Err(OdpError::Unavailable(
                "trader breaker open; export refused".into(),
            )),
            CallOutcome::Failed(e) => Err(e),
        }
    }

    fn import(&mut self, request: &ImportRequest) -> Result<Vec<ServiceOffer>, OdpError> {
        match policed(
            self.inner.as_mut(),
            &mut self.ctl,
            Port::Trader,
            "trader.import",
            |p| p.trader().import(request),
        ) {
            CallOutcome::Ok(offers) => {
                self.offer_cache
                    .insert(request.service_type.clone(), offers.clone());
                Ok(offers)
            }
            CallOutcome::Rejected => self.degraded_import(request, None),
            CallOutcome::Failed(e) if e.class() == ErrorClass::Transient => {
                self.degraded_import(request, Some(e))
            }
            CallOutcome::Failed(e) => Err(e),
        }
    }

    fn attach_policy(&mut self, policy: Box<dyn TradingPolicy>) {
        self.inner.trader().attach_policy(policy);
    }

    fn offer_count(&mut self) -> usize {
        self.inner.trader().offer_count()
    }
}

impl ResilientPlatform {
    /// Serves the last-known offers for the requested service type, or
    /// surfaces the failure when nothing was ever cached.
    fn degraded_import(
        &mut self,
        request: &ImportRequest,
        cause: Option<OdpError>,
    ) -> Result<Vec<ServiceOffer>, OdpError> {
        if let Some(offers) = self.offer_cache.get(&request.service_type) {
            self.ctl.telemetry.incr(Layer::Env, Port::Trader.degraded());
            self.ctl.telemetry.emit(
                self.now_micros(),
                Layer::Env,
                "resilience.stale_offers",
                format!(
                    "served {} cached offer(s) for {:?}",
                    offers.len(),
                    request.service_type
                ),
            );
            return Ok(offers.clone());
        }
        Err(cause.unwrap_or_else(|| {
            OdpError::Unavailable("trader breaker open; no cached offers".into())
        }))
    }

    /// Serves a stale read/search answer, or surfaces the failure.
    fn degraded_dir(
        &mut self,
        key: Option<String>,
        cause: Option<DirectoryError>,
    ) -> Result<DirResult, DirectoryError> {
        if let Some(result) = key.as_ref().and_then(|k| self.read_cache.get(k)) {
            self.ctl
                .telemetry
                .incr(Layer::Env, "resilience.directory.stale_read");
            self.ctl
                .telemetry
                .incr(Layer::Env, Port::Directory.degraded());
            self.ctl.telemetry.emit(
                self.now_micros(),
                Layer::Env,
                "resilience.stale_read",
                key.unwrap_or_default(),
            );
            return Ok(result.clone());
        }
        Err(cause.unwrap_or_else(|| {
            DirectoryError::Unavailable("directory breaker open; no cached answer".into())
        }))
    }
}

impl DirectoryPort for ResilientPlatform {
    fn apply(&mut self, op: DirOp) -> Result<DirResult, DirectoryError> {
        // Only queries may legally be answered from cache; a "stale
        // write" would silently drop the mutation.
        let cache_key = (!op.is_write()).then(|| format!("{op:?}"));
        match policed(
            self.inner.as_mut(),
            &mut self.ctl,
            Port::Directory,
            "directory.apply",
            |p| p.directory().apply(op.clone()),
        ) {
            CallOutcome::Ok(result) => {
                if let Some(key) = cache_key {
                    self.read_cache.insert(key, result.clone());
                }
                Ok(result)
            }
            CallOutcome::Rejected => self.degraded_dir(cache_key, None),
            CallOutcome::Failed(e) if e.class() == ErrorClass::Transient => {
                self.degraded_dir(cache_key, Some(e))
            }
            CallOutcome::Failed(e) => Err(e),
        }
    }
}

impl TransportPort for ResilientPlatform {
    fn notify(
        &mut self,
        from: &OrAddress,
        to: &OrAddress,
        subject: &str,
        body: &str,
    ) -> Result<u64, MtsError> {
        match policed(
            self.inner.as_mut(),
            &mut self.ctl,
            Port::Transport,
            "transport.notify",
            |p| p.transport().notify(from, to, subject, body),
        ) {
            CallOutcome::Ok(id) => Ok(id),
            // A notification cannot be served stale: refuse fast.
            CallOutcome::Rejected => Err(MtsError::Unavailable(
                "transport breaker open; submission refused".into(),
            )),
            CallOutcome::Failed(e) => Err(e),
        }
    }

    fn delivered(&mut self, to: &OrAddress) -> Vec<String> {
        self.inner.transport().delivered(to)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::LocalPlatform;

    /// A platform whose ports fail with a transient error for the first
    /// `failures` calls, then delegate to a LocalPlatform.
    struct Flaky {
        inner: LocalPlatform,
        failures: u32,
        clock: cscw_kernel::ManualClock,
    }

    impl Flaky {
        fn new(failures: u32) -> Self {
            Flaky {
                inner: LocalPlatform::new(),
                failures,
                clock: cscw_kernel::ManualClock::new(),
            }
        }

        fn take_failure(&mut self) -> bool {
            // Each port call costs some platform time, like a real wire.
            self.clock.set_micros(self.clock.now_micros() + 1_000);
            if self.failures > 0 {
                self.failures -= 1;
                true
            } else {
                false
            }
        }
    }

    impl Platform for Flaky {
        fn name(&self) -> &'static str {
            "flaky"
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
        fn clock(&self) -> &dyn Clock {
            &self.clock
        }
        fn telemetry(&self) -> &Telemetry {
            self.inner.telemetry()
        }
        fn trader(&mut self) -> &mut dyn TraderPort {
            self
        }
        fn directory(&mut self) -> &mut dyn DirectoryPort {
            self
        }
        fn transport(&mut self) -> &mut dyn TransportPort {
            self
        }
    }

    impl TraderPort for Flaky {
        fn register_service_type(&mut self, iface: InterfaceType) {
            self.inner.trader().register_service_type(iface);
        }
        fn export(
            &mut self,
            service_type: &str,
            offering_type: &InterfaceType,
            interface: InterfaceRef,
            properties: Vec<(String, Value)>,
        ) -> Result<OfferId, OdpError> {
            if self.take_failure() {
                return Err(OdpError::Unavailable("flaky".into()));
            }
            self.inner
                .trader()
                .export(service_type, offering_type, interface, properties)
        }
        fn import(&mut self, request: &ImportRequest) -> Result<Vec<ServiceOffer>, OdpError> {
            if self.take_failure() {
                return Err(OdpError::Unavailable("flaky".into()));
            }
            self.inner.trader().import(request)
        }
        fn attach_policy(&mut self, policy: Box<dyn TradingPolicy>) {
            self.inner.trader().attach_policy(policy);
        }
        fn offer_count(&mut self) -> usize {
            self.inner.trader().offer_count()
        }
    }

    impl DirectoryPort for Flaky {
        fn apply(&mut self, op: DirOp) -> Result<DirResult, DirectoryError> {
            if self.take_failure() {
                return Err(DirectoryError::Unavailable("flaky".into()));
            }
            self.inner.directory().apply(op)
        }
    }

    impl TransportPort for Flaky {
        fn notify(
            &mut self,
            from: &OrAddress,
            to: &OrAddress,
            subject: &str,
            body: &str,
        ) -> Result<u64, MtsError> {
            if self.take_failure() {
                return Err(MtsError::Unavailable("flaky".into()));
            }
            self.inner.transport().notify(from, to, subject, body)
        }
        fn delivered(&mut self, to: &OrAddress) -> Vec<String> {
            self.inner.transport().delivered(to)
        }
    }

    fn offer_world(p: &mut ResilientPlatform) {
        let iface = InterfaceType::new("printer");
        p.trader().register_service_type(iface.clone());
        p.trader()
            .export(
                "printer",
                &iface,
                InterfaceRef {
                    object: "printer-1".into(),
                    node: simnet::NodeId::from_raw(0),
                    interface: "printer".into(),
                },
                vec![],
            )
            .unwrap();
    }

    #[test]
    fn retries_mask_transient_faults() {
        let mut p = ResilientPlatform::new(Box::new(Flaky::new(2)))
            .with_policy(RetryPolicy::new(3, 10, 100));
        offer_world(&mut p); // first two calls fail, retried through
        let offers = p.trader().import(&ImportRequest::any("printer")).unwrap();
        assert_eq!(offers.len(), 1);
        let t = p.telemetry().clone();
        assert!(t.counter(Layer::Env, "resilience.trader.retries") >= 2);
        assert!(
            t.counter(Layer::Env, "resilience.trader.attempts")
                > t.counter(Layer::Env, "resilience.trader.retries")
        );
    }

    #[test]
    fn permanent_errors_are_not_retried() {
        let mut p = ResilientPlatform::new(Box::new(LocalPlatform::new()));
        let err = p
            .trader()
            .import(&ImportRequest::any("nonexistent"))
            .unwrap_err();
        assert_eq!(err.class(), ErrorClass::Permanent);
        let t = p.telemetry().clone();
        assert_eq!(t.counter(Layer::Env, "resilience.trader.retries"), 0);
        assert_eq!(t.counter(Layer::Env, "resilience.trader.attempts"), 1);
    }

    #[test]
    fn exhausted_retries_open_the_breaker_and_serve_cached_offers() {
        // 1 attempt per call, breaker opens after 2 transient failures.
        // Warm the cache while the inner platform is healthy.
        let mut warm = ResilientPlatform::new(Box::new(Flaky::new(0)))
            .with_policy(RetryPolicy::none())
            .with_breakers(2, 1_000_000);
        offer_world(&mut warm);
        let req = ImportRequest::any("printer");
        let live = warm.trader().import(&req).unwrap();
        assert_eq!(live.len(), 1);

        // Now make the inner platform permanently flaky and trip the
        // breaker: two transient failures.
        warm.inner = Box::new(Flaky::new(u32::MAX));
        let first = warm.trader().import(&req);
        assert!(first.is_ok(), "degraded answer after transient failure");
        let second = warm.trader().import(&req);
        assert!(second.is_ok());
        let t = warm.telemetry().clone();
        assert!(t.counter(Layer::Env, "resilience.trader.breaker_open") >= 1);
        // Breaker now open: the next call never reaches the port.
        let attempts_before = t.counter(Layer::Env, "resilience.trader.attempts");
        let third = warm.trader().import(&req).unwrap();
        assert_eq!(third.len(), 1, "cached offers served while open");
        assert_eq!(
            t.counter(Layer::Env, "resilience.trader.attempts"),
            attempts_before,
            "open breaker short-circuits the port call"
        );
        assert!(t.counter(Layer::Env, "resilience.trader.degraded") >= 1);
    }

    #[test]
    fn directory_serves_stale_reads_flagged_as_such() {
        use cscw_directory::{Attribute, Entry};
        let mut p = ResilientPlatform::new(Box::new(Flaky::new(0)))
            .with_policy(RetryPolicy::none())
            .with_breakers(1, 1_000_000);
        let dn: cscw_directory::Dn = "c=UK".parse().unwrap();
        let entry = Entry::new(dn.clone())
            .with_class("country")
            .with_attr(Attribute::single("c", "UK"));
        p.directory().apply(DirOp::Add(entry)).unwrap();
        let fresh = p.directory().apply(DirOp::Read(dn.clone())).unwrap();
        assert!(matches!(fresh, DirResult::Entry(_)));

        // Break the inner platform; the read now degrades to the cache.
        p.inner = Box::new(Flaky::new(u32::MAX));
        let stale = p.directory().apply(DirOp::Read(dn.clone())).unwrap();
        assert_eq!(stale, fresh, "stale answer equals the last good one");
        let t = p.telemetry().clone();
        assert!(t.counter(Layer::Env, "resilience.directory.stale_read") >= 1);
        assert!(
            t.events().iter().any(|e| e.name == "resilience.stale_read"),
            "stale reads are flagged in the event stream"
        );

        // Mutations are never served stale.
        let err = p.directory().apply(DirOp::Remove(dn)).unwrap_err();
        assert!(matches!(err, DirectoryError::Unavailable(_)));
    }

    #[test]
    fn transport_refuses_fast_when_open_and_never_fakes_delivery() {
        let mut p = ResilientPlatform::new(Box::new(Flaky::new(u32::MAX)))
            .with_policy(RetryPolicy::none())
            .with_breakers(1, 1_000_000);
        let a: OrAddress = "C=UK;O=X;PN=A".parse().unwrap();
        let b: OrAddress = "C=UK;O=X;PN=B".parse().unwrap();
        let first = p.transport().notify(&a, &b, "s", "b").unwrap_err();
        assert!(matches!(first, MtsError::Unavailable(_)));
        let t = p.telemetry().clone();
        let attempts = t.counter(Layer::Env, "resilience.transport.attempts");
        let second = p.transport().notify(&a, &b, "s", "b").unwrap_err();
        assert!(matches!(second, MtsError::Unavailable(_)));
        assert_eq!(
            t.counter(Layer::Env, "resilience.transport.attempts"),
            attempts,
            "open breaker refuses without touching the port"
        );
        assert!(t.counter(Layer::Env, "resilience.transport.rejected") >= 1);
    }

    #[test]
    fn congestion_alone_opens_a_breaker_with_zero_injected_faults() {
        use crate::platform::SimPlatform;
        use simnet::{LinkSpec, NodeId, Payload, SimDuration};

        // A slow, queue-bounded mesh: 10 kB/s wires that hold at most
        // 4 queued messages. No fault is ever injected — the only
        // adversary is offered load.
        let spec = LinkSpec::fixed(SimDuration::from_millis(1))
            .with_bandwidth(10_000)
            .with_queue_capacity_msgs(4);
        let sim_platform = SimPlatform::with_link_spec(7, Telemetry::new(), spec);
        let mut p = ResilientPlatform::new(Box::new(sim_platform))
            .with_policy(RetryPolicy::none())
            .with_breakers(3, 1_000_000);

        // Flood the trader-client → trader wire with junk so the
        // facade's next request is shed by the full queue.
        let flood = |p: &mut ResilientPlatform| {
            let sp = p
                .inner
                .as_any_mut()
                .downcast_mut::<SimPlatform>()
                .expect("inner is the sim platform");
            let sim = sp.sim_mut();
            let (client, trader) = (NodeId::from_raw(0), NodeId::from_raw(3));
            for _ in 0..8 {
                sim.send_from(client, trader, Payload::new(0u32), 600);
            }
        };

        for _ in 0..3 {
            flood(&mut p);
            let err = p
                .trader()
                .import(&odp::ImportRequest::any("printer"))
                .unwrap_err();
            assert!(matches!(err, OdpError::Unavailable(_)), "got {err:?}");
        }
        let (trader_breaker, _, _) = p.breaker_states();
        assert_eq!(
            trader_breaker,
            BreakerState::Open,
            "three congestion-shed requests must trip the trader breaker"
        );
        let t = p.telemetry().clone();
        assert_eq!(t.counter(Layer::Env, "resilience.trader.breaker_open"), 1);
        // The drops really came from queue overflow, not faults.
        let sp = p
            .inner
            .as_any_mut()
            .downcast_mut::<SimPlatform>()
            .expect("inner is the sim platform");
        assert!(sp.sim().metrics().counter("dropped_queue_full") >= 3);
        assert_eq!(sp.sim().metrics().counter("dropped_node_down"), 0);
        assert_eq!(sp.sim().metrics().counter("dropped_partitioned"), 0);
    }

    #[test]
    fn jitter_is_reproducible_per_seed() {
        // Two identically-seeded decorators over identically-flaky
        // platforms record identical backoff samples.
        let run = |seed: u64| {
            let mut p = ResilientPlatform::new(Box::new(Flaky::new(2)))
                .with_policy(RetryPolicy::new(3, 1_000, 64_000))
                .with_seed(seed);
            offer_world(&mut p);
            p.telemetry()
                .histogram(Layer::Env, "resilience.backoff")
                .map(|h| (h.count, h.min_micros, h.max_micros, h.mean_micros))
        };
        assert_eq!(run(7), run(7));
        assert!(run(7).is_some());
    }
}
