//! The simulated distributed platform: ports lowered onto `simnet`
//! nodes.
//!
//! conform: allow-file(R1) — this file IS the designated adapter that
//! lowers the environment's ports onto `simnet`; naming the net layer
//! here is the point, not a bypass.
//!
//! conform: allow-file(R4) — the platform front-end narrates the layer
//! each port call lowers *into* (Odp/Directory/Messaging), which is
//! what makes the F4 layering bench's per-layer cost attribution work.

use cscw_directory::{DirOp, DirResult, DirectoryError, Dn, DsaNode, Dua, DuaNode};
use cscw_kernel::{Clock, Layer, ManualClock, Telemetry};
use cscw_messaging::{Ipm, MtaNode, MtsError, OrAddress, SubmitOptions, UserAgent};
use odp::{
    ImportRequest, InterfaceRef, InterfaceType, OdpError, OfferId, RemoteTrader, ServiceOffer,
    Trader, TraderClientNode, TraderNode, TradingPolicy, Value,
};
use simnet::{LinkSpec, NodeId, Sim, TopologyBuilder};

use super::{DirectoryPort, Platform, TraderPort, TransportPort};

/// The environment's courier address: notifications are submitted from
/// this mailbox on behalf of the real originator (who stays in the IPM
/// heading).
fn courier_address() -> OrAddress {
    // conform: allow(R2) — literal address, validated by construction
    OrAddress::new("ZZ", "mocca", ["env"], "courier").expect("static address is valid")
}

/// The environment's engineering functions hosted on a six-node
/// simulated LAN: a trader, a DSA and an MTA, each reached through its
/// standard client facade ([`RemoteTrader`], [`Dua`], [`UserAgent`]).
/// Every port call becomes wire traffic, so one environment operation
/// leaves telemetry at every layer of the Figure-4 stack.
pub struct SimPlatform {
    sim: Sim,
    telemetry: Telemetry,
    clock: ManualClock,
    mta_node: NodeId,
    trader_node: NodeId,
    remote_trader: RemoteTrader,
    dua: Dua,
    courier: UserAgent,
}

impl std::fmt::Debug for SimPlatform {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimPlatform")
            .field("now_micros", &self.sim.now().as_micros())
            .finish_non_exhaustive()
    }
}

impl SimPlatform {
    /// Builds the platform: trader, DSA (mastering the whole tree) and
    /// MTA on a full-mesh LAN, plus a client node per facade, with a
    /// shared telemetry stream attached to the network.
    pub fn new(seed: u64) -> Self {
        Self::with_telemetry(seed, Telemetry::new())
    }

    /// Like [`SimPlatform::new`], but emitting into a caller-supplied
    /// telemetry stream. Federated environments that share one stream
    /// this way get *cross-site* traces: a remote exchange's delivery
    /// spans join the sending exchange's tree.
    pub fn with_telemetry(seed: u64, telemetry: Telemetry) -> Self {
        Self::with_link_spec(seed, telemetry, LinkSpec::lan())
    }

    /// Like [`SimPlatform::with_telemetry`], but meshing the six nodes
    /// with a caller-chosen [`LinkSpec`]. This is how congestion
    /// scenarios host an environment on a *bounded, slow* network:
    /// with a queue-bounded spec the engineering functions share
    /// contended wires, and a flooded link sheds port traffic instead
    /// of buffering it forever.
    pub fn with_link_spec(seed: u64, telemetry: Telemetry, spec: LinkSpec) -> Self {
        let mut b = TopologyBuilder::new();
        let trader_client = b.add_node("env-trader-client");
        let dua_client = b.add_node("env-dua-client");
        let ua_node = b.add_node("env-user-agent");
        let trader_node = b.add_node("trader");
        let dsa_node = b.add_node("dsa");
        let mta_node = b.add_node("mta");
        b.full_mesh(spec);
        let mut sim = Sim::new(b.build(), seed);

        sim.attach_telemetry(telemetry.clone());
        let clock = sim.kernel_clock();

        sim.register(trader_node, TraderNode::new(Trader::new("mocca-trader")));
        sim.register(dsa_node, DsaNode::new([Dn::root()]));
        let mut mta = MtaNode::new("mocca-mta");
        mta.register_mailbox(courier_address());
        sim.register(mta_node, mta);
        sim.register(trader_client, TraderClientNode::default());
        sim.register(dua_client, DuaNode::default());

        SimPlatform {
            remote_trader: RemoteTrader::new(trader_client, trader_node),
            dua: Dua::new(dua_client, dsa_node),
            courier: UserAgent::new(courier_address(), ua_node, mta_node),
            sim,
            telemetry,
            clock,
            mta_node,
            trader_node,
        }
    }

    /// The underlying simulation (to inject faults or inspect metrics).
    pub fn sim(&self) -> &Sim {
        &self.sim
    }

    /// Mutable simulation access.
    pub fn sim_mut(&mut self) -> &mut Sim {
        &mut self.sim
    }

    fn emit(&self, layer: Layer, name: &'static str, detail: String) {
        self.telemetry.incr(layer, name);
        self.telemetry
            .emit(self.clock.now_micros(), layer, name, detail);
    }

    /// Opens the span a port call lowers into — the layer crossing the
    /// Figure-4 bench attributes cost to. Simnet send/deliver spans
    /// open beneath it while the call runs the event loop.
    fn port_span(&self, layer: Layer, name: &'static str) -> cscw_kernel::SpanContext {
        self.telemetry
            .span_begin(layer, name, self.clock.now_micros())
    }

    fn end_span(&self, ctx: cscw_kernel::SpanContext) {
        self.telemetry.span_end(ctx, self.clock.now_micros());
    }
}

impl TraderPort for SimPlatform {
    fn register_service_type(&mut self, iface: InterfaceType) {
        // Administrative setup, done directly at the trader's node.
        if let Some(node) = self.sim.node_mut::<TraderNode>(self.trader_node) {
            node.trader_mut().register_service_type(iface);
        }
    }

    fn export(
        &mut self,
        service_type: &str,
        offering_type: &InterfaceType,
        interface: InterfaceRef,
        properties: Vec<(String, Value)>,
    ) -> Result<OfferId, OdpError> {
        let span = self.port_span(Layer::Odp, "odp.export");
        self.emit(Layer::Odp, "odp.export", format!("offer of {service_type}"));
        let result = self.remote_trader.export(
            &mut self.sim,
            service_type,
            offering_type,
            interface,
            properties,
        );
        self.end_span(span);
        result
    }

    fn import(&mut self, request: &ImportRequest) -> Result<Vec<ServiceOffer>, OdpError> {
        let span = self.port_span(Layer::Odp, "odp.import");
        self.emit(
            Layer::Odp,
            "odp.import",
            format!("seeking {}", request.service_type),
        );
        let result = self.remote_trader.import(&mut self.sim, request.clone());
        self.end_span(span);
        result
    }

    fn attach_policy(&mut self, policy: Box<dyn TradingPolicy>) {
        if let Some(node) = self.sim.node_mut::<TraderNode>(self.trader_node) {
            node.trader_mut().attach_policy_boxed(policy);
        }
    }

    fn offer_count(&mut self) -> usize {
        self.sim
            .node::<TraderNode>(self.trader_node)
            .map(|n| n.trader().offer_count())
            .unwrap_or(0)
    }
}

impl DirectoryPort for SimPlatform {
    fn apply(&mut self, op: DirOp) -> Result<DirResult, DirectoryError> {
        let span = self.port_span(Layer::Directory, "dir.apply");
        self.emit(Layer::Directory, "dir.apply", format!("{}", op.target()));
        let result = self.dua.perform(&mut self.sim, op);
        self.end_span(span);
        result
    }
}

impl TransportPort for SimPlatform {
    fn notify(
        &mut self,
        from: &OrAddress,
        to: &OrAddress,
        subject: &str,
        body: &str,
    ) -> Result<u64, MtsError> {
        let span = self.port_span(Layer::Messaging, "mts.submit");
        self.emit(Layer::Messaging, "mts.submit", format!("{from} -> {to}"));
        if let Some(mta) = self.sim.node_mut::<MtaNode>(self.mta_node) {
            mta.register_mailbox(to.clone());
        }
        // The courier submits; the real originator rides in the heading.
        let ipm = Ipm::text(from.clone(), to.clone(), subject, body);
        let id = self
            .courier
            .submit_and_run(&mut self.sim, ipm, SubmitOptions::default());
        self.end_span(span);
        Ok(id)
    }

    fn delivered(&mut self, to: &OrAddress) -> Vec<String> {
        self.sim
            .node::<MtaNode>(self.mta_node)
            .and_then(|mta| mta.mailbox(to))
            .map(|store| {
                store
                    .inbox()
                    .iter()
                    .map(|m| m.ipm.heading.subject.clone())
                    .collect()
            })
            .unwrap_or_default()
    }
}

impl Platform for SimPlatform {
    fn name(&self) -> &'static str {
        "sim"
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn clock(&self) -> &dyn Clock {
        &self.clock
    }

    fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    fn trader(&mut self) -> &mut dyn TraderPort {
        self
    }

    fn directory(&mut self) -> &mut dyn DirectoryPort {
        self
    }

    fn transport(&mut self) -> &mut dyn TransportPort {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cscw_directory::{Attribute, Entry};
    use odp::OperationSig;

    fn printer_type() -> InterfaceType {
        InterfaceType::new("printer").with_operation(OperationSig::new(
            "print",
            [odp::ValueKind::Text],
            odp::ValueKind::Bool,
        ))
    }

    #[test]
    fn trader_port_crosses_the_wire() {
        let mut p = SimPlatform::new(7);
        p.register_service_type(printer_type());
        p.export(
            "printer",
            &printer_type(),
            InterfaceRef {
                object: "lp0".into(),
                node: NodeId::from_raw(0),
                interface: "printer".into(),
            },
            vec![],
        )
        .unwrap();
        let offers = p.import(&ImportRequest::any("printer")).unwrap();
        assert_eq!(offers.len(), 1);
        // The calls generated real network traffic…
        assert!(p.sim().metrics().counter("messages_sent") >= 4);
        // …and telemetry at both the ODP and Net layers.
        assert!(p.telemetry.counter(Layer::Odp, "odp.export") == 1);
        assert!(p.telemetry.counter(Layer::Net, "net.sent") >= 4);
    }

    #[test]
    fn directory_port_reaches_the_dsa() {
        let mut p = SimPlatform::new(7);
        let dn: Dn = "cn=doc1".parse().unwrap();
        let entry = Entry::new(dn.clone())
            .with_class("cscwresource")
            .with_attr(Attribute::single("cn", "doc1"))
            .with_attr(Attribute::single("resourcetype", "document"));
        assert!(matches!(p.apply(DirOp::Add(entry)), Ok(DirResult::Done)));
        let got = p.apply(DirOp::Read(dn.clone())).unwrap();
        assert!(matches!(got, DirResult::Entry(e) if e.dn() == &dn));
        assert!(p.telemetry.counter(Layer::Directory, "dir.apply") == 2);
        assert!(p.telemetry.counter(Layer::Net, "net.sent") >= 4);
    }

    #[test]
    fn transport_port_delivers_via_the_mta() {
        let mut p = SimPlatform::new(7);
        let tom = OrAddress::new("ZZ", "mocca", ["users"], "tom").unwrap();
        p.notify(&courier_address(), &tom, "artifact-exchanged", "doc1")
            .unwrap();
        assert_eq!(p.delivered(&tom), vec!["artifact-exchanged".to_owned()]);
        assert!(p.telemetry.counter(Layer::Messaging, "mts.submit") == 1);
        // The MTA's own delivery path also left Messaging-layer events.
        assert!(p.telemetry.counter(Layer::Messaging, "mts.deliver") >= 1);
    }

    #[test]
    fn clock_tracks_simulated_time() {
        let mut p = SimPlatform::new(7);
        let before = p.clock().now_micros();
        let tom = OrAddress::new("ZZ", "mocca", ["users"], "tom").unwrap();
        p.notify(&courier_address(), &tom, "s", "b").unwrap();
        assert!(p.clock().now_micros() > before);
        assert_eq!(p.clock().now_micros(), p.sim().now().as_micros());
    }
}
