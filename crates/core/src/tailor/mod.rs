//! Support for Tailorability (§4).
//!
//! "Cooperative working is essentially a dynamic activity and
//! consequentially CSCW systems need be malleable and tailorable…
//! tailorable both by developers and users."
//!
//! * [`params`] — declared, constrained parameters overridable per
//!   organisation/group/user (developer declares, user tailors).
//! * [`rules`] — user-programmable event rules (the Object-Lens-style
//!   "users with developer powers" end of the spectrum).

pub mod params;
pub mod rules;

pub use params::{Constraint, Scope, TailorContext, TailorStore};
pub use rules::{EventPattern, RuleAction, RuleEngine, TailorRule};
