//! Scoped, constrained, tailorable parameters.
//!
//! "Systems and the environment need to be tailorable both by
//! developers and users… the environment needs to provide a set of
//! services akin to a developers toolkit to enable this tailorability"
//! (§4). A parameter is declared once with a constraint (the developer
//! side) and then overridden at organisation, group or user scope (the
//! user side); the most specific scope wins.

use std::collections::BTreeMap;

use odp::Value;
use serde::{Deserialize, Serialize};

use crate::error::MoccaError;

/// Where a setting applies, in increasing precedence.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Scope {
    /// The declared default.
    System,
    /// Everyone in an organisation.
    Organisation(String),
    /// Everyone in a group (project, activity).
    Group(String),
    /// One user (by DN string).
    User(String),
}

/// Who is asking — used to resolve the effective value.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TailorContext {
    /// The user's DN string.
    pub user: String,
    /// Groups the user belongs to.
    pub groups: Vec<String>,
    /// The user's organisation.
    pub organisation: Option<String>,
}

/// What values a parameter accepts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Constraint {
    /// Any text value.
    AnyText,
    /// Any boolean.
    AnyBool,
    /// An integer within the inclusive range.
    IntRange(i64, i64),
    /// One of the listed text values.
    OneOf(Vec<String>),
}

impl Constraint {
    /// Validates a value.
    pub fn accepts(&self, value: &Value) -> bool {
        match (self, value) {
            (Constraint::AnyText, Value::Text(_)) => true,
            (Constraint::AnyBool, Value::Bool(_)) => true,
            (Constraint::IntRange(lo, hi), Value::Int(i)) => lo <= i && i <= hi,
            (Constraint::OneOf(options), Value::Text(s)) => options.iter().any(|o| o == s),
            _ => false,
        }
    }
}

/// One declared parameter.
#[derive(Debug, Clone)]
struct ParamDecl {
    constraint: Constraint,
    default: Value,
    overrides: BTreeMap<Scope, Value>,
}

/// The tailoring store.
#[derive(Debug, Clone, Default)]
pub struct TailorStore {
    params: BTreeMap<String, ParamDecl>,
}

impl TailorStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a parameter with its constraint and system default.
    ///
    /// # Errors
    ///
    /// [`MoccaError::TailoringViolation`] when the default itself
    /// violates the constraint.
    pub fn declare(
        &mut self,
        name: &str,
        constraint: Constraint,
        default: Value,
    ) -> Result<(), MoccaError> {
        if !constraint.accepts(&default) {
            return Err(MoccaError::TailoringViolation(format!(
                "default for {name} violates its constraint"
            )));
        }
        self.params.insert(
            name.to_owned(),
            ParamDecl {
                constraint,
                default,
                overrides: BTreeMap::new(),
            },
        );
        Ok(())
    }

    /// Sets an override at a scope.
    ///
    /// # Errors
    ///
    /// [`MoccaError::TailoringViolation`] for unknown parameters or
    /// constraint violations.
    pub fn set(&mut self, name: &str, scope: Scope, value: Value) -> Result<(), MoccaError> {
        let decl = self
            .params
            .get_mut(name)
            .ok_or_else(|| MoccaError::TailoringViolation(format!("unknown parameter {name}")))?;
        if !decl.constraint.accepts(&value) {
            return Err(MoccaError::TailoringViolation(format!(
                "value {value} violates the constraint of {name}"
            )));
        }
        decl.overrides.insert(scope, value);
        Ok(())
    }

    /// Removes an override; returns whether one existed.
    pub fn unset(&mut self, name: &str, scope: &Scope) -> bool {
        self.params
            .get_mut(name)
            .map(|d| d.overrides.remove(scope).is_some())
            .unwrap_or(false)
    }

    /// Resolves the effective value for a context:
    /// user > group (first matching group in context order) >
    /// organisation > system default.
    ///
    /// # Errors
    ///
    /// [`MoccaError::TailoringViolation`] for unknown parameters.
    pub fn effective(&self, name: &str, ctx: &TailorContext) -> Result<Value, MoccaError> {
        let decl = self
            .params
            .get(name)
            .ok_or_else(|| MoccaError::TailoringViolation(format!("unknown parameter {name}")))?;
        if let Some(v) = decl.overrides.get(&Scope::User(ctx.user.clone())) {
            return Ok(v.clone());
        }
        for group in &ctx.groups {
            if let Some(v) = decl.overrides.get(&Scope::Group(group.clone())) {
                return Ok(v.clone());
            }
        }
        if let Some(org) = &ctx.organisation {
            if let Some(v) = decl.overrides.get(&Scope::Organisation(org.clone())) {
                return Ok(v.clone());
            }
        }
        Ok(decl
            .overrides
            .get(&Scope::System)
            .cloned()
            .unwrap_or_else(|| decl.default.clone()))
    }

    /// Declared parameter names.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.params.keys().map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> TailorStore {
        let mut s = TailorStore::new();
        s.declare(
            "notification-medium",
            Constraint::OneOf(vec!["text".into(), "fax".into(), "paper".into()]),
            Value::from("text"),
        )
        .unwrap();
        s.declare(
            "max-session-members",
            Constraint::IntRange(2, 50),
            Value::Int(10),
        )
        .unwrap();
        s.declare("activity-isolation", Constraint::AnyBool, Value::Bool(true))
            .unwrap();
        s
    }

    fn ctx(user: &str) -> TailorContext {
        TailorContext {
            user: user.to_owned(),
            groups: vec!["mocca".into()],
            organisation: Some("lancaster".into()),
        }
    }

    #[test]
    fn default_when_nothing_set() {
        let s = store();
        assert_eq!(
            s.effective("notification-medium", &ctx("tom")).unwrap(),
            Value::from("text")
        );
    }

    #[test]
    fn precedence_user_over_group_over_org() {
        let mut s = store();
        s.set(
            "notification-medium",
            Scope::Organisation("lancaster".into()),
            Value::from("paper"),
        )
        .unwrap();
        assert_eq!(
            s.effective("notification-medium", &ctx("tom")).unwrap(),
            Value::from("paper")
        );
        s.set(
            "notification-medium",
            Scope::Group("mocca".into()),
            Value::from("fax"),
        )
        .unwrap();
        assert_eq!(
            s.effective("notification-medium", &ctx("tom")).unwrap(),
            Value::from("fax")
        );
        s.set(
            "notification-medium",
            Scope::User("tom".into()),
            Value::from("text"),
        )
        .unwrap();
        assert_eq!(
            s.effective("notification-medium", &ctx("tom")).unwrap(),
            Value::from("text")
        );
        // A different user still gets the group value.
        assert_eq!(
            s.effective("notification-medium", &ctx("wolfgang"))
                .unwrap(),
            Value::from("fax")
        );
    }

    #[test]
    fn constraints_are_enforced_everywhere() {
        let mut s = store();
        assert!(s
            .set(
                "notification-medium",
                Scope::User("tom".into()),
                Value::from("telegraph")
            )
            .is_err());
        assert!(s
            .set("max-session-members", Scope::System, Value::Int(100))
            .is_err());
        assert!(s
            .set("max-session-members", Scope::System, Value::from("ten"))
            .is_err());
        assert!(s.set("ghost-param", Scope::System, Value::Int(1)).is_err());
        assert!(s
            .declare("bad", Constraint::IntRange(0, 5), Value::Int(9))
            .is_err());
    }

    #[test]
    fn unset_restores_next_scope() {
        let mut s = store();
        s.set(
            "max-session-members",
            Scope::User("tom".into()),
            Value::Int(3),
        )
        .unwrap();
        assert_eq!(
            s.effective("max-session-members", &ctx("tom")).unwrap(),
            Value::Int(3)
        );
        assert!(s.unset("max-session-members", &Scope::User("tom".into())));
        assert!(!s.unset("max-session-members", &Scope::User("tom".into())));
        assert_eq!(
            s.effective("max-session-members", &ctx("tom")).unwrap(),
            Value::Int(10)
        );
    }

    #[test]
    fn group_order_in_context_decides_ties() {
        let mut s = store();
        s.set(
            "max-session-members",
            Scope::Group("a".into()),
            Value::Int(5),
        )
        .unwrap();
        s.set(
            "max-session-members",
            Scope::Group("b".into()),
            Value::Int(7),
        )
        .unwrap();
        let ctx = TailorContext {
            user: "x".into(),
            groups: vec!["b".into(), "a".into()],
            organisation: None,
        };
        assert_eq!(
            s.effective("max-session-members", &ctx).unwrap(),
            Value::Int(7)
        );
    }

    #[test]
    fn names_lists_declared() {
        let s = store();
        assert_eq!(s.names().count(), 3);
    }
}
