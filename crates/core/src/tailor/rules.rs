//! User-programmable rules (the Object-Lens-style end of tailoring).
//!
//! §4: "the traditional divide between users and developers becomes
//! less clear with users having similar powers and status as system
//! developers." A [`TailorRule`] is the users' programming surface:
//! *when* an event matching a pattern arrives, *do* an action. The
//! groupware mail application (and the environment's event bus) run
//! events through a [`RuleEngine`].

use cscw_directory::Dn;
use serde::{Deserialize, Serialize};

use crate::info::InfoContent;

/// Matches events by kind and field values.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct EventPattern {
    /// Event kind to match; `None` matches every kind.
    pub kind: Option<String>,
    /// Every listed field must be present with the given value.
    pub field_equals: Vec<(String, String)>,
    /// Every listed field must be present containing the substring.
    pub field_contains: Vec<(String, String)>,
}

impl EventPattern {
    /// Matches any event of a kind.
    pub fn of_kind(kind: &str) -> Self {
        EventPattern {
            kind: Some(kind.to_owned()),
            ..Default::default()
        }
    }

    /// Adds an exact-field requirement.
    #[must_use]
    pub fn with_field(mut self, field: &str, value: &str) -> Self {
        self.field_equals.push((field.to_owned(), value.to_owned()));
        self
    }

    /// Adds a substring requirement.
    #[must_use]
    pub fn with_field_containing(mut self, field: &str, needle: &str) -> Self {
        self.field_contains
            .push((field.to_owned(), needle.to_owned()));
        self
    }

    /// Evaluates against an event.
    pub fn matches(&self, kind: &str, content: &InfoContent) -> bool {
        if let Some(k) = &self.kind {
            if k != kind {
                return false;
            }
        }
        for (field, expected) in &self.field_equals {
            if content.field(field) != Some(expected.as_str()) {
                return false;
            }
        }
        for (field, needle) in &self.field_contains {
            match content.field(field) {
                Some(v) if v.contains(needle.as_str()) => {}
                _ => return false,
            }
        }
        true
    }
}

/// What a rule does when it fires.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RuleAction {
    /// File the object into a folder.
    MoveToFolder(String),
    /// Forward a copy to someone.
    Forward(Dn),
    /// Raise a notification for the user.
    Notify(String),
    /// Rewrite a field.
    SetField(String, String),
    /// Discard the object.
    Delete,
}

/// One user rule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TailorRule {
    /// Rule name (for the user's rule list).
    pub name: String,
    /// When it fires.
    pub pattern: EventPattern,
    /// What it does.
    pub action: RuleAction,
}

/// Applies an ordered rule list to events.
#[derive(Debug, Clone, Default)]
pub struct RuleEngine {
    rules: Vec<TailorRule>,
}

impl RuleEngine {
    /// Creates an empty engine.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a rule (rules fire in insertion order).
    pub fn add_rule(&mut self, rule: TailorRule) {
        self.rules.push(rule);
    }

    /// Removes a rule by name; returns whether it existed.
    pub fn remove_rule(&mut self, name: &str) -> bool {
        let before = self.rules.len();
        self.rules.retain(|r| r.name != name);
        self.rules.len() != before
    }

    /// The rules, in firing order.
    pub fn rules(&self) -> &[TailorRule] {
        &self.rules
    }

    /// Runs an event through the rules; returns the actions of every
    /// matching rule, in order. `SetField` actions are applied to the
    /// content *between* rules, so later patterns see earlier rewrites —
    /// that is what makes rules composable programs rather than a flat
    /// filter list.
    pub fn apply(&self, kind: &str, content: &mut InfoContent) -> Vec<RuleAction> {
        let mut fired = Vec::new();
        for rule in &self.rules {
            if rule.pattern.matches(kind, content) {
                if let RuleAction::SetField(field, value) = &rule.action {
                    if let InfoContent::Fields(map) = content {
                        map.insert(field.clone(), value.clone());
                    }
                }
                fired.push(rule.action.clone());
                if rule.action == RuleAction::Delete {
                    break; // nothing survives a delete
                }
            }
        }
        fired
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn message(from: &str, subject: &str) -> InfoContent {
        InfoContent::fields([("from", from), ("subject", subject)])
    }

    fn engine() -> RuleEngine {
        let mut e = RuleEngine::new();
        e.add_rule(TailorRule {
            name: "file-mocca".into(),
            pattern: EventPattern::of_kind("message").with_field_containing("subject", "MOCCA"),
            action: RuleAction::MoveToFolder("mocca".into()),
        });
        e.add_rule(TailorRule {
            name: "flag-boss".into(),
            pattern: EventPattern::of_kind("message").with_field("from", "cn=Boss"),
            action: RuleAction::SetField("priority".into(), "high".into()),
        });
        e.add_rule(TailorRule {
            name: "notify-high".into(),
            pattern: EventPattern::of_kind("message").with_field("priority", "high"),
            action: RuleAction::Notify("urgent mail".into()),
        });
        e.add_rule(TailorRule {
            name: "drop-spam".into(),
            pattern: EventPattern::of_kind("message").with_field_containing("subject", "WIN BIG"),
            action: RuleAction::Delete,
        });
        e
    }

    #[test]
    fn patterns_match_kind_and_fields() {
        let p = EventPattern::of_kind("message").with_field("from", "cn=Boss");
        assert!(p.matches("message", &message("cn=Boss", "hi")));
        assert!(!p.matches("document", &message("cn=Boss", "hi")));
        assert!(!p.matches("message", &message("cn=Other", "hi")));
        let any = EventPattern::default();
        assert!(any.matches("anything", &InfoContent::Text("x".into())));
    }

    #[test]
    fn rules_fire_in_order() {
        let e = engine();
        let mut content = message("cn=Tom", "MOCCA progress");
        let fired = e.apply("message", &mut content);
        assert_eq!(fired, vec![RuleAction::MoveToFolder("mocca".into())]);
    }

    #[test]
    fn set_field_feeds_later_rules() {
        let e = engine();
        let mut content = message("cn=Boss", "budget");
        let fired = e.apply("message", &mut content);
        assert_eq!(fired.len(), 2, "SetField then the Notify that sees it");
        assert!(matches!(fired[1], RuleAction::Notify(_)));
        assert_eq!(content.field("priority"), Some("high"));
    }

    #[test]
    fn delete_short_circuits() {
        let mut e = engine();
        e.add_rule(TailorRule {
            name: "after-delete".into(),
            pattern: EventPattern::default(),
            action: RuleAction::Notify("should never fire".into()),
        });
        let mut content = message("cn=Spammer", "WIN BIG NOW");
        let fired = e.apply("message", &mut content);
        assert_eq!(*fired.last().unwrap(), RuleAction::Delete);
        assert!(!fired
            .iter()
            .any(|a| matches!(a, RuleAction::Notify(msg) if msg.contains("never"))));
    }

    #[test]
    fn remove_rule_by_name() {
        let mut e = engine();
        assert!(e.remove_rule("drop-spam"));
        assert!(!e.remove_rule("drop-spam"));
        assert_eq!(e.rules().len(), 3);
    }

    #[test]
    fn non_field_content_matches_kind_only_patterns() {
        let e = RuleEngine::new();
        let mut text = InfoContent::Text("plain".into());
        assert!(e.apply("note", &mut text).is_empty());
        let p = EventPattern::of_kind("note").with_field("x", "y");
        assert!(!p.matches("note", &InfoContent::Text("plain".into())));
    }
}
