//! Activity transparency (isolation).
//!
//! "Transparency of activity means that a set of objects cooperating in
//! one activity needs neither be aware of the mechanisms for starting
//! and coordinating activities, nor be aware of other unrelated objects
//! or activities… This helps activities not to be disturbed by other
//! unrelated activities" (§4).
//!
//! [`ActivityIsolation`] is the policy object the environment's event
//! bus consults: with isolation on, a subscriber only sees events of
//! activities they participate in; with it off they see everything —
//! and the bus counts those deliveries as *disturbances*, the measurable
//! effect the R5 bench reports.

use std::collections::BTreeSet;

use crate::activity::ActivityId;

/// Whether an event should reach a subscriber, and how it counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Visibility {
    /// Delivered: the subscriber participates in the event's activity
    /// (or the event is activity-less broadcast).
    Relevant,
    /// Delivered only because isolation is off; counts as disturbance.
    Disturbance,
    /// Not delivered (isolation on, unrelated activity).
    Hidden,
}

/// The isolation policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ActivityIsolation {
    /// True when the transparency is engaged.
    pub enabled: bool,
}

impl ActivityIsolation {
    /// Engaged isolation.
    pub fn on() -> Self {
        ActivityIsolation { enabled: true }
    }

    /// Disengaged isolation.
    pub fn off() -> Self {
        ActivityIsolation { enabled: false }
    }

    /// Classifies one delivery: `event_activity` is the event's scope
    /// (`None` = broadcast), `memberships` the subscriber's activities.
    pub fn classify(
        &self,
        event_activity: Option<&ActivityId>,
        memberships: &BTreeSet<ActivityId>,
    ) -> Visibility {
        match event_activity {
            None => Visibility::Relevant,
            Some(act) if memberships.contains(act) => Visibility::Relevant,
            Some(_) if self.enabled => Visibility::Hidden,
            Some(_) => Visibility::Disturbance,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn memberships(ids: &[&str]) -> BTreeSet<ActivityId> {
        ids.iter().map(|&s| ActivityId::from(s)).collect()
    }

    #[test]
    fn broadcasts_always_reach() {
        for policy in [ActivityIsolation::on(), ActivityIsolation::off()] {
            assert_eq!(
                policy.classify(None, &memberships(&[])),
                Visibility::Relevant
            );
        }
    }

    #[test]
    fn members_always_see_their_activities() {
        let act = ActivityId::from("report");
        for policy in [ActivityIsolation::on(), ActivityIsolation::off()] {
            assert_eq!(
                policy.classify(Some(&act), &memberships(&["report", "meeting"])),
                Visibility::Relevant
            );
        }
    }

    #[test]
    fn isolation_hides_unrelated_activities() {
        let act = ActivityId::from("tunnel-boring");
        assert_eq!(
            ActivityIsolation::on().classify(Some(&act), &memberships(&["report"])),
            Visibility::Hidden
        );
    }

    #[test]
    fn without_isolation_unrelated_events_disturb() {
        let act = ActivityId::from("tunnel-boring");
        assert_eq!(
            ActivityIsolation::off().classify(Some(&act), &memberships(&["report"])),
            Visibility::Disturbance
        );
    }
}
