//! The four CSCW transparencies (§4, "Support for Transparency").
//!
//! "The CSCW environment should provide some degree of transparency to
//! facilitate people cooperating from different coordinates." Unlike the
//! five ODP distribution transparencies (see [`odp::TransparencySelection`]),
//! these mask *cooperative* heterogeneity:
//!
//! * [`organisation`] — hide inter-organisational policy complexity;
//!   surface [`crate::error::MoccaError::IncompatiblePolicies`] only
//!   when interaction is truly impossible.
//! * [`time`] — make interaction "independent of the mode we are using"
//!   by bridging synchronous sessions and asynchronous messaging.
//! * [`view`] — let applications care (WYSIWIS) or not care how each
//!   user views data.
//! * [`activity`] — keep unrelated activities from disturbing each
//!   other.
//!
//! [`CscwTransparencySelection`] is the user-tailorable toggle set; the
//! R5 bench ablates each flag.

pub mod activity;
pub mod organisation;
pub mod time;
pub mod view;

pub use activity::ActivityIsolation;
pub use organisation::OrganisationTransparency;
pub use time::TimeBridge;
pub use view::{View, ViewRegistry};

use serde::{Deserialize, Serialize};

/// Which CSCW transparencies are engaged. Plain data so the tailoring
/// layer can expose it to end users, per §6.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CscwTransparencySelection {
    /// Mask organisational boundaries and policies.
    pub organisation: bool,
    /// Mask the synchronous/asynchronous divide.
    pub time: bool,
    /// Mask per-user view differences.
    pub view: bool,
    /// Mask unrelated activities.
    pub activity: bool,
}

impl CscwTransparencySelection {
    /// Everything masked.
    pub fn full() -> Self {
        CscwTransparencySelection {
            organisation: true,
            time: true,
            view: true,
            activity: true,
        }
    }

    /// Nothing masked.
    pub fn none() -> Self {
        CscwTransparencySelection {
            organisation: false,
            time: false,
            view: false,
            activity: false,
        }
    }

    /// Count of engaged transparencies.
    pub fn engaged_count(&self) -> usize {
        [self.organisation, self.time, self.view, self.activity]
            .iter()
            .filter(|&&b| b)
            .count()
    }
}

impl Default for CscwTransparencySelection {
    fn default() -> Self {
        Self::full()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selection_counts_and_default() {
        assert_eq!(CscwTransparencySelection::full().engaged_count(), 4);
        assert_eq!(CscwTransparencySelection::none().engaged_count(), 0);
        assert_eq!(
            CscwTransparencySelection::default(),
            CscwTransparencySelection::full()
        );
    }
}
