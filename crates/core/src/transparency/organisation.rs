//! Organisation transparency.
//!
//! "Transparency of organisation means that activities need not deal
//! with the complexity of the possibly different organisations
//! involved… Sometimes, interaction is not possible due to incompatible
//! policies" (§4). This module maps people to their management domains
//! and answers a single question — may these two cooperate over this
//! service? — hiding the contract/export/forbid machinery of
//! [`odp::DomainRegistry`] behind it.

use std::collections::BTreeMap;

use cscw_directory::Dn;
use odp::{DomainRegistry, InteractionVerdict};

use crate::error::MoccaError;

/// The organisation-transparency layer.
#[derive(Debug, Default)]
pub struct OrganisationTransparency {
    registry: DomainRegistry,
    domain_of_person: BTreeMap<Dn, String>,
}

impl OrganisationTransparency {
    /// Creates an empty layer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The underlying domain registry (to define domains and contracts).
    pub fn registry_mut(&mut self) -> &mut DomainRegistry {
        &mut self.registry
    }

    /// Read access to the registry.
    pub fn registry(&self) -> &DomainRegistry {
        &self.registry
    }

    /// Assigns a person to a management domain.
    pub fn assign(&mut self, person: Dn, domain: impl Into<String>) {
        self.domain_of_person.insert(person, domain.into());
    }

    /// The domain a person belongs to.
    pub fn domain_of(&self, person: &Dn) -> Option<&str> {
        self.domain_of_person.get(person).map(String::as_str)
    }

    /// May `importer` use `service_type` provided by `exporter`?
    ///
    /// With the transparency engaged this is the *only* call an
    /// application makes: all domain structure stays hidden and the
    /// answer is yes, or a single "incompatible policies" error.
    ///
    /// # Errors
    ///
    /// * [`MoccaError::UnknownOrgObject`] — a person has no domain
    ///   assignment.
    /// * [`MoccaError::IncompatiblePolicies`] — the registries refuse
    ///   the interaction, with the verdict folded into the message.
    pub fn check_interaction(
        &self,
        importer: &Dn,
        exporter: &Dn,
        service_type: &str,
    ) -> Result<(), MoccaError> {
        let from = self
            .domain_of(importer)
            .ok_or_else(|| MoccaError::UnknownOrgObject(importer.to_string()))?;
        let to = self
            .domain_of(exporter)
            .ok_or_else(|| MoccaError::UnknownOrgObject(exporter.to_string()))?;
        match self.registry.interaction_allowed(from, to, service_type) {
            InteractionVerdict::Allowed | InteractionVerdict::AllowedIntraDomain => Ok(()),
            InteractionVerdict::NoContract => Err(MoccaError::IncompatiblePolicies(format!(
                "no federation contract between {from} and {to} for {service_type}"
            ))),
            InteractionVerdict::NotExported => Err(MoccaError::IncompatiblePolicies(format!(
                "{to} does not export {service_type}"
            ))),
            InteractionVerdict::ImportForbidden => Err(MoccaError::IncompatiblePolicies(format!(
                "{from} forbids importing {service_type}"
            ))),
            InteractionVerdict::UnknownDomain(d) => {
                Err(MoccaError::UnknownOrgObject(format!("domain {d}")))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odp::{Domain, FederationContract};

    fn dn(s: &str) -> Dn {
        s.parse().unwrap()
    }

    fn layer() -> OrganisationTransparency {
        let mut t = OrganisationTransparency::new();
        let mut lancaster = Domain::new("lancaster");
        lancaster.export_service("document-store");
        let mut gmd = Domain::new("gmd");
        gmd.export_service("coordination");
        let upc = Domain::new("upc");
        t.registry_mut().add_domain(lancaster);
        t.registry_mut().add_domain(gmd);
        t.registry_mut().add_domain(upc);
        t.registry_mut().add_contract(FederationContract {
            a: "lancaster".into(),
            b: "gmd".into(),
            service_types: vec!["document-store".into(), "coordination".into()],
        });
        t.assign(dn("cn=Tom"), "lancaster");
        t.assign(dn("cn=Wolfgang"), "gmd");
        t.assign(dn("cn=Leandro"), "upc");
        t
    }

    #[test]
    fn contracted_interaction_is_invisible_to_apps() {
        let t = layer();
        assert!(t
            .check_interaction(&dn("cn=Wolfgang"), &dn("cn=Tom"), "document-store")
            .is_ok());
    }

    #[test]
    fn same_domain_is_always_fine() {
        let mut t = layer();
        t.assign(dn("cn=Gordon"), "lancaster");
        assert!(t
            .check_interaction(&dn("cn=Tom"), &dn("cn=Gordon"), "anything")
            .is_ok());
    }

    #[test]
    fn incompatible_policies_surface_one_error() {
        let t = layer();
        // UPC has no contract with anyone.
        let err = t
            .check_interaction(&dn("cn=Leandro"), &dn("cn=Tom"), "document-store")
            .unwrap_err();
        assert!(matches!(err, MoccaError::IncompatiblePolicies(_)));
        // Lancaster does not export "coordination".
        let err = t
            .check_interaction(&dn("cn=Wolfgang"), &dn("cn=Tom"), "coordination")
            .unwrap_err();
        assert!(err.to_string().contains("does not export"));
    }

    #[test]
    fn unassigned_people_are_reported() {
        let t = layer();
        let err = t
            .check_interaction(&dn("cn=Ghost"), &dn("cn=Tom"), "document-store")
            .unwrap_err();
        assert!(matches!(err, MoccaError::UnknownOrgObject(_)));
        assert_eq!(t.domain_of(&dn("cn=Tom")), Some("lancaster"));
        assert_eq!(t.domain_of(&dn("cn=Ghost")), None);
    }
}
