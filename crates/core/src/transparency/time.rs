//! Time transparency.
//!
//! "Transparency of time deals with the mode of work, synchronous or
//! asynchronous. The result of applying this transparency is that
//! interaction will be independent of the mode we are using" (§4).
//!
//! The [`TimeBridge`] connects a live [`SessionHub`] to the X.400
//! substrate in both directions:
//!
//! * **catch-up** — an absent member receives the part of the session
//!   log they missed as ordinary mail;
//! * **post-in** — a mailed contribution is injected into the live
//!   session as an utterance.
//!
//! Together these make the same-time and different-time quadrants of
//! the paper's Figure 1 reachable from one another.

use cscw_directory::Dn;
use cscw_messaging::net::{NodeId, Payload, Sim};
use cscw_messaging::{Ipm, OrAddress, SubmitOptions, UserAgent};

use crate::comm::channel::{SessionHub, SessionPdu};
use crate::error::MoccaError;

/// Bridges one session hub and the messaging substrate.
#[derive(Debug, Clone, Copy)]
pub struct TimeBridge {
    /// The hub being bridged.
    pub hub: NodeId,
    /// The node the bridge speaks from (any node with links to the hub
    /// and the MTA).
    pub bridge_node: NodeId,
}

impl TimeBridge {
    /// Creates a bridge.
    pub fn new(hub: NodeId, bridge_node: NodeId) -> Self {
        TimeBridge { hub, bridge_node }
    }

    /// Mails every utterance with `seq >= since_seq` to an absent
    /// member, one message per utterance (preserving order via the MTS
    /// FIFO), sent by `bridge_agent`. Returns how many were sent.
    ///
    /// # Errors
    ///
    /// [`MoccaError::UnknownApplication`] when the hub node does not
    /// host a [`SessionHub`].
    pub fn catch_up(
        &self,
        sim: &mut Sim,
        bridge_agent: &mut UserAgent,
        absent_member: &OrAddress,
        since_seq: u64,
    ) -> Result<usize, MoccaError> {
        let log: Vec<(u64, Dn, String)> = sim
            .node::<SessionHub>(self.hub)
            .ok_or_else(|| {
                MoccaError::UnknownApplication(format!("no session hub at {}", self.hub))
            })?
            .log()
            .iter()
            .filter(|u| u.seq >= since_seq)
            .map(|u| (u.seq, u.from.clone(), u.content.clone()))
            .collect();
        let count = log.len();
        for (seq, from, content) in log {
            let ipm = Ipm::text(
                bridge_agent.address().clone(),
                absent_member.clone(),
                &format!("[session catch-up #{seq}] {from}"),
                &content,
            );
            bridge_agent.submit(sim, ipm, SubmitOptions::default());
        }
        sim.run_until_idle();
        Ok(count)
    }

    /// Injects a mailed contribution into the live session as an
    /// utterance from `author`.
    pub fn post_in(&self, sim: &mut Sim, author: Dn, content: &str) {
        sim.send_from(
            self.bridge_node,
            self.hub,
            Payload::new(SessionPdu::Utter {
                from: author,
                content: content.to_owned(),
            }),
            32 + content.len() as u64,
        );
        sim.run_until_idle();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::channel::{SessionHandle, SessionMember};
    use cscw_messaging::MtaNode;
    use simnet::{LinkSpec, TopologyBuilder};

    fn dn(s: &str) -> Dn {
        s.parse().unwrap()
    }

    /// A live session (hub + one member) plus an MTA world with one
    /// absent user reachable only by mail.
    struct World {
        sim: Sim,
        hub: NodeId,
        live: SessionHandle,
        bridge: TimeBridge,
        bridge_agent: UserAgent,
        absent: UserAgent,
    }

    fn world() -> World {
        let mut b = TopologyBuilder::new();
        let hub = b.add_node("hub");
        let live_ws = b.add_node("live-ws");
        let bridge_node = b.add_node("bridge");
        let mta = b.add_node("mta");
        let absent_ws = b.add_node("absent-ws");
        b.full_mesh(LinkSpec::lan());
        let mut sim = Sim::new(b.build(), 21);

        sim.register(hub, SessionHub::new());
        sim.register(live_ws, SessionMember::new());

        let absent_addr: OrAddress = "C=UK;O=Lancaster;PN=Absent".parse().unwrap();
        let bridge_addr: OrAddress = "C=UK;O=Lancaster;PN=Session Bridge".parse().unwrap();
        let mut mta_node = MtaNode::new("mta");
        mta_node.register_mailbox(absent_addr.clone());
        mta_node.register_mailbox(bridge_addr.clone());
        sim.register(mta, mta_node);

        World {
            sim,
            hub,
            live: SessionHandle {
                hub,
                member_node: live_ws,
                who: dn("cn=Live"),
            },
            bridge: TimeBridge::new(hub, bridge_node),
            bridge_agent: UserAgent::new(bridge_addr, bridge_node, mta),
            absent: UserAgent::new(absent_addr, absent_ws, mta),
        }
    }

    #[test]
    fn absent_member_catches_up_by_mail() {
        let mut w = world();
        w.live.join(&mut w.sim);
        w.live.utter(&mut w.sim, "point one");
        w.live.utter(&mut w.sim, "point two");
        w.sim.run_until_idle();

        let sent = w
            .bridge
            .catch_up(
                &mut w.sim,
                &mut w.bridge_agent,
                &w.absent.address().clone(),
                0,
            )
            .unwrap();
        assert_eq!(sent, 2);
        let inbox = w.absent.inbox(&w.sim).unwrap();
        assert_eq!(inbox.len(), 2);
        assert!(inbox[0].ipm.heading.subject.contains("catch-up #0"));
        assert!(inbox[1].ipm.heading.subject.contains("catch-up #1"));
    }

    #[test]
    fn catch_up_since_skips_seen_part() {
        let mut w = world();
        w.live.join(&mut w.sim);
        w.live.utter(&mut w.sim, "old");
        w.live.utter(&mut w.sim, "new");
        w.sim.run_until_idle();
        let sent = w
            .bridge
            .catch_up(
                &mut w.sim,
                &mut w.bridge_agent,
                &w.absent.address().clone(),
                1,
            )
            .unwrap();
        assert_eq!(sent, 1);
        let inbox = w.absent.inbox(&w.sim).unwrap();
        assert_eq!(inbox.len(), 1);
    }

    #[test]
    fn mailed_contribution_reaches_the_live_session() {
        let mut w = world();
        w.live.join(&mut w.sim);
        // The absent member "replies by mail"; the bridge posts it in.
        w.bridge
            .post_in(&mut w.sim, dn("cn=Absent"), "my async comment");
        let log = w.sim.node::<SessionHub>(w.hub).unwrap().log();
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].from, dn("cn=Absent"));
        // And the live member heard it in real time.
        let got = w
            .sim
            .node::<SessionMember>(w.live.member_node)
            .unwrap()
            .received();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].content, "my async comment");
    }

    #[test]
    fn missing_hub_is_an_error() {
        let mut w = world();
        let bogus = TimeBridge::new(w.live.member_node, w.bridge.bridge_node);
        let err = bogus
            .catch_up(
                &mut w.sim,
                &mut w.bridge_agent,
                &w.absent.address().clone(),
                0,
            )
            .unwrap_err();
        assert!(matches!(err, MoccaError::UnknownApplication(_)));
    }
}
