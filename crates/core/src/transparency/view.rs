//! View transparency.
//!
//! "Transparency of view means that applications can be interested or
//! not in the way users view data. WYSIWIS applications will not use
//! this mechanism" (§4).
//!
//! A [`View`] projects a field-structured information object into what
//! one user sees: selected fields, optionally renamed. Strict WYSIWIS
//! ("what you see is what I see") is the *absence* of per-user views —
//! [`ViewRegistry::check_wysiwis`] verifies a group renders identically.

use std::collections::BTreeMap;

use cscw_directory::Dn;
use serde::{Deserialize, Serialize};

use crate::info::{InfoContent, InfoObject};

/// A per-user projection of field-structured content.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct View {
    /// Fields shown, in order, as (common name, label shown to the
    /// user). An empty list shows everything unrelabelled.
    pub fields: Vec<(String, String)>,
}

impl View {
    /// The identity view (show everything as-is).
    pub fn identity() -> Self {
        Self::default()
    }

    /// A view selecting and relabelling fields.
    pub fn selecting<K: Into<String>, L: Into<String>>(
        fields: impl IntoIterator<Item = (K, L)>,
    ) -> Self {
        View {
            fields: fields
                .into_iter()
                .map(|(k, l)| (k.into(), l.into()))
                .collect(),
        }
    }

    /// Renders an object through the view.
    ///
    /// Non-field content (plain text, binary) renders unchanged — views
    /// only structure field content.
    pub fn render(&self, object: &InfoObject) -> InfoContent {
        match (&object.content, self.fields.is_empty()) {
            (InfoContent::Fields(map), false) => {
                let mut out = BTreeMap::new();
                for (key, label) in &self.fields {
                    if let Some(v) = map.get(key) {
                        out.insert(label.clone(), v.clone());
                    }
                }
                InfoContent::Fields(out)
            }
            (content, _) => content.clone(),
        }
    }
}

/// Per-user views, keyed by `(user, object kind)`.
#[derive(Debug, Clone, Default)]
pub struct ViewRegistry {
    views: BTreeMap<(Dn, String), View>,
}

impl ViewRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets a user's view for an object kind.
    pub fn set_view(&mut self, user: Dn, kind: &str, view: View) {
        self.views.insert((user, kind.to_owned()), view);
    }

    /// The view a user has for a kind (identity when unset).
    pub fn view_for(&self, user: &Dn, kind: &str) -> View {
        self.views
            .get(&(user.clone(), kind.to_owned()))
            .cloned()
            .unwrap_or_default()
    }

    /// Renders an object for a user.
    pub fn render_for(&self, user: &Dn, object: &InfoObject) -> InfoContent {
        self.view_for(user, &object.kind).render(object)
    }

    /// Strict-WYSIWIS check: do all `users` see `object` identically?
    pub fn check_wysiwis(&self, users: &[Dn], object: &InfoObject) -> bool {
        let mut renditions = users.iter().map(|u| self.render_for(u, object));
        match renditions.next() {
            None => true,
            Some(first) => renditions.all(|r| r == first),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::info::InfoObjectId;

    fn dn(s: &str) -> Dn {
        s.parse().unwrap()
    }

    fn report() -> InfoObject {
        InfoObject::new(
            InfoObjectId::new("doc1"),
            "document",
            dn("cn=Tom"),
            InfoContent::fields([
                ("title", "Progress report"),
                ("status", "draft"),
                ("budget", "secret"),
            ]),
        )
    }

    #[test]
    fn identity_view_shows_everything() {
        let v = View::identity();
        assert_eq!(v.render(&report()), report().content);
    }

    #[test]
    fn selecting_view_projects_and_relabels() {
        let v = View::selecting([("title", "Titel"), ("status", "Stand")]);
        let rendered = v.render(&report());
        assert_eq!(rendered.field("Titel"), Some("Progress report"));
        assert_eq!(rendered.field("Stand"), Some("draft"));
        assert_eq!(rendered.field("budget"), None, "unselected fields hidden");
        assert_eq!(rendered.field("title"), None, "original names hidden");
    }

    #[test]
    fn missing_fields_are_skipped() {
        let v = View::selecting([("title", "T"), ("nonexistent", "X")]);
        let rendered = v.render(&report());
        assert_eq!(rendered.field("T"), Some("Progress report"));
        assert_eq!(rendered.field("X"), None);
    }

    #[test]
    fn text_content_is_view_proof() {
        let v = View::selecting([("a", "b")]);
        let obj = InfoObject::new(
            "t".into(),
            "note",
            dn("cn=Tom"),
            InfoContent::Text("as is".into()),
        );
        assert_eq!(v.render(&obj), InfoContent::Text("as is".into()));
    }

    #[test]
    fn wysiwis_holds_without_views_and_breaks_with_them() {
        let mut reg = ViewRegistry::new();
        let users = [dn("cn=Tom"), dn("cn=Wolfgang")];
        assert!(
            reg.check_wysiwis(&users, &report()),
            "no views: strict WYSIWIS"
        );
        reg.set_view(
            dn("cn=Wolfgang"),
            "document",
            View::selecting([("title", "Titel")]),
        );
        assert!(
            !reg.check_wysiwis(&users, &report()),
            "personal view breaks WYSIWIS"
        );
        // Same view for both restores it.
        reg.set_view(
            dn("cn=Tom"),
            "document",
            View::selecting([("title", "Titel")]),
        );
        assert!(reg.check_wysiwis(&users, &report()));
        assert!(reg.check_wysiwis(&[], &report()), "vacuous truth");
    }

    #[test]
    fn views_are_scoped_by_kind() {
        let mut reg = ViewRegistry::new();
        reg.set_view(dn("cn=Tom"), "message", View::selecting([("title", "T")]));
        // Document objects are unaffected by the message view.
        assert_eq!(reg.render_for(&dn("cn=Tom"), &report()), report().content);
    }
}
