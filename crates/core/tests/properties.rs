//! Property tests for the MOCCA core invariants: access-control
//! monotonicity, activity-schedule validity, dependency acyclicity,
//! negotiation safety, tailoring resolution, and the telemetry
//! histogram's quantile math.

use cscw_directory::Dn;
use cscw_kernel::LogHistogram;
use mocca::activity::{Activity, ActivityId, DependencyKind, InterActivityModel};
use mocca::info::{AccessControl, AccessRight, InfoObjectId};
use mocca::org::{OrgRule, OrganisationalModel, Person, RelationKind, Role, RuleKind};
use mocca::tailor::{Constraint, Scope, TailorContext, TailorStore};
use proptest::prelude::*;

fn dn(s: &str) -> Dn {
    s.parse().expect("test DNs are valid")
}

/// People p0..p3, roles r0..r3, with arbitrary occupancy.
fn org_with(occupancy: &[(usize, usize)]) -> OrganisationalModel {
    let mut m = OrganisationalModel::new();
    for i in 0..4 {
        m.add_person(Person::new(dn(&format!("cn=p{i}")), format!("p{i}")));
        m.add_role(Role::new(dn(&format!("cn=r{i}")), format!("r{i}")));
    }
    for &(p, r) in occupancy {
        m.relate(
            &dn(&format!("cn=p{}", p % 4)),
            RelationKind::Occupies,
            &dn(&format!("cn=r{}", r % 4)),
        )
        .unwrap();
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Access monotonicity: removing a role occupancy never grants an
    /// access that was previously denied.
    #[test]
    fn access_is_monotone_in_roles(
        occupancy in prop::collection::vec((0usize..4, 0usize..4), 0..8),
        grants in prop::collection::vec((0usize..4, 0usize..3), 0..8),
        drop_index in 0usize..8,
    ) {
        let rights = [AccessRight::Read, AccessRight::Write, AccessRight::Share];
        let object: InfoObjectId = "doc".into();
        let mut ac = AccessControl::new();
        for &(r, right) in &grants {
            ac.grant(&object, dn(&format!("cn=r{r}")), rights[right]);
        }
        let full = org_with(&occupancy);
        let reduced_occupancy: Vec<(usize, usize)> = occupancy
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != drop_index % 8)
            .map(|(_, &x)| x)
            .collect();
        let reduced = org_with(&reduced_occupancy);
        for p in 0..4 {
            let person = dn(&format!("cn=p{p}"));
            for right in rights {
                let before = ac.check(&full, &person, right, &object);
                let after = ac.check(&reduced, &person, right, &object);
                prop_assert!(
                    !after || before,
                    "dropping a role occupancy granted {right:?} to p{p}"
                );
            }
        }
    }

    /// Whatever forbid/permit rules exist, a Forbid matching the
    /// action always wins over any Permit.
    #[test]
    fn forbid_always_wins(
        permits in prop::collection::vec(0usize..4, 1..5),
        forbid_role in 0usize..4,
        occupancy in prop::collection::vec((0usize..4, 0usize..4), 1..8),
    ) {
        let mut m = org_with(&occupancy);
        for &r in &permits {
            m.add_rule(OrgRule::new(dn(&format!("cn=r{r}")), RuleKind::Permit, "act", "*"));
        }
        m.add_rule(OrgRule::new(dn(&format!("cn=r{forbid_role}")), RuleKind::Forbid, "act", "*"));
        for p in 0..4 {
            let person = dn(&format!("cn=p{p}"));
            let roles = m.roles_of(&person);
            if roles.contains(&dn(&format!("cn=r{forbid_role}"))) {
                prop_assert!(!m.authorise(&person, "act", "x").is_permitted());
            }
        }
    }
}

/// A random batch of Before-dependency attempts over N activities.
#[derive(Debug, Clone)]
struct DepAttempt {
    from: usize,
    to: usize,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// However many Before edges we try to add, accepted edges never
    /// form a cycle, and the schedule order is always a valid topological
    /// order containing every activity exactly once.
    #[test]
    fn schedule_is_always_a_valid_topological_order(
        n in 2usize..8,
        attempts in prop::collection::vec((0usize..8, 0usize..8), 0..40),
    ) {
        let mut model = InterActivityModel::new();
        let ids: Vec<ActivityId> =
            (0..n).map(|i| ActivityId::from(format!("a{i}").as_str())).collect();
        for id in &ids {
            model.register(Activity::new(id.clone(), id.as_str())).unwrap();
        }
        let mut accepted: Vec<DepAttempt> = Vec::new();
        for (f, t) in attempts {
            let (from, to) = (f % n, t % n);
            if model
                .add_dependency(&ids[from], DependencyKind::Before, &ids[to])
                .is_ok()
            {
                accepted.push(DepAttempt { from, to });
            }
        }
        let order = model.schedule_order();
        prop_assert_eq!(order.len(), n, "every activity scheduled exactly once");
        let pos = |id: &ActivityId| order.iter().position(|x| x == id).unwrap();
        for dep in &accepted {
            prop_assert!(
                pos(&ids[dep.from]) < pos(&ids[dep.to]),
                "edge a{} -> a{} violated by schedule",
                dep.from,
                dep.to
            );
        }
    }

    /// Negotiations never accept out of turn, never mutate after close,
    /// and the accepted assignee is always the last proposal made.
    #[test]
    fn negotiation_safety(moves in prop::collection::vec(0u8..4, 0..12)) {
        use mocca::activity::{Negotiation, NegotiationState, NegotiationSubject};
        let tom = dn("cn=Tom");
        let wolfgang = dn("cn=Wolfgang");
        let mut n = Negotiation::propose(
            NegotiationSubject::Responsibility("a".into()),
            tom.clone(),
            wolfgang.clone(),
            dn("cn=Candidate0"),
        );
        let mut last_proposal = dn("cn=Candidate0");
        let mut counter_count = 0u32;
        for (i, m) in moves.iter().enumerate() {
            let closed = matches!(n.state(), NegotiationState::Accepted | NegotiationState::Rejected);
            let actor = match n.awaiting() {
                Some(who) => who.clone(),
                None => tom.clone(), // any move must fail now
            };
            match m {
                0 => {
                    let candidate = dn(&format!("cn=Candidate{i}"));
                    if n.counter(&actor, candidate.clone()).is_ok() {
                        prop_assert!(!closed, "counter succeeded on closed negotiation");
                        last_proposal = candidate;
                        counter_count += 1;
                    }
                }
                1 => {
                    if let Ok(assignee) = n.accept(&actor) {
                        prop_assert!(!closed);
                        prop_assert_eq!(assignee, &last_proposal);
                    }
                }
                2 => {
                    if n.reject(&actor).is_ok() {
                        prop_assert!(!closed);
                    }
                }
                _ => {
                    // A third party can never move.
                    let outsider = dn("cn=Outsider");
                    prop_assert!(n.counter(&outsider, dn("cn=X")).is_err());
                }
            }
        }
        // History is bounded by moves made plus the opening proposal.
        prop_assert!(n.history().len() as u32 <= 2 + counter_count + moves.len() as u32);
    }

    /// Tailoring always resolves to a value satisfying the constraint,
    /// whatever the override pattern.
    #[test]
    fn tailoring_resolution_respects_constraints(
        overrides in prop::collection::vec((0u8..4, -20i64..40), 0..12),
        user_groups in prop::collection::vec("[a-c]", 0..3),
    ) {
        let mut store = TailorStore::new();
        store.declare("limit", Constraint::IntRange(0, 20), odp::Value::Int(5)).unwrap();
        for (scope_kind, value) in overrides {
            let scope = match scope_kind {
                0 => Scope::System,
                1 => Scope::Organisation("org".into()),
                2 => Scope::Group("a".into()),
                _ => Scope::User("tom".into()),
            };
            // Out-of-range sets must fail; in-range must succeed.
            let result = store.set("limit", scope, odp::Value::Int(value));
            prop_assert_eq!(result.is_ok(), (0..=20).contains(&value));
        }
        let ctx = TailorContext {
            user: "tom".into(),
            groups: user_groups,
            organisation: Some("org".into()),
        };
        let effective = store.effective("limit", &ctx).unwrap();
        let v = match effective {
            odp::Value::Int(i) => i,
            other => return Err(TestCaseError::fail(format!("non-int {other}"))),
        };
        prop_assert!((0..=20).contains(&v), "effective value {v} violates constraint");
    }

    /// The log-bucketed histogram's quantiles track the exact ranked
    /// sample from below, within the documented 1/16 relative error —
    /// for arbitrary sample multisets, not just uniform ones.
    #[test]
    fn histogram_quantiles_track_exact_ranked_samples(
        samples in prop::collection::vec(0u64..2_000_000, 1..300),
        qi in 0usize..5,
    ) {
        let q = [0.0, 0.5, 0.9, 0.99, 1.0][qi];
        let mut h = LogHistogram::new();
        for &s in &samples {
            h.record(s);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let rank = ((q * sorted.len() as f64).ceil() as usize).max(1) - 1;
        let truth = sorted[rank];
        let got = h.quantile(q).expect("non-empty histogram");
        prop_assert!(got <= truth, "quantile({q}) = {got} > exact {truth}");
        prop_assert!(
            (truth - got) as f64 <= truth as f64 / 16.0 + 1.0,
            "quantile({q}) = {got} under-reports exact {truth} beyond 1/16"
        );
        // Extremes are exact, whatever the distribution.
        prop_assert_eq!(h.quantile(0.0), sorted.first().copied());
        prop_assert_eq!(h.quantile(1.0), sorted.last().copied());
    }

    /// Quantiles are monotone in `q` and the summary is internally
    /// consistent for arbitrary samples.
    #[test]
    fn histogram_summary_is_internally_consistent(
        samples in prop::collection::vec(0u64..u64::MAX / 2, 1..200),
    ) {
        let mut h = LogHistogram::new();
        for &s in &samples {
            h.record(s);
        }
        let s = h.summary().expect("non-empty histogram");
        prop_assert_eq!(s.count, samples.len() as u64);
        prop_assert_eq!(s.min_micros, *samples.iter().min().unwrap());
        prop_assert_eq!(s.max_micros, *samples.iter().max().unwrap());
        prop_assert!(s.p50_micros <= s.p90_micros);
        prop_assert!(s.p90_micros <= s.p99_micros);
        prop_assert!(s.p99_micros <= s.max_micros);
        prop_assert!(s.min_micros <= s.p50_micros);
        prop_assert!(s.mean_micros <= s.max_micros && s.mean_micros >= s.min_micros);
    }
}
