//! Attribute types and values.
//!
//! X.500 entries are bags of typed, multi-valued attributes. We keep the
//! value syntax simple — strings and integers — which covers everything
//! the CSCW knowledge base stores (names, roles, mailbox addresses,
//! capability levels).

use std::fmt;

use serde::{Deserialize, Serialize};

/// A case-insensitive attribute type name (`cn`, `telephoneNumber`, …).
///
/// Normalised to lowercase at construction so that lookups and schema
/// checks need no case folding.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct AttributeType(String);

impl AttributeType {
    /// Creates a type name (normalising to lowercase).
    pub fn new(name: impl AsRef<str>) -> Self {
        AttributeType(name.as_ref().trim().to_ascii_lowercase())
    }

    /// The normalised name.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for AttributeType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for AttributeType {
    fn from(s: &str) -> Self {
        AttributeType::new(s)
    }
}

impl From<String> for AttributeType {
    fn from(s: String) -> Self {
        AttributeType::new(s)
    }
}

/// One attribute value.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum AttributeValue {
    /// A (case-sensitive) string value.
    Text(String),
    /// An integer value, for counters and levels.
    Int(i64),
}

impl AttributeValue {
    /// The value as a string slice, when textual.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            AttributeValue::Text(s) => Some(s),
            AttributeValue::Int(_) => None,
        }
    }

    /// The value as an integer, when numeric.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            AttributeValue::Int(i) => Some(*i),
            AttributeValue::Text(_) => None,
        }
    }

    /// Ordering comparison used by `>=` / `<=` filters. Integers compare
    /// numerically; strings lexicographically; mixed kinds are unordered.
    pub fn partial_cmp_same_kind(&self, other: &AttributeValue) -> Option<std::cmp::Ordering> {
        match (self, other) {
            (AttributeValue::Text(a), AttributeValue::Text(b)) => Some(a.cmp(b)),
            (AttributeValue::Int(a), AttributeValue::Int(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }
}

impl fmt::Display for AttributeValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttributeValue::Text(s) => f.write_str(s),
            AttributeValue::Int(i) => write!(f, "{i}"),
        }
    }
}

impl From<&str> for AttributeValue {
    fn from(s: &str) -> Self {
        AttributeValue::Text(s.to_owned())
    }
}

impl From<String> for AttributeValue {
    fn from(s: String) -> Self {
        AttributeValue::Text(s)
    }
}

impl From<i64> for AttributeValue {
    fn from(i: i64) -> Self {
        AttributeValue::Int(i)
    }
}

/// A typed, multi-valued attribute.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Attribute {
    ty: AttributeType,
    values: Vec<AttributeValue>,
}

impl Attribute {
    /// Creates an attribute with a single value.
    pub fn single(ty: impl Into<AttributeType>, value: impl Into<AttributeValue>) -> Self {
        Attribute {
            ty: ty.into(),
            values: vec![value.into()],
        }
    }

    /// Creates an attribute with several values.
    pub fn multi<V: Into<AttributeValue>>(
        ty: impl Into<AttributeType>,
        values: impl IntoIterator<Item = V>,
    ) -> Self {
        Attribute {
            ty: ty.into(),
            values: values.into_iter().map(Into::into).collect(),
        }
    }

    /// The attribute type.
    pub fn ty(&self) -> &AttributeType {
        &self.ty
    }

    /// All values.
    pub fn values(&self) -> &[AttributeValue] {
        &self.values
    }

    /// The first value (attributes are never empty in practice).
    pub fn first(&self) -> Option<&AttributeValue> {
        self.values.first()
    }

    /// Adds a value if not already present; returns whether it was added.
    pub fn add_value(&mut self, value: impl Into<AttributeValue>) -> bool {
        let value = value.into();
        if self.values.contains(&value) {
            false
        } else {
            self.values.push(value);
            true
        }
    }

    /// Removes a value; returns whether it was present.
    pub fn remove_value(&mut self, value: &AttributeValue) -> bool {
        let before = self.values.len();
        self.values.retain(|v| v != value);
        self.values.len() != before
    }

    /// True when no values remain.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// True when any value equals `value`.
    pub fn contains(&self, value: &AttributeValue) -> bool {
        self.values.contains(value)
    }
}

impl fmt::Display for Attribute {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}=", self.ty)?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                f.write_str("|")?;
            }
            write!(f, "{v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_names_normalise_case() {
        assert_eq!(AttributeType::new("CN"), AttributeType::new("cn"));
        assert_eq!(
            AttributeType::new(" SurName "),
            AttributeType::new("surname")
        );
        assert_eq!(AttributeType::new("CN").to_string(), "cn");
    }

    #[test]
    fn values_expose_kind_accessors() {
        let t = AttributeValue::from("hello");
        let i = AttributeValue::from(42i64);
        assert_eq!(t.as_text(), Some("hello"));
        assert_eq!(t.as_int(), None);
        assert_eq!(i.as_int(), Some(42));
        assert_eq!(i.as_text(), None);
        assert_eq!(i.to_string(), "42");
    }

    #[test]
    fn same_kind_comparison() {
        use std::cmp::Ordering::*;
        let a = AttributeValue::from(1i64);
        let b = AttributeValue::from(2i64);
        assert_eq!(a.partial_cmp_same_kind(&b), Some(Less));
        let s = AttributeValue::from("abc");
        let t = AttributeValue::from("abd");
        assert_eq!(s.partial_cmp_same_kind(&t), Some(Less));
        assert_eq!(a.partial_cmp_same_kind(&s), None);
    }

    #[test]
    fn multi_valued_attribute_add_remove() {
        let mut a = Attribute::multi("memberOfActivity", ["design", "review"]);
        assert_eq!(a.values().len(), 2);
        assert!(a.add_value("progress-meeting"));
        assert!(!a.add_value("design"), "duplicates rejected");
        assert!(a.remove_value(&AttributeValue::from("review")));
        assert!(!a.remove_value(&AttributeValue::from("review")));
        assert_eq!(a.values().len(), 2);
        assert!(a.contains(&AttributeValue::from("design")));
    }

    #[test]
    fn display_formats() {
        let a = Attribute::multi("cn", ["Tom", "Thomas"]);
        assert_eq!(a.to_string(), "cn=Tom|Thomas");
    }
}
