//! The Directory Information Tree.
//!
//! A [`Dit`] stores entries indexed by DN and maintains the parent/child
//! structure. It is the single-DSA building block; the distributed
//! directory in [`crate::dsa`] composes several DITs (one naming context
//! each) over the simulated network.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use crate::attribute::{Attribute, AttributeType, AttributeValue};
use crate::entry::Entry;
use crate::error::DirectoryError;
use crate::filter::Filter;
use crate::name::Dn;
use crate::observer::{DitChange, DitObserver};
use crate::schema::Schema;
use crate::search::{SearchOutcome, SearchRequest, SearchScope};

/// An in-memory DIT with schema checking.
///
/// # Examples
///
/// ```
/// use cscw_directory::{Attribute, Dit, Entry, Filter, SearchRequest, SearchScope};
///
/// let mut dit = Dit::new();
/// dit.add(Entry::new("c=UK".parse()?)
///     .with_class("country")
///     .with_attr(Attribute::single("c", "UK")))?;
/// dit.add(Entry::new("c=UK,o=Lancaster".parse()?)
///     .with_class("organization")
///     .with_attr(Attribute::single("o", "Lancaster")))?;
///
/// let out = dit.search(&SearchRequest::new(
///     "c=UK".parse()?,
///     SearchScope::Subtree,
///     Filter::present("o"),
/// ))?;
/// assert_eq!(out.entries.len(), 1);
/// # Ok::<(), cscw_directory::DirectoryError>(())
/// ```
#[derive(Debug)]
pub struct Dit {
    entries: BTreeMap<Dn, Entry>,
    children: BTreeMap<Dn, BTreeSet<Dn>>,
    schema: Schema,
    observers: Vec<Arc<dyn DitObserver>>,
}

impl Default for Dit {
    fn default() -> Self {
        Self::new()
    }
}

impl Clone for Dit {
    /// Cloning copies entries, structure and schema but **not**
    /// observers: a clone is a detached snapshot, and mutations on it
    /// must not surprise subscribers of the original.
    fn clone(&self) -> Self {
        Dit {
            entries: self.entries.clone(),
            children: self.children.clone(),
            schema: self.schema.clone(),
            observers: Vec::new(),
        }
    }
}

impl Dit {
    /// Creates an empty DIT with the standard schema.
    pub fn new() -> Self {
        Dit {
            entries: BTreeMap::new(),
            children: BTreeMap::new(),
            schema: Schema::standard(),
            observers: Vec::new(),
        }
    }

    /// Creates an empty DIT with a custom schema.
    pub fn with_schema(schema: Schema) -> Self {
        Dit {
            entries: BTreeMap::new(),
            children: BTreeMap::new(),
            schema,
            observers: Vec::new(),
        }
    }

    /// Registers an observer notified after every applied mutation
    /// (see [`DitChange`]). Observers are invoked in registration
    /// order; clones of the DIT do not inherit them.
    pub fn observe(&mut self, observer: Arc<dyn DitObserver>) {
        self.observers.push(observer);
    }

    fn notify(&self, change: DitChange) {
        for obs in &self.observers {
            obs.on_change(&change);
        }
    }

    /// The active schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Mutable schema access (e.g. to define app-specific classes).
    pub fn schema_mut(&mut self) -> &mut Schema {
        &mut self.schema
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries exist.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Adds an entry.
    ///
    /// # Errors
    ///
    /// * [`DirectoryError::InvalidName`] — the root cannot hold an entry.
    /// * [`DirectoryError::EntryExists`] — name already taken.
    /// * [`DirectoryError::NoParent`] — parent entry missing (the DIT
    ///   grows strictly top-down, except depth-1 entries under the root).
    /// * [`DirectoryError::SchemaViolation`] — schema check failed.
    pub fn add(&mut self, entry: Entry) -> Result<(), DirectoryError> {
        let dn = entry.dn().clone();
        if dn.is_root() {
            return Err(DirectoryError::InvalidName("cannot add the root".into()));
        }
        if self.entries.contains_key(&dn) {
            return Err(DirectoryError::EntryExists(dn));
        }
        let Some(parent) = dn.parent() else {
            return Err(DirectoryError::InvalidName("cannot add the root".into()));
        };
        if !parent.is_root() && !self.entries.contains_key(&parent) {
            return Err(DirectoryError::NoParent(dn));
        }
        self.schema.validate(&entry)?;
        self.children.entry(parent).or_default().insert(dn.clone());
        let snapshot = (!self.observers.is_empty()).then(|| entry.clone());
        self.entries.insert(dn, entry);
        if let Some(added) = snapshot {
            self.notify(DitChange::Added(added));
        }
        Ok(())
    }

    /// Reads an entry.
    pub fn get(&self, dn: &Dn) -> Option<&Entry> {
        self.entries.get(dn)
    }

    /// Reads an entry, as a `Result`.
    ///
    /// # Errors
    ///
    /// [`DirectoryError::NoSuchEntry`] when absent.
    pub fn read(&self, dn: &Dn) -> Result<&Entry, DirectoryError> {
        self.entries
            .get(dn)
            .ok_or_else(|| DirectoryError::NoSuchEntry(dn.clone()))
    }

    /// Removes a leaf entry.
    ///
    /// # Errors
    ///
    /// * [`DirectoryError::NoSuchEntry`] — absent.
    /// * [`DirectoryError::NotLeaf`] — entry has children.
    pub fn remove(&mut self, dn: &Dn) -> Result<Entry, DirectoryError> {
        if !self.entries.contains_key(dn) {
            return Err(DirectoryError::NoSuchEntry(dn.clone()));
        }
        if self
            .children
            .get(dn)
            .map(|c| !c.is_empty())
            .unwrap_or(false)
        {
            return Err(DirectoryError::NotLeaf(dn.clone()));
        }
        if let Some(siblings) = dn.parent().and_then(|p| self.children.get_mut(&p)) {
            siblings.remove(dn);
        }
        self.children.remove(dn);
        let entry = self
            .entries
            .remove(dn)
            .ok_or_else(|| DirectoryError::NoSuchEntry(dn.clone()))?;
        if !self.observers.is_empty() {
            self.notify(DitChange::Removed(entry.clone()));
        }
        Ok(entry)
    }

    /// Removes an entire subtree rooted at `dn` (inclusive); returns how
    /// many entries were removed.
    ///
    /// # Errors
    ///
    /// [`DirectoryError::NoSuchEntry`] when the root of the subtree is
    /// absent.
    pub fn remove_subtree(&mut self, dn: &Dn) -> Result<usize, DirectoryError> {
        if !self.entries.contains_key(dn) {
            return Err(DirectoryError::NoSuchEntry(dn.clone()));
        }
        let doomed: Vec<Dn> = self
            .entries
            .keys()
            .filter(|k| dn.is_prefix_of(k))
            .cloned()
            .collect();
        let mut removed = Vec::with_capacity(doomed.len());
        for d in &doomed {
            if let Some(e) = self.entries.remove(d) {
                removed.push(e);
            }
            self.children.remove(d);
        }
        if let Some(parent) = dn.parent() {
            if let Some(siblings) = self.children.get_mut(&parent) {
                siblings.remove(dn);
            }
        }
        if !self.observers.is_empty() {
            for e in removed {
                self.notify(DitChange::Removed(e));
            }
        }
        Ok(doomed.len())
    }

    /// Applies a closure to an entry and re-validates it.
    ///
    /// # Errors
    ///
    /// * [`DirectoryError::NoSuchEntry`] — absent.
    /// * [`DirectoryError::SchemaViolation`] — modification broke schema
    ///   (the change is rolled back).
    pub fn modify(&mut self, dn: &Dn, f: impl FnOnce(&mut Entry)) -> Result<(), DirectoryError> {
        let entry = self
            .entries
            .get_mut(dn)
            .ok_or_else(|| DirectoryError::NoSuchEntry(dn.clone()))?;
        let backup = entry.clone();
        f(entry);
        // The DN is structural; modifications must not change it.
        entry.set_dn(dn.clone());
        if let Err(e) = self.schema.validate(entry) {
            *entry = backup;
            return Err(e);
        }
        let change =
            (!self.observers.is_empty() && *entry != backup).then(|| DitChange::Modified {
                before: backup,
                after: entry.clone(),
            });
        if let Some(c) = change {
            self.notify(c);
        }
        Ok(())
    }

    /// Adds a value to an attribute of an existing entry.
    ///
    /// # Errors
    ///
    /// As for [`Dit::modify`].
    pub fn add_value(
        &mut self,
        dn: &Dn,
        ty: impl Into<AttributeType>,
        value: impl Into<AttributeValue>,
    ) -> Result<(), DirectoryError> {
        let (ty, value) = (ty.into(), value.into());
        self.modify(dn, |e| e.put_attr(Attribute::multi(ty, [value])))
    }

    /// Renames a **leaf** entry to a new name whose parent already exists.
    ///
    /// # Errors
    ///
    /// * [`DirectoryError::NoSuchEntry`] / [`DirectoryError::NotLeaf`] on
    ///   the source.
    /// * [`DirectoryError::EntryExists`] / [`DirectoryError::NoParent`] on
    ///   the target.
    pub fn rename(&mut self, from: &Dn, to: Dn) -> Result<(), DirectoryError> {
        if self.entries.contains_key(&to) {
            return Err(DirectoryError::EntryExists(to));
        }
        let to_parent = to
            .parent()
            .ok_or(DirectoryError::InvalidName("rename to root".into()))?;
        if !to_parent.is_root() && !self.entries.contains_key(&to_parent) {
            return Err(DirectoryError::NoParent(to));
        }
        let mut entry = self.remove(from)?;
        entry.set_dn(to.clone());
        self.children
            .entry(to_parent)
            .or_default()
            .insert(to.clone());
        let snapshot = (!self.observers.is_empty()).then(|| entry.clone());
        self.entries.insert(to, entry);
        if let Some(added) = snapshot {
            self.notify(DitChange::Added(added));
        }
        Ok(())
    }

    /// The immediate children of `base` (which may be the root).
    pub fn children(&self, base: &Dn) -> impl Iterator<Item = &Entry> {
        self.children
            .get(base)
            .into_iter()
            .flat_map(|set| set.iter())
            .filter_map(|dn| self.entries.get(dn))
    }

    /// Iterates over every entry in DN order.
    pub fn iter(&self) -> impl Iterator<Item = &Entry> {
        self.entries.values()
    }

    /// Evaluates a search request.
    ///
    /// # Errors
    ///
    /// [`DirectoryError::NoSuchEntry`] when the base object is missing
    /// (and is not the root).
    pub fn search(&self, request: &SearchRequest) -> Result<SearchOutcome, DirectoryError> {
        if !request.base.is_root() && !self.entries.contains_key(&request.base) {
            return Err(DirectoryError::NoSuchEntry(request.base.clone()));
        }
        let mut entries = Vec::new();
        let mut truncated = false;
        let candidates: Vec<&Entry> = match request.scope {
            SearchScope::Base => self.entries.get(&request.base).into_iter().collect(),
            SearchScope::OneLevel => self.children(&request.base).collect(),
            SearchScope::Subtree => self
                .entries
                .range(request.base.clone()..)
                .take_while(|(dn, _)| request.base.is_prefix_of(dn))
                .map(|(_, e)| e)
                .collect(),
        };
        for entry in candidates {
            if request.filter.matches(entry) {
                if let Some(limit) = request.size_limit {
                    if entries.len() >= limit {
                        truncated = true;
                        break;
                    }
                }
                entries.push(entry.clone());
            }
        }
        Ok(SearchOutcome { entries, truncated })
    }

    /// Convenience: subtree search from the root with the given filter.
    ///
    /// # Errors
    ///
    /// Never fails in practice (the base always exists); the `Result`
    /// mirrors [`Dit::search`].
    pub fn search_all(&self, filter: Filter) -> Result<Vec<Entry>, DirectoryError> {
        Ok(self
            .search(&SearchRequest::new(
                Dn::root(),
                SearchScope::Subtree,
                filter,
            ))?
            .entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dit {
        let mut dit = Dit::new();
        for (dn, class, attrs) in [
            ("c=UK", "country", vec![("c", "UK")]),
            ("c=UK,o=Lancaster", "organization", vec![("o", "Lancaster")]),
            (
                "c=UK,o=Lancaster,ou=Computing",
                "organizationalunit",
                vec![("ou", "Computing")],
            ),
            (
                "c=UK,o=Lancaster,ou=Computing,cn=Tom Rodden",
                "person",
                vec![("cn", "Tom Rodden"), ("sn", "Rodden")],
            ),
            ("c=DE", "country", vec![("c", "DE")]),
            ("c=DE,o=GMD", "organization", vec![("o", "GMD")]),
            (
                "c=DE,o=GMD,cn=Wolfgang Prinz",
                "person",
                vec![("cn", "Wolfgang Prinz"), ("sn", "Prinz")],
            ),
        ] {
            let mut e = Entry::new(dn.parse().unwrap()).with_class(class);
            for (t, v) in attrs {
                e.put_attr(Attribute::single(t, v));
            }
            dit.add(e).unwrap();
        }
        dit
    }

    #[test]
    fn add_requires_existing_parent() {
        let mut dit = Dit::new();
        let orphan = Entry::new("c=UK,o=Lancaster".parse().unwrap())
            .with_class("organization")
            .with_attr(Attribute::single("o", "Lancaster"));
        assert!(matches!(
            dit.add(orphan).unwrap_err(),
            DirectoryError::NoParent(_)
        ));
    }

    #[test]
    fn add_rejects_duplicates_and_root() {
        let mut dit = sample();
        let dup = Entry::new("c=UK".parse().unwrap())
            .with_class("country")
            .with_attr(Attribute::single("c", "UK"));
        assert!(matches!(
            dit.add(dup).unwrap_err(),
            DirectoryError::EntryExists(_)
        ));
        let root = Entry::new(Dn::root()).with_class("country");
        assert!(dit.add(root).is_err());
    }

    #[test]
    fn schema_violations_never_enter_the_tree() {
        let mut dit = Dit::new();
        let bad = Entry::new("c=UK".parse().unwrap()).with_class("country");
        assert!(matches!(
            dit.add(bad).unwrap_err(),
            DirectoryError::SchemaViolation { .. }
        ));
        assert!(dit.is_empty());
    }

    #[test]
    fn remove_leaf_only() {
        let mut dit = sample();
        let uk: Dn = "c=UK".parse().unwrap();
        assert!(matches!(
            dit.remove(&uk).unwrap_err(),
            DirectoryError::NotLeaf(_)
        ));
        let tom: Dn = "c=UK,o=Lancaster,ou=Computing,cn=Tom Rodden"
            .parse()
            .unwrap();
        assert!(dit.remove(&tom).is_ok());
        assert!(dit.get(&tom).is_none());
        assert!(matches!(
            dit.remove(&tom).unwrap_err(),
            DirectoryError::NoSuchEntry(_)
        ));
    }

    #[test]
    fn remove_subtree_removes_descendants() {
        let mut dit = sample();
        let uk: Dn = "c=UK".parse().unwrap();
        let removed = dit.remove_subtree(&uk).unwrap();
        assert_eq!(removed, 4);
        assert_eq!(dit.len(), 3);
        assert!(dit.get(&"c=DE".parse().unwrap()).is_some());
    }

    #[test]
    fn modify_rolls_back_on_schema_violation() {
        let mut dit = sample();
        let tom: Dn = "c=UK,o=Lancaster,ou=Computing,cn=Tom Rodden"
            .parse()
            .unwrap();
        let err = dit.modify(&tom, |e| {
            e.remove_attr(&"sn".into());
        });
        assert!(err.is_err());
        assert_eq!(dit.get(&tom).unwrap().first_text("sn"), Some("Rodden"));
    }

    #[test]
    fn modify_updates_attributes() {
        let mut dit = sample();
        let tom: Dn = "c=UK,o=Lancaster,ou=Computing,cn=Tom Rodden"
            .parse()
            .unwrap();
        dit.add_value(&tom, "mail", "tom@lancs.ac.uk").unwrap();
        assert_eq!(
            dit.get(&tom).unwrap().first_text("mail"),
            Some("tom@lancs.ac.uk")
        );
    }

    #[test]
    fn rename_moves_leaf() {
        let mut dit = sample();
        let from: Dn = "c=DE,o=GMD,cn=Wolfgang Prinz".parse().unwrap();
        let to: Dn = "c=DE,o=GMD,cn=W Prinz".parse().unwrap();
        dit.rename(&from, to.clone()).unwrap();
        assert!(dit.get(&from).is_none());
        let moved = dit.get(&to).unwrap();
        assert_eq!(moved.dn(), &to);
        assert_eq!(moved.first_text("sn"), Some("Prinz"));
    }

    #[test]
    fn rename_rejects_existing_target_and_missing_parent() {
        let mut dit = sample();
        let from: Dn = "c=DE,o=GMD,cn=Wolfgang Prinz".parse().unwrap();
        assert!(matches!(
            dit.rename(&from, "c=UK".parse().unwrap()).unwrap_err(),
            DirectoryError::EntryExists(_)
        ));
        assert!(matches!(
            dit.rename(&from, "c=FR,cn=W".parse().unwrap()).unwrap_err(),
            DirectoryError::NoParent(_)
        ));
    }

    #[test]
    fn search_scopes() {
        let dit = sample();
        let base: Dn = "c=UK".parse().unwrap();
        let all = Filter::True;

        let base_hit = dit
            .search(&SearchRequest::new(
                base.clone(),
                SearchScope::Base,
                all.clone(),
            ))
            .unwrap();
        assert_eq!(base_hit.entries.len(), 1);

        let one = dit
            .search(&SearchRequest::new(
                base.clone(),
                SearchScope::OneLevel,
                all.clone(),
            ))
            .unwrap();
        assert_eq!(one.entries.len(), 1);
        assert_eq!(one.entries[0].dn().to_string(), "c=UK,o=Lancaster");

        let sub = dit
            .search(&SearchRequest::new(base, SearchScope::Subtree, all))
            .unwrap();
        assert_eq!(sub.entries.len(), 4, "subtree includes the base");
    }

    #[test]
    fn search_with_filter_and_size_limit() {
        let dit = sample();
        let people = dit.search_all(Filter::eq("objectclass", "person")).unwrap();
        assert_eq!(people.len(), 2);

        let req =
            SearchRequest::new(Dn::root(), SearchScope::Subtree, Filter::True).with_size_limit(3);
        let out = dit.search(&req).unwrap();
        assert_eq!(out.entries.len(), 3);
        assert!(out.truncated);
    }

    #[test]
    fn search_missing_base_errors() {
        let dit = sample();
        let req = SearchRequest::new("c=FR".parse().unwrap(), SearchScope::Subtree, Filter::True);
        assert!(matches!(
            dit.search(&req).unwrap_err(),
            DirectoryError::NoSuchEntry(_)
        ));
    }

    #[test]
    fn subtree_search_does_not_leak_siblings() {
        let dit = sample();
        // Regression guard for the classic prefix bug: "c=U" must not match "c=UK".
        let req = SearchRequest::new("c=DE".parse().unwrap(), SearchScope::Subtree, Filter::True);
        let out = dit.search(&req).unwrap();
        assert!(out
            .entries
            .iter()
            .all(|e| e.dn().to_string().starts_with("c=DE")));
        assert_eq!(out.entries.len(), 3);
    }
}
