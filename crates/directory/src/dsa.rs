//! Distributed directory: DSAs and DUAs over the simulated network.
//!
//! The directory is partitioned into **naming contexts** (subtrees), each
//! mastered by one Directory System Agent ([`DsaNode`]). A DSA that does
//! not hold the target context either **chains** the request to the DSA
//! that does (default), or returns a **referral** for the client to
//! follow, mirroring the X.500 distributed operation modes.
//!
//! Subtree searches whose base dominates contexts held elsewhere are
//! chained to every subordinate DSA and the partial results merged —
//! a simplified form of X.518 distributed search.
//!
//! Masters push **shadow updates** to replica DSAs on every successful
//! write (primary-copy replication); shadows answer reads locally and
//! reject writes with [`DirectoryError::NotMaster`].
//!
//! The [`Dua`] (Directory User Agent) is the synchronous client facade:
//! it injects a request into the simulation, drives it to completion and
//! returns the outcome.

use std::collections::BTreeMap;

use cscw_kernel::Layer;
use serde::{Deserialize, Serialize};
use simnet::{Message, Node, NodeCtx, NodeId, Payload, Sim};

use crate::attribute::{Attribute, AttributeType, AttributeValue};
use crate::dit::Dit;
use crate::entry::Entry;
use crate::error::DirectoryError;
use crate::name::Dn;
use crate::search::{SearchOutcome, SearchRequest};

/// Maximum chaining depth before a request is refused (loop guard).
pub const MAX_HOPS: u8 = 8;

/// Mirrors a directory event into the kernel telemetry stream (if one
/// is attached to the simulation) tagged [`Layer::Directory`]. The
/// existing `Metrics` counters stay authoritative; telemetry adds the
/// cross-layer view.
fn emit_directory(ctx: &NodeCtx<'_>, name: &'static str, detail: impl Into<String>) {
    if let Some(t) = ctx.telemetry() {
        t.incr(Layer::Directory, name);
        t.emit(ctx.now_micros(), Layer::Directory, name, detail);
    }
}

/// A network-transferable entry modification (closures cannot cross the
/// simulated wire).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Modification {
    /// Add/merge an attribute.
    Put(Attribute),
    /// Replace an attribute wholesale.
    Replace(Attribute),
    /// Remove an attribute entirely.
    RemoveAttr(AttributeType),
    /// Remove one value (attribute dropped when emptied).
    RemoveValue(AttributeType, AttributeValue),
}

impl Modification {
    /// Applies the modification to an entry.
    pub fn apply(&self, entry: &mut Entry) {
        match self {
            Modification::Put(a) => entry.put_attr(a.clone()),
            Modification::Replace(a) => entry.replace_attr(a.clone()),
            Modification::RemoveAttr(ty) => {
                entry.remove_attr(ty);
            }
            Modification::RemoveValue(ty, v) => {
                entry.remove_value(ty, v);
            }
        }
    }
}

/// A directory operation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DirOp {
    /// Add an entry.
    Add(Entry),
    /// Remove a leaf entry.
    Remove(Dn),
    /// Apply modifications to an entry.
    Modify(Dn, Vec<Modification>),
    /// Rename a leaf entry to a new name within the same naming context.
    Rename(Dn, Dn),
    /// Read one entry.
    Read(Dn),
    /// Search.
    Search(SearchRequest),
}

impl DirOp {
    /// The name that decides which naming context must execute the op.
    pub fn target(&self) -> &Dn {
        match self {
            DirOp::Add(e) => e.dn(),
            DirOp::Remove(dn) | DirOp::Modify(dn, _) | DirOp::Read(dn) | DirOp::Rename(dn, _) => dn,
            DirOp::Search(req) => &req.base,
        }
    }

    /// True for operations that change directory state.
    pub fn is_write(&self) -> bool {
        matches!(
            self,
            DirOp::Add(_) | DirOp::Remove(_) | DirOp::Modify(..) | DirOp::Rename(..)
        )
    }
}

/// A successful operation result.
#[derive(Debug, Clone, PartialEq)]
pub enum DirResult {
    /// Write completed.
    Done,
    /// The entry read.
    Entry(Entry),
    /// Search results.
    Search(SearchOutcome),
}

/// The DSA/DUA wire protocol.
#[derive(Debug)]
pub enum DapMessage {
    /// An operation travelling toward the responsible DSA.
    Request {
        /// Correlates responses with requests.
        req_id: u64,
        /// Node to send the final response to.
        origin: NodeId,
        /// The operation.
        op: DirOp,
        /// Chain-hop counter (loop guard).
        hops: u8,
    },
    /// The final answer for `req_id`.
    Response {
        /// Correlates with the request.
        req_id: u64,
        /// Outcome.
        result: Result<DirResult, DirectoryError>,
    },
    /// A referral: re-send the request to `target`.
    Referral {
        /// Correlates with the request.
        req_id: u64,
        /// The DSA believed to hold the context.
        target: NodeId,
        /// The original operation, returned for re-submission.
        op: DirOp,
    },
    /// Primary-copy replication push (master → shadow).
    ShadowUpdate {
        /// The write to replay.
        op: DirOp,
    },
    /// Internal: a merged piece of a distributed subtree search.
    PartialSearch {
        /// Correlates with the aggregation.
        agg_id: u64,
        /// Partial result from one subordinate DSA.
        result: Result<SearchOutcome, DirectoryError>,
    },
}

/// How a DSA handles requests for contexts it does not hold.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InteractionMode {
    /// Forward the request itself (X.518 chaining).
    #[default]
    Chaining,
    /// Tell the client where to go (X.518 referral).
    Referral,
}

/// State for an in-progress distributed subtree search.
#[derive(Debug)]
struct Aggregation {
    /// Id used on sub-requests; partial responses match on this.
    agg_id: u64,
    /// The original client request id to answer.
    orig_req_id: u64,
    origin: NodeId,
    merged: SearchOutcome,
    outstanding: usize,
    failed: Option<DirectoryError>,
}

/// A Directory System Agent bound to one simulated node.
#[derive(Debug)]
pub struct DsaNode {
    dit: Dit,
    /// Context prefixes this DSA masters.
    contexts: Vec<Dn>,
    /// Context prefixes this DSA shadows (read-only copies).
    shadowed: Vec<Dn>,
    /// Knowledge of remote contexts: prefix → responsible DSA.
    knowledge: BTreeMap<Dn, NodeId>,
    /// Replica DSAs to push writes to.
    shadows: Vec<NodeId>,
    mode: InteractionMode,
    next_agg: u64,
    aggregations: Vec<Aggregation>,
}

impl DsaNode {
    /// Creates a DSA mastering the given naming contexts.
    pub fn new(contexts: impl IntoIterator<Item = Dn>) -> Self {
        DsaNode {
            dit: Dit::new(),
            contexts: contexts.into_iter().collect(),
            shadowed: Vec::new(),
            knowledge: BTreeMap::new(),
            shadows: Vec::new(),
            mode: InteractionMode::Chaining,
            next_agg: 0,
            aggregations: Vec::new(),
        }
    }

    /// Switches between chaining and referral handling.
    #[must_use]
    pub fn with_mode(mut self, mode: InteractionMode) -> Self {
        self.mode = mode;
        self
    }

    /// Registers knowledge that `prefix` is mastered at `dsa`.
    pub fn add_knowledge(&mut self, prefix: Dn, dsa: NodeId) {
        self.knowledge.insert(prefix, dsa);
    }

    /// Registers a shadow replica to push writes to.
    pub fn add_shadow(&mut self, shadow: NodeId) {
        self.shadows.push(shadow);
    }

    /// Marks `prefix` as shadowed here (read-only copy of a remote
    /// master's context).
    pub fn add_shadowed_context(&mut self, prefix: Dn) {
        self.shadowed.push(prefix);
    }

    /// Direct access to the local DIT (tests, bootstrap).
    pub fn dit(&self) -> &Dit {
        &self.dit
    }

    /// Mutable access to the local DIT for out-of-band bootstrap.
    pub fn dit_mut(&mut self) -> &mut Dit {
        &mut self.dit
    }

    fn masters(&self, dn: &Dn) -> bool {
        self.contexts.iter().any(|c| c.is_prefix_of(dn))
    }

    fn holds_copy(&self, dn: &Dn) -> bool {
        self.masters(dn) || self.shadowed.iter().any(|c| c.is_prefix_of(dn))
    }

    /// The remote DSA responsible for `dn`, by longest-prefix knowledge.
    fn route(&self, dn: &Dn) -> Option<NodeId> {
        self.knowledge
            .iter()
            .filter(|(prefix, _)| prefix.is_prefix_of(dn))
            .max_by_key(|(prefix, _)| prefix.depth())
            .map(|(_, &node)| node)
    }

    /// Subordinate DSAs whose contexts fall strictly under `base`.
    fn subordinates(&self, base: &Dn) -> Vec<(Dn, NodeId)> {
        self.knowledge
            .iter()
            .filter(|(prefix, _)| base.is_prefix_of(prefix) || base.is_root())
            .map(|(p, &n)| (p.clone(), n))
            .collect()
    }

    fn execute_local(&mut self, op: &DirOp) -> Result<DirResult, DirectoryError> {
        match op {
            DirOp::Add(entry) => {
                self.dit.add(entry.clone())?;
                Ok(DirResult::Done)
            }
            DirOp::Remove(dn) => {
                self.dit.remove(dn)?;
                Ok(DirResult::Done)
            }
            DirOp::Modify(dn, mods) => {
                self.dit.modify(dn, |e| {
                    for m in mods {
                        m.apply(e);
                    }
                })?;
                Ok(DirResult::Done)
            }
            DirOp::Rename(from, to) => {
                // Renames may not cross naming contexts: the target must
                // stay under a context this DSA masters.
                if !self.masters(to) {
                    return Err(DirectoryError::NoSuchContext(to.clone()));
                }
                self.dit.rename(from, to.clone())?;
                Ok(DirResult::Done)
            }
            DirOp::Read(dn) => Ok(DirResult::Entry(self.dit.read(dn)?.clone())),
            DirOp::Search(req) => Ok(DirResult::Search(self.dit.search(req)?)),
        }
    }

    fn respond(
        ctx: &mut NodeCtx<'_>,
        origin: NodeId,
        req_id: u64,
        result: Result<DirResult, DirectoryError>,
    ) {
        ctx.metrics().incr("dsa_responses");
        emit_directory(
            ctx,
            "dsa.respond",
            format!(
                "req {req_id}: {}",
                if result.is_ok() { "ok" } else { "error" }
            ),
        );
        ctx.send(
            origin,
            Payload::new(DapMessage::Response { req_id, result }),
        );
    }

    fn push_shadow_update(&self, ctx: &mut NodeCtx<'_>, op: &DirOp) {
        for &shadow in &self.shadows {
            ctx.metrics().incr("dsa_shadow_pushes");
            emit_directory(ctx, "dsa.shadow_push", format!("to {shadow:?}"));
            ctx.send(
                shadow,
                Payload::new(DapMessage::ShadowUpdate { op: op.clone() }),
            );
        }
    }

    fn handle_request(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        req_id: u64,
        origin: NodeId,
        op: DirOp,
        hops: u8,
    ) {
        let target = op.target().clone();

        if op.is_write() {
            if self.masters(&target) {
                let result = self.execute_local(&op);
                if result.is_ok() {
                    self.push_shadow_update(ctx, &op);
                }
                Self::respond(ctx, origin, req_id, result);
                return;
            }
            if self.holds_copy(&target) {
                // A shadow must not accept writes.
                Self::respond(ctx, origin, req_id, Err(DirectoryError::NotMaster(target)));
                return;
            }
        } else if self.holds_copy(&target) {
            // Distributed subtree search: merge in subordinate contexts.
            if let DirOp::Search(req) = &op {
                if req.scope == crate::search::SearchScope::Subtree {
                    let subs = self.subordinates(&req.base);
                    if !subs.is_empty() {
                        self.start_aggregation(ctx, req_id, origin, req.clone(), subs);
                        return;
                    }
                }
            }
            let result = self.execute_local(&op);
            Self::respond(ctx, origin, req_id, result);
            return;
        }

        // Not ours: route onward.
        let Some(next) = self.route(&target) else {
            Self::respond(
                ctx,
                origin,
                req_id,
                Err(DirectoryError::NoSuchContext(target)),
            );
            return;
        };
        match self.mode {
            InteractionMode::Chaining => {
                if hops >= MAX_HOPS {
                    Self::respond(
                        ctx,
                        origin,
                        req_id,
                        Err(DirectoryError::Unavailable(
                            "chaining hop limit reached".into(),
                        )),
                    );
                    return;
                }
                ctx.metrics().incr("dsa_chained");
                emit_directory(ctx, "dsa.chain", format!("req {req_id} to {next:?}"));
                ctx.send(
                    next,
                    Payload::new(DapMessage::Request {
                        req_id,
                        origin,
                        op,
                        hops: hops + 1,
                    }),
                );
            }
            InteractionMode::Referral => {
                ctx.metrics().incr("dsa_referrals");
                ctx.send(
                    origin,
                    Payload::new(DapMessage::Referral {
                        req_id,
                        target: next,
                        op,
                    }),
                );
            }
        }
    }

    fn start_aggregation(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        req_id: u64,
        origin: NodeId,
        req: SearchRequest,
        subs: Vec<(Dn, NodeId)>,
    ) {
        let local = self.dit.search(&req);
        let mut merged = match local {
            Ok(out) => out,
            Err(e) => {
                Self::respond(ctx, origin, req_id, Err(e));
                return;
            }
        };
        // Dedup guard: a subordinate may shadow entries we also hold.
        let agg_id = self.next_agg;
        self.next_agg += 1;
        let me = ctx.id();
        let mut outstanding = 0;
        for (prefix, node) in subs {
            if node == me {
                continue;
            }
            let sub_req = SearchRequest {
                base: prefix,
                scope: crate::search::SearchScope::Subtree,
                filter: req.filter.clone(),
                size_limit: req.size_limit,
            };
            ctx.metrics().incr("dsa_distributed_subsearches");
            ctx.send(
                node,
                Payload::new(DapMessage::Request {
                    req_id: agg_id,
                    origin: me,
                    op: DirOp::Search(sub_req),
                    hops: 0,
                }),
            );
            outstanding += 1;
        }
        if outstanding == 0 {
            Self::respond(ctx, origin, req_id, Ok(DirResult::Search(merged)));
            return;
        }
        merged.entries.sort_by(|a, b| a.dn().cmp(b.dn()));
        self.aggregations.push(Aggregation {
            agg_id,
            orig_req_id: req_id,
            origin,
            merged,
            outstanding,
            failed: None,
        });
    }

    fn handle_partial(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        agg_id: u64,
        result: Result<SearchOutcome, DirectoryError>,
    ) {
        let Some(pos) = self.aggregations.iter().position(|a| a.agg_id == agg_id) else {
            return;
        };
        let finished = {
            let agg = &mut self.aggregations[pos];
            match result {
                Ok(out) => {
                    for e in out.entries {
                        if !agg.merged.entries.iter().any(|x| x.dn() == e.dn()) {
                            agg.merged.entries.push(e);
                        }
                    }
                    agg.merged.truncated |= out.truncated;
                }
                Err(e) => {
                    agg.failed.get_or_insert(e);
                }
            }
            agg.outstanding -= 1;
            agg.outstanding == 0
        };
        if finished {
            let agg = self.aggregations.remove(pos);
            let mut merged = agg.merged;
            merged.entries.sort_by(|a, b| a.dn().cmp(b.dn()));
            let result = match agg.failed {
                Some(e) => Err(e),
                None => Ok(DirResult::Search(merged)),
            };
            Self::respond(ctx, agg.origin, agg.orig_req_id, result);
        }
    }
}

impl Node for DsaNode {
    fn on_message(&mut self, ctx: &mut NodeCtx<'_>, msg: Message) {
        let dap = match msg.payload.downcast::<DapMessage>() {
            Ok(dap) => dap,
            Err(_) => return, // not ours; ignore foreign traffic
        };
        match dap {
            DapMessage::Request {
                req_id,
                origin,
                op,
                hops,
            } => {
                ctx.metrics().incr("dsa_requests");
                emit_directory(
                    ctx,
                    "dsa.request",
                    format!("req {req_id} for {}", op.target()),
                );
                // Detect sub-search responses bound for an aggregation:
                // they come back as Response to *us*, not Request.
                self.handle_request(ctx, req_id, origin, op, hops);
            }
            DapMessage::Response { req_id, result } => {
                // A response addressed to a DSA is a sub-search partial.
                let partial = result.map(|r| match r {
                    DirResult::Search(out) => out,
                    _ => SearchOutcome::default(),
                });
                self.handle_partial(ctx, req_id, partial);
            }
            DapMessage::ShadowUpdate { op } => {
                ctx.metrics().incr("dsa_shadow_applied");
                if self.execute_local(&op).is_err() {
                    ctx.metrics().incr("dsa_shadow_conflicts");
                }
            }
            DapMessage::Referral { .. } | DapMessage::PartialSearch { .. } => {
                // Referrals are client-side concerns; PartialSearch is
                // reserved for future incremental merging.
            }
        }
    }
}

/// The client-side response collector bound to a user's node.
#[derive(Debug, Default)]
pub struct DuaNode {
    responses: BTreeMap<u64, Result<DirResult, DirectoryError>>,
    referrals: BTreeMap<u64, (NodeId, DirOp)>,
}

impl Node for DuaNode {
    fn on_message(&mut self, _ctx: &mut NodeCtx<'_>, msg: Message) {
        let Ok(dap) = msg.payload.downcast::<DapMessage>() else {
            return;
        };
        match dap {
            DapMessage::Response { req_id, result } => {
                self.responses.insert(req_id, result);
            }
            DapMessage::Referral { req_id, target, op } => {
                self.referrals.insert(req_id, (target, op));
            }
            _ => {}
        }
    }
}

/// Synchronous Directory User Agent: drives the simulation until each
/// operation completes.
///
/// # Examples
///
/// See the crate-level documentation for a full two-DSA example.
#[derive(Debug, Clone, Copy)]
pub struct Dua {
    client: NodeId,
    home_dsa: NodeId,
    next_req: u64,
}

impl Dua {
    /// Creates a DUA for `client` whose default DSA is `home_dsa`.
    /// `client` must have a [`DuaNode`] registered.
    pub fn new(client: NodeId, home_dsa: NodeId) -> Self {
        Dua {
            client,
            home_dsa,
            next_req: 1,
        }
    }

    /// The client node.
    pub fn client(&self) -> NodeId {
        self.client
    }

    /// Performs `op` against the home DSA, following one referral if
    /// offered, and drives the simulation until the answer arrives.
    ///
    /// # Errors
    ///
    /// * Any [`DirectoryError`] produced by the responsible DSA.
    /// * [`DirectoryError::Unavailable`] when no response arrives (node
    ///   down or partition).
    pub fn perform(&mut self, sim: &mut Sim, op: DirOp) -> Result<DirResult, DirectoryError> {
        let req_id = self.next_req;
        self.next_req += 1;
        sim.send_from(
            self.client,
            self.home_dsa,
            Payload::new(DapMessage::Request {
                req_id,
                origin: self.client,
                op,
                hops: 0,
            }),
            256,
        );
        sim.run_until_idle();
        // Follow one referral hop if the home DSA redirected us.
        if let Some((target, op)) = self.take_referral(sim, req_id) {
            sim.send_from(
                self.client,
                target,
                Payload::new(DapMessage::Request {
                    req_id,
                    origin: self.client,
                    op,
                    hops: 0,
                }),
                256,
            );
            sim.run_until_idle();
        }
        self.take_response(sim, req_id)
            .unwrap_or_else(|| Err(DirectoryError::Unavailable("no response from DSA".into())))
    }

    fn take_referral(&self, sim: &mut Sim, req_id: u64) -> Option<(NodeId, DirOp)> {
        sim.node_mut::<DuaNode>(self.client)?
            .referrals
            .remove(&req_id)
    }

    fn take_response(
        &self,
        sim: &mut Sim,
        req_id: u64,
    ) -> Option<Result<DirResult, DirectoryError>> {
        sim.node_mut::<DuaNode>(self.client)?
            .responses
            .remove(&req_id)
    }

    /// Adds an entry.
    ///
    /// # Errors
    ///
    /// As for [`Dua::perform`].
    pub fn add(&mut self, sim: &mut Sim, entry: Entry) -> Result<(), DirectoryError> {
        self.perform(sim, DirOp::Add(entry)).map(|_| ())
    }

    /// Removes a leaf entry.
    ///
    /// # Errors
    ///
    /// As for [`Dua::perform`].
    pub fn remove(&mut self, sim: &mut Sim, dn: Dn) -> Result<(), DirectoryError> {
        self.perform(sim, DirOp::Remove(dn)).map(|_| ())
    }

    /// Renames a leaf entry (within one naming context).
    ///
    /// # Errors
    ///
    /// As for [`Dua::perform`]; additionally
    /// [`DirectoryError::NoSuchContext`] when the new name would leave
    /// the master's context.
    pub fn rename(&mut self, sim: &mut Sim, from: Dn, to: Dn) -> Result<(), DirectoryError> {
        self.perform(sim, DirOp::Rename(from, to)).map(|_| ())
    }

    /// Applies modifications to an entry.
    ///
    /// # Errors
    ///
    /// As for [`Dua::perform`].
    pub fn modify(
        &mut self,
        sim: &mut Sim,
        dn: Dn,
        mods: Vec<Modification>,
    ) -> Result<(), DirectoryError> {
        self.perform(sim, DirOp::Modify(dn, mods)).map(|_| ())
    }

    /// Reads an entry.
    ///
    /// # Errors
    ///
    /// As for [`Dua::perform`].
    pub fn read(&mut self, sim: &mut Sim, dn: Dn) -> Result<Entry, DirectoryError> {
        match self.perform(sim, DirOp::Read(dn))? {
            DirResult::Entry(e) => Ok(e),
            _ => Err(DirectoryError::Unavailable("unexpected result kind".into())),
        }
    }

    /// Searches the directory.
    ///
    /// # Errors
    ///
    /// As for [`Dua::perform`].
    pub fn search(
        &mut self,
        sim: &mut Sim,
        request: SearchRequest,
    ) -> Result<SearchOutcome, DirectoryError> {
        match self.perform(sim, DirOp::Search(request))? {
            DirResult::Search(out) => Ok(out),
            _ => Err(DirectoryError::Unavailable("unexpected result kind".into())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::Filter;
    use crate::search::SearchScope;
    use simnet::{LinkSpec, TopologyBuilder};

    /// Two DSAs: UK context on one, DE context on the other, one client.
    fn two_dsa_world(mode: InteractionMode) -> (Sim, Dua, NodeId, NodeId) {
        let mut b = TopologyBuilder::new();
        let client = b.add_node("client");
        let dsa_uk = b.add_node("dsa-uk");
        let dsa_de = b.add_node("dsa-de");
        b.full_mesh(LinkSpec::lan());
        let mut sim = Sim::new(b.build(), 5);

        let uk: Dn = "c=UK".parse().unwrap();
        let de: Dn = "c=DE".parse().unwrap();

        let mut uk_dsa = DsaNode::new([uk.clone()]).with_mode(mode);
        uk_dsa.add_knowledge(de.clone(), dsa_de);
        let mut de_dsa = DsaNode::new([de.clone()]).with_mode(mode);
        de_dsa.add_knowledge(uk.clone(), dsa_uk);

        // Bootstrap context roots locally.
        uk_dsa
            .dit_mut()
            .add(
                Entry::new(uk)
                    .with_class("country")
                    .with_attr(Attribute::single("c", "UK")),
            )
            .unwrap();
        de_dsa
            .dit_mut()
            .add(
                Entry::new(de)
                    .with_class("country")
                    .with_attr(Attribute::single("c", "DE")),
            )
            .unwrap();

        sim.register(dsa_uk, uk_dsa);
        sim.register(dsa_de, de_dsa);
        sim.register(client, DuaNode::default());
        (sim, Dua::new(client, dsa_uk), dsa_uk, dsa_de)
    }

    fn org(dn: &str, o: &str) -> Entry {
        Entry::new(dn.parse().unwrap())
            .with_class("organization")
            .with_attr(Attribute::single("o", o))
    }

    #[test]
    fn local_add_and_read() {
        let (mut sim, mut dua, _, _) = two_dsa_world(InteractionMode::Chaining);
        dua.add(&mut sim, org("c=UK,o=Lancaster", "Lancaster"))
            .unwrap();
        let e = dua
            .read(&mut sim, "c=UK,o=Lancaster".parse().unwrap())
            .unwrap();
        assert_eq!(e.first_text("o"), Some("Lancaster"));
    }

    #[test]
    fn chaining_routes_to_remote_master() {
        let (mut sim, mut dua, _, _) = two_dsa_world(InteractionMode::Chaining);
        dua.add(&mut sim, org("c=DE,o=GMD", "GMD")).unwrap();
        let e = dua.read(&mut sim, "c=DE,o=GMD".parse().unwrap()).unwrap();
        assert_eq!(e.first_text("o"), Some("GMD"));
        assert!(
            sim.metrics().counter("dsa_chained") >= 2,
            "add and read both chained"
        );
    }

    #[test]
    fn referral_mode_redirects_client() {
        let (mut sim, mut dua, _, _) = two_dsa_world(InteractionMode::Referral);
        dua.add(&mut sim, org("c=DE,o=GMD", "GMD")).unwrap();
        assert!(sim.metrics().counter("dsa_referrals") >= 1);
        assert_eq!(sim.metrics().counter("dsa_chained"), 0);
        let e = dua.read(&mut sim, "c=DE,o=GMD".parse().unwrap()).unwrap();
        assert_eq!(e.first_text("o"), Some("GMD"));
    }

    #[test]
    fn unknown_context_is_reported() {
        let (mut sim, mut dua, _, _) = two_dsa_world(InteractionMode::Chaining);
        let err = dua.add(&mut sim, org("c=FR,o=INRIA", "INRIA")).unwrap_err();
        assert!(matches!(err, DirectoryError::NoSuchContext(_)));
    }

    #[test]
    fn remote_errors_propagate_back() {
        let (mut sim, mut dua, _, _) = two_dsa_world(InteractionMode::Chaining);
        let err = dua
            .read(&mut sim, "c=DE,o=Nowhere".parse().unwrap())
            .unwrap_err();
        assert!(matches!(err, DirectoryError::NoSuchEntry(_)));
    }

    #[test]
    fn partition_yields_unavailable() {
        let (mut sim, mut dua, dsa_uk, _) = two_dsa_world(InteractionMode::Chaining);
        sim.apply_fault(simnet::FaultAction::Partition(
            vec![dua.client()],
            vec![dsa_uk],
        ));
        let err = dua.read(&mut sim, "c=UK".parse().unwrap()).unwrap_err();
        assert!(matches!(err, DirectoryError::Unavailable(_)));
    }

    #[test]
    fn distributed_subtree_search_merges_contexts() {
        let (mut sim, mut dua, _, _) = two_dsa_world(InteractionMode::Chaining);
        dua.add(&mut sim, org("c=UK,o=Lancaster", "Lancaster"))
            .unwrap();
        dua.add(&mut sim, org("c=DE,o=GMD", "GMD")).unwrap();
        // Root-based subtree search from the UK DSA must include DE results.
        let out = dua
            .search(
                &mut sim,
                SearchRequest::new(
                    "c=UK".parse().unwrap(),
                    SearchScope::Subtree,
                    Filter::present("o"),
                ),
            )
            .unwrap();
        assert_eq!(out.entries.len(), 1, "UK subtree has one org");
        // Search within DE context routed transparently.
        let out = dua
            .search(
                &mut sim,
                SearchRequest::new(
                    "c=DE".parse().unwrap(),
                    SearchScope::Subtree,
                    Filter::present("o"),
                ),
            )
            .unwrap();
        assert_eq!(out.entries.len(), 1, "DE subtree has one org");
    }

    #[test]
    fn shadow_replication_serves_reads_and_rejects_writes() {
        let mut b = TopologyBuilder::new();
        let client = b.add_node("client");
        let master = b.add_node("master");
        let shadow = b.add_node("shadow");
        b.full_mesh(LinkSpec::lan());
        let mut sim = Sim::new(b.build(), 5);

        let uk: Dn = "c=UK".parse().unwrap();
        let mut m = DsaNode::new([uk.clone()]);
        m.add_shadow(shadow);
        m.dit_mut()
            .add(
                Entry::new(uk.clone())
                    .with_class("country")
                    .with_attr(Attribute::single("c", "UK")),
            )
            .unwrap();
        let mut s = DsaNode::new([]);
        s.add_shadowed_context(uk.clone());
        s.dit_mut()
            .add(
                Entry::new(uk)
                    .with_class("country")
                    .with_attr(Attribute::single("c", "UK")),
            )
            .unwrap();

        sim.register(master, m);
        sim.register(shadow, s);
        sim.register(client, DuaNode::default());

        let mut dua = Dua::new(client, master);
        dua.add(&mut sim, org("c=UK,o=Lancaster", "Lancaster"))
            .unwrap();

        // Read from the shadow: replication already pushed the entry.
        let mut shadow_dua = Dua::new(client, shadow);
        let e = shadow_dua
            .read(&mut sim, "c=UK,o=Lancaster".parse().unwrap())
            .unwrap();
        assert_eq!(e.first_text("o"), Some("Lancaster"));

        // Writes at the shadow are refused.
        let err = shadow_dua
            .add(&mut sim, org("c=UK,o=Oxford", "Oxford"))
            .unwrap_err();
        assert!(matches!(err, DirectoryError::NotMaster(_)));
        assert!(sim.metrics().counter("dsa_shadow_pushes") >= 1);
    }

    #[test]
    fn rename_stays_within_context_and_replicates() {
        let (mut sim, mut dua, _, _) = two_dsa_world(InteractionMode::Chaining);
        dua.add(&mut sim, org("c=UK,o=Lancaster", "Lancaster"))
            .unwrap();
        dua.rename(
            &mut sim,
            "c=UK,o=Lancaster".parse().unwrap(),
            "c=UK,o=Lancaster University".parse().unwrap(),
        )
        .unwrap();
        let moved = dua
            .read(&mut sim, "c=UK,o=Lancaster University".parse().unwrap())
            .unwrap();
        assert_eq!(moved.first_text("o"), Some("Lancaster"));
        assert!(dua
            .read(&mut sim, "c=UK,o=Lancaster".parse().unwrap())
            .is_err());
        // Cross-context rename is refused.
        dua.add(&mut sim, org("c=UK,o=Oxford", "Oxford")).unwrap();
        let err = dua
            .rename(
                &mut sim,
                "c=UK,o=Oxford".parse().unwrap(),
                "c=DE,o=Oxford".parse().unwrap(),
            )
            .unwrap_err();
        assert!(matches!(err, DirectoryError::NoSuchContext(_)));
    }
}
