//! Directory entries.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::attribute::{Attribute, AttributeType, AttributeValue};
use crate::name::Dn;

/// An entry in the Directory Information Tree: a name plus a set of
/// typed, multi-valued attributes.
///
/// The entry's object classes are themselves stored in the
/// `objectclass` attribute, as in X.500.
///
/// # Examples
///
/// ```
/// use cscw_directory::{Attribute, Entry};
///
/// let entry = Entry::new("c=UK,o=Lancaster,cn=Tom Rodden".parse()?)
///     .with_class("person")
///     .with_attr(Attribute::single("cn", "Tom Rodden"))
///     .with_attr(Attribute::single("sn", "Rodden"));
/// assert!(entry.has_class("person"));
/// assert_eq!(entry.first_text("sn"), Some("Rodden"));
/// # Ok::<(), cscw_directory::DirectoryError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Entry {
    dn: Dn,
    attrs: BTreeMap<AttributeType, Attribute>,
}

/// The attribute holding an entry's object classes.
pub const OBJECT_CLASS: &str = "objectclass";

impl Entry {
    /// Creates an empty entry at `dn`.
    pub fn new(dn: Dn) -> Self {
        Entry {
            dn,
            attrs: BTreeMap::new(),
        }
    }

    /// The entry's distinguished name.
    pub fn dn(&self) -> &Dn {
        &self.dn
    }

    /// Replaces the DN (used internally by rename).
    pub(crate) fn set_dn(&mut self, dn: Dn) {
        self.dn = dn;
    }

    /// Builder-style: adds or merges an attribute.
    #[must_use]
    pub fn with_attr(mut self, attr: Attribute) -> Self {
        self.put_attr(attr);
        self
    }

    /// Builder-style: adds an object class.
    #[must_use]
    pub fn with_class(mut self, class: &str) -> Self {
        self.add_class(class);
        self
    }

    /// Adds or merges an attribute (values are unioned).
    pub fn put_attr(&mut self, attr: Attribute) {
        match self.attrs.get_mut(attr.ty()) {
            Some(existing) => {
                for v in attr.values() {
                    existing.add_value(v.clone());
                }
            }
            None => {
                self.attrs.insert(attr.ty().clone(), attr);
            }
        }
    }

    /// Replaces an attribute wholesale.
    pub fn replace_attr(&mut self, attr: Attribute) {
        self.attrs.insert(attr.ty().clone(), attr);
    }

    /// Removes an attribute entirely; returns it if present.
    pub fn remove_attr(&mut self, ty: &AttributeType) -> Option<Attribute> {
        self.attrs.remove(ty)
    }

    /// Removes a single value; drops the attribute when it empties.
    /// Returns whether the value was present.
    pub fn remove_value(&mut self, ty: &AttributeType, value: &AttributeValue) -> bool {
        let Some(attr) = self.attrs.get_mut(ty) else {
            return false;
        };
        let removed = attr.remove_value(value);
        if attr.is_empty() {
            self.attrs.remove(ty);
        }
        removed
    }

    /// Looks up an attribute by type.
    pub fn attr(&self, ty: impl Into<AttributeType>) -> Option<&Attribute> {
        self.attrs.get(&ty.into())
    }

    /// The first textual value of an attribute, a very common access.
    pub fn first_text(&self, ty: impl Into<AttributeType>) -> Option<&str> {
        self.attr(ty)
            .and_then(|a| a.first())
            .and_then(|v| v.as_text())
    }

    /// The first integer value of an attribute.
    pub fn first_int(&self, ty: impl Into<AttributeType>) -> Option<i64> {
        self.attr(ty)
            .and_then(|a| a.first())
            .and_then(|v| v.as_int())
    }

    /// Iterates over all attributes in type order.
    pub fn attrs(&self) -> impl Iterator<Item = &Attribute> {
        self.attrs.values()
    }

    /// Number of attributes.
    pub fn attr_count(&self) -> usize {
        self.attrs.len()
    }

    /// Registers an object class (idempotent).
    pub fn add_class(&mut self, class: &str) {
        self.put_attr(Attribute::single(OBJECT_CLASS, class.to_ascii_lowercase()));
    }

    /// True when the entry carries the given object class
    /// (case-insensitive).
    pub fn has_class(&self, class: &str) -> bool {
        self.attr(OBJECT_CLASS)
            .map(|a| a.contains(&AttributeValue::from(class.to_ascii_lowercase())))
            .unwrap_or(false)
    }

    /// The entry's object classes.
    pub fn classes(&self) -> Vec<&str> {
        self.attr(OBJECT_CLASS)
            .map(|a| a.values().iter().filter_map(|v| v.as_text()).collect())
            .unwrap_or_default()
    }
}

impl fmt::Display for Entry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.dn)?;
        for attr in self.attrs.values() {
            write!(f, "\n  {attr}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn person() -> Entry {
        Entry::new("c=DE,o=GMD,cn=Wolfgang Prinz".parse().unwrap())
            .with_class("person")
            .with_attr(Attribute::single("cn", "Wolfgang Prinz"))
            .with_attr(Attribute::single("sn", "Prinz"))
            .with_attr(Attribute::single("capabilitylevel", 4i64))
    }

    #[test]
    fn class_membership_is_case_insensitive() {
        let e = person();
        assert!(e.has_class("Person"));
        assert!(e.has_class("PERSON"));
        assert!(!e.has_class("role"));
        assert_eq!(e.classes(), vec!["person"]);
    }

    #[test]
    fn put_attr_merges_values() {
        let mut e = person();
        e.put_attr(Attribute::single("cn", "W. Prinz"));
        assert_eq!(e.attr("cn").unwrap().values().len(), 2);
        // merging a duplicate is a no-op
        e.put_attr(Attribute::single("cn", "W. Prinz"));
        assert_eq!(e.attr("cn").unwrap().values().len(), 2);
    }

    #[test]
    fn replace_attr_overwrites() {
        let mut e = person();
        e.replace_attr(Attribute::single("sn", "P."));
        assert_eq!(e.first_text("sn"), Some("P."));
        assert_eq!(e.attr("sn").unwrap().values().len(), 1);
    }

    #[test]
    fn remove_value_drops_empty_attribute() {
        let mut e = person();
        assert!(e.remove_value(&"sn".into(), &AttributeValue::from("Prinz")));
        assert!(e.attr("sn").is_none());
        assert!(!e.remove_value(&"sn".into(), &AttributeValue::from("Prinz")));
    }

    #[test]
    fn typed_accessors() {
        let e = person();
        assert_eq!(e.first_int("capabilitylevel"), Some(4));
        assert_eq!(e.first_text("capabilitylevel"), None);
        assert_eq!(e.first_text("missing"), None);
    }

    #[test]
    fn display_lists_dn_and_attrs() {
        let s = person().to_string();
        assert!(s.starts_with("c=DE,o=GMD,cn=Wolfgang Prinz"));
        assert!(s.contains("sn=Prinz"));
        assert!(s.contains("objectclass=person"));
    }
}
