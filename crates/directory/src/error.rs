//! Directory error type.

use std::error::Error;
use std::fmt;

use crate::name::Dn;

/// Errors returned by directory operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DirectoryError {
    /// A DN or RDN failed to parse or was structurally invalid.
    InvalidName(String),
    /// The target entry does not exist.
    NoSuchEntry(Dn),
    /// An entry already exists at the target name.
    EntryExists(Dn),
    /// The immediate parent of the target name does not exist.
    NoParent(Dn),
    /// The entry has children and cannot be removed or renamed.
    NotLeaf(Dn),
    /// The entry violates its object-class schema.
    SchemaViolation {
        /// The offending entry.
        dn: Dn,
        /// Human-readable reason.
        reason: String,
    },
    /// A search filter string failed to parse.
    InvalidFilter(String),
    /// A search hit its size limit before completing.
    SizeLimitExceeded {
        /// How many entries were returned before the limit.
        returned: usize,
    },
    /// No DSA holds a naming context for the target name.
    NoSuchContext(Dn),
    /// A distributed operation received no response (node down or
    /// partitioned).
    Unavailable(String),
    /// The operation must be performed at the master DSA for the context.
    NotMaster(Dn),
}

impl fmt::Display for DirectoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DirectoryError::InvalidName(s) => write!(f, "invalid name: {s}"),
            DirectoryError::NoSuchEntry(dn) => write!(f, "no such entry: {dn}"),
            DirectoryError::EntryExists(dn) => write!(f, "entry already exists: {dn}"),
            DirectoryError::NoParent(dn) => write!(f, "parent entry missing for: {dn}"),
            DirectoryError::NotLeaf(dn) => write!(f, "entry has children: {dn}"),
            DirectoryError::SchemaViolation { dn, reason } => {
                write!(f, "schema violation at {dn}: {reason}")
            }
            DirectoryError::InvalidFilter(s) => write!(f, "invalid filter: {s}"),
            DirectoryError::SizeLimitExceeded { returned } => {
                write!(f, "size limit exceeded after {returned} entries")
            }
            DirectoryError::NoSuchContext(dn) => write!(f, "no naming context covers: {dn}"),
            DirectoryError::Unavailable(s) => write!(f, "directory unavailable: {s}"),
            DirectoryError::NotMaster(dn) => write!(f, "not master for context: {dn}"),
        }
    }
}

impl Error for DirectoryError {}

impl cscw_kernel::LayerError for DirectoryError {
    fn layer(&self) -> cscw_kernel::Layer {
        cscw_kernel::Layer::Directory
    }

    fn kind(&self) -> &'static str {
        match self {
            DirectoryError::InvalidName(_) => "invalid_name",
            DirectoryError::NoSuchEntry(_) => "no_such_entry",
            DirectoryError::EntryExists(_) => "entry_exists",
            DirectoryError::NoParent(_) => "no_parent",
            DirectoryError::NotLeaf(_) => "not_leaf",
            DirectoryError::SchemaViolation { .. } => "schema_violation",
            DirectoryError::InvalidFilter(_) => "invalid_filter",
            DirectoryError::SizeLimitExceeded { .. } => "size_limit_exceeded",
            DirectoryError::NoSuchContext(_) => "no_such_context",
            DirectoryError::Unavailable(_) => "unavailable",
            DirectoryError::NotMaster(_) => "not_master",
        }
    }

    fn class(&self) -> cscw_kernel::ErrorClass {
        match self {
            // Only a silent DSA is worth retrying; name, schema and
            // filter faults are properties of the request.
            DirectoryError::Unavailable(_) => cscw_kernel::ErrorClass::Transient,
            _ => cscw_kernel::ErrorClass::Permanent,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_lowercase_without_trailing_punctuation() {
        let dn: Dn = "c=UK".parse().unwrap();
        for e in [
            DirectoryError::InvalidName("x".into()),
            DirectoryError::NoSuchEntry(dn.clone()),
            DirectoryError::EntryExists(dn.clone()),
            DirectoryError::NoParent(dn.clone()),
            DirectoryError::NotLeaf(dn.clone()),
            DirectoryError::SchemaViolation {
                dn: dn.clone(),
                reason: "missing cn".into(),
            },
            DirectoryError::InvalidFilter("(".into()),
            DirectoryError::SizeLimitExceeded { returned: 3 },
            DirectoryError::NoSuchContext(dn.clone()),
            DirectoryError::Unavailable("partitioned".into()),
            DirectoryError::NotMaster(dn),
        ] {
            let s = e.to_string();
            assert!(!s.ends_with('.'), "{s}");
            assert!(s.chars().next().unwrap().is_lowercase(), "{s}");
        }
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<DirectoryError>();
    }
}
