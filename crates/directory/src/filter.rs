//! Search filters.
//!
//! Filters follow the X.500 assertion model, written in the familiar
//! parenthesised prefix syntax: `(&(objectClass=person)(ou=Computing))`,
//! `(|(cn=Tom*)(cn=*Rodden))`, `(!(status=closed))`,
//! `(capabilityLevel>=3)`, `(telephoneNumber=*)`.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::attribute::{AttributeType, AttributeValue};
use crate::entry::Entry;
use crate::error::DirectoryError;

/// A search filter, evaluated against one entry at a time.
///
/// # Examples
///
/// ```
/// use cscw_directory::{Attribute, Entry, Filter};
///
/// let entry = Entry::new("cn=Tom Rodden".parse()?)
///     .with_class("person")
///     .with_attr(Attribute::single("cn", "Tom Rodden"));
/// let filter: Filter = "(&(objectClass=person)(cn=Tom*))".parse()?;
/// assert!(filter.matches(&entry));
/// # Ok::<(), cscw_directory::DirectoryError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Filter {
    /// Matches every entry.
    True,
    /// The attribute is present with at least one value.
    Present(AttributeType),
    /// Some value of the attribute equals the given value exactly.
    Equals(AttributeType, AttributeValue),
    /// Some textual value matches the substring pattern.
    Substring(AttributeType, SubstringPattern),
    /// Some value is `>=` the given value (same-kind comparison).
    GreaterOrEqual(AttributeType, AttributeValue),
    /// Some value is `<=` the given value (same-kind comparison).
    LessOrEqual(AttributeType, AttributeValue),
    /// All sub-filters match.
    And(Vec<Filter>),
    /// At least one sub-filter matches.
    Or(Vec<Filter>),
    /// The sub-filter does not match.
    Not(Box<Filter>),
}

/// A parsed `initial*any*…*final` substring pattern.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SubstringPattern {
    initial: Option<String>,
    any: Vec<String>,
    final_: Option<String>,
}

impl SubstringPattern {
    /// Parses a pattern containing at least one `*`.
    ///
    /// # Errors
    ///
    /// Returns [`DirectoryError::InvalidFilter`] when the pattern has no
    /// `*` (that would be an equality assertion).
    pub fn parse(pattern: &str) -> Result<Self, DirectoryError> {
        if !pattern.contains('*') {
            return Err(DirectoryError::InvalidFilter(format!(
                "substring pattern {pattern:?} has no wildcard"
            )));
        }
        let parts: Vec<&str> = pattern.split('*').collect();
        let n = parts.len();
        let initial = (!parts[0].is_empty()).then(|| parts[0].to_owned());
        let final_ = (!parts[n - 1].is_empty()).then(|| parts[n - 1].to_owned());
        let any = parts[1..n - 1]
            .iter()
            .filter(|p| !p.is_empty())
            .map(|&p| p.to_owned())
            .collect();
        Ok(SubstringPattern {
            initial,
            any,
            final_,
        })
    }

    /// True when `text` matches the pattern.
    pub fn matches(&self, text: &str) -> bool {
        let mut rest = text;
        if let Some(initial) = &self.initial {
            match rest.strip_prefix(initial.as_str()) {
                Some(r) => rest = r,
                None => return false,
            }
        }
        if let Some(final_) = &self.final_ {
            match rest.strip_suffix(final_.as_str()) {
                Some(r) => rest = r,
                None => return false,
            }
        }
        for any in &self.any {
            match rest.find(any.as_str()) {
                Some(pos) => rest = &rest[pos + any.len()..],
                None => return false,
            }
        }
        true
    }
}

impl fmt::Display for SubstringPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(i) = &self.initial {
            f.write_str(i)?;
        }
        f.write_str("*")?;
        for a in &self.any {
            f.write_str(a)?;
            f.write_str("*")?;
        }
        if let Some(fin) = &self.final_ {
            f.write_str(fin)?;
        }
        Ok(())
    }
}

impl Filter {
    /// Convenience equality filter.
    pub fn eq(ty: impl Into<AttributeType>, value: impl Into<AttributeValue>) -> Filter {
        Filter::Equals(ty.into(), value.into())
    }

    /// Convenience presence filter.
    pub fn present(ty: impl Into<AttributeType>) -> Filter {
        Filter::Present(ty.into())
    }

    /// Convenience conjunction.
    pub fn and(filters: impl IntoIterator<Item = Filter>) -> Filter {
        Filter::And(filters.into_iter().collect())
    }

    /// Convenience disjunction.
    pub fn or(filters: impl IntoIterator<Item = Filter>) -> Filter {
        Filter::Or(filters.into_iter().collect())
    }

    /// Convenience negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(filter: Filter) -> Filter {
        Filter::Not(Box::new(filter))
    }

    /// Evaluates the filter against an entry.
    pub fn matches(&self, entry: &Entry) -> bool {
        match self {
            Filter::True => true,
            Filter::Present(ty) => entry.attr(ty.clone()).is_some(),
            Filter::Equals(ty, value) => entry
                .attr(ty.clone())
                .map(|a| a.contains(value))
                .unwrap_or(false),
            Filter::Substring(ty, pattern) => entry
                .attr(ty.clone())
                .map(|a| {
                    a.values()
                        .iter()
                        .filter_map(|v| v.as_text())
                        .any(|text| pattern.matches(text))
                })
                .unwrap_or(false),
            Filter::GreaterOrEqual(ty, value) => entry
                .attr(ty.clone())
                .map(|a| {
                    a.values().iter().any(|v| {
                        v.partial_cmp_same_kind(value)
                            .map(|o| o != std::cmp::Ordering::Less)
                            .unwrap_or(false)
                    })
                })
                .unwrap_or(false),
            Filter::LessOrEqual(ty, value) => entry
                .attr(ty.clone())
                .map(|a| {
                    a.values().iter().any(|v| {
                        v.partial_cmp_same_kind(value)
                            .map(|o| o != std::cmp::Ordering::Greater)
                            .unwrap_or(false)
                    })
                })
                .unwrap_or(false),
            Filter::And(fs) => fs.iter().all(|f| f.matches(entry)),
            Filter::Or(fs) => fs.iter().any(|f| f.matches(entry)),
            Filter::Not(f) => !f.matches(entry),
        }
    }
}

impl fmt::Display for Filter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Filter::True => f.write_str("(objectclass=*)"),
            Filter::Present(ty) => write!(f, "({ty}=*)"),
            Filter::Equals(ty, v) => write!(f, "({ty}={v})"),
            Filter::Substring(ty, p) => write!(f, "({ty}={p})"),
            Filter::GreaterOrEqual(ty, v) => write!(f, "({ty}>={v})"),
            Filter::LessOrEqual(ty, v) => write!(f, "({ty}<={v})"),
            Filter::And(fs) => {
                f.write_str("(&")?;
                for sub in fs {
                    write!(f, "{sub}")?;
                }
                f.write_str(")")
            }
            Filter::Or(fs) => {
                f.write_str("(|")?;
                for sub in fs {
                    write!(f, "{sub}")?;
                }
                f.write_str(")")
            }
            Filter::Not(sub) => write!(f, "(!{sub})"),
        }
    }
}

impl FromStr for Filter {
    type Err = DirectoryError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut parser = Parser {
            input: s.trim(),
            pos: 0,
        };
        let filter = parser.parse_filter()?;
        parser.skip_ws();
        if parser.pos != parser.input.len() {
            return Err(DirectoryError::InvalidFilter(format!(
                "trailing input after filter: {:?}",
                &parser.input[parser.pos..]
            )));
        }
        Ok(filter)
    }
}

struct Parser<'a> {
    input: &'a str,
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.peek().map(|c| c.is_whitespace()).unwrap_or(false) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<char> {
        self.input[self.pos..].chars().next()
    }

    fn expect(&mut self, c: char) -> Result<(), DirectoryError> {
        if self.peek() == Some(c) {
            self.pos += c.len_utf8();
            Ok(())
        } else {
            Err(DirectoryError::InvalidFilter(format!(
                "expected {c:?} at byte {} of {:?}",
                self.pos, self.input
            )))
        }
    }

    fn parse_filter(&mut self) -> Result<Filter, DirectoryError> {
        self.skip_ws();
        self.expect('(')?;
        let filter = match self.peek() {
            Some('&') => {
                self.pos += 1;
                Filter::And(self.parse_list()?)
            }
            Some('|') => {
                self.pos += 1;
                Filter::Or(self.parse_list()?)
            }
            Some('!') => {
                self.pos += 1;
                Filter::Not(Box::new(self.parse_filter()?))
            }
            _ => self.parse_simple()?,
        };
        self.skip_ws();
        self.expect(')')?;
        Ok(filter)
    }

    fn parse_list(&mut self) -> Result<Vec<Filter>, DirectoryError> {
        let mut filters = Vec::new();
        loop {
            self.skip_ws();
            if self.peek() == Some(')') {
                break;
            }
            filters.push(self.parse_filter()?);
        }
        if filters.is_empty() {
            return Err(DirectoryError::InvalidFilter("empty filter list".into()));
        }
        Ok(filters)
    }

    fn parse_simple(&mut self) -> Result<Filter, DirectoryError> {
        let rest = &self.input[self.pos..];
        let close = rest.find(')').ok_or_else(|| {
            DirectoryError::InvalidFilter(format!("unterminated assertion in {:?}", self.input))
        })?;
        let body = &rest[..close];
        self.pos += close;

        let (attr, op, value) = if let Some(i) = body.find(">=") {
            (&body[..i], Op::Ge, &body[i + 2..])
        } else if let Some(i) = body.find("<=") {
            (&body[..i], Op::Le, &body[i + 2..])
        } else if let Some(i) = body.find('=') {
            (&body[..i], Op::Eq, &body[i + 1..])
        } else {
            return Err(DirectoryError::InvalidFilter(format!(
                "no operator in {body:?}"
            )));
        };
        let attr = attr.trim();
        if attr.is_empty() {
            return Err(DirectoryError::InvalidFilter(format!(
                "empty attribute in {body:?}"
            )));
        }
        let ty = AttributeType::new(attr);
        let value = value.trim();
        Ok(match op {
            Op::Eq if value == "*" => Filter::Present(ty),
            Op::Eq if value.contains('*') => Filter::Substring(ty, SubstringPattern::parse(value)?),
            Op::Eq => Filter::Equals(ty, parse_value(value)),
            Op::Ge => Filter::GreaterOrEqual(ty, parse_value(value)),
            Op::Le => Filter::LessOrEqual(ty, parse_value(value)),
        })
    }
}

enum Op {
    Eq,
    Ge,
    Le,
}

/// Values that parse as integers become [`AttributeValue::Int`]; anything
/// else is text.
fn parse_value(s: &str) -> AttributeValue {
    match s.parse::<i64>() {
        Ok(i) => AttributeValue::Int(i),
        Err(_) => AttributeValue::Text(s.to_owned()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribute::Attribute;

    fn entry() -> Entry {
        Entry::new("c=UK,o=Lancaster,cn=Tom Rodden".parse().unwrap())
            .with_class("person")
            .with_attr(Attribute::single("cn", "Tom Rodden"))
            .with_attr(Attribute::single("ou", "Computing"))
            .with_attr(Attribute::single("capabilitylevel", 4i64))
    }

    #[test]
    fn equality_and_presence() {
        let e = entry();
        assert!(Filter::eq("cn", "Tom Rodden").matches(&e));
        assert!(
            !Filter::eq("cn", "tom rodden").matches(&e),
            "values case-sensitive"
        );
        assert!(Filter::present("ou").matches(&e));
        assert!(!Filter::present("telephone").matches(&e));
    }

    #[test]
    fn substring_patterns() {
        let p = SubstringPattern::parse("Tom*").unwrap();
        assert!(p.matches("Tom Rodden"));
        assert!(!p.matches("tom Rodden"));
        let p = SubstringPattern::parse("*Rodden").unwrap();
        assert!(p.matches("Tom Rodden"));
        let p = SubstringPattern::parse("T*Rod*n").unwrap();
        assert!(p.matches("Tom Rodden"));
        assert!(!p.matches("Tom Rodde"));
        let p = SubstringPattern::parse("*om*od*").unwrap();
        assert!(p.matches("Tom Rodden"));
        assert!(SubstringPattern::parse("noglob").is_err());
    }

    #[test]
    fn substring_ordering_of_any_parts_matters() {
        let p = SubstringPattern::parse("*b*a*").unwrap();
        assert!(p.matches("xbxax"));
        assert!(!p.matches("xaxbx"), "`any` parts must match in order");
    }

    #[test]
    fn comparisons_are_same_kind_only() {
        let e = entry();
        assert!(Filter::GreaterOrEqual("capabilitylevel".into(), 3i64.into()).matches(&e));
        assert!(Filter::GreaterOrEqual("capabilitylevel".into(), 4i64.into()).matches(&e));
        assert!(!Filter::GreaterOrEqual("capabilitylevel".into(), 5i64.into()).matches(&e));
        assert!(Filter::LessOrEqual("capabilitylevel".into(), 4i64.into()).matches(&e));
        // Int attribute never compares against text.
        assert!(!Filter::GreaterOrEqual("capabilitylevel".into(), "3".into()).matches(&e));
        // Text comparison is lexicographic.
        assert!(Filter::GreaterOrEqual("ou".into(), "Computing".into()).matches(&e));
    }

    #[test]
    fn boolean_combinators() {
        let e = entry();
        let f = Filter::and([Filter::eq("objectclass", "person"), Filter::present("ou")]);
        assert!(f.matches(&e));
        let f = Filter::or([Filter::eq("cn", "nobody"), Filter::eq("ou", "Computing")]);
        assert!(f.matches(&e));
        assert!(Filter::not(Filter::eq("cn", "nobody")).matches(&e));
        assert!(Filter::True.matches(&e));
    }

    #[test]
    fn parser_round_trips() {
        for s in [
            "(cn=Tom Rodden)",
            "(cn=Tom*)",
            "(cn=*)",
            "(capabilitylevel>=3)",
            "(capabilitylevel<=3)",
            "(&(objectclass=person)(ou=Computing))",
            "(|(cn=Tom*)(cn=*Rodden))",
            "(!(cn=nobody))",
            "(&(a=1)(|(b=2)(!(c=3))))",
        ] {
            let f: Filter = s.parse().unwrap();
            let printed = f.to_string();
            let reparsed: Filter = printed.parse().unwrap();
            assert_eq!(f, reparsed, "round trip failed for {s}");
        }
    }

    #[test]
    fn parser_matches_semantics() {
        let e = entry();
        let f: Filter = "(&(objectClass=person)(cn=Tom*)(capabilityLevel>=4))"
            .parse()
            .unwrap();
        assert!(f.matches(&e));
        let f: Filter = "(!(ou=Computing))".parse().unwrap();
        assert!(!f.matches(&e));
    }

    #[test]
    fn parser_rejects_garbage() {
        for s in [
            "",
            "(",
            "()",
            "(cn)",
            "(cn=Tom",
            "(&)",
            "(cn=a)(cn=b)",
            "(=v)",
        ] {
            assert!(s.parse::<Filter>().is_err(), "{s:?} should fail");
        }
    }

    #[test]
    fn numeric_looking_values_parse_as_int() {
        let f: Filter = "(capabilitylevel=4)".parse().unwrap();
        assert_eq!(
            f,
            Filter::Equals("capabilitylevel".into(), AttributeValue::Int(4))
        );
        let f: Filter = "(cn=4a)".parse().unwrap();
        assert_eq!(
            f,
            Filter::Equals("cn".into(), AttributeValue::Text("4a".into()))
        );
    }
}
