//! # cscw-directory — an X.500-style directory service
//!
//! The paper's open-CSCW environment requires "smooth integration and
//! utilization of standard information repositories, for example, the
//! X.500 directory service" (§4). This crate provides that repository:
//! a schema-checked Directory Information Tree with X.500-style names,
//! filters and scoped searches, distributed across several Directory
//! System Agents over the simulated network with chaining, referrals and
//! primary-copy shadow replication.
//!
//! The MOCCA organisational knowledge base (`mocca::org`) is stored in
//! this directory, as the paper proposes.
//!
//! ## Layers
//!
//! * **Data model** — [`Dn`]/[`Rdn`] names, [`Attribute`]s, [`Entry`]s,
//!   validated against an object-class [`Schema`].
//! * **Single DSA** — [`Dit`]: add/read/modify/remove/rename plus scoped,
//!   filtered [`SearchRequest`]s.
//! * **Distribution** — [`DsaNode`] (a `simnet` node) masters naming
//!   contexts, chains or refers requests it cannot answer, pushes shadow
//!   updates to replicas; [`Dua`] is the synchronous client.
//!
//! ## Example: a local DIT
//!
//! ```
//! use cscw_directory::{Attribute, Dit, Entry, Filter};
//!
//! let mut dit = Dit::new();
//! dit.add(Entry::new("c=ES".parse()?)
//!     .with_class("country")
//!     .with_attr(Attribute::single("c", "ES")))?;
//! dit.add(Entry::new("c=ES,o=UPC".parse()?)
//!     .with_class("organization")
//!     .with_attr(Attribute::single("o", "UPC")))?;
//! dit.add(Entry::new("c=ES,o=UPC,cn=Leandro Navarro".parse()?)
//!     .with_class("person")
//!     .with_attr(Attribute::single("cn", "Leandro Navarro"))
//!     .with_attr(Attribute::single("sn", "Navarro")))?;
//!
//! let people = dit.search_all("(objectClass=person)".parse()?)?;
//! assert_eq!(people.len(), 1);
//! # Ok::<(), cscw_directory::DirectoryError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod attribute;
mod dit;
pub mod dsa;
mod entry;
mod error;
mod filter;
mod name;
mod observer;
mod schema;
mod search;

pub use attribute::{Attribute, AttributeType, AttributeValue};
pub use dit::Dit;
pub use dsa::{DapMessage, DirOp, DirResult, DsaNode, Dua, DuaNode, InteractionMode, Modification};
pub use entry::{Entry, OBJECT_CLASS};
pub use error::DirectoryError;
pub use filter::{Filter, SubstringPattern};
pub use name::{Dn, Rdn};
pub use observer::{ChangeCollector, DitChange, DitObserver};
pub use schema::{ObjectClass, Schema};
pub use search::{SearchOutcome, SearchRequest, SearchScope};
