//! Distinguished names.
//!
//! An X.500 distinguished name (DN) is a path from the root of the
//! Directory Information Tree to an entry, written here in the familiar
//! left-to-right *leaf-last* string form used throughout the paper's era:
//! `c=UK, o=Lancaster University, ou=Computing, cn=Tom Rodden`.
//!
//! Internally a [`Dn`] stores its RDNs **root-first**, so prefix
//! relationships (`is_ancestor_of`) are simple slice prefixes.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::attribute::AttributeType;
use crate::error::DirectoryError;

/// A relative distinguished name: one `attribute=value` naming step.
///
/// Attribute types compare case-insensitively (they are normalised to
/// lowercase on construction); values compare exactly.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Rdn {
    attr: AttributeType,
    value: String,
}

impl Rdn {
    /// Creates an RDN from an attribute type and value.
    ///
    /// # Errors
    ///
    /// Returns [`DirectoryError::InvalidName`] if the value is empty or
    /// contains the reserved characters `,` or `=`.
    pub fn new(
        attr: impl Into<AttributeType>,
        value: impl Into<String>,
    ) -> Result<Self, DirectoryError> {
        let value = value.into();
        if value.is_empty() || value.contains(',') || value.contains('=') {
            return Err(DirectoryError::InvalidName(format!(
                "bad RDN value {value:?}"
            )));
        }
        Ok(Rdn {
            attr: attr.into(),
            value,
        })
    }

    /// The attribute type (e.g. `cn`).
    pub fn attr(&self) -> &AttributeType {
        &self.attr
    }

    /// The attribute value (e.g. `Tom Rodden`).
    pub fn value(&self) -> &str {
        &self.value
    }
}

impl fmt::Display for Rdn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}={}", self.attr, self.value)
    }
}

impl FromStr for Rdn {
    type Err = DirectoryError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (attr, value) = s
            .split_once('=')
            .ok_or_else(|| DirectoryError::InvalidName(format!("missing '=' in RDN {s:?}")))?;
        let attr = attr.trim();
        let value = value.trim();
        if attr.is_empty() {
            return Err(DirectoryError::InvalidName(format!(
                "empty attribute in RDN {s:?}"
            )));
        }
        Rdn::new(attr, value)
    }
}

/// A distinguished name: the full path of an entry, root-first.
///
/// # Examples
///
/// ```
/// use cscw_directory::Dn;
///
/// let dn: Dn = "c=UK, o=Lancaster, ou=Computing, cn=Tom Rodden".parse()?;
/// assert_eq!(dn.depth(), 4);
/// assert_eq!(dn.rdn().unwrap().value(), "Tom Rodden");
/// let parent = dn.parent().unwrap();
/// assert!(parent.is_ancestor_of(&dn));
/// assert_eq!(parent.to_string(), "c=UK,o=Lancaster,ou=Computing");
/// # Ok::<(), cscw_directory::DirectoryError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize)]
pub struct Dn {
    rdns: Vec<Rdn>,
}

impl Dn {
    /// The root of the DIT (the empty name).
    pub fn root() -> Self {
        Dn { rdns: Vec::new() }
    }

    /// Builds a DN from root-first RDNs.
    pub fn from_rdns(rdns: Vec<Rdn>) -> Self {
        Dn { rdns }
    }

    /// True for the DIT root.
    pub fn is_root(&self) -> bool {
        self.rdns.is_empty()
    }

    /// Number of RDNs.
    pub fn depth(&self) -> usize {
        self.rdns.len()
    }

    /// The final (leaf) RDN, or `None` for the root.
    pub fn rdn(&self) -> Option<&Rdn> {
        self.rdns.last()
    }

    /// The RDNs, root-first.
    pub fn rdns(&self) -> &[Rdn] {
        &self.rdns
    }

    /// The name one level up, or `None` for the root.
    pub fn parent(&self) -> Option<Dn> {
        if self.rdns.is_empty() {
            None
        } else {
            Some(Dn {
                rdns: self.rdns[..self.rdns.len() - 1].to_vec(),
            })
        }
    }

    /// Returns `self` extended by one RDN.
    pub fn child(&self, rdn: Rdn) -> Dn {
        let mut rdns = self.rdns.clone();
        rdns.push(rdn);
        Dn { rdns }
    }

    /// True when `self` is a strict ancestor of `other`.
    pub fn is_ancestor_of(&self, other: &Dn) -> bool {
        self.rdns.len() < other.rdns.len() && other.rdns[..self.rdns.len()] == self.rdns[..]
    }

    /// True when `self` is `other` or an ancestor of it.
    pub fn is_prefix_of(&self, other: &Dn) -> bool {
        self.rdns.len() <= other.rdns.len() && other.rdns[..self.rdns.len()] == self.rdns[..]
    }
}

impl fmt::Display for Dn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.rdns.is_empty() {
            return f.write_str("<root>");
        }
        for (i, rdn) in self.rdns.iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            write!(f, "{rdn}")?;
        }
        Ok(())
    }
}

impl FromStr for Dn {
    type Err = DirectoryError;

    /// Parses `attr=value, attr=value, …` (root-first). The empty string
    /// and `"<root>"` parse to the root.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        if s.is_empty() || s == "<root>" {
            return Ok(Dn::root());
        }
        let rdns = s
            .split(',')
            .map(|part| part.parse::<Rdn>())
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Dn { rdns })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_round_trip() {
        let s = "c=UK,o=Lancaster,ou=Computing,cn=Tom Rodden";
        let dn: Dn = s.parse().unwrap();
        assert_eq!(dn.to_string(), s);
        assert_eq!(dn.depth(), 4);
    }

    #[test]
    fn parse_tolerates_spaces_and_normalises_attr_case() {
        let dn: Dn = " C=UK , O=Lancaster ".parse().unwrap();
        assert_eq!(dn.to_string(), "c=UK,o=Lancaster");
    }

    #[test]
    fn root_parses_and_displays() {
        assert!(Dn::from_str("").unwrap().is_root());
        assert!(Dn::from_str("<root>").unwrap().is_root());
        assert_eq!(Dn::root().to_string(), "<root>");
        assert_eq!(Dn::root().parent(), None);
        assert_eq!(Dn::root().rdn(), None);
    }

    #[test]
    fn ancestor_relationships() {
        let uk: Dn = "c=UK".parse().unwrap();
        let lanc: Dn = "c=UK,o=Lancaster".parse().unwrap();
        let other: Dn = "c=DE,o=GMD".parse().unwrap();
        assert!(uk.is_ancestor_of(&lanc));
        assert!(!lanc.is_ancestor_of(&uk));
        assert!(!uk.is_ancestor_of(&uk));
        assert!(uk.is_prefix_of(&uk));
        assert!(Dn::root().is_ancestor_of(&uk));
        assert!(!uk.is_ancestor_of(&other));
    }

    #[test]
    fn child_extends_parent() {
        let base: Dn = "c=ES".parse().unwrap();
        let child = base.child(Rdn::new("o", "UPC").unwrap());
        assert_eq!(child.to_string(), "c=ES,o=UPC");
        assert_eq!(child.parent(), Some(base));
    }

    #[test]
    fn invalid_rdns_are_rejected() {
        assert!("noequals".parse::<Dn>().is_err());
        assert!("=value".parse::<Dn>().is_err());
        assert!("cn=".parse::<Dn>().is_err());
        assert!(Rdn::new("cn", "a,b").is_err());
        assert!(Rdn::new("cn", "a=b").is_err());
    }

    #[test]
    fn rdn_attr_compare_is_case_insensitive() {
        let a: Rdn = "CN=Tom".parse().unwrap();
        let b: Rdn = "cn=Tom".parse().unwrap();
        assert_eq!(a, b);
        let c: Rdn = "cn=tom".parse().unwrap();
        assert_ne!(a, c, "values are case-sensitive");
    }
}
