//! Change observation on a [`Dit`](crate::Dit).
//!
//! The standing-query layer (and anything else that wants push-based
//! awareness of directory state) registers a [`DitObserver`] on a DIT;
//! every successful mutation — `add`, `modify`, `remove`,
//! `remove_subtree`, `rename`, `add_value` — is reported as a
//! [`DitChange`] carrying the full before/after entries, so observers
//! can evaluate incrementally without re-reading the tree.
//!
//! Observers are notified *after* the mutation has been applied and
//! validated; failed operations (schema violations, missing parents)
//! produce no change. The provided [`ChangeCollector`] is a buffering
//! observer for callers that prefer to drain changes at a point where
//! they hold `&Dit` again, rather than react re-entrantly.

use std::fmt;
use std::sync::{Arc, Mutex};

use crate::entry::Entry;

/// One applied mutation on a DIT, with full entry state.
#[derive(Debug, Clone, PartialEq)]
pub enum DitChange {
    /// An entry was inserted (by `add` or the insert half of `rename`).
    Added(Entry),
    /// An entry was modified in place; `before != after` is guaranteed
    /// (no-op modifications are not reported).
    Modified {
        /// The entry as it was before the modification.
        before: Entry,
        /// The entry after the modification.
        after: Entry,
    },
    /// An entry was removed (by `remove`, `remove_subtree`, or the
    /// remove half of `rename`).
    Removed(Entry),
}

impl DitChange {
    /// The entry state after the change — the removed entry for
    /// [`DitChange::Removed`] (useful for interest matching: a removal
    /// is relevant to whoever matched the old state).
    pub fn entry(&self) -> &Entry {
        match self {
            DitChange::Added(e) | DitChange::Removed(e) => e,
            DitChange::Modified { after, .. } => after,
        }
    }
}

/// A hook invoked after every applied DIT mutation.
pub trait DitObserver: fmt::Debug + Send + Sync {
    /// Called once per applied change, in application order.
    fn on_change(&self, change: &DitChange);
}

/// A [`DitObserver`] that buffers changes for later draining.
///
/// Clones share the same buffer, so a caller can keep one handle and
/// install another on the DIT:
///
/// ```
/// use cscw_directory::{Attribute, ChangeCollector, Dit, DitChange, Entry};
///
/// let collector = ChangeCollector::new();
/// let mut dit = Dit::new();
/// dit.observe(std::sync::Arc::new(collector.clone()));
/// dit.add(Entry::new("c=UK".parse()?)
///     .with_class("country")
///     .with_attr(Attribute::single("c", "UK")))?;
/// let changes = collector.drain();
/// assert!(matches!(changes.as_slice(), [DitChange::Added(_)]));
/// # Ok::<(), cscw_directory::DirectoryError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct ChangeCollector {
    buffer: Arc<Mutex<Vec<DitChange>>>,
}

impl ChangeCollector {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes every buffered change, oldest first.
    pub fn drain(&self) -> Vec<DitChange> {
        let mut buf = self
            .buffer
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        std::mem::take(&mut *buf)
    }

    /// Number of buffered changes.
    pub fn len(&self) -> usize {
        self.buffer
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl DitObserver for ChangeCollector {
    fn on_change(&self, change: &DitChange) {
        self.buffer
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .push(change.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribute::Attribute;
    use crate::dit::Dit;
    use crate::name::Dn;

    fn person(dn: &str, cn: &str, sn: &str) -> Entry {
        Entry::new(dn.parse().unwrap())
            .with_class("person")
            .with_attr(Attribute::single("cn", cn))
            .with_attr(Attribute::single("sn", sn))
    }

    fn observed() -> (Dit, ChangeCollector) {
        let collector = ChangeCollector::new();
        let mut dit = Dit::new();
        dit.observe(Arc::new(collector.clone()));
        dit.add(
            Entry::new("c=UK".parse().unwrap())
                .with_class("country")
                .with_attr(Attribute::single("c", "UK")),
        )
        .unwrap();
        collector.drain();
        (dit, collector)
    }

    #[test]
    fn add_modify_remove_are_observed_in_order() {
        let (mut dit, collector) = observed();
        let dn: Dn = "c=UK,cn=Tom Rodden".parse().unwrap();
        dit.add(person("c=UK,cn=Tom Rodden", "Tom Rodden", "Rodden"))
            .unwrap();
        dit.add_value(&dn, "mail", "tom@lancs.ac.uk").unwrap();
        dit.remove(&dn).unwrap();
        let changes = collector.drain();
        assert_eq!(changes.len(), 3);
        assert!(matches!(&changes[0], DitChange::Added(e) if e.dn() == &dn));
        match &changes[1] {
            DitChange::Modified { before, after } => {
                assert_eq!(before.first_text("mail"), None);
                assert_eq!(after.first_text("mail"), Some("tom@lancs.ac.uk"));
            }
            other => panic!("expected Modified, got {other:?}"),
        }
        assert!(matches!(&changes[2], DitChange::Removed(e) if e.dn() == &dn));
    }

    #[test]
    fn failed_and_noop_mutations_are_silent() {
        let (mut dit, collector) = observed();
        let dn: Dn = "c=UK,cn=Tom Rodden".parse().unwrap();
        dit.add(person("c=UK,cn=Tom Rodden", "Tom Rodden", "Rodden"))
            .unwrap();
        collector.drain();
        // Schema violation rolls back: no change event.
        assert!(dit
            .modify(&dn, |e| {
                e.remove_attr(&"sn".into());
            })
            .is_err());
        // A modification that leaves the entry identical is a no-op.
        dit.modify(&dn, |_| {}).unwrap();
        // A failed add (duplicate) is silent too.
        assert!(dit
            .add(person("c=UK,cn=Tom Rodden", "Tom Rodden", "Rodden"))
            .is_err());
        assert!(collector.drain().is_empty());
    }

    #[test]
    fn subtree_removal_reports_every_entry() {
        let (mut dit, collector) = observed();
        dit.add(person("c=UK,cn=A", "A A", "A")).unwrap();
        dit.add(person("c=UK,cn=B", "B B", "B")).unwrap();
        collector.drain();
        dit.remove_subtree(&"c=UK".parse().unwrap()).unwrap();
        let changes = collector.drain();
        assert_eq!(changes.len(), 3);
        assert!(changes.iter().all(|c| matches!(c, DitChange::Removed(_))));
    }

    #[test]
    fn rename_is_a_remove_plus_add() {
        let (mut dit, collector) = observed();
        dit.add(person("c=UK,cn=A", "A A", "A")).unwrap();
        collector.drain();
        dit.rename(&"c=UK,cn=A".parse().unwrap(), "c=UK,cn=A2".parse().unwrap())
            .unwrap();
        let changes = collector.drain();
        assert_eq!(changes.len(), 2);
        assert!(matches!(&changes[0], DitChange::Removed(e) if e.dn().to_string() == "c=UK,cn=A"));
        assert!(matches!(&changes[1], DitChange::Added(e) if e.dn().to_string() == "c=UK,cn=A2"));
    }

    #[test]
    fn clones_do_not_share_observers() {
        let (dit, collector) = observed();
        let mut copy = dit.clone();
        copy.add(person("c=UK,cn=A", "A A", "A")).unwrap();
        assert!(collector.is_empty(), "clone mutations must not leak");
    }
}
