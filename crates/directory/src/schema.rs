//! Object-class schema.
//!
//! A small structural schema in the X.501 spirit: each object class names
//! its mandatory and optional attributes; an entry must carry at least
//! one known class and every mandatory attribute of each of its classes.
//!
//! The built-in schema ([`Schema::standard`]) covers the classic X.521
//! classes the paper's knowledge base needs (country, organization,
//! organizationalUnit, person, organizationalRole, groupOfNames,
//! applicationEntity) plus the CSCW extensions MOCCA introduces
//! (cscwActivity, cscwResource, informationObject).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::attribute::AttributeType;
use crate::entry::{Entry, OBJECT_CLASS};
use crate::error::DirectoryError;

/// One object-class definition.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObjectClass {
    name: String,
    mandatory: Vec<AttributeType>,
    optional: Vec<AttributeType>,
}

impl ObjectClass {
    /// Defines a class. Names are normalised to lowercase.
    pub fn new(
        name: &str,
        mandatory: impl IntoIterator<Item = &'static str>,
        optional: impl IntoIterator<Item = &'static str>,
    ) -> Self {
        ObjectClass {
            name: name.to_ascii_lowercase(),
            mandatory: mandatory.into_iter().map(AttributeType::new).collect(),
            optional: optional.into_iter().map(AttributeType::new).collect(),
        }
    }

    /// The (lowercase) class name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Mandatory attribute types.
    pub fn mandatory(&self) -> &[AttributeType] {
        &self.mandatory
    }

    /// Optional attribute types.
    pub fn optional(&self) -> &[AttributeType] {
        &self.optional
    }

    /// True when the attribute is allowed (mandatory or optional).
    pub fn allows(&self, ty: &AttributeType) -> bool {
        self.mandatory.contains(ty) || self.optional.contains(ty)
    }
}

/// A set of object classes against which entries validate.
#[derive(Debug, Clone, Default)]
pub struct Schema {
    classes: BTreeMap<String, ObjectClass>,
    /// When false, attributes outside the union of the entry's classes
    /// are tolerated (open-schema mode, the default: CSCW applications
    /// attach app-specific attributes freely, per the paper's
    /// tailorability requirement).
    strict_attributes: bool,
}

impl Schema {
    /// An empty schema that accepts any entry with at least one class.
    pub fn new() -> Self {
        Self::default()
    }

    /// The standard schema: X.521 core classes plus CSCW extensions.
    pub fn standard() -> Self {
        let mut schema = Schema::new();
        for class in [
            ObjectClass::new("country", ["c"], ["description"]),
            ObjectClass::new(
                "organization",
                ["o"],
                ["description", "telephonenumber", "postaladdress"],
            ),
            ObjectClass::new(
                "organizationalunit",
                ["ou"],
                ["description", "telephonenumber"],
            ),
            ObjectClass::new(
                "person",
                ["cn", "sn"],
                [
                    "telephonenumber",
                    "mail",
                    "title",
                    "description",
                    "userpassword",
                ],
            ),
            ObjectClass::new(
                "organizationalrole",
                ["cn"],
                ["roleoccupant", "description", "telephonenumber"],
            ),
            ObjectClass::new("groupofnames", ["cn", "member"], ["description", "owner"]),
            ObjectClass::new(
                "applicationentity",
                ["cn", "presentationaddress"],
                ["description", "supportedapplicationcontext"],
            ),
            // CSCW extensions (MOCCA knowledge base).
            ObjectClass::new(
                "cscwactivity",
                ["cn", "activitystate"],
                ["description", "member", "deadline", "dependson", "owner"],
            ),
            ObjectClass::new(
                "cscwresource",
                ["cn", "resourcetype"],
                ["description", "owner", "location"],
            ),
            ObjectClass::new(
                "cscwproject",
                ["cn"],
                ["description", "projectstate", "owner"],
            ),
            ObjectClass::new(
                "informationobject",
                ["cn", "contenttype"],
                ["description", "owner", "partof", "version"],
            ),
        ] {
            schema.define(class);
        }
        schema
    }

    /// Adds or replaces a class definition.
    pub fn define(&mut self, class: ObjectClass) {
        self.classes.insert(class.name.clone(), class);
    }

    /// Looks up a class by (case-insensitive) name.
    pub fn class(&self, name: &str) -> Option<&ObjectClass> {
        self.classes.get(&name.to_ascii_lowercase())
    }

    /// Number of defined classes.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Enables rejection of attributes not allowed by any of the entry's
    /// classes.
    pub fn set_strict_attributes(&mut self, strict: bool) {
        self.strict_attributes = strict;
    }

    /// Validates an entry.
    ///
    /// # Errors
    ///
    /// Returns [`DirectoryError::SchemaViolation`] when the entry has no
    /// object class, names an unknown class, misses a mandatory attribute,
    /// or (in strict mode) carries a disallowed attribute.
    pub fn validate(&self, entry: &Entry) -> Result<(), DirectoryError> {
        let violation = |reason: String| DirectoryError::SchemaViolation {
            dn: entry.dn().clone(),
            reason,
        };
        let classes = entry.classes();
        if classes.is_empty() {
            return Err(violation("entry has no object class".into()));
        }
        let mut defs = Vec::with_capacity(classes.len());
        for name in &classes {
            match self.class(name) {
                Some(def) => defs.push(def),
                None => return Err(violation(format!("unknown object class {name:?}"))),
            }
        }
        for def in &defs {
            for ty in def.mandatory() {
                if entry.attr(ty.clone()).is_none() {
                    return Err(violation(format!(
                        "missing mandatory attribute {ty} for class {}",
                        def.name()
                    )));
                }
            }
        }
        if self.strict_attributes {
            let object_class_ty = AttributeType::new(OBJECT_CLASS);
            for attr in entry.attrs() {
                let ty = attr.ty();
                if *ty == object_class_ty {
                    continue;
                }
                if !defs.iter().any(|def| def.allows(ty)) {
                    return Err(violation(format!(
                        "attribute {ty} not allowed by any class"
                    )));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribute::Attribute;

    fn person_entry() -> Entry {
        Entry::new("c=UK,cn=Tom".parse().unwrap())
            .with_class("person")
            .with_attr(Attribute::single("cn", "Tom"))
            .with_attr(Attribute::single("sn", "Rodden"))
    }

    #[test]
    fn standard_schema_validates_well_formed_person() {
        let schema = Schema::standard();
        assert!(schema.validate(&person_entry()).is_ok());
    }

    #[test]
    fn missing_mandatory_attribute_is_rejected() {
        let schema = Schema::standard();
        let e = Entry::new("cn=Tom".parse().unwrap())
            .with_class("person")
            .with_attr(Attribute::single("cn", "Tom"));
        let err = schema.validate(&e).unwrap_err();
        assert!(matches!(err, DirectoryError::SchemaViolation { .. }));
        assert!(err.to_string().contains("sn"));
    }

    #[test]
    fn entry_without_class_is_rejected() {
        let schema = Schema::standard();
        let e = Entry::new("cn=Tom".parse().unwrap()).with_attr(Attribute::single("cn", "Tom"));
        assert!(schema.validate(&e).is_err());
    }

    #[test]
    fn unknown_class_is_rejected() {
        let schema = Schema::standard();
        let e = person_entry().with_class("martian");
        let err = schema.validate(&e).unwrap_err();
        assert!(err.to_string().contains("martian"));
    }

    #[test]
    fn open_schema_tolerates_extra_attributes() {
        let schema = Schema::standard();
        let e = person_entry().with_attr(Attribute::single("favouriteeditor", "vi"));
        assert!(schema.validate(&e).is_ok());
    }

    #[test]
    fn strict_schema_rejects_extra_attributes() {
        let mut schema = Schema::standard();
        schema.set_strict_attributes(true);
        assert!(schema.validate(&person_entry()).is_ok());
        let e = person_entry().with_attr(Attribute::single("favouriteeditor", "vi"));
        let err = schema.validate(&e).unwrap_err();
        assert!(err.to_string().contains("favouriteeditor"));
    }

    #[test]
    fn multiple_classes_union_their_requirements() {
        let schema = Schema::standard();
        // person + organizationalrole requires cn, sn (person) and cn (role).
        let e = person_entry().with_class("organizationalrole");
        assert!(schema.validate(&e).is_ok());
        let e2 = Entry::new("cn=Chair".parse().unwrap())
            .with_class("organizationalrole")
            .with_class("person")
            .with_attr(Attribute::single("cn", "Chair"));
        assert!(schema.validate(&e2).is_err(), "missing sn from person");
    }

    #[test]
    fn cscw_extension_classes_exist() {
        let schema = Schema::standard();
        for name in ["cscwactivity", "cscwresource", "informationobject"] {
            assert!(schema.class(name).is_some(), "{name} missing");
        }
        assert!(
            schema.class("CSCWActivity").is_some(),
            "lookup is case-insensitive"
        );
    }
}
