//! Search requests and results.

use serde::{Deserialize, Serialize};

use crate::entry::Entry;
use crate::filter::Filter;
use crate::name::Dn;

/// How far below the base object a search extends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SearchScope {
    /// The base object only.
    Base,
    /// The immediate children of the base (excluding the base).
    OneLevel,
    /// The base and all of its descendants.
    Subtree,
}

/// A directory search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchRequest {
    /// Where the search starts.
    pub base: Dn,
    /// How far it extends.
    pub scope: SearchScope,
    /// Which entries qualify.
    pub filter: Filter,
    /// Maximum entries to return; `None` is unlimited.
    pub size_limit: Option<usize>,
}

impl SearchRequest {
    /// Creates an unlimited search.
    pub fn new(base: Dn, scope: SearchScope, filter: Filter) -> Self {
        SearchRequest {
            base,
            scope,
            filter,
            size_limit: None,
        }
    }

    /// Returns the request with a size limit applied.
    #[must_use]
    pub fn with_size_limit(mut self, limit: usize) -> Self {
        self.size_limit = Some(limit);
        self
    }
}

/// The result of a search.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SearchOutcome {
    /// Matching entries, in DN order.
    pub entries: Vec<Entry>,
    /// True when a size limit cut the result short.
    pub truncated: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_sets_limit() {
        let r =
            SearchRequest::new(Dn::root(), SearchScope::Subtree, Filter::True).with_size_limit(10);
        assert_eq!(r.size_limit, Some(10));
    }

    #[test]
    fn outcome_default_is_empty() {
        let o = SearchOutcome::default();
        assert!(o.entries.is_empty());
        assert!(!o.truncated);
    }
}
