//! Property tests for the directory data model: DN round-trips, filter
//! algebra laws, substring matching, and DIT structural invariants.

use cscw_directory::*;
use proptest::prelude::*;

/// Attribute values safe inside an RDN (no ',' '=' '*', non-empty,
/// trimmed so parse→print round-trips exactly).
fn rdn_value() -> impl Strategy<Value = String> {
    "[A-Za-z][A-Za-z0-9 .-]{0,14}[A-Za-z0-9]".prop_map(|s| s.trim().to_owned())
}

fn rdn_attr() -> impl Strategy<Value = String> {
    "[a-z]{1,8}"
}

fn arb_dn() -> impl Strategy<Value = Dn> {
    prop::collection::vec((rdn_attr(), rdn_value()), 0..5).prop_map(|parts| {
        Dn::from_rdns(
            parts
                .into_iter()
                .map(|(a, v)| Rdn::new(a.as_str(), v).expect("generated values are valid"))
                .collect(),
        )
    })
}

fn arb_value() -> impl Strategy<Value = AttributeValue> {
    prop_oneof![
        rdn_value().prop_map(AttributeValue::Text),
        any::<i64>().prop_map(AttributeValue::Int),
    ]
}

fn arb_leaf_filter() -> impl Strategy<Value = Filter> {
    prop_oneof![
        Just(Filter::True),
        rdn_attr().prop_map(|a| Filter::present(a.as_str())),
        (rdn_attr(), arb_value()).prop_map(|(a, v)| Filter::Equals(a.as_str().into(), v)),
        (rdn_attr(), arb_value()).prop_map(|(a, v)| Filter::GreaterOrEqual(a.as_str().into(), v)),
        (rdn_attr(), arb_value()).prop_map(|(a, v)| Filter::LessOrEqual(a.as_str().into(), v)),
    ]
}

fn arb_filter() -> impl Strategy<Value = Filter> {
    arb_leaf_filter().prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 1..4).prop_map(Filter::And),
            prop::collection::vec(inner.clone(), 1..4).prop_map(Filter::Or),
            inner.prop_map(Filter::not),
        ]
    })
}

fn arb_entry() -> impl Strategy<Value = Entry> {
    (
        arb_dn().prop_filter("entries are non-root", |d| !d.is_root()),
        prop::collection::vec((rdn_attr(), arb_value()), 0..6),
    )
        .prop_map(|(dn, attrs)| {
            let mut e = Entry::new(dn).with_class("person");
            for (a, v) in attrs {
                e.put_attr(Attribute::multi(a.as_str(), [v]));
            }
            e
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// DN display → parse is the identity.
    #[test]
    fn dn_round_trip(dn in arb_dn()) {
        let printed = dn.to_string();
        let reparsed: Dn = printed.parse().expect("printed DNs reparse");
        prop_assert_eq!(dn, reparsed);
    }

    /// Parent/child are inverse operations.
    #[test]
    fn parent_child_inverse(dn in arb_dn(), attr in rdn_attr(), value in rdn_value()) {
        let rdn = Rdn::new(attr.as_str(), value).unwrap();
        let child = dn.child(rdn);
        prop_assert_eq!(child.parent(), Some(dn.clone()));
        prop_assert!(dn.is_ancestor_of(&child));
        prop_assert!(!child.is_ancestor_of(&dn));
    }

    /// Filter display → parse preserves semantics on arbitrary entries.
    #[test]
    fn filter_print_parse_preserves_semantics(f in arb_filter(), e in arb_entry()) {
        let printed = f.to_string();
        let reparsed: Filter = match printed.parse() {
            Ok(f) => f,
            // Text values containing '*'-free but numeric-looking strings
            // can re-parse to Int and legitimately change semantics; our
            // generator avoids digits-only strings, so parse must succeed.
            Err(err) => return Err(TestCaseError::fail(format!("{err} for {printed}"))),
        };
        prop_assert_eq!(f.matches(&e), reparsed.matches(&e), "filter: {}", printed);
    }

    /// De Morgan: !(a & b) == (!a | !b) on every entry.
    #[test]
    fn de_morgan(a in arb_leaf_filter(), b in arb_leaf_filter(), e in arb_entry()) {
        let lhs = Filter::not(Filter::and([a.clone(), b.clone()]));
        let rhs = Filter::or([Filter::not(a), Filter::not(b)]);
        prop_assert_eq!(lhs.matches(&e), rhs.matches(&e));
    }

    /// Double negation is the identity.
    #[test]
    fn double_negation(f in arb_filter(), e in arb_entry()) {
        let double = Filter::not(Filter::not(f.clone()));
        prop_assert_eq!(f.matches(&e), double.matches(&e));
    }

    /// And is idempotent: (a & a) == a.
    #[test]
    fn and_idempotent(f in arb_filter(), e in arb_entry()) {
        let doubled = Filter::and([f.clone(), f.clone()]);
        prop_assert_eq!(f.matches(&e), doubled.matches(&e));
    }

    /// A substring pattern built from a real string matches that string.
    #[test]
    fn substring_self_match(s in "[a-zA-Z]{2,20}", cut in 1usize..19) {
        let cut = cut.min(s.len() - 1);
        let pattern = format!("{}*{}", &s[..cut], &s[cut..]);
        let p = SubstringPattern::parse(&pattern).unwrap();
        prop_assert!(p.matches(&s), "{pattern} should match {s}");
        // Prefix and suffix forms too.
        let prefix_form = format!("{}*", &s[..cut]);
        let suffix_form = format!("*{}", &s[cut..]);
        let prefix_ok = SubstringPattern::parse(&prefix_form).unwrap().matches(&s);
        let suffix_ok = SubstringPattern::parse(&suffix_form).unwrap().matches(&s);
        prop_assert!(prefix_ok);
        prop_assert!(suffix_ok);
    }
}

/// DIT structural invariants under random add/remove sequences.
#[derive(Debug, Clone)]
enum DitOp {
    Add(usize),
    Remove(usize),
}

fn arb_ops() -> impl Strategy<Value = Vec<DitOp>> {
    prop::collection::vec(
        prop_oneof![
            (0usize..16).prop_map(DitOp::Add),
            (0usize..16).prop_map(DitOp::Remove)
        ],
        1..60,
    )
}

/// A fixed universe of 16 DNs arranged as a small tree.
fn universe() -> Vec<Dn> {
    let mut dns = Vec::new();
    for c in ["c=A", "c=B"] {
        dns.push(c.parse().unwrap());
        for o in 0..3 {
            let org: Dn = format!("{c},o=org{o}").parse().unwrap();
            dns.push(org.clone());
            dns.push(format!("{c},o=org{o},cn=p{o}").parse().unwrap());
        }
    }
    dns.truncate(16);
    dns
}

fn entry_for(dn: &Dn) -> Entry {
    let mut e = Entry::new(dn.clone());
    match dn.depth() {
        1 => {
            e.add_class("country");
            e.put_attr(Attribute::single("c", dn.rdn().unwrap().value()));
        }
        2 => {
            e.add_class("organization");
            e.put_attr(Attribute::single("o", dn.rdn().unwrap().value()));
        }
        _ => {
            e.add_class("person");
            e.put_attr(Attribute::single("cn", dn.rdn().unwrap().value()));
            e.put_attr(Attribute::single("sn", "X"));
        }
    }
    e
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// After any operation sequence: every non-root entry's parent exists
    /// (or is the root), and subtree search from the root sees exactly
    /// the stored entries.
    #[test]
    fn dit_parent_invariant(ops in arb_ops()) {
        let universe = universe();
        let mut dit = Dit::new();
        for op in ops {
            match op {
                DitOp::Add(i) => { let _ = dit.add(entry_for(&universe[i % universe.len()])); }
                DitOp::Remove(i) => { let _ = dit.remove(&universe[i % universe.len()]); }
            }
            // Invariant 1: closure under parents.
            for e in dit.iter() {
                if let Some(parent) = e.dn().parent() {
                    prop_assert!(
                        parent.is_root() || dit.get(&parent).is_some(),
                        "orphaned entry {}", e.dn()
                    );
                }
            }
            // Invariant 2: root subtree search enumerates everything.
            let all = dit.search_all(Filter::True).unwrap();
            prop_assert_eq!(all.len(), dit.len());
        }
    }
}
