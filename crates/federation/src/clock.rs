//! Per-environment vector clocks — the partial order under which
//! replicated knowledge versions are compared (time transparency across
//! environments: causality, not wall clocks).

use std::collections::BTreeMap;
use std::fmt;

use crate::error::FederationError;

/// A vector clock over federation domains.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VectorClock {
    counts: BTreeMap<String, u64>,
}

/// How two clocks relate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClockOrder {
    /// Identical.
    Equal,
    /// Self happened-before other.
    Before,
    /// Other happened-before self.
    After,
    /// Neither dominates — a genuine conflict.
    Concurrent,
}

impl VectorClock {
    /// The zero clock.
    pub fn new() -> Self {
        Self::default()
    }

    /// The component for one domain.
    pub fn get(&self, domain: &str) -> u64 {
        self.counts.get(domain).copied().unwrap_or(0)
    }

    /// Advances one domain's component (a local event there).
    pub fn tick(&mut self, domain: &str) {
        *self.counts.entry(domain.to_owned()).or_insert(0) += 1;
    }

    /// Component-wise maximum (learning another replica's history).
    pub fn merge(&mut self, other: &VectorClock) {
        for (domain, n) in &other.counts {
            let slot = self.counts.entry(domain.clone()).or_insert(0);
            *slot = (*slot).max(*n);
        }
    }

    /// Compares under the happened-before partial order.
    pub fn compare(&self, other: &VectorClock) -> ClockOrder {
        let (mut some_less, mut some_greater) = (false, false);
        let domains = self.counts.keys().chain(other.counts.keys());
        for d in domains {
            let (a, b) = (self.get(d), other.get(d));
            if a < b {
                some_less = true;
            }
            if a > b {
                some_greater = true;
            }
        }
        match (some_less, some_greater) {
            (false, false) => ClockOrder::Equal,
            (true, false) => ClockOrder::Before,
            (false, true) => ClockOrder::After,
            (true, true) => ClockOrder::Concurrent,
        }
    }

    /// True when `self` strictly dominates (`other` happened-before it).
    pub fn dominates(&self, other: &VectorClock) -> bool {
        self.compare(other) == ClockOrder::After
    }

    /// Sum of all components — a deterministic secondary measure for
    /// conflict tie-breaks (not an ordering by itself).
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Canonical `domain:count` rendering, comma-separated, sorted.
    pub fn encode(&self) -> String {
        let parts: Vec<String> = self
            .counts
            .iter()
            .filter(|(_, n)| **n > 0)
            .map(|(d, n)| format!("{d}:{n}"))
            .collect();
        parts.join(",")
    }

    /// Parses the [`encode`](Self::encode) form.
    ///
    /// # Errors
    ///
    /// [`FederationError::Codec`] on malformed components.
    pub fn decode(s: &str) -> Result<Self, FederationError> {
        let mut clock = VectorClock::new();
        for part in s.split(',').filter(|p| !p.is_empty()) {
            let (domain, n) = part
                .rsplit_once(':')
                .ok_or_else(|| FederationError::Codec(format!("bad clock component: {part}")))?;
            let n: u64 = n
                .parse()
                .map_err(|_| FederationError::Codec(format!("bad clock count: {part}")))?;
            clock.counts.insert(domain.to_owned(), n);
        }
        Ok(clock)
    }
}

impl fmt::Display for VectorClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.encode())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_merge_and_compare() {
        let mut a = VectorClock::new();
        let mut b = VectorClock::new();
        assert_eq!(a.compare(&b), ClockOrder::Equal);
        a.tick("env-a");
        assert_eq!(a.compare(&b), ClockOrder::After);
        assert_eq!(b.compare(&a), ClockOrder::Before);
        b.tick("env-b");
        assert_eq!(a.compare(&b), ClockOrder::Concurrent);
        b.merge(&a);
        assert!(b.dominates(&a));
        assert_eq!(b.total(), 2);
    }

    #[test]
    fn codec_round_trips() {
        let mut c = VectorClock::new();
        c.tick("env-a");
        c.tick("env-a");
        c.tick("env-b");
        let wire = c.encode();
        assert_eq!(wire, "env-a:2,env-b:1");
        assert_eq!(VectorClock::decode(&wire).unwrap(), c);
        assert_eq!(VectorClock::decode("").unwrap(), VectorClock::new());
        assert!(VectorClock::decode("nonsense").is_err());
        assert!(VectorClock::decode("a:x").is_err());
    }
}
