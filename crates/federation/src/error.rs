//! Federation-layer errors, classified for the resilience machinery.

use std::fmt;

use cscw_kernel::{ErrorClass, KernelError, Layer, LayerError};

/// What can go wrong between environments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FederationError {
    /// The named domain never joined the fabric.
    UnknownDomain(String),
    /// No reachable domain advertises the application.
    UnknownApplication(String),
    /// The application may exist, but every path to it crossed a down
    /// link — the resolver fell back to local-only matching.
    Partitioned(String),
    /// A federated query revisited a domain (link cycle).
    QueryLoop(String),
    /// The hop budget ran out before the query matched.
    HopLimitExceeded(String),
    /// A gossip frame or replicated entry failed to decode.
    Codec(String),
}

impl fmt::Display for FederationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FederationError::UnknownDomain(d) => write!(f, "unknown federation domain: {d}"),
            FederationError::UnknownApplication(a) => {
                write!(f, "application not advertised in any reachable domain: {a}")
            }
            FederationError::Partitioned(a) => {
                write!(f, "federation partitioned while resolving: {a}")
            }
            FederationError::QueryLoop(d) => write!(f, "federated query loop at domain: {d}"),
            FederationError::HopLimitExceeded(a) => {
                write!(f, "federated query hop budget exhausted resolving: {a}")
            }
            FederationError::Codec(msg) => write!(f, "federation codec error: {msg}"),
        }
    }
}

impl std::error::Error for FederationError {}

impl LayerError for FederationError {
    fn layer(&self) -> Layer {
        Layer::Federation
    }

    fn kind(&self) -> &'static str {
        match self {
            FederationError::UnknownDomain(_) => "unknown_domain",
            FederationError::UnknownApplication(_) => "unknown_application",
            FederationError::Partitioned(_) => "partitioned",
            FederationError::QueryLoop(_) => "query_loop",
            FederationError::HopLimitExceeded(_) => "hop_limit_exceeded",
            FederationError::Codec(_) => "codec",
        }
    }

    fn class(&self) -> ErrorClass {
        match self {
            // A partition is the one fault healing can clear; everything
            // else is a property of the query or the data.
            FederationError::Partitioned(_) => ErrorClass::Transient,
            _ => ErrorClass::Permanent,
        }
    }
}

impl From<FederationError> for KernelError {
    fn from(e: FederationError) -> Self {
        e.to_kernel()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_carry_federation_layer_and_classification() {
        let e = FederationError::Partitioned("com".into());
        assert_eq!(e.layer(), Layer::Federation);
        assert!(e.class().is_transient());
        let e = FederationError::UnknownApplication("com".into());
        assert_eq!(e.kind(), "unknown_application");
        assert!(!e.class().is_transient());
        assert_eq!(e.to_kernel().layer(), Layer::Federation);
    }
}
