//! The federation fabric: shared state linking N environments.
//!
//! The fabric is the engineering object *between* the environments: a
//! registry of domains (one per environment), the federated trader's
//! link graph and offer cache, each domain's replicated knowledge
//! store, and an outbox of remote exchanges awaiting delivery. Each
//! environment holds a [`DomainPort`] handle onto the shared fabric
//! and talks to it through the [`FederationPort`] trait — the
//! environment never sees the other environments, only its port
//! (organisation transparency across sites).

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use cscw_kernel::{Layer, SpanContext, Telemetry, Timestamp};
use cscw_messaging::gossip::GossipFrame;
use odp::LinkState;
use parking_lot::Mutex;

use crate::error::FederationError;
use crate::replica::{
    decode_delta, decode_digest, encode_delta, encode_digest, IngestReport, ReplicatedStore,
};
use crate::trader::{FederatedTrader, Resolution, ResolutionSource};

/// One remote exchange in flight: an artifact lowered to common-model
/// fields, addressed across domains.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RemoteDelivery {
    /// The sending environment's domain.
    pub from_domain: String,
    /// The destination environment's domain.
    pub to_domain: String,
    /// The sharing principal (directory DN, rendered).
    pub sharer: String,
    /// The sending application.
    pub from_app: String,
    /// The destination application.
    pub to_app: String,
    /// The artifact in the common information model.
    pub fields: BTreeMap<String, String>,
    /// When the exchange was issued.
    pub at: Timestamp,
    /// The sending exchange's trace context, carried across the domain
    /// boundary so the destination's delivery spans join the same
    /// trace (None when the sender was not tracing).
    pub ctx: Option<SpanContext>,
}

/// The environment-facing surface of the fabric. `CscwEnvironment`
/// consults it when its local trader cannot locate an exchange
/// partner, advertises its registered applications into it, and
/// mirrors shareable knowledge through it.
pub trait FederationPort: std::fmt::Debug + Send {
    /// This environment's federation domain.
    fn domain(&self) -> String;

    /// Advertises a locally registered application to the federation.
    fn advertise_app(&mut self, app: &str);

    /// Resolves which domain hosts `app` (local, cached, or via a
    /// hop-limited federated walk).
    ///
    /// # Errors
    ///
    /// [`FederationError::UnknownApplication`] /
    /// [`FederationError::Partitioned`] as in
    /// [`FederatedTrader::resolve`].
    fn resolve_app(&mut self, app: &str, now: Timestamp) -> Result<Resolution, FederationError>;

    /// Queues a remote exchange for delivery into its destination
    /// domain.
    ///
    /// # Errors
    ///
    /// [`FederationError::UnknownDomain`] when the destination domain
    /// never joined the fabric.
    fn route_exchange(&mut self, delivery: RemoteDelivery) -> Result<(), FederationError>;

    /// Writes one shareable knowledge entry into this domain's replica
    /// (to be gossiped to the federation).
    fn publish_entry(&mut self, key: &str, value: &str);

    /// Canonical fingerprint of this domain's replicated knowledge.
    fn replica_fingerprint(&self) -> String;

    /// Resolved `(key, value)` pairs of this domain's replica in key
    /// order — the query layer primes standing knowledge subscriptions
    /// from it at subscribe time. Ports without a replica return the
    /// default: nothing.
    fn replica_snapshot(&self) -> Vec<(String, String)> {
        Vec::new()
    }
}

#[derive(Debug, Default)]
struct DomainState {
    apps: BTreeSet<String>,
    replica: ReplicatedStore,
    inbound: Vec<RemoteDelivery>,
}

#[derive(Debug)]
struct FabricInner {
    domains: BTreeMap<String, DomainState>,
    trader: FederatedTrader,
    telemetry: Telemetry,
}

impl FabricInner {
    fn advertised(&self) -> BTreeMap<String, BTreeSet<String>> {
        self.domains
            .iter()
            .map(|(d, s)| (d.clone(), s.apps.clone()))
            .collect()
    }
}

/// The shared federation fabric. Cloning shares the underlying state;
/// [`join`](Self::join) hands out per-environment ports onto it.
#[derive(Debug, Clone)]
pub struct FederationFabric {
    inner: Arc<Mutex<FabricInner>>,
}

impl Default for FederationFabric {
    fn default() -> Self {
        Self::new()
    }
}

impl FederationFabric {
    /// An empty fabric with its own telemetry stream.
    pub fn new() -> Self {
        Self::with_trader(FederatedTrader::new())
    }

    /// A fabric with a configured trader (hop budget, TTL).
    pub fn with_trader(trader: FederatedTrader) -> Self {
        FederationFabric {
            inner: Arc::new(Mutex::new(FabricInner {
                domains: BTreeMap::new(),
                trader,
                telemetry: Telemetry::new(),
            })),
        }
    }

    /// Routes the fabric's telemetry onto an existing stream (e.g. a
    /// platform's), so one render shows the whole stack.
    pub fn with_telemetry(self, telemetry: Telemetry) -> Self {
        self.inner.lock().telemetry = telemetry;
        self
    }

    /// The fabric's telemetry stream.
    pub fn telemetry(&self) -> Telemetry {
        self.inner.lock().telemetry.clone()
    }

    /// Registers a domain and returns its environment-facing port.
    /// Joining an existing domain returns a fresh port onto the same
    /// state.
    pub fn join(&self, domain: impl Into<String>) -> DomainPort {
        let domain = domain.into();
        let mut inner = self.inner.lock();
        inner
            .domains
            .entry(domain.clone())
            .or_insert_with(|| DomainState {
                replica: ReplicatedStore::new(domain.clone()),
                ..Default::default()
            });
        inner.telemetry.incr(Layer::Federation, "federation.join");
        drop(inner);
        DomainPort {
            inner: self.inner.clone(),
            domain,
        }
    }

    /// The joined domains, in name order.
    pub fn domains(&self) -> Vec<String> {
        self.inner.lock().domains.keys().cloned().collect()
    }

    /// Adds a directed trader link.
    pub fn link(&self, from: &str, to: &str) {
        let mut inner = self.inner.lock();
        inner.trader.link(from, to);
        inner.telemetry.incr(Layer::Federation, "federation.link");
    }

    /// Adds links both ways — the common federation shape.
    pub fn link_bidi(&self, a: &str, b: &str) {
        self.link(a, b);
        self.link(b, a);
    }

    /// The trader link graph as `(from, to, state)` triples, in
    /// insertion order — coordinators walk it to schedule gossip.
    pub fn links(&self) -> Vec<(String, String, LinkState)> {
        self.inner
            .lock()
            .trader
            .links()
            .iter()
            .map(|l| (l.from.clone(), l.to.clone(), l.state))
            .collect()
    }

    /// Sets one directed link's health; `false` when no such link.
    pub fn set_link_state(&self, from: &str, to: &str, state: LinkState) -> bool {
        let mut inner = self.inner.lock();
        let found = inner.trader.set_link_state(from, to, state);
        if found {
            let name = match state {
                LinkState::Up => "federation.link.up",
                LinkState::Down => "federation.link.down",
            };
            inner.telemetry.incr(Layer::Federation, name);
        }
        found
    }

    /// Takes (drains) the deliveries queued *into* `domain`.
    pub fn take_inbound(&self, domain: &str) -> Vec<RemoteDelivery> {
        let mut inner = self.inner.lock();
        let taken = inner
            .domains
            .get_mut(domain)
            .map(|s| std::mem::take(&mut s.inbound))
            .unwrap_or_default();
        if !taken.is_empty() {
            inner
                .telemetry
                .add(Layer::Federation, "federation.deliver", taken.len() as u64);
        }
        taken
    }

    /// Builds `domain`'s anti-entropy digest frame.
    ///
    /// # Errors
    ///
    /// [`FederationError::UnknownDomain`].
    pub fn digest_frame(&self, domain: &str) -> Result<GossipFrame, FederationError> {
        let inner = self.inner.lock();
        let state = inner
            .domains
            .get(domain)
            .ok_or_else(|| FederationError::UnknownDomain(domain.to_owned()))?;
        inner
            .telemetry
            .incr(Layer::Federation, "federation.gossip.digest");
        // Frames built while a gossip span is open carry its context
        // over the wire, so the receiver's apply joins the same trace.
        let ctx = inner.telemetry.current_context();
        Ok(GossipFrame::digest(domain, encode_digest(&state.replica.digest())).with_ctx(ctx))
    }

    /// Answers a digest frame with `domain`'s delta for it.
    ///
    /// # Errors
    ///
    /// [`FederationError::UnknownDomain`] / [`FederationError::Codec`].
    pub fn delta_frame(
        &self,
        domain: &str,
        digest: &GossipFrame,
    ) -> Result<GossipFrame, FederationError> {
        self.delta_frame_capped(domain, digest, None)
    }

    /// Like [`FederationFabric::delta_frame`], but truncates the delta
    /// to at most `cap` updates. Congested transports shrink their
    /// frames this way: `delta_since` emits each origin's updates in
    /// ascending sequence order, so a truncated delta is still a valid
    /// per-origin prefix — the receiver's digest simply advances less
    /// and the remainder goes out on a later round.
    ///
    /// # Errors
    ///
    /// [`FederationError::UnknownDomain`] / [`FederationError::Codec`].
    pub fn delta_frame_capped(
        &self,
        domain: &str,
        digest: &GossipFrame,
        cap: Option<usize>,
    ) -> Result<GossipFrame, FederationError> {
        let their = decode_digest(&digest.body)?;
        let inner = self.inner.lock();
        let state = inner
            .domains
            .get(domain)
            .ok_or_else(|| FederationError::UnknownDomain(domain.to_owned()))?;
        let mut delta = state.replica.delta_since(&their);
        if let Some(cap) = cap {
            let excess = delta.len().saturating_sub(cap);
            if excess > 0 {
                delta.truncate(cap);
                inner.telemetry.add(
                    Layer::Federation,
                    "federation.gossip.truncated",
                    excess as u64,
                );
            }
        }
        inner.telemetry.add(
            Layer::Federation,
            "federation.gossip.delta",
            delta.len() as u64,
        );
        let ctx = inner.telemetry.current_context();
        Ok(GossipFrame::delta(domain, encode_delta(&delta)).with_ctx(ctx))
    }

    /// Applies a delta frame to `domain`'s replica; returns the
    /// [`IngestReport`] saying which updates applied, how many were
    /// buffered out-of-order, and how many were stale.
    ///
    /// # Errors
    ///
    /// [`FederationError::UnknownDomain`] / [`FederationError::Codec`].
    pub fn ingest_delta(
        &self,
        domain: &str,
        delta: &GossipFrame,
    ) -> Result<IngestReport, FederationError> {
        let updates = decode_delta(&delta.body)?;
        let mut inner = self.inner.lock();
        let state = inner
            .domains
            .get_mut(domain)
            .ok_or_else(|| FederationError::UnknownDomain(domain.to_owned()))?;
        let report = state.replica.ingest(updates);
        inner.telemetry.add(
            Layer::Federation,
            "federation.gossip.applied",
            report.applied_count() as u64,
        );
        inner.telemetry.add(
            Layer::Federation,
            "federation.gossip.buffered",
            report.buffered as u64,
        );
        inner.telemetry.add(
            Layer::Federation,
            "federation.gossip.stale",
            report.stale as u64,
        );
        Ok(report)
    }

    /// Expires stale trader cache entries at `now`; returns how many
    /// were dropped.
    pub fn expire_offer_cache(&self, now: Timestamp) -> usize {
        let mut inner = self.inner.lock();
        let expired = inner.trader.expire_cache(now);
        if expired > 0 {
            inner
                .telemetry
                .add(Layer::Federation, "federation.ttl.expired", expired as u64);
        }
        expired
    }

    /// Remote offers currently cached by the federated trader (fresh
    /// or stale).
    pub fn offer_cache_len(&self) -> usize {
        self.inner.lock().trader.cache_len()
    }

    /// Total deliveries queued but not yet pumped, across all domains.
    pub fn pending_inbound(&self) -> usize {
        self.inner
            .lock()
            .domains
            .values()
            .map(|s| s.inbound.len())
            .sum()
    }

    /// A domain's replica fingerprint (empty string for unknown
    /// domains).
    pub fn replica_fingerprint(&self, domain: &str) -> String {
        self.inner
            .lock()
            .domains
            .get(domain)
            .map(|s| s.replica.fingerprint())
            .unwrap_or_default()
    }

    /// A domain's resolved replica value for `key`.
    pub fn replica_get(&self, domain: &str, key: &str) -> Option<String> {
        self.inner
            .lock()
            .domains
            .get(domain)
            .and_then(|s| s.replica.get(key).map(str::to_owned))
    }
}

/// One environment's handle onto the shared fabric.
#[derive(Debug, Clone)]
pub struct DomainPort {
    inner: Arc<Mutex<FabricInner>>,
    domain: String,
}

impl FederationPort for DomainPort {
    fn domain(&self) -> String {
        self.domain.clone()
    }

    fn advertise_app(&mut self, app: &str) {
        let mut inner = self.inner.lock();
        if let Some(state) = inner.domains.get_mut(&self.domain) {
            state.apps.insert(app.to_owned());
        }
        inner
            .telemetry
            .incr(Layer::Federation, "federation.advertise");
    }

    fn resolve_app(&mut self, app: &str, now: Timestamp) -> Result<Resolution, FederationError> {
        let mut inner = self.inner.lock();
        let span =
            inner
                .telemetry
                .span_begin(Layer::Federation, "federation.resolve", now.as_micros());
        let advertised = inner.advertised();
        let outcome = inner.trader.resolve(&self.domain, app, &advertised, now);
        let name = match &outcome {
            Ok(r) => match r.source {
                ResolutionSource::Local => "federation.resolve.local",
                ResolutionSource::Cache => "federation.resolve.cache",
                ResolutionSource::Federated => "federation.resolve.federated",
            },
            Err(FederationError::Partitioned(_)) => "federation.resolve.partitioned",
            Err(_) => "federation.resolve.miss",
        };
        inner.telemetry.incr(Layer::Federation, name);
        inner.telemetry.span_end(span, now.as_micros());
        outcome
    }

    fn route_exchange(&mut self, delivery: RemoteDelivery) -> Result<(), FederationError> {
        let mut inner = self.inner.lock();
        let at = delivery.at.as_micros();
        let span = inner
            .telemetry
            .span_begin(Layer::Federation, "federation.route", at);
        let to = delivery.to_domain.clone();
        let Some(state) = inner.domains.get_mut(&to) else {
            inner.telemetry.span_end(span, at);
            return Err(FederationError::UnknownDomain(to));
        };
        state.inbound.push(delivery);
        inner.telemetry.incr(Layer::Federation, "federation.route");
        inner.telemetry.span_end(span, at);
        Ok(())
    }

    fn publish_entry(&mut self, key: &str, value: &str) {
        let mut inner = self.inner.lock();
        if let Some(state) = inner.domains.get_mut(&self.domain) {
            // Re-publishing an identical value is a no-op: idempotent
            // publication keeps gossip deltas from growing on every
            // call.
            if state.replica.get(key) == Some(value) {
                return;
            }
            state.replica.put(key, value);
        }
        inner
            .telemetry
            .incr(Layer::Federation, "federation.publish");
    }

    fn replica_fingerprint(&self) -> String {
        self.inner
            .lock()
            .domains
            .get(&self.domain)
            .map(|s| s.replica.fingerprint())
            .unwrap_or_default()
    }

    fn replica_snapshot(&self) -> Vec<(String, String)> {
        self.inner
            .lock()
            .domains
            .get(&self.domain)
            .map(|s| {
                s.replica
                    .entries()
                    .map(|e| (e.key.clone(), e.value.clone()))
                    .collect()
            })
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ports_advertise_resolve_and_route() {
        let fabric = FederationFabric::new();
        let mut a = fabric.join("env-a");
        let mut b = fabric.join("env-b");
        fabric.link_bidi("env-a", "env-b");
        b.advertise_app("com");
        let r = a.resolve_app("com", Timestamp::ZERO).unwrap();
        assert_eq!(r.domain, "env-b");
        a.route_exchange(RemoteDelivery {
            from_domain: "env-a".into(),
            to_domain: "env-b".into(),
            sharer: "cn=Tom".into(),
            from_app: "sharedx".into(),
            to_app: "com".into(),
            fields: BTreeMap::from([("title".to_owned(), "Minutes".to_owned())]),
            at: Timestamp::ZERO,
            ctx: None,
        })
        .unwrap();
        let inbound = fabric.take_inbound("env-b");
        assert_eq!(inbound.len(), 1);
        assert_eq!(inbound[0].to_app, "com");
        assert!(fabric.take_inbound("env-b").is_empty(), "drained");
        let t = fabric.telemetry();
        assert_eq!(t.counter(Layer::Federation, "federation.route"), 1);
        assert_eq!(
            t.counter(Layer::Federation, "federation.resolve.federated"),
            1
        );
    }

    #[test]
    fn routing_to_unknown_domain_fails() {
        let fabric = FederationFabric::new();
        let mut a = fabric.join("env-a");
        let err = a
            .route_exchange(RemoteDelivery {
                from_domain: "env-a".into(),
                to_domain: "ghost".into(),
                sharer: "cn=Tom".into(),
                from_app: "x".into(),
                to_app: "y".into(),
                fields: BTreeMap::new(),
                at: Timestamp::ZERO,
                ctx: None,
            })
            .unwrap_err();
        assert!(matches!(err, FederationError::UnknownDomain(_)));
    }

    #[test]
    fn gossip_frames_converge_replicas() {
        let fabric = FederationFabric::new();
        let mut a = fabric.join("env-a");
        let mut b = fabric.join("env-b");
        a.publish_entry("org:cn=Tom", "person Tom");
        b.publish_entry("org:cn=Wolfgang", "person Wolfgang");
        a.publish_entry("org:cn=Tom", "person Tom"); // idempotent
        for _ in 0..2 {
            for (src, dst) in [("env-a", "env-b"), ("env-b", "env-a")] {
                let digest = fabric.digest_frame(dst).unwrap();
                let delta = fabric.delta_frame(src, &digest).unwrap();
                fabric.ingest_delta(dst, &delta).unwrap();
            }
        }
        let fa = a.replica_fingerprint();
        assert!(!fa.is_empty());
        assert_eq!(fa, b.replica_fingerprint());
        assert_eq!(
            fabric.replica_get("env-b", "org:cn=Tom").as_deref(),
            Some("person Tom")
        );
    }

    #[test]
    fn capped_delta_frames_still_converge_over_more_rounds() {
        let fabric = FederationFabric::new();
        let mut a = fabric.join("env-a");
        let b = fabric.join("env-b");
        for i in 0..7 {
            a.publish_entry(&format!("org:cn=Person{i}"), &format!("person {i}"));
        }
        // A cap of 2 needs ceil(7/2) = 4 rounds to drain the backlog.
        let mut applied_per_round = Vec::new();
        for _ in 0..4 {
            let digest = fabric.digest_frame("env-b").unwrap();
            let delta = fabric
                .delta_frame_capped("env-a", &digest, Some(2))
                .unwrap();
            applied_per_round.push(
                fabric
                    .ingest_delta("env-b", &delta)
                    .unwrap()
                    .applied_count(),
            );
        }
        assert_eq!(applied_per_round, vec![2, 2, 2, 1]);
        assert_eq!(a.replica_fingerprint(), b.replica_fingerprint());
        assert_eq!(
            fabric
                .telemetry()
                .counter(Layer::Federation, "federation.gossip.truncated"),
            5 + 3 + 1,
            "each round counts the updates it held back"
        );
    }

    #[test]
    fn frames_survive_the_wire_codec() {
        let fabric = FederationFabric::new();
        let mut a = fabric.join("env-a");
        fabric.join("env-b");
        a.publish_entry("k", "v|with\nhostile\x1echars");
        let digest = fabric.digest_frame("env-b").unwrap();
        let digest = GossipFrame::decode(&digest.encode()).unwrap();
        let delta = fabric.delta_frame("env-a", &digest).unwrap();
        let delta = GossipFrame::decode(&delta.encode()).unwrap();
        assert_eq!(
            fabric
                .ingest_delta("env-b", &delta)
                .unwrap()
                .applied_count(),
            1
        );
        assert_eq!(
            fabric.replica_get("env-b", "k").as_deref(),
            Some("v|with\nhostile\x1echars")
        );
    }
}
