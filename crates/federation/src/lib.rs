//! # cscw-federation — inter-environment federation
//!
//! The paper's Figure 3 turns N mutually-ignorant groupware
//! applications into an interoperating federation *within one*
//! environment. This crate extends the claim *across* environments:
//! N `CscwEnvironment` instances, each on its own platform, federated
//! by three mechanisms:
//!
//! * **Trader interworking** ([`FederatedTrader`]) — ODP's "linked
//!   traders": service queries that miss locally are forwarded across
//!   directed links, breadth-first, bounded by a hop budget and a
//!   visited set, with TTL-cached remote offers.
//! * **Anti-entropy knowledge replication** ([`ReplicatedStore`]) —
//!   the Information and Organisational models replicate as versioned
//!   entries under per-environment vector clocks, with causal
//!   per-origin delivery and deterministic conflict resolution;
//!   periodic digest exchange + delta sync ride the messaging layer as
//!   [`cscw_messaging::gossip`] frames.
//! * **Remote exchange routing** ([`FederationFabric`],
//!   [`FederationPort`]) — an environment whose local trader cannot
//!   locate an exchange partner resolves it through the federation and
//!   routes the artifact (lowered to the common information model) to
//!   the hosting environment.
//!
//! All three are *driven* by a fourth piece, the event-driven
//! [`FederationRuntime`]: gossip rounds, offer-TTL expiry and delivery
//! pumping are scheduled events on the kernel's deterministic queue,
//! one jittered periodic timer set per site, so federations of 100+
//! sites run without any hand-cranked coordinator loop.
//!
//! In the Figure-4 stack the federation layer sits between the ODP
//! functions and the environment: it is built *from* odp + messaging
//! vocabulary and consumed *by* the environment through the
//! [`FederationPort`] — the environment never names its peers
//! (organisation + view transparency across sites).

#![warn(missing_docs)]

pub mod clock;
pub mod error;
pub mod fabric;
pub mod replica;
pub mod runtime;
pub mod trader;

pub use clock::{ClockOrder, VectorClock};
pub use error::FederationError;
pub use fabric::{DomainPort, FederationFabric, FederationPort, RemoteDelivery};
pub use replica::{IngestReport, ReplEntry, ReplicatedStore};
pub use runtime::{FedEvent, FederationRuntime, Pulse, RuntimeConfig};
pub use trader::{FederatedTrader, Resolution, ResolutionSource, DEFAULT_HOP_LIMIT};
