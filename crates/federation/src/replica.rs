//! Anti-entropy replication of environment knowledge.
//!
//! Each federated environment keeps a [`ReplicatedStore`] mirroring the
//! shareable slice of its Information and Organisational models as
//! versioned key→value entries. Replication is pull-based anti-entropy:
//! a replica sends its *digest* (per-origin applied watermarks), the
//! peer answers with the *delta* (every update the digest lacks, in
//! per-origin sequence order), and ingestion applies updates under
//! causal per-origin FIFO with deterministic conflict resolution — so
//! all replicas converge to bit-for-bit identical state regardless of
//! exchange order.

use std::collections::BTreeMap;

use crate::clock::VectorClock;
use crate::error::FederationError;

/// One versioned update to a replicated key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplEntry {
    /// Namespaced key (`org:…`, `info:…`).
    pub key: String,
    /// Canonical value rendering.
    pub value: String,
    /// Version vector at write time.
    pub clock: VectorClock,
    /// The environment that wrote this version.
    pub origin: String,
    /// Gap-free per-origin sequence number (1-based).
    pub seq: u64,
}

/// Escapes the codec's structural characters.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '%' => out.push_str("%25"),
            '\x1e' => out.push_str("%1E"),
            '\x1f' => out.push_str("%1F"),
            other => out.push(other),
        }
    }
    out
}

fn unescape(s: &str) -> Result<String, FederationError> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '%' {
            out.push(c);
            continue;
        }
        let code: String = chars.by_ref().take(2).collect();
        match code.as_str() {
            "25" => out.push('%'),
            "1E" => out.push('\x1e'),
            "1F" => out.push('\x1f'),
            other => {
                return Err(FederationError::Codec(format!("bad escape: %{other}")));
            }
        }
    }
    Ok(out)
}

impl ReplEntry {
    /// Encodes to one record: fields joined by the unit separator.
    pub fn encode(&self) -> String {
        [
            escape(&self.key),
            escape(&self.value),
            self.clock.encode(),
            escape(&self.origin),
            self.seq.to_string(),
        ]
        .join("\x1f")
    }

    /// Decodes one record.
    ///
    /// # Errors
    ///
    /// [`FederationError::Codec`] on wrong arity or malformed fields.
    pub fn decode(record: &str) -> Result<Self, FederationError> {
        let fields: Vec<&str> = record.split('\x1f').collect();
        let [key, value, clock, origin, seq] = fields.as_slice() else {
            return Err(FederationError::Codec(format!(
                "entry has {} fields, want 5",
                fields.len()
            )));
        };
        Ok(ReplEntry {
            key: unescape(key)?,
            value: unescape(value)?,
            clock: VectorClock::decode(clock)?,
            origin: unescape(origin)?,
            seq: seq
                .parse()
                .map_err(|_| FederationError::Codec(format!("bad seq: {seq}")))?,
        })
    }
}

/// Encodes a delta (entry list) as one frame body.
pub fn encode_delta(entries: &[ReplEntry]) -> String {
    entries
        .iter()
        .map(ReplEntry::encode)
        .collect::<Vec<_>>()
        .join("\x1e")
}

/// Decodes a delta frame body.
///
/// # Errors
///
/// [`FederationError::Codec`] from any malformed record.
pub fn decode_delta(body: &str) -> Result<Vec<ReplEntry>, FederationError> {
    body.split('\x1e')
        .filter(|r| !r.is_empty())
        .map(ReplEntry::decode)
        .collect()
}

/// Encodes a digest (per-origin watermarks) as one frame body.
pub fn encode_digest(digest: &BTreeMap<String, u64>) -> String {
    digest
        .iter()
        .map(|(origin, seq)| format!("{}\x1f{}", escape(origin), seq))
        .collect::<Vec<_>>()
        .join("\x1e")
}

/// Decodes a digest frame body.
///
/// # Errors
///
/// [`FederationError::Codec`] on malformed records.
pub fn decode_digest(body: &str) -> Result<BTreeMap<String, u64>, FederationError> {
    let mut digest = BTreeMap::new();
    for record in body.split('\x1e').filter(|r| !r.is_empty()) {
        let (origin, seq) = record
            .split_once('\x1f')
            .ok_or_else(|| FederationError::Codec("digest record missing separator".into()))?;
        let seq: u64 = seq
            .parse()
            .map_err(|_| FederationError::Codec(format!("bad digest seq: {seq}")))?;
        digest.insert(unescape(origin)?, seq);
    }
    Ok(digest)
}

/// What one [`ReplicatedStore::ingest`] call did with its batch.
///
/// Consumers that need more than a count — the standing-query layer
/// turns applied entries into subscription deltas — read `applied`;
/// `buffered` and `stale` feed gossip telemetry.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IngestReport {
    /// Updates applied this call, in causal application order
    /// (includes previously buffered updates whose gap just filled).
    pub applied: Vec<ReplEntry>,
    /// Updates from this batch still parked out-of-order in the
    /// pending buffer after the drain.
    pub buffered: usize,
    /// Updates dropped: already applied (seq at or below the origin's
    /// watermark) or from this replica's own origin.
    pub stale: usize,
}

impl IngestReport {
    /// Number of updates applied.
    pub fn applied_count(&self) -> usize {
        self.applied.len()
    }
}

/// A replica of the federated knowledge state for one environment.
#[derive(Debug, Clone, Default)]
pub struct ReplicatedStore {
    domain: String,
    /// Resolved current value per key.
    state: BTreeMap<String, ReplEntry>,
    /// Gap-free update log per origin (index i holds seq i+1).
    logs: BTreeMap<String, Vec<ReplEntry>>,
    /// Highest contiguously applied seq per origin.
    applied: BTreeMap<String, u64>,
    /// Out-of-causal-order updates buffered until their gap fills.
    pending: BTreeMap<String, BTreeMap<u64, ReplEntry>>,
    /// This replica's own clock (ticked on local writes, merged on
    /// ingestion).
    clock: VectorClock,
}

impl ReplicatedStore {
    /// A fresh replica owned by `domain`.
    pub fn new(domain: impl Into<String>) -> Self {
        ReplicatedStore {
            domain: domain.into(),
            ..Default::default()
        }
    }

    /// The owning domain.
    pub fn domain(&self) -> &str {
        &self.domain
    }

    /// Number of resolved keys.
    pub fn len(&self) -> usize {
        self.state.len()
    }

    /// True when nothing has replicated yet.
    pub fn is_empty(&self) -> bool {
        self.state.is_empty()
    }

    /// The resolved value for a key.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.state.get(key).map(|e| e.value.as_str())
    }

    /// Resolved entries in key order.
    pub fn entries(&self) -> impl Iterator<Item = &ReplEntry> {
        self.state.values()
    }

    /// Writes locally: ticks this domain's clock component, appends to
    /// its own log and applies immediately.
    pub fn put(&mut self, key: impl Into<String>, value: impl Into<String>) {
        self.clock.tick(&self.domain);
        let log = self.logs.entry(self.domain.clone()).or_default();
        let entry = ReplEntry {
            key: key.into(),
            value: value.into(),
            clock: self.clock.clone(),
            origin: self.domain.clone(),
            seq: log.len() as u64 + 1,
        };
        log.push(entry.clone());
        self.applied.insert(self.domain.clone(), entry.seq);
        self.resolve(entry);
    }

    /// The digest: per-origin applied watermarks.
    pub fn digest(&self) -> BTreeMap<String, u64> {
        self.applied.clone()
    }

    /// Every update a replica at `their` digest is missing, per-origin
    /// sequence order — gap-free because origin logs are gap-free.
    pub fn delta_since(&self, their: &BTreeMap<String, u64>) -> Vec<ReplEntry> {
        let mut delta = Vec::new();
        for (origin, log) in &self.logs {
            let have = their.get(origin).copied().unwrap_or(0) as usize;
            if have < log.len() {
                delta.extend(log[have..].iter().cloned());
            }
        }
        delta
    }

    /// Ingests updates from a peer under causal per-origin FIFO: an
    /// update applies only once every earlier update from its origin
    /// has applied; later arrivals buffer until the gap fills.
    ///
    /// Returns an [`IngestReport`]: *which* updates applied (buffered
    /// ones appear when their gap fills), how many still wait for a
    /// gap, and how many were stale duplicates.
    pub fn ingest(&mut self, updates: Vec<ReplEntry>) -> IngestReport {
        let mut report = IngestReport::default();
        let mut inserted: Vec<(String, u64)> = Vec::new();
        for update in updates {
            if update.origin == self.domain {
                report.stale += 1; // own history is authoritative locally
                continue;
            }
            let watermark = self.applied.get(&update.origin).copied().unwrap_or(0);
            if update.seq <= watermark {
                report.stale += 1; // duplicate of an already-applied seq
                continue;
            }
            inserted.push((update.origin.clone(), update.seq));
            self.pending
                .entry(update.origin.clone())
                .or_default()
                .insert(update.seq, update);
        }
        // Drain every origin's pending run that now continues its log.
        let origins: Vec<String> = self.pending.keys().cloned().collect();
        for origin in origins {
            loop {
                let next_seq = self.applied.get(&origin).copied().unwrap_or(0) + 1;
                let Some(entry) = self
                    .pending
                    .get_mut(&origin)
                    .and_then(|buf| buf.remove(&next_seq))
                else {
                    break;
                };
                self.logs
                    .entry(origin.clone())
                    .or_default()
                    .push(entry.clone());
                self.applied.insert(origin.clone(), next_seq);
                self.clock.merge(&entry.clock);
                self.resolve(entry.clone());
                report.applied.push(entry);
            }
        }
        report.buffered = inserted
            .iter()
            .filter(|(origin, seq)| {
                self.pending
                    .get(origin)
                    .is_some_and(|buf| buf.contains_key(seq))
            })
            .count();
        report
    }

    /// Conflict resolution: the surviving version is the maximum under
    /// a total order on immutable version metadata — clock total, then
    /// origin, then sequence, then value. Strict clock dominance implies
    /// a strictly larger total, so causally-later versions always win;
    /// concurrent versions fall to the deterministic tie-break. A pure
    /// max over a total order makes the fold commutative, associative
    /// and idempotent: replicas converge regardless of apply order.
    fn resolve(&mut self, incoming: ReplEntry) {
        match self.state.get(&incoming.key) {
            Some(current) if rank(current) >= rank(&incoming) => {}
            _ => {
                self.state.insert(incoming.key.clone(), incoming);
            }
        }
    }

    /// Canonical rendering of the resolved state — replicas that have
    /// converged produce bit-for-bit identical fingerprints.
    pub fn fingerprint(&self) -> String {
        let mut out = String::new();
        for entry in self.state.values() {
            out.push_str(&format!(
                "{}={} @{} by {}\n",
                entry.key,
                entry.value,
                entry.clock.encode(),
                entry.origin
            ));
        }
        out
    }
}

/// The total order resolution maximises over. Built only from fields
/// that never change after a version is written, so every replica ranks
/// the same pair identically no matter what it has seen in between.
fn rank(e: &ReplEntry) -> (u64, &str, u64, &str) {
    (e.clock.total(), &e.origin, e.seq, &e.value)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sync(from: &ReplicatedStore, to: &mut ReplicatedStore) -> usize {
        to.ingest(from.delta_since(&to.digest())).applied_count()
    }

    #[test]
    fn digest_delta_round_trip_converges_two_replicas() {
        let mut a = ReplicatedStore::new("env-a");
        let mut b = ReplicatedStore::new("env-b");
        a.put("org:cn=Tom", "person Tom");
        a.put("info:doc1", "minutes v1");
        b.put("org:cn=Wolfgang", "person Wolfgang");
        assert_eq!(sync(&a, &mut b), 2);
        assert_eq!(sync(&b, &mut a), 1);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.len(), 3);
        assert_eq!(b.get("info:doc1"), Some("minutes v1"));
        // Already-synced: empty deltas.
        assert!(a.delta_since(&b.digest()).is_empty());
    }

    #[test]
    fn causal_fifo_buffers_gaps() {
        let mut a = ReplicatedStore::new("env-a");
        a.put("k1", "v1");
        a.put("k1", "v2");
        a.put("k2", "x");
        let delta = a.delta_since(&BTreeMap::new());
        let mut b = ReplicatedStore::new("env-b");
        // Deliver out of order: seq 3 and 2 first — nothing applies.
        let first = b.ingest(vec![delta[2].clone()]);
        assert_eq!(
            (first.applied_count(), first.buffered, first.stale),
            (0, 1, 0)
        );
        assert_eq!(b.ingest(vec![delta[1].clone()]).applied_count(), 0);
        assert!(b.is_empty());
        // The gap fills: all three apply, in causal order.
        let third = b.ingest(vec![delta[0].clone()]);
        assert_eq!(third.applied_count(), 3);
        assert_eq!(
            third.applied.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![1, 2, 3],
            "applied entries surface in causal order"
        );
        assert_eq!(b.get("k1"), Some("v2"));
        assert_eq!(b.fingerprint(), a.fingerprint());
    }

    #[test]
    fn stale_and_own_origin_updates_are_dropped_not_buffered() {
        let mut a = ReplicatedStore::new("env-a");
        a.put("k", "v");
        let delta = a.delta_since(&BTreeMap::new());
        let mut b = ReplicatedStore::new("env-b");
        assert_eq!(b.ingest(delta.clone()).applied_count(), 1);
        // Re-delivery is stale: dropped, not parked in pending forever.
        let again = b.ingest(delta.clone());
        assert_eq!(
            (again.applied_count(), again.buffered, again.stale),
            (0, 0, 1)
        );
        // A replica never re-applies its own history.
        let own = a.ingest(delta);
        assert_eq!((own.applied_count(), own.stale), (0, 1));
    }

    #[test]
    fn concurrent_writes_resolve_identically_both_ways() {
        let mut a = ReplicatedStore::new("env-a");
        let mut b = ReplicatedStore::new("env-b");
        a.put("shared", "from-a");
        b.put("shared", "from-b");
        // Exchange in opposite orders on each side.
        let da = a.delta_since(&BTreeMap::new());
        let db = b.delta_since(&BTreeMap::new());
        a.ingest(db);
        b.ingest(da);
        assert_eq!(
            a.fingerprint(),
            b.fingerprint(),
            "conflict resolution must be order-independent"
        );
        assert_eq!(a.get("shared"), b.get("shared"));
    }

    #[test]
    fn resolved_conflicts_stay_resolved_after_further_sync() {
        let mut a = ReplicatedStore::new("env-a");
        let mut b = ReplicatedStore::new("env-b");
        let mut c = ReplicatedStore::new("env-c");
        a.put("k", "a1");
        b.put("k", "b1");
        sync(&a, &mut c);
        sync(&b, &mut c);
        sync(&a, &mut b);
        sync(&b, &mut a);
        sync(&c, &mut a);
        sync(&c, &mut b);
        sync(&a, &mut c);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(b.fingerprint(), c.fingerprint());
    }

    #[test]
    fn entry_and_frame_codecs_round_trip() {
        let mut clock = VectorClock::new();
        clock.tick("env-a");
        let entry = ReplEntry {
            key: "info:weird\x1fkey%".into(),
            value: "line1\nline2\x1e".into(),
            clock,
            origin: "env-a".into(),
            seq: 7,
        };
        let decoded = ReplEntry::decode(&entry.encode()).unwrap();
        assert_eq!(decoded, entry);

        let body = encode_delta(std::slice::from_ref(&entry));
        assert_eq!(decode_delta(&body).unwrap(), vec![entry]);
        assert!(decode_delta("garbage").is_err());

        let digest = BTreeMap::from([("env-a".to_owned(), 3u64), ("env-b".to_owned(), 9)]);
        assert_eq!(decode_digest(&encode_digest(&digest)).unwrap(), digest);
        assert!(decode_digest("bad").is_err());
        assert_eq!(decode_digest("").unwrap(), BTreeMap::new());
    }
}
