//! Event-driven federation runtime.
//!
//! Earlier revisions of the federation were *hand-cranked*: a
//! coordinator called `gossip_round()` / `pump()` in a loop, which
//! means every site gossiped in lockstep, offer TTLs only expired when
//! somebody happened to query, and nothing resembled the autonomous
//! channels of RM-ODP's engineering viewpoint. This module folds those
//! three activities — anti-entropy gossip, offer-TTL expiry and
//! delivery pumping — into the kernel's deterministic scheduler
//! ([`cscw_kernel::EventQueue`]): each site owns periodic timers with
//! seeded, jittered phases ([`cscw_kernel::Periodic`]), so a
//! 128-site federation interleaves naturally instead of thundering.
//!
//! Division of labour: the runtime executes *fabric-local* events
//! itself (TTL sweeps, scheduled link state changes) and surfaces the
//! events that need environment machinery — gossip exchanges ride each
//! destination's transport, deliveries land in application inboxes —
//! as [`Pulse`] values from [`FederationRuntime::poll`]. The
//! environment layer (`mocca`) drives `poll` in a loop; no caller ever
//! hand-cranks a round again.
//!
//! Determinism contract: sites are installed in sorted domain order,
//! every phase derives from `(seed, site index)`, and the queue pops
//! in `(time, enqueue-sequence)` order — identical seeds replay
//! bit-for-bit.

use std::collections::BTreeMap;

use cscw_kernel::{EventQueue, Layer, Periodic, Telemetry, Timestamp};
use odp::LinkState;

use crate::fabric::FederationFabric;

/// Default anti-entropy gossip period (250 simulated ms).
pub const DEFAULT_GOSSIP_PERIOD_MICROS: u64 = 250_000;
/// Default delivery-pump period (50 simulated ms).
pub const DEFAULT_PUMP_PERIOD_MICROS: u64 = 50_000;
/// Default offer-TTL sweep period (1 simulated second).
pub const DEFAULT_TTL_SWEEP_PERIOD_MICROS: u64 = 1_000_000;

/// Periods and seed for a [`FederationRuntime`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuntimeConfig {
    /// Seed all jittered phases derive from.
    pub seed: u64,
    /// Per-site anti-entropy gossip period, in microseconds.
    pub gossip_period_micros: u64,
    /// Per-site delivery-pump period, in microseconds.
    pub pump_period_micros: u64,
    /// Fabric-wide offer-TTL sweep period, in microseconds.
    pub ttl_sweep_period_micros: u64,
}

impl RuntimeConfig {
    /// Default periods under `seed`.
    pub fn seeded(seed: u64) -> Self {
        RuntimeConfig {
            seed,
            gossip_period_micros: DEFAULT_GOSSIP_PERIOD_MICROS,
            pump_period_micros: DEFAULT_PUMP_PERIOD_MICROS,
            ttl_sweep_period_micros: DEFAULT_TTL_SWEEP_PERIOD_MICROS,
        }
    }

    /// Overrides the gossip period.
    pub fn with_gossip_period_micros(mut self, micros: u64) -> Self {
        self.gossip_period_micros = micros;
        self
    }

    /// Overrides the pump period.
    pub fn with_pump_period_micros(mut self, micros: u64) -> Self {
        self.pump_period_micros = micros;
        self
    }

    /// Overrides the TTL sweep period.
    pub fn with_ttl_sweep_period_micros(mut self, micros: u64) -> Self {
        self.ttl_sweep_period_micros = micros;
        self
    }
}

/// A scheduled federation event. `GossipPulse` / `PumpInbound` need
/// environment machinery and surface as [`Pulse`]s; `TtlSweep` /
/// `LinkChange` are fabric-local and the runtime executes them itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FedEvent {
    /// A site's anti-entropy gossip timer fired.
    GossipPulse {
        /// The gossiping domain.
        site: String,
    },
    /// A site's delivery-pump timer fired.
    PumpInbound {
        /// The draining domain.
        site: String,
    },
    /// The fabric-wide offer-TTL sweep timer fired.
    TtlSweep,
    /// A scheduled link health transition (partition or heal).
    LinkChange {
        /// Link source domain.
        from: String,
        /// Link destination domain.
        to: String,
        /// The state the link transitions to.
        state: LinkState,
    },
}

/// An event the environment driver must act on: the runtime has no
/// access to transports or application inboxes, so it hands these up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Pulse {
    /// Run one anti-entropy exchange from `site` over its up
    /// out-links.
    Gossip {
        /// The gossiping domain.
        site: String,
    },
    /// Drain `site`'s queued inbound remote deliveries.
    Pump {
        /// The draining domain.
        site: String,
    },
}

/// The scheduler driving a federation: per-site periodic gossip and
/// pump timers plus a fabric-wide TTL sweep, all on one deterministic
/// event queue.
#[derive(Debug)]
pub struct FederationRuntime {
    fabric: FederationFabric,
    queue: EventQueue<FedEvent>,
    config: RuntimeConfig,
    gossip: BTreeMap<String, Periodic>,
    pump: BTreeMap<String, Periodic>,
    gossip_deferrals: BTreeMap<String, u32>,
    ttl_sweep: Periodic,
    installed: u64,
    telemetry: Telemetry,
}

impl FederationRuntime {
    /// A runtime over `fabric`'s current domains (installed in sorted
    /// domain order, so phase assignment is deterministic).
    pub fn new(fabric: FederationFabric, config: RuntimeConfig) -> Self {
        let telemetry = fabric.telemetry();
        let ttl_sweep = Periodic::every(config.ttl_sweep_period_micros);
        let mut rt = FederationRuntime {
            fabric: fabric.clone(),
            queue: EventQueue::new(),
            config,
            gossip: BTreeMap::new(),
            pump: BTreeMap::new(),
            gossip_deferrals: BTreeMap::new(),
            ttl_sweep,
            installed: 0,
            telemetry,
        };
        rt.queue
            .schedule(rt.ttl_sweep.next_after(Timestamp::ZERO), FedEvent::TtlSweep);
        for domain in fabric.domains() {
            rt.install_site(&domain);
        }
        rt
    }

    /// Installs periodic gossip and pump timers for a site that joined
    /// the fabric after construction. Phases derive from `(seed,
    /// install index)`; installing sites in a deterministic order
    /// keeps runs reproducible. Reinstalling an existing site is a
    /// no-op.
    pub fn install_site(&mut self, domain: &str) {
        if self.gossip.contains_key(domain) {
            return;
        }
        let index = self.installed;
        self.installed += 1;
        let gossip = Periodic::jittered(self.config.gossip_period_micros, self.config.seed, index);
        // Decorrelate the pump phase from the gossip phase so the two
        // timers do not ride the same grid.
        let pump = Periodic::jittered(
            self.config.pump_period_micros,
            self.config.seed ^ 0x5055_4D50, // "PUMP"
            index,
        );
        let now = self.queue.now();
        self.queue.schedule(
            gossip.first().max(now),
            FedEvent::GossipPulse {
                site: domain.to_owned(),
            },
        );
        self.queue.schedule(
            pump.first().max(now),
            FedEvent::PumpInbound {
                site: domain.to_owned(),
            },
        );
        self.gossip.insert(domain.to_owned(), gossip);
        self.pump.insert(domain.to_owned(), pump);
        self.telemetry
            .incr(Layer::Federation, "federation.runtime.site");
    }

    /// Schedules a link health transition at absolute time `at` —
    /// partitions and heals become first-class events instead of
    /// out-of-band pokes between rounds.
    pub fn schedule_link_change(&mut self, at: Timestamp, from: &str, to: &str, state: LinkState) {
        self.queue.schedule(
            at,
            FedEvent::LinkChange {
                from: from.to_owned(),
                to: to.to_owned(),
                state,
            },
        );
    }

    /// The runtime's current simulated time (time of the last event).
    pub fn now(&self) -> Timestamp {
        self.queue.now()
    }

    /// The fabric this runtime drives.
    pub fn fabric(&self) -> &FederationFabric {
        &self.fabric
    }

    /// The runtime's config.
    pub fn config(&self) -> RuntimeConfig {
        self.config
    }

    /// Backpressure hook: swallow `site`'s next `pulses` gossip pulses
    /// instead of surfacing them from [`FederationRuntime::poll`]. The
    /// periodic timer keeps ticking (phases stay deterministic); the
    /// pulses are simply not handed to the environment, so a congested
    /// transport gets `pulses` gossip periods of quiet. Calls
    /// accumulate.
    pub fn defer_gossip(&mut self, site: &str, pulses: u32) {
        if pulses == 0 {
            return;
        }
        *self.gossip_deferrals.entry(site.to_owned()).or_insert(0) += pulses;
    }

    /// Advances through scheduled events up to `deadline`. Fabric-local
    /// events (TTL sweeps, link changes) execute internally; the first
    /// event needing the environment layer returns as a [`Pulse`] with
    /// its fire time. Returns `None` once no pulse is due by
    /// `deadline`, leaving the clock at `deadline`.
    pub fn poll(&mut self, deadline: Timestamp) -> Option<(Timestamp, Pulse)> {
        loop {
            match self.queue.peek_at() {
                Some(at) if at <= deadline => {}
                _ => {
                    self.queue.advance_to(deadline);
                    return None;
                }
            }
            let (at, event) = self.queue.pop()?;
            match event {
                FedEvent::GossipPulse { site } => {
                    if let Some(p) = self.gossip.get(&site) {
                        self.queue.schedule(
                            p.next_after(at),
                            FedEvent::GossipPulse { site: site.clone() },
                        );
                    }
                    if let Some(left) = self.gossip_deferrals.get_mut(&site) {
                        *left -= 1;
                        if *left == 0 {
                            self.gossip_deferrals.remove(&site);
                        }
                        self.telemetry
                            .incr(Layer::Federation, "federation.runtime.gossip.deferred");
                        continue;
                    }
                    self.telemetry
                        .incr(Layer::Federation, "federation.runtime.gossip.pulse");
                    return Some((at, Pulse::Gossip { site }));
                }
                FedEvent::PumpInbound { site } => {
                    if let Some(p) = self.pump.get(&site) {
                        self.queue.schedule(
                            p.next_after(at),
                            FedEvent::PumpInbound { site: site.clone() },
                        );
                    }
                    self.telemetry
                        .incr(Layer::Federation, "federation.runtime.pump.pulse");
                    return Some((at, Pulse::Pump { site }));
                }
                FedEvent::TtlSweep => {
                    self.queue
                        .schedule(self.ttl_sweep.next_after(at), FedEvent::TtlSweep);
                    self.fabric.expire_offer_cache(at);
                    self.telemetry
                        .incr(Layer::Federation, "federation.runtime.ttl.sweep");
                }
                FedEvent::LinkChange { from, to, state } => {
                    self.fabric.set_link_state(&from, &to, state);
                    self.telemetry
                        .incr(Layer::Federation, "federation.runtime.link.change");
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::FederationPort;

    fn three_site_fabric() -> FederationFabric {
        let fabric = FederationFabric::new();
        for d in ["site-a", "site-b", "site-c"] {
            fabric.join(d);
        }
        fabric.link_bidi("site-a", "site-b");
        fabric.link_bidi("site-b", "site-c");
        fabric
    }

    fn pulse_trace(seed: u64, until_micros: u64) -> Vec<(u64, Pulse)> {
        let mut rt = FederationRuntime::new(three_site_fabric(), RuntimeConfig::seeded(seed));
        let deadline = Timestamp::from_micros(until_micros);
        let mut trace = Vec::new();
        while let Some((at, pulse)) = rt.poll(deadline) {
            trace.push((at.as_micros(), pulse));
        }
        trace
    }

    #[test]
    fn pulse_schedule_is_deterministic_per_seed() {
        let a = pulse_trace(1, 2_000_000);
        let b = pulse_trace(1, 2_000_000);
        assert_eq!(a, b, "same seed must replay the same schedule");
        assert_ne!(
            a,
            pulse_trace(2, 2_000_000),
            "different seeds must differ in phase"
        );
        // Every site both gossips and pumps within the window.
        for site in ["site-a", "site-b", "site-c"] {
            let s = site.to_owned();
            assert!(a
                .iter()
                .any(|(_, p)| *p == Pulse::Gossip { site: s.clone() }));
            assert!(a.iter().any(|(_, p)| *p == Pulse::Pump { site: s.clone() }));
        }
    }

    #[test]
    fn jittered_phases_spread_sites_within_a_period() {
        let trace = pulse_trace(7, DEFAULT_GOSSIP_PERIOD_MICROS);
        let gossip_times: Vec<u64> = trace
            .iter()
            .filter(|(_, p)| matches!(p, Pulse::Gossip { .. }))
            .map(|(at, _)| *at)
            .collect();
        assert_eq!(gossip_times.len(), 3, "each site gossips once per period");
        let distinct: std::collections::BTreeSet<u64> = gossip_times.into_iter().collect();
        assert!(distinct.len() > 1, "sites must not fire in lockstep");
    }

    #[test]
    fn ttl_sweep_expires_cached_offers_without_any_query() {
        let fabric = FederationFabric::new();
        let mut a = fabric.join("site-a");
        let mut b = fabric.join("site-b");
        fabric.link_bidi("site-a", "site-b");
        b.advertise_app("com");
        a.resolve_app("com", Timestamp::ZERO)
            .expect("federated resolve");
        assert_eq!(fabric.offer_cache_len(), 1);

        let mut rt = FederationRuntime::new(fabric.clone(), RuntimeConfig::seeded(1));
        // Drain pulses past the 5s default TTL; no resolve_app call
        // happens anywhere in this window.
        while rt.poll(Timestamp::from_micros(6_000_000)).is_some() {}
        assert_eq!(
            fabric.offer_cache_len(),
            0,
            "sweep must expire the offer with no query"
        );
        assert_eq!(
            fabric
                .telemetry()
                .counter(Layer::Federation, "federation.ttl.expired"),
            1
        );
    }

    #[test]
    fn scheduled_link_changes_apply_at_their_time() {
        let fabric = three_site_fabric();
        let mut rt = FederationRuntime::new(fabric.clone(), RuntimeConfig::seeded(1));
        rt.schedule_link_change(
            Timestamp::from_micros(100_000),
            "site-a",
            "site-b",
            LinkState::Down,
        );
        rt.schedule_link_change(
            Timestamp::from_micros(300_000),
            "site-a",
            "site-b",
            LinkState::Up,
        );
        let link_state = |fabric: &FederationFabric| {
            fabric
                .links()
                .iter()
                .find(|(f, t, _)| f == "site-a" && t == "site-b")
                .map(|(_, _, s)| *s)
                .expect("link exists")
        };
        while rt.poll(Timestamp::from_micros(50_000)).is_some() {}
        assert_eq!(link_state(&fabric), LinkState::Up);
        while rt.poll(Timestamp::from_micros(200_000)).is_some() {}
        assert_eq!(link_state(&fabric), LinkState::Down);
        while rt.poll(Timestamp::from_micros(400_000)).is_some() {}
        assert_eq!(link_state(&fabric), LinkState::Up);
    }

    #[test]
    fn deferred_gossip_pulses_are_swallowed_then_resume() {
        let fabric = three_site_fabric();
        let mut rt = FederationRuntime::new(fabric.clone(), RuntimeConfig::seeded(5));
        rt.defer_gossip("site-a", 2);
        let deadline = Timestamp::from_micros(2_000_000);
        let mut site_a_gossips = Vec::new();
        while let Some((at, pulse)) = rt.poll(deadline) {
            if let Pulse::Gossip { site } = pulse {
                if site == "site-a" {
                    site_a_gossips.push(at.as_micros());
                }
            }
        }
        // ~8 gossip periods fit in 2s; the first two site-a pulses are
        // swallowed, so the first surfaced one fires in period 3+.
        assert!(!site_a_gossips.is_empty(), "gossip must resume");
        assert!(
            site_a_gossips[0] > 2 * DEFAULT_GOSSIP_PERIOD_MICROS,
            "first surfaced pulse ({}) must come after the two deferred periods",
            site_a_gossips[0]
        );
        assert_eq!(
            fabric
                .telemetry()
                .counter(Layer::Federation, "federation.runtime.gossip.deferred"),
            2
        );
    }

    #[test]
    fn gossip_pulses_drive_replica_convergence() {
        let fabric = three_site_fabric();
        let mut a = fabric.join("site-a");
        let mut c = fabric.join("site-c");
        a.publish_entry("org:cn=Tom", "person Tom");
        c.publish_entry("org:cn=Wolfgang", "person Wolfgang");

        let mut rt = FederationRuntime::new(fabric.clone(), RuntimeConfig::seeded(3));
        let deadline = Timestamp::from_micros(3_000_000);
        while let Some((_, pulse)) = rt.poll(deadline) {
            if let Pulse::Gossip { site } = pulse {
                // Stand-in for the environment driver: push this
                // site's delta over each up out-link.
                for (from, to, state) in rt.fabric().links() {
                    if from != site || state != LinkState::Up {
                        continue;
                    }
                    let digest = rt.fabric().digest_frame(&to).expect("digest");
                    let delta = rt.fabric().delta_frame(&from, &digest).expect("delta");
                    rt.fabric().ingest_delta(&to, &delta).expect("ingest");
                }
            }
        }
        let fp = fabric.replica_fingerprint("site-a");
        assert!(!fp.is_empty());
        assert_eq!(fp, fabric.replica_fingerprint("site-b"));
        assert_eq!(fp, fabric.replica_fingerprint("site-c"));
    }
}
