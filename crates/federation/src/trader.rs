//! Trader interworking across federation domains.
//!
//! Each environment's platform trader only knows its own offers. The
//! [`FederatedTrader`] links trading *domains* (one per environment):
//! a query that misses locally is forwarded across up links
//! breadth-first, bounded by a hop budget and a visited set
//! ([`odp::QueryScope`]), and hits are cached with a TTL so repeat
//! resolutions stop paying the federated walk until the cache entry
//! goes stale.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use cscw_kernel::Timestamp;
use odp::{LinkState, QueryScope, TraderLink};

use crate::error::FederationError;

/// Where a resolution's answer came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResolutionSource {
    /// The querying domain itself advertises the application.
    Local,
    /// A fresh cache entry answered without a federated walk.
    Cache,
    /// A federated walk across links found it.
    Federated,
}

/// The answer to "which environment hosts this application?".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Resolution {
    /// The hosting domain.
    pub domain: String,
    /// Where the answer came from.
    pub source: ResolutionSource,
    /// True when at least one link was down during the walk — the
    /// answer may be incomplete (local-only / partial coverage).
    pub degraded: bool,
}

#[derive(Debug, Clone)]
struct CacheSlot {
    domain: String,
    cached_at: Timestamp,
}

/// Links + offer cache for federated application resolution.
#[derive(Debug, Clone)]
pub struct FederatedTrader {
    links: Vec<TraderLink>,
    cache: BTreeMap<String, CacheSlot>,
    hop_limit: u8,
    ttl_micros: u64,
}

/// Default hop budget: enough for small federations, small enough that
/// a pathological link graph stays cheap.
pub const DEFAULT_HOP_LIMIT: u8 = 4;

/// Default remote-offer cache TTL (5 simulated seconds).
pub const DEFAULT_TTL_MICROS: u64 = 5_000_000;

impl Default for FederatedTrader {
    fn default() -> Self {
        Self::new()
    }
}

impl FederatedTrader {
    /// A trader with default hop budget and TTL.
    pub fn new() -> Self {
        FederatedTrader {
            links: Vec::new(),
            cache: BTreeMap::new(),
            hop_limit: DEFAULT_HOP_LIMIT,
            ttl_micros: DEFAULT_TTL_MICROS,
        }
    }

    /// Overrides the hop budget.
    pub fn with_hop_limit(mut self, hops: u8) -> Self {
        self.hop_limit = hops;
        self
    }

    /// Overrides the remote-offer TTL.
    pub fn with_ttl_micros(mut self, micros: u64) -> Self {
        self.ttl_micros = micros;
        self
    }

    /// The configured hop budget.
    pub fn hop_limit(&self) -> u8 {
        self.hop_limit
    }

    /// Adds a directed link.
    pub fn link(&mut self, from: impl Into<String>, to: impl Into<String>) {
        self.links.push(TraderLink::new(from, to));
    }

    /// Sets one directed link's health. Returns false when no such link
    /// exists.
    pub fn set_link_state(&mut self, from: &str, to: &str, state: LinkState) -> bool {
        let mut found = false;
        for link in &mut self.links {
            if link.from == from && link.to == to {
                link.state = state;
                found = true;
            }
        }
        found
    }

    /// The links, for inspection.
    pub fn links(&self) -> &[TraderLink] {
        &self.links
    }

    /// Cached entries currently held (fresh or stale).
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Drops cache entries older than the TTL at `now`; returns how
    /// many were dropped.
    pub fn expire_cache(&mut self, now: Timestamp) -> usize {
        let ttl = self.ttl_micros;
        let before = self.cache.len();
        self.cache
            .retain(|_, slot| now.micros_since(slot.cached_at) < ttl);
        before - self.cache.len()
    }

    /// Resolves the domain advertising `app`, querying `advertised`
    /// (domain → advertised application names) from `from` across up
    /// links.
    ///
    /// # Errors
    ///
    /// * [`FederationError::UnknownApplication`] — nothing reachable
    ///   advertises it and every link crossed was up.
    /// * [`FederationError::Partitioned`] — nothing reachable advertises
    ///   it, but at least one down link pruned the walk: the answer is
    ///   only authoritative for the reachable fragment.
    pub fn resolve(
        &mut self,
        from: &str,
        app: &str,
        advertised: &BTreeMap<String, BTreeSet<String>>,
        now: Timestamp,
    ) -> Result<Resolution, FederationError> {
        // Local first: federation must never shadow the home domain.
        if advertised.get(from).is_some_and(|apps| apps.contains(app)) {
            return Ok(Resolution {
                domain: from.to_owned(),
                source: ResolutionSource::Local,
                degraded: false,
            });
        }
        // Fresh cache hit?
        if let Some(slot) = self.cache.get(app) {
            if now.micros_since(slot.cached_at) < self.ttl_micros {
                return Ok(Resolution {
                    domain: slot.domain.clone(),
                    source: ResolutionSource::Cache,
                    degraded: false,
                });
            }
            self.cache.remove(app);
        }
        // Federated walk: breadth-first over up links, hop-budgeted,
        // loop-suppressed.
        let mut scope = QueryScope::with_hop_limit(self.hop_limit);
        scope
            .enter(from)
            .map_err(|_| FederationError::QueryLoop(from.to_owned()))?;
        let mut degraded = false;
        let mut queue = VecDeque::from([from.to_owned()]);
        while let Some(here) = queue.pop_front() {
            if advertised.get(&here).is_some_and(|apps| apps.contains(app)) {
                self.cache.insert(
                    app.to_owned(),
                    CacheSlot {
                        domain: here.clone(),
                        cached_at: now,
                    },
                );
                return Ok(Resolution {
                    domain: here,
                    source: ResolutionSource::Federated,
                    degraded,
                });
            }
            for link in self.links.iter().filter(|l| l.from == here) {
                if !link.is_up() {
                    degraded = true;
                    continue;
                }
                if scope.visited().contains(&link.to) {
                    continue; // loop suppression: each domain once
                }
                if !scope.descend() {
                    // Budget exhausted: stop expanding, finish scanning
                    // what is already queued.
                    continue;
                }
                scope
                    .enter(&link.to)
                    .map_err(|_| FederationError::QueryLoop(link.to.clone()))?;
                queue.push_back(link.to.clone());
            }
        }
        if degraded {
            Err(FederationError::Partitioned(app.to_owned()))
        } else {
            Err(FederationError::UnknownApplication(app.to_owned()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ads(pairs: &[(&str, &[&str])]) -> BTreeMap<String, BTreeSet<String>> {
        pairs
            .iter()
            .map(|(d, apps)| {
                (
                    (*d).to_owned(),
                    apps.iter().map(|a| (*a).to_owned()).collect(),
                )
            })
            .collect()
    }

    #[test]
    fn local_wins_without_a_walk() {
        let mut t = FederatedTrader::new();
        t.link("a", "b");
        let advertised = ads(&[("a", &["editor"]), ("b", &["editor"])]);
        let r = t
            .resolve("a", "editor", &advertised, Timestamp::ZERO)
            .unwrap();
        assert_eq!(r.domain, "a");
        assert_eq!(r.source, ResolutionSource::Local);
    }

    #[test]
    fn federated_hit_is_cached_until_ttl() {
        let mut t = FederatedTrader::new().with_ttl_micros(100);
        t.link("a", "b");
        let advertised = ads(&[("a", &[]), ("b", &["com"])]);
        let r = t.resolve("a", "com", &advertised, Timestamp::ZERO).unwrap();
        assert_eq!(
            (r.domain.as_str(), r.source),
            ("b", ResolutionSource::Federated)
        );
        // Second query: cache, even if the link has gone down.
        t.set_link_state("a", "b", LinkState::Down);
        let r = t
            .resolve("a", "com", &advertised, Timestamp::from_micros(50))
            .unwrap();
        assert_eq!(
            (r.domain.as_str(), r.source),
            ("b", ResolutionSource::Cache)
        );
        // Past the TTL the stale entry expires and the walk (now
        // partitioned) degrades.
        let err = t
            .resolve("a", "com", &advertised, Timestamp::from_micros(200))
            .unwrap_err();
        assert!(matches!(err, FederationError::Partitioned(_)));
        // The stale resolve above already evicted the entry.
        assert_eq!(t.expire_cache(Timestamp::from_micros(200)), 0);
        assert_eq!(t.cache_len(), 0);
    }

    #[test]
    fn cycles_terminate_via_visited_set() {
        let mut t = FederatedTrader::new();
        t.link("a", "b");
        t.link("b", "c");
        t.link("c", "a"); // A→B→C→A
        let advertised = ads(&[("a", &[]), ("b", &[]), ("c", &["com"])]);
        let r = t.resolve("a", "com", &advertised, Timestamp::ZERO).unwrap();
        assert_eq!(r.domain, "c");
        // And an unmatched query on the same cycle still terminates.
        let err = t
            .resolve("a", "ghost", &advertised, Timestamp::ZERO)
            .unwrap_err();
        assert!(matches!(err, FederationError::UnknownApplication(_)));
    }

    #[test]
    fn hop_budget_bounds_chain_depth() {
        let mut t = FederatedTrader::new().with_hop_limit(2);
        t.link("a", "b");
        t.link("b", "c");
        t.link("c", "d");
        let advertised = ads(&[("a", &[]), ("b", &[]), ("c", &[]), ("d", &["far"])]);
        // d is 3 hops out; budget is 2.
        let err = t
            .resolve("a", "far", &advertised, Timestamp::ZERO)
            .unwrap_err();
        assert!(matches!(err, FederationError::UnknownApplication(_)));
        // c is 2 hops out: reachable.
        let advertised = ads(&[("a", &[]), ("b", &[]), ("c", &["near"]), ("d", &[])]);
        let r = t
            .resolve("a", "near", &advertised, Timestamp::ZERO)
            .unwrap();
        assert_eq!(r.domain, "c");
    }

    #[test]
    fn down_links_degrade_to_local_only() {
        let mut t = FederatedTrader::new();
        t.link("a", "b");
        t.set_link_state("a", "b", LinkState::Down);
        let advertised = ads(&[("a", &["home"]), ("b", &["com"])]);
        // Local still resolves.
        let r = t
            .resolve("a", "home", &advertised, Timestamp::ZERO)
            .unwrap();
        assert_eq!(r.source, ResolutionSource::Local);
        // Remote is behind the partition: transient, flagged.
        let err = t
            .resolve("a", "com", &advertised, Timestamp::ZERO)
            .unwrap_err();
        assert!(matches!(err, FederationError::Partitioned(_)));
        // Heal: resolves federated again.
        assert!(t.set_link_state("a", "b", LinkState::Up));
        let r = t.resolve("a", "com", &advertised, Timestamp::ZERO).unwrap();
        assert_eq!(r.source, ResolutionSource::Federated);
    }
}
