//! Federated awareness: standing queries push organisational change
//! across sites.
//!
//! The paper's motivating scenario for shared organisational context
//! is *awareness*: a user at one autonomously-managed site should
//! learn that the cooperative arrangement changed — someone joined the
//! project, a role moved — without polling the other site's
//! directory. This module stages that scenario over the two-site
//! federation from [`sites`](crate::sites): a subscriber at
//! `site-async` registers a standing query over the *replicated
//! knowledge*, the project membership changes at `site-sync`, gossip
//! carries the replica update, and the subscriber receives a push
//! delta — with zero re-scans of the knowledge base anywhere.

use cscw_directory::Dn;
use cscw_query::{QueryDelta, SubscriptionId};
use mocca::org::{Person, Project, RelationKind};

use crate::sites::two_site_federation;
use crate::GroupwareError;

/// The knowledge query the asynchronous site's subscriber registers:
/// every replicated organisational entry that carries membership edges.
pub const AWARENESS_QUERY: &str =
    r#"from knowledge key prefix "org:" and value matches "*memberof*""#;

/// The entry query a local subscriber at the synchronous site
/// registers: people working on the staged project.
pub const PROJECT_QUERY: &str = r#"class = person and works-on "cn=odp-paper""#;

/// What the federated awareness demo observed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AwarenessReport {
    /// The remote subscription at `site-async`.
    pub subscription: SubscriptionId,
    /// Members of the awareness result set right after subscribing
    /// (the staged model starts with one project member).
    pub initial_matches: usize,
    /// Deltas the `site-async` subscriber received after the
    /// membership change at `site-sync`, rendered `kind id`.
    pub awareness_deltas: Vec<String>,
    /// Deltas the local `site-sync` project subscriber received for
    /// the same change, rendered `kind id`.
    pub local_deltas: Vec<String>,
    /// Full re-scans the `site-async` registry performed — the demo's
    /// point is that this stays `0`.
    pub remote_rescans: u64,
    /// Did the sites' replicated knowledge converge?
    pub converged: bool,
}

fn dn(s: &str) -> Result<Dn, GroupwareError> {
    s.parse()
        .map_err(|e: cscw_directory::DirectoryError| GroupwareError::Mocca(e.into()))
}

fn render(deltas: Vec<(SubscriptionId, QueryDelta)>) -> Vec<String> {
    deltas.into_iter().map(|(_, d)| d.to_string()).collect()
}

/// Runs the federated awareness scenario on a fresh
/// [`two_site_federation`]:
///
/// 1. `site-sync` stages an organisational model — two people and the
///    `cn=odp-paper` project, with one member — and publishes it into
///    the knowledge base (replicated as `org:` entries).
/// 2. Gossip converges both sites.
/// 3. A subscriber at `site-async` registers [`AWARENESS_QUERY`] over
///    the replicated knowledge; a subscriber at `site-sync` registers
///    [`PROJECT_QUERY`] over the directory.
/// 4. The second person joins the project at `site-sync` and the model
///    is republished: the local subscriber is notified from the DIT
///    change, gossip ships the rewritten replica entry, and the
///    remote subscriber is notified from the ingest — no re-scans.
///
/// # Errors
///
/// Population errors, and [`GroupwareError::Mocca`] on publish,
/// subscribe or gossip failures.
pub fn awareness_demo() -> Result<AwarenessReport, GroupwareError> {
    let mut fed = two_site_federation()?;
    let tom = dn("c=UK,o=Lancaster,cn=Tom Rodden")?;
    let wolfgang = dn("c=DE,o=GMD,cn=Wolfgang Prinz")?;
    let project = dn("cn=odp-paper")?;

    // 1. Stage and publish the model at the synchronous site.
    {
        let env = fed
            .env_mut("site-sync")
            .ok_or_else(|| GroupwareError::UnknownApp("site-sync".to_owned()))?;
        {
            let org = env.org();
            let mut org = org.write();
            org.add_person(Person::new(tom.clone(), "Tom Rodden"));
            org.add_person(Person::new(wolfgang.clone(), "Wolfgang Prinz"));
            org.add_project(Project::new(project.clone(), "odp-paper"));
            org.relate(&tom, RelationKind::MemberOf, &project)
                .map_err(GroupwareError::Mocca)?;
        }
        env.publish_knowledge()?;
    }

    // 2. Converge the replicas.
    fed.run_until_converged(1, 60_000_000)?;

    // 3. Subscribe on both sides.
    let remote_sub = {
        let env = fed
            .env_mut("site-async")
            .ok_or_else(|| GroupwareError::UnknownApp("site-async".to_owned()))?;
        let id = env.subscribe(AWARENESS_QUERY)?;
        // The prime's initial Added set is not "awareness" yet.
        env.take_query_deltas();
        id
    };
    let initial_matches = fed
        .env("site-async")
        .and_then(|env| env.queries().matches(remote_sub))
        .map(|set| set.len())
        .unwrap_or(0);
    let local_sub = {
        let env = fed
            .env_mut("site-sync")
            .ok_or_else(|| GroupwareError::UnknownApp("site-sync".to_owned()))?;
        let id = env.subscribe(PROJECT_QUERY)?;
        env.take_query_deltas();
        id
    };

    // 4. Wolfgang joins the project; republish and converge.
    {
        let env = fed
            .env_mut("site-sync")
            .ok_or_else(|| GroupwareError::UnknownApp("site-sync".to_owned()))?;
        {
            let org = env.org();
            let mut org = org.write();
            org.relate(&wolfgang, RelationKind::MemberOf, &project)
                .map_err(GroupwareError::Mocca)?;
        }
        env.publish_knowledge()?;
    }
    let converged = fed.run_until_converged(1, 60_000_000)?.converged;

    let local_deltas = fed
        .env_mut("site-sync")
        .map(|env| {
            render(
                env.take_query_deltas()
                    .into_iter()
                    .filter(|(id, _)| *id == local_sub)
                    .collect(),
            )
        })
        .unwrap_or_default();
    let (awareness_deltas, remote_rescans) = match fed.env_mut("site-async") {
        Some(env) => (render(env.take_query_deltas()), env.queries().rescans()),
        None => (Vec::new(), 0),
    };
    Ok(AwarenessReport {
        subscription: remote_sub,
        initial_matches,
        awareness_deltas,
        local_deltas,
        remote_rescans,
        converged,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn membership_change_pushes_a_delta_across_sites_without_rescans() {
        let report = awareness_demo().unwrap();
        assert!(report.converged, "replicas must converge");
        assert_eq!(
            report.initial_matches, 1,
            "only Tom carries membership edges at subscribe time"
        );
        // The rewritten replica entry for Wolfgang arrives as a push.
        assert!(
            report
                .awareness_deltas
                .iter()
                .any(|d| d.starts_with("added") && d.contains("Wolfgang")),
            "remote subscriber must learn of the new member: {:?}",
            report.awareness_deltas
        );
        // The local project subscriber saw the same change from the
        // DIT stream.
        assert!(
            report
                .local_deltas
                .iter()
                .any(|d| d.starts_with("added") && d.contains("Wolfgang")),
            "local subscriber must see the project join: {:?}",
            report.local_deltas
        );
        assert_eq!(report.remote_rescans, 0, "awareness must be scan-free");
    }

    #[test]
    fn demo_is_deterministic() {
        assert_eq!(awareness_demo().unwrap(), awareness_demo().unwrap());
    }
}
