//! Computer conferencing (COM-like).
//!
//! The paper's *different times / different places* quadrant: "the
//! majority of asynchronous systems are based around either message
//! systems or computer conferencing systems" citing Palme's COM (§2).
//!
//! A [`BbsServer`] hosts named conferences of threaded entries. Posts
//! arrive over the simulated network; subscribers are notified through
//! the X.400 substrate and read the conference later — nothing requires
//! simultaneous presence.

use cscw_directory::Dn;
use cscw_kernel::Timestamp;
use cscw_messaging::net::{Message, Node, NodeCtx, NodeId, Payload, Sim};
use cscw_messaging::{Envelope, Ipm, MtsPdu, OrAddress};
use serde::{Deserialize, Serialize};

use crate::GroupwareError;

/// One entry in a conference.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BbsEntry {
    /// Entry id, unique within the server.
    pub id: u64,
    /// The conference it belongs to.
    pub conference: String,
    /// Author.
    pub author: Dn,
    /// Subject line.
    pub subject: String,
    /// Body text.
    pub text: String,
    /// Threading: the entry this replies to.
    pub in_reply_to: Option<u64>,
    /// When the server accepted it, in platform time — the entry
    /// outlives any particular network run, so it carries the
    /// kernel's neutral instant type rather than a net-layer one.
    pub at: Timestamp,
}

/// Commands sent to the BBS over the network.
#[derive(Debug)]
pub enum BbsCmd {
    /// Create a conference (idempotent).
    CreateConference {
        /// Conference name.
        name: String,
    },
    /// Post an entry.
    Post {
        /// Target conference.
        conference: String,
        /// Author.
        author: Dn,
        /// Subject.
        subject: String,
        /// Body.
        text: String,
        /// Reply threading.
        in_reply_to: Option<u64>,
    },
    /// Subscribe a mailbox to notifications for a conference.
    Subscribe {
        /// Conference name.
        conference: String,
        /// Where to send notifications.
        mailbox: OrAddress,
    },
}

/// The conferencing server node.
#[derive(Debug)]
pub struct BbsServer {
    /// The server's own originator address for notifications.
    address: OrAddress,
    /// Its home MTA for outgoing notifications.
    mta: NodeId,
    conferences: Vec<String>,
    entries: Vec<BbsEntry>,
    subscriptions: Vec<(String, OrAddress)>,
    next_id: u64,
    next_msg_id: u64,
    rejected_posts: u64,
}

impl BbsServer {
    /// Creates a server that notifies through `mta` as `address`.
    pub fn new(address: OrAddress, mta: NodeId) -> Self {
        BbsServer {
            address,
            mta,
            conferences: Vec::new(),
            entries: Vec::new(),
            subscriptions: Vec::new(),
            next_id: 0,
            next_msg_id: 0,
            rejected_posts: 0,
        }
    }

    /// The entries of a conference, in arrival order.
    pub fn conference(&self, name: &str) -> Vec<&BbsEntry> {
        self.entries
            .iter()
            .filter(|e| e.conference == name)
            .collect()
    }

    /// All conference names.
    pub fn conferences(&self) -> &[String] {
        &self.conferences
    }

    /// The reply thread rooted at an entry (depth-first, children in
    /// arrival order).
    pub fn thread(&self, root: u64) -> Vec<&BbsEntry> {
        let mut out = Vec::new();
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            if let Some(entry) = self.entries.iter().find(|e| e.id == id) {
                out.push(entry);
                // Push children in reverse so the earliest pops first.
                let children: Vec<u64> = self
                    .entries
                    .iter()
                    .filter(|e| e.in_reply_to == Some(id))
                    .map(|e| e.id)
                    .collect();
                for child in children.into_iter().rev() {
                    stack.push(child);
                }
            }
        }
        out
    }

    /// Posts rejected (unknown conference / bad reply target).
    pub fn rejected_posts(&self) -> u64 {
        self.rejected_posts
    }

    fn notify(&mut self, ctx: &mut NodeCtx<'_>, entry: &BbsEntry) {
        let recipients: Vec<OrAddress> = self
            .subscriptions
            .iter()
            .filter(|(c, _)| c == &entry.conference)
            .map(|(_, a)| a.clone())
            .collect();
        if recipients.is_empty() {
            return;
        }
        let msg_id = (u64::from(ctx.id().as_raw()) << 40) | self.next_msg_id;
        self.next_msg_id += 1;
        let envelope = Envelope::new(msg_id, self.address.clone(), recipients.clone(), ctx.now());
        let ipm = Ipm::text(
            self.address.clone(),
            recipients[0].clone(),
            &format!("[{}] {}", entry.conference, entry.subject),
            &format!("{} wrote:\n{}", entry.author, entry.text),
        );
        let size = ipm.wire_size();
        ctx.metrics().incr("bbs_notifications");
        ctx.send_sized(
            self.mta,
            Payload::new(MtsPdu::Transfer { envelope, ipm }),
            size,
        );
    }
}

impl Node for BbsServer {
    fn on_message(&mut self, ctx: &mut NodeCtx<'_>, msg: Message) {
        let Ok(cmd) = msg.payload.downcast::<BbsCmd>() else {
            return;
        };
        match cmd {
            BbsCmd::CreateConference { name } => {
                if !self.conferences.contains(&name) {
                    self.conferences.push(name);
                }
            }
            BbsCmd::Subscribe {
                conference,
                mailbox,
            } => {
                let key = (conference, mailbox);
                if !self.subscriptions.contains(&key) {
                    self.subscriptions.push(key);
                }
            }
            BbsCmd::Post {
                conference,
                author,
                subject,
                text,
                in_reply_to,
            } => {
                let conference_exists = self.conferences.contains(&conference);
                let parent_ok = match in_reply_to {
                    None => true,
                    Some(id) => self
                        .entries
                        .iter()
                        .any(|e| e.id == id && e.conference == conference),
                };
                if !conference_exists || !parent_ok {
                    self.rejected_posts += 1;
                    ctx.metrics().incr("bbs_rejected_posts");
                    return;
                }
                let entry = BbsEntry {
                    id: self.next_id,
                    conference,
                    author,
                    subject,
                    text,
                    in_reply_to,
                    at: ctx.now().into(),
                };
                self.next_id += 1;
                ctx.metrics().incr("bbs_posts");
                self.notify(ctx, &entry);
                self.entries.push(entry);
            }
        }
    }
}

/// A user's handle on the BBS.
#[derive(Debug, Clone)]
pub struct BbsClient {
    /// The user's identity.
    pub who: Dn,
    /// The user's workstation node.
    pub node: NodeId,
    /// The server node.
    pub server: NodeId,
}

impl BbsClient {
    /// Creates a conference.
    pub fn create_conference(&self, sim: &mut Sim, name: &str) {
        sim.send_from(
            self.node,
            self.server,
            Payload::new(BbsCmd::CreateConference {
                name: name.to_owned(),
            }),
            64,
        );
        sim.run_until_idle();
    }

    /// Subscribes a mailbox to a conference's notifications.
    pub fn subscribe(&self, sim: &mut Sim, conference: &str, mailbox: OrAddress) {
        sim.send_from(
            self.node,
            self.server,
            Payload::new(BbsCmd::Subscribe {
                conference: conference.to_owned(),
                mailbox,
            }),
            64,
        );
        sim.run_until_idle();
    }

    /// Posts an entry (fire-and-forget: the author need not wait).
    pub fn post(
        &self,
        sim: &mut Sim,
        conference: &str,
        subject: &str,
        text: &str,
        in_reply_to: Option<u64>,
    ) {
        sim.send_from(
            self.node,
            self.server,
            Payload::new(BbsCmd::Post {
                conference: conference.to_owned(),
                author: self.who.clone(),
                subject: subject.to_owned(),
                text: text.to_owned(),
                in_reply_to,
            }),
            64 + text.len() as u64,
        );
    }

    /// Reads a conference (whenever the user next sits down).
    ///
    /// # Errors
    ///
    /// [`GroupwareError::NoSuchConference`] when absent.
    pub fn read<'a>(
        &self,
        sim: &'a Sim,
        conference: &str,
    ) -> Result<Vec<&'a BbsEntry>, GroupwareError> {
        let server = sim
            .node::<BbsServer>(self.server)
            .ok_or_else(|| GroupwareError::NoSuchConference(conference.to_owned()))?;
        if !server.conferences().iter().any(|c| c == conference) {
            return Err(GroupwareError::NoSuchConference(conference.to_owned()));
        }
        Ok(server.conference(conference))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cscw_messaging::net::{LinkSpec, SimTime, TopologyBuilder};
    use cscw_messaging::MtaNode;

    fn dn(s: &str) -> Dn {
        s.parse().unwrap()
    }

    struct World {
        sim: Sim,
        server: NodeId,
        tom: BbsClient,
        wolfgang: BbsClient,
        wolfgang_mailbox: OrAddress,
        mta: NodeId,
    }

    fn world() -> World {
        let mut b = TopologyBuilder::new();
        let server = b.add_node("bbs");
        let mta = b.add_node("mta");
        let tom_ws = b.add_node("tom-ws");
        let wolfgang_ws = b.add_node("wolfgang-ws");
        b.full_mesh(LinkSpec::wan());
        let mut sim = Sim::new(b.build(), 41);

        let bbs_addr: OrAddress = "C=UK;O=Lancaster;PN=COM Server".parse().unwrap();
        let wolfgang_mailbox: OrAddress = "C=DE;O=GMD;PN=Wolfgang Prinz".parse().unwrap();
        let mut mta_node = MtaNode::new("mta");
        mta_node.register_mailbox(bbs_addr.clone());
        mta_node.register_mailbox(wolfgang_mailbox.clone());
        sim.register(mta, mta_node);
        sim.register(server, BbsServer::new(bbs_addr, mta));

        World {
            sim,
            server,
            tom: BbsClient {
                who: dn("cn=Tom"),
                node: tom_ws,
                server,
            },
            wolfgang: BbsClient {
                who: dn("cn=Wolfgang"),
                node: wolfgang_ws,
                server,
            },
            wolfgang_mailbox,
            mta,
        }
    }

    #[test]
    fn post_and_read_later() {
        let mut w = world();
        w.tom.create_conference(&mut w.sim, "odp-discussion");
        w.tom.post(
            &mut w.sim,
            "odp-discussion",
            "Will ODP help?",
            "We think yes.",
            None,
        );
        // Time passes; Wolfgang reads much later.
        w.sim.run_until(SimTime::from_secs(3600));
        let entries = w.wolfgang.read(&w.sim, "odp-discussion").unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].subject, "Will ODP help?");
        assert!(w.wolfgang.read(&w.sim, "ghost").is_err());
    }

    #[test]
    fn threads_nest_replies() {
        let mut w = world();
        w.tom.create_conference(&mut w.sim, "c");
        w.tom.post(&mut w.sim, "c", "root", "r", None);
        w.sim.run_until_idle();
        w.wolfgang
            .post(&mut w.sim, "c", "re: root", "reply1", Some(0));
        w.sim.run_until_idle();
        w.tom
            .post(&mut w.sim, "c", "re: re: root", "reply2", Some(1));
        w.wolfgang
            .post(&mut w.sim, "c", "re: root (2)", "reply3", Some(0));
        w.sim.run_until_idle();
        let server = w.sim.node::<BbsServer>(w.server).unwrap();
        let thread: Vec<u64> = server.thread(0).iter().map(|e| e.id).collect();
        assert_eq!(
            thread,
            vec![0, 1, 2, 3],
            "depth-first with children in order"
        );
    }

    #[test]
    fn bad_posts_are_rejected() {
        let mut w = world();
        w.tom.post(&mut w.sim, "nonexistent", "s", "t", None);
        w.sim.run_until_idle();
        w.tom.create_conference(&mut w.sim, "c");
        w.tom.post(&mut w.sim, "c", "s", "t", Some(999));
        w.sim.run_until_idle();
        assert_eq!(
            w.sim.node::<BbsServer>(w.server).unwrap().rejected_posts(),
            2
        );
    }

    #[test]
    fn subscribers_are_notified_by_mail() {
        let mut w = world();
        w.tom.create_conference(&mut w.sim, "c");
        w.wolfgang
            .subscribe(&mut w.sim, "c", w.wolfgang_mailbox.clone());
        w.tom.post(&mut w.sim, "c", "news", "content", None);
        w.sim.run_until_idle();
        let mta = w.sim.node::<MtaNode>(w.mta).unwrap();
        let inbox = mta.mailbox(&w.wolfgang_mailbox).unwrap().inbox();
        assert_eq!(inbox.len(), 1);
        assert!(inbox[0].ipm.heading.subject.contains("[c] news"));
        assert_eq!(w.sim.metrics().counter("bbs_notifications"), 1);
    }
}
